"""White-box tests for tree internals: splits, engine, stats accounting."""

import numpy as np
import pytest

from repro.core import (
    HilbertPDCTree,
    HilbertRTree,
    PDCTree,
    RTree,
    TreeConfig,
)
from repro.olap.query import full_query
from repro.olap.records import RecordBatch

from .conftest import make_schema, random_batch


class TestSplitMechanics:
    def test_leaf_split_creates_two_leaves(self):
        schema = make_schema([[16]])
        cfg = TreeConfig(leaf_capacity=4, fanout=4)
        tree = HilbertPDCTree(schema, cfg)
        for i in range(5):
            tree.insert(np.array([i]), float(i))
        assert not tree.root.is_leaf
        assert len(tree.root.children) == 2
        sizes = [c.size for c in tree.root.children]
        assert sum(sizes) == 5
        assert min(sizes) >= 1

    def test_root_split_grows_depth(self):
        schema = make_schema([[16, 16]])
        cfg = TreeConfig(leaf_capacity=2, fanout=2)
        tree = HilbertPDCTree(schema, cfg)
        batch = random_batch(schema, 64, seed=1)
        for coords, m in batch.iter_rows():
            tree.insert(coords, m)
        assert tree.depth() >= 4
        tree.validate()

    def test_split_counter_in_stats(self):
        schema = make_schema([[16]])
        cfg = TreeConfig(leaf_capacity=4, fanout=4)
        tree = HilbertPDCTree(schema, cfg)
        splits = 0
        for i in range(16):
            st = tree.insert(np.array([i]), 1.0)
            splits += st.splits
        assert splits >= 2

    @pytest.mark.parametrize("cls", [PDCTree, RTree])
    def test_geometric_split_separates_clusters(self, cls):
        """Two well-separated clusters end up in different subtrees."""
        schema = make_schema([[64], [64]])
        cfg = TreeConfig(leaf_capacity=8, fanout=4)
        tree = cls(schema, cfg)
        rng = np.random.default_rng(0)
        lows = rng.integers(0, 5, size=(20, 2))
        highs = rng.integers(58, 63, size=(20, 2))
        for p in np.concatenate([lows, highs]):
            tree.insert(p.astype(np.int64), 1.0)
        tree.validate()
        # the root children's MBRs should separate the two clusters
        boxes = [tree.policy.mbr(c.key) for c in tree.root.children]
        spans = [b.hi[0] - b.lo[0] for b in boxes]
        assert min(spans) < 63, "clusters were not separated at all"

    def test_hilbert_split_respects_min_fill(self):
        schema = make_schema([[64], [64]])
        cfg = TreeConfig(leaf_capacity=8, fanout=8)
        tree = HilbertPDCTree(schema, cfg)
        batch = random_batch(schema, 200, seed=2)
        for coords, m in batch.iter_rows():
            tree.insert(coords, m)
        for leaf in tree._iter_leaves(tree.root):
            assert leaf.size >= 1
        tree.validate()


class TestInsertEngineEdgeCases:
    def test_single_item_tree(self, schema):
        tree = HilbertPDCTree(schema)
        tree.insert(np.zeros(3, dtype=np.int64), 7.0)
        assert len(tree) == 1
        agg, _ = tree.query(full_query(schema).box)
        assert agg.count == 1 and agg.total == 7.0
        tree.validate()

    def test_identical_hilbert_keys(self):
        """Many duplicates of one point exercise equal-LHV routing."""
        schema = make_schema([[8], [8]])
        cfg = TreeConfig(leaf_capacity=4, fanout=3)
        tree = HilbertPDCTree(schema, cfg)
        pt = np.array([3, 3], dtype=np.int64)
        for i in range(50):
            tree.insert(pt, float(i))
        tree.validate()
        agg, _ = tree.query(full_query(schema).box)
        assert agg.count == 50

    def test_monotone_insertion_order(self):
        """Sorted input (worst case for naive trees) stays balanced-ish."""
        schema = make_schema([[64, 64]])
        cfg = TreeConfig(leaf_capacity=8, fanout=4)
        tree = HilbertPDCTree(schema, cfg)
        for v in range(300):
            tree.insert(np.array([v * 13 % 4096]), 1.0)
        tree.validate()
        # logarithmic-ish depth
        assert tree.depth() <= 8

    def test_insert_returns_work_stats(self, schema, batch):
        tree = HilbertPDCTree(schema)
        st = tree.insert(batch.coords[0], 1.0)
        assert st.nodes_visited >= 1
        assert st.work > 0

    def test_corner_values(self, schema):
        """Extremes of every dimension's id space round-trip."""
        tree = HilbertPDCTree(schema)
        zero = np.zeros(3, dtype=np.int64)
        top = schema.leaf_limits.copy()
        tree.insert(zero, 1.0)
        tree.insert(top, 2.0)
        from repro.olap.keys import Box

        agg, _ = tree.query(Box(zero, zero))
        assert agg.count == 1
        agg, _ = tree.query(Box(top, top))
        assert agg.count == 1


class TestQueryStatsAccounting:
    def test_full_query_uses_root_cache(self, schema, batch):
        tree = HilbertPDCTree.from_batch(schema, batch)
        _, st = tree.query(full_query(schema).box)
        assert st.nodes_visited == 1
        assert st.agg_hits == 1
        assert st.items_scanned == 0

    def test_point_query_descends(self, schema, batch):
        from repro.olap.keys import Box

        tree = HilbertPDCTree.from_batch(schema, batch)
        pt = batch.coords[0]
        _, st = tree.query(Box(pt, pt))
        assert st.nodes_visited >= tree.depth()
        assert st.leaves_visited >= 1

    def test_disjoint_query_touches_only_root(self, schema, batch):
        from repro.olap.keys import Box

        tree = HilbertPDCTree.from_batch(schema, batch)
        mbr = tree.mbr()
        if (mbr.hi + 1 > schema.leaf_limits).any():
            pytest.skip("no free corner")
        _, st = tree.query(Box(mbr.hi + 1, schema.leaf_limits))
        assert st.nodes_visited == 1
        assert st.items_scanned == 0


class TestBulkLoadPacking:
    def test_leaves_filled_to_target(self, schema):
        batch = random_batch(schema, 2000, seed=9)
        cfg = TreeConfig(leaf_capacity=64, fanout=16)
        tree = HilbertPDCTree.from_batch(schema, batch, cfg)
        sizes = [l.size for l in tree._iter_leaves(tree.root)]
        # 3/4 fill target
        assert np.mean(sizes) >= 32
        assert max(sizes) <= 64

    def test_empty_batch(self, schema):
        tree = HilbertPDCTree.from_batch(schema, RecordBatch.empty(3))
        assert len(tree) == 0
        agg, _ = tree.query(full_query(schema).box)
        assert agg.is_empty

    def test_one_item_batch(self, schema):
        b = RecordBatch(np.zeros((1, 3), dtype=np.int64), np.ones(1))
        tree = HilbertPDCTree.from_batch(schema, b)
        assert len(tree) == 1
        tree.validate()

    def test_bulk_load_faster_than_point_inserts(self, schema):
        import time

        batch = random_batch(schema, 3000, seed=10)
        t0 = time.perf_counter()
        HilbertPDCTree.from_batch(schema, batch)
        bulk = time.perf_counter() - t0
        t0 = time.perf_counter()
        tree = HilbertPDCTree(schema)
        for coords, m in batch.iter_rows():
            tree.insert(coords, m)
        point = time.perf_counter() - t0
        assert bulk < point, f"bulk {bulk:.2f}s not faster than point {point:.2f}s"


class TestTreeIntrospection:
    def test_depth_and_node_count_consistency(self, schema, batch):
        tree = HilbertPDCTree.from_batch(schema, batch)
        assert tree.depth() >= 1
        assert tree.node_count() >= tree.depth()

    def test_empty_tree_mbr(self, schema):
        tree = HilbertPDCTree(schema)
        assert tree.mbr().is_empty()

    def test_hilbert_r_uses_raw_mapping(self, schema):
        hr = HilbertRTree(schema)
        hpdc = HilbertPDCTree(schema)
        assert hr.mapper.expand is False
        assert hpdc.mapper.expand is True

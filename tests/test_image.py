"""Tests for the server local image (modified PDC tree over shards)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.image import LocalImage, ShardInfo
from repro.olap.keys import Box


def box(lo, hi):
    return Box(np.array(lo, dtype=np.int64), np.array(hi, dtype=np.int64))


def info(sid, lo, hi, worker=0):
    return ShardInfo(sid, box(lo, hi), worker)


class TestMembership:
    def test_add_and_get(self):
        img = LocalImage(2)
        img.add_shard(info(1, [0, 0], [10, 10]))
        assert 1 in img
        assert len(img) == 1
        assert img.get(1).worker_id == 0

    def test_duplicate_rejected(self):
        img = LocalImage(2)
        img.add_shard(info(1, [0, 0], [1, 1]))
        with pytest.raises(ValueError):
            img.add_shard(info(1, [0, 0], [1, 1]))

    def test_remove(self):
        img = LocalImage(2)
        img.add_shard(info(1, [0, 0], [1, 1]))
        img.add_shard(info(2, [5, 5], [9, 9]))
        img.remove_shard(1)
        assert 1 not in img and 2 in img
        img.validate()

    def test_many_shards_force_splits(self):
        img = LocalImage(2, fanout=4)
        for i in range(40):
            x = (i % 8) * 10
            y = (i // 8) * 10
            img.add_shard(info(i, [x, y], [x + 5, y + 5]))
        assert len(img) == 40
        img.validate()

    def test_wire_roundtrip(self):
        i = info(7, [1, 2], [3, 4], worker=3)
        i.size = 99
        j = ShardInfo.from_wire(i.to_wire())
        assert j.shard_id == 7 and j.worker_id == 3 and j.size == 99
        assert j.box == i.box


class TestRouting:
    def test_route_insert_picks_covering_shard(self):
        img = LocalImage(2)
        img.add_shard(info(1, [0, 0], [10, 10]))
        img.add_shard(info(2, [20, 20], [30, 30]))
        assert img.route_insert(np.array([5, 5])).shard_id == 1
        assert img.route_insert(np.array([25, 25])).shard_id == 2

    def test_route_insert_expands_boxes(self):
        img = LocalImage(2)
        img.add_shard(info(1, [0, 0], [10, 10]))
        img.add_shard(info(2, [100, 100], [110, 110]))
        got = img.route_insert(np.array([12, 12]))
        assert got.shard_id == 1  # closer: least overlap/enlargement
        assert img.get(1).box.contains_point(np.array([12, 12]))
        assert 1 in img.dirty

    def test_route_insert_no_dirty_when_covered(self):
        img = LocalImage(2)
        img.add_shard(info(1, [0, 0], [10, 10]))
        img.route_insert(np.array([5, 5]))
        assert img.dirty == set()

    def test_route_insert_counts_size(self):
        img = LocalImage(2)
        img.add_shard(info(1, [0, 0], [10, 10]))
        img.route_insert(np.array([1, 1]))
        img.route_insert(np.array([2, 2]))
        assert img.get(1).size == 2

    def test_route_on_empty_image_raises(self):
        with pytest.raises(RuntimeError):
            LocalImage(2).route_insert(np.array([0, 0]))


class TestSearch:
    def test_search_finds_intersecting(self):
        img = LocalImage(2)
        img.add_shard(info(1, [0, 0], [10, 10]))
        img.add_shard(info(2, [20, 0], [30, 10]))
        img.add_shard(info(3, [0, 20], [10, 30]))
        hits = {s.shard_id for s in img.search(box([5, 5], [25, 8]))}
        assert hits == {1, 2}

    def test_search_all(self):
        img = LocalImage(2, fanout=3)
        for i in range(20):
            img.add_shard(info(i, [i * 10, 0], [i * 10 + 5, 5]))
        hits = img.search(box([0, 0], [1000, 1000]))
        assert len(hits) == 20

    def test_search_none(self):
        img = LocalImage(2)
        img.add_shard(info(1, [0, 0], [10, 10]))
        assert img.search(box([50, 50], [60, 60])) == []


class TestExpansion:
    def test_expand_shard_bottom_up(self):
        img = LocalImage(2, fanout=2)
        for i in range(8):
            img.add_shard(info(i, [i * 10, 0], [i * 10 + 5, 5]))
        changed = img.expand_shard(3, box([200, 200], [210, 210]))
        assert changed
        # the shard must now be discoverable through the expanded region
        hits = {s.shard_id for s in img.search(box([205, 205], [206, 206]))}
        assert 3 in hits

    def test_expand_noop(self):
        img = LocalImage(2)
        img.add_shard(info(1, [0, 0], [10, 10]))
        assert not img.expand_shard(1, box([2, 2], [3, 3]))

    def test_update_worker_and_size(self):
        img = LocalImage(2)
        img.add_shard(info(1, [0, 0], [1, 1], worker=0))
        img.update_worker(1, 5)
        img.update_size(1, 123)
        assert img.get(1).worker_id == 5
        assert img.get(1).size == 123


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=500),
            st.integers(min_value=0, max_value=500),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_route_insert_always_lands_in_reported_shard(corners):
    """Property: after routing, the chosen shard's box covers the point,
    and searching any box containing the point finds that shard."""
    img = LocalImage(2, fanout=4)
    for i, (x, y) in enumerate(corners[: max(1, len(corners) // 2)]):
        img.add_shard(info(i, [x, y], [x + 20, y + 20]))
    rng = np.random.default_rng(0)
    for _ in range(30):
        pt = rng.integers(0, 521, size=2)
        chosen = img.route_insert(pt)
        assert chosen.box.contains_point(pt)
        hits = {s.shard_id for s in img.search(Box(pt, pt))}
        assert chosen.shard_id in hits
    img.validate()

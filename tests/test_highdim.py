"""Tests for the high-dimensional workload helpers (Fig 5 substrate)."""

import numpy as np

from repro.workloads.highdim import (
    heterogeneous_schema,
    latent_cluster_batch,
    level_constrained_queries,
)


class TestHeterogeneousSchema:
    def test_dimension_count(self):
        s = heterogeneous_schema(7)
        assert s.num_dims == 7

    def test_unequal_level_widths(self):
        s = heterogeneous_schema(5)
        l1_bits = {d.hierarchy.levels[0].bits for d in s.dimensions}
        assert len(l1_bits) > 1, "level-1 widths should differ across dims"

    def test_two_levels_everywhere(self):
        s = heterogeneous_schema(10)
        assert all(d.num_levels == 2 for d in s.dimensions)


class TestLatentClusterBatch:
    def test_shapes(self):
        s = heterogeneous_schema(6)
        batch, centers = latent_cluster_batch(s, 500, clusters=7, seed=1)
        assert len(batch) == 500
        assert centers.shape == (7, 6)
        batch.validate(s)

    def test_level1_values_come_from_centers(self):
        s = heterogeneous_schema(4)
        batch, centers = latent_cluster_batch(s, 300, clusters=5, seed=2)
        for j, dim in enumerate(s.dimensions):
            h = dim.hierarchy
            tops = {h.prefix_of(int(v), 1) for v in batch.coords[:, j]}
            allowed = set(centers[:, j].tolist())
            assert tops <= allowed

    def test_dimensions_correlate(self):
        """Items sharing a level-1 value in one dim overwhelmingly share
        the cluster's values in other dims too."""
        s = heterogeneous_schema(4)
        batch, centers = latent_cluster_batch(s, 1000, clusters=8, seed=3)
        h0 = s.dimensions[0].hierarchy
        h1 = s.dimensions[1].hierarchy
        t0 = np.array([h0.prefix_of(int(v), 1) for v in batch.coords[:, 0]])
        t1 = np.array([h1.prefix_of(int(v), 1) for v in batch.coords[:, 1]])
        # conditional concentration: for the most common t0 value, the
        # t1 values concentrate on few cluster centers
        top = np.bincount(t0).argmax()
        cond = t1[t0 == top]
        dominant = np.bincount(cond).max() / len(cond)
        assert dominant > 0.3

    def test_deterministic(self):
        s = heterogeneous_schema(4)
        a, ca = latent_cluster_batch(s, 100, seed=5)
        b, cb = latent_cluster_batch(s, 100, seed=5)
        assert np.array_equal(a.coords, b.coords)
        assert np.array_equal(ca, cb)


class TestLevelConstrainedQueries:
    def test_queries_target_cluster_values(self):
        s = heterogeneous_schema(6)
        batch, centers = latent_cluster_batch(s, 400, clusters=4, seed=1)
        boxes = level_constrained_queries(s, centers, 10, constrained_dims=2, seed=2)
        assert len(boxes) == 10
        for box in boxes:
            constrained = [
                j
                for j in range(s.num_dims)
                if box.lo[j] != 0 or box.hi[j] != s.leaf_limits[j]
            ]
            assert len(constrained) == 2

    def test_queries_nonempty_on_average(self):
        """Cluster-targeted queries usually hit data."""
        s = heterogeneous_schema(6)
        batch, centers = latent_cluster_batch(s, 2000, clusters=4, seed=3)
        boxes = level_constrained_queries(s, centers, 20, seed=4)
        hits = sum(
            1 for b in boxes if b.contains_points(batch.coords).any()
        )
        assert hits >= 10

    def test_constrained_dims_capped(self):
        s = heterogeneous_schema(2)
        batch, centers = latent_cluster_batch(s, 50, seed=5)
        boxes = level_constrained_queries(
            s, centers, 3, constrained_dims=5, seed=6
        )
        assert len(boxes) == 3  # does not crash when k > d

"""Property and fuzz tests for the columnar shard frame codec.

The codec (:mod:`repro.olap.colframe`) is the only thing standing
between a shard and garbage on every checkpoint/migrate/restore/seed,
so it gets both treatments:

* a seeded-fuzz wall that always runs (CI installs only numpy+pytest),
  sweeping random column sets, truncations, and bit flips;
* Hypothesis properties, when the package is importable, minimising the
  same invariants over adversarial shapes and values.

The invariant everywhere is *bit-for-bit*: ``decode(encode(x)) == x``
including NaN payloads and signed zeros, and every structurally broken
frame raises :class:`~repro.olap.colframe.FrameError` instead of
desyncing into wrong data.
"""

import numpy as np
import pytest

from repro.core import ArrayStore, HilbertPDCTree, TreeConfig
from repro.olap.colframe import (
    MAGIC,
    FrameError,
    decode_batch,
    decode_columns,
    encode_batch,
    encode_columns,
    is_column_frame,
)
from repro.olap.records import RecordBatch

from .conftest import make_schema, random_batch

try:
    from hypothesis import given, settings, strategies as st

    HAS_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis present locally
    HAS_HYPOTHESIS = False


def assert_bit_identical(a: np.ndarray, b: np.ndarray) -> None:
    """Equality that treats NaN payloads and -0.0 as distinct values."""
    assert a.dtype == b.dtype
    assert a.shape == b.shape
    assert a.tobytes() == b.tobytes()


def roundtrip(columns, compress=True):
    blob = encode_columns(columns, compress=compress)
    out = decode_columns(blob)
    assert set(out) == {name for name, _ in columns}
    for name, arr in columns:
        assert_bit_identical(np.ascontiguousarray(arr), out[name])
    return blob, out


# -- deterministic round-trip cases -----------------------------------------


class TestRoundTrip:
    def test_empty_columns(self):
        roundtrip(
            [
                ("coords", np.empty((0, 3), dtype=np.int64)),
                ("measures", np.empty(0, dtype=np.float64)),
                ("hwords", np.empty((0, 2), dtype=np.uint64)),
            ]
        )

    def test_singleton_leaf(self):
        roundtrip(
            [
                ("coords", np.array([[1, -2, 3]], dtype=np.int64)),
                ("measures", np.array([0.5])),
            ]
        )

    def test_full_leaf_multiword_keys(self):
        rng = np.random.default_rng(7)
        n = 256
        roundtrip(
            [
                ("coords", rng.integers(-(2**40), 2**40, (n, 5)).astype(np.int64)),
                ("measures", rng.random(n)),
                (
                    "hwords",
                    rng.integers(0, 2**63, (n, 3)).astype(np.uint64) * np.uint64(2),
                ),
            ]
        )

    def test_nan_inf_and_signed_zero_measures(self):
        m = np.array(
            [np.nan, -np.nan, np.inf, -np.inf, 0.0, -0.0, 1e308, 5e-324]
        )
        blob, out = roundtrip([("measures", m)])
        # distinct NaN payloads survive too
        weird = np.array([np.nan], dtype=np.float64)
        weird_raw = weird.view(np.uint64)
        weird_raw[0] |= np.uint64(0xDEAD)
        _, out = roundtrip([("m", weird)])

    def test_int64_extremes_defeat_narrowing(self):
        lo, hi = np.iinfo(np.int64).min, np.iinfo(np.int64).max
        roundtrip([("c", np.array([lo, hi, 0, -1, 1], dtype=np.int64))])

    def test_narrowing_across_sign_wrap(self):
        # range fits uint8 but the values straddle 0 and int64 boundaries
        for base in (-5, np.iinfo(np.int64).min, np.iinfo(np.int64).max - 100):
            arr = np.arange(100, dtype=np.int64) + np.int64(base)
            blob, _ = roundtrip([("c", arr)], compress=False)
            # the buffer really did narrow: frame much smaller than raw
            assert len(blob) < arr.nbytes

    def test_constant_column_narrows_to_uint8(self):
        arr = np.full(1000, 123456789, dtype=np.int64)
        blob, _ = roundtrip([("c", arr)], compress=False)
        assert len(blob) < 1200  # ~1 byte/row + framing

    def test_uint64_full_range(self):
        arr = np.array([0, 1, 2**64 - 1, 2**63], dtype=np.uint64)
        roundtrip([("w", arr)])

    def test_compress_is_store_if_smaller(self):
        # incompressible noise: stored raw, flags stay 0
        rng = np.random.default_rng(3)
        noise = rng.integers(0, 2**63, 500, dtype=np.int64) * 2 - 1
        raw = encode_columns([("c", noise)], compress=True)
        flags = int.from_bytes(raw[6:8], "little")
        assert flags == 0
        # compressible data: flags set, frame smaller
        smooth = np.zeros(500, dtype=np.float64)
        packed = encode_columns([("m", smooth)], compress=True)
        plain = encode_columns([("m", smooth)], compress=False)
        assert len(packed) < len(plain)
        assert int.from_bytes(packed[6:8], "little") != 0
        assert_bit_identical(decode_columns(packed)["m"], smooth)

    def test_uncompressed_frames_are_byte_stable(self):
        rng = np.random.default_rng(11)
        cols = [
            ("coords", rng.integers(0, 1000, (64, 4)).astype(np.int64)),
            ("measures", rng.random(64)),
        ]
        assert encode_columns(cols, compress=False) == encode_columns(
            cols, compress=False
        )

    def test_zero_copy_views_into_blob(self):
        m = np.array([np.pi, np.e, 42.0])
        blob = encode_columns([("m", m)], compress=False)
        out = decode_columns(blob)["m"]
        assert not out.flags.writeable
        assert_bit_identical(out, m)

    def test_noncontiguous_input(self):
        arr = np.arange(40, dtype=np.int64).reshape(10, 4)[:, ::2]
        _, out = roundtrip([("c", arr)])
        assert_bit_identical(out["c"], np.ascontiguousarray(arr))


class TestEncodeValidation:
    def test_duplicate_names_rejected(self):
        a = np.zeros(3, dtype=np.int64)
        with pytest.raises(ValueError, match="duplicate"):
            encode_columns([("x", a), ("x", a)])

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            encode_columns([("x", np.zeros(3, dtype=np.int32))])

    def test_bad_rank_rejected(self):
        with pytest.raises(ValueError, match="1-D or 2-D"):
            encode_columns([("x", np.zeros((2, 2, 2), dtype=np.int64))])


# -- structural fault injection ---------------------------------------------


def small_frame(compress=False) -> bytes:
    rng = np.random.default_rng(5)
    return encode_columns(
        [
            ("coords", rng.integers(0, 50, (6, 2)).astype(np.int64)),
            ("measures", rng.random(6)),
        ],
        compress=compress,
    )


class TestCorruption:
    @pytest.mark.parametrize("compress", [False, True])
    def test_every_truncation_raises(self, compress):
        blob = small_frame(compress)
        for cut in range(len(blob)):
            with pytest.raises(FrameError):
                decode_columns(blob[:cut])

    @pytest.mark.parametrize("compress", [False, True])
    def test_every_single_byte_flip_raises(self, compress):
        """crc32 catches any single-byte error anywhere in the frame."""
        blob = bytearray(small_frame(compress))
        for i in range(len(blob)):
            broken = blob.copy()
            broken[i] ^= 0x41
            with pytest.raises(FrameError):
                decode_columns(bytes(broken))

    def test_trailing_garbage_raises(self):
        with pytest.raises(FrameError):
            decode_columns(small_frame() + b"\0")

    def test_not_a_frame(self):
        with pytest.raises(FrameError):
            decode_columns(b"definitely not a frame" + b"\0" * 40)
        assert not is_column_frame(b"NOPE")
        assert is_column_frame(MAGIC + b"anything")

    def test_empty_blob(self):
        with pytest.raises(FrameError):
            decode_columns(b"")


# -- batch entry points and v1 fallback --------------------------------------


class TestBatchCodec:
    def test_batch_roundtrip(self):
        schema = make_schema()
        batch = random_batch(schema, 300, seed=1)
        out = decode_batch(encode_batch(batch))
        assert_bit_identical(out.coords, batch.coords)
        assert_bit_identical(out.measures, batch.measures)

    def test_empty_batch_roundtrip(self):
        out = decode_batch(encode_batch(RecordBatch.empty(4)))
        assert out.coords.shape == (0, 4)

    def test_v1_legacy_blob_decodes(self):
        schema = make_schema()
        batch = random_batch(schema, 120, seed=2)
        out = decode_batch(batch.to_bytes())
        assert_bit_identical(out.coords, batch.coords)
        assert_bit_identical(out.measures, batch.measures)

    def test_missing_column_raises(self):
        blob = encode_columns([("coords", np.zeros((1, 2), dtype=np.int64))])
        with pytest.raises(FrameError, match="missing column"):
            decode_batch(blob)

    def test_frame_beats_v1_size(self):
        """The headline claim: frames are >= 2x smaller on typical data."""
        schema = make_schema()
        batch = random_batch(schema, 2000, seed=3)
        assert len(batch.to_bytes()) >= 2 * len(encode_batch(batch))

    def test_store_serialize_is_a_frame(self):
        schema = make_schema()
        batch = random_batch(schema, 200, seed=4)
        for cls in (HilbertPDCTree, ArrayStore):
            store = cls.from_batch(schema, batch, TreeConfig(leaf_capacity=16))
            blob = store.serialize()
            assert is_column_frame(blob)
            back = cls.deserialize(schema, blob, TreeConfig(leaf_capacity=16))
            assert len(back) == len(store)

    def test_serialize_uses_no_pickle(self, monkeypatch):
        """The shard transfer hot path must never touch pickle."""
        import pickle

        def boom(*a, **k):  # pragma: no cover - called means failure
            raise AssertionError("pickle on the serialization hot path")

        monkeypatch.setattr(pickle, "dumps", boom)
        monkeypatch.setattr(pickle, "loads", boom)
        monkeypatch.setattr(pickle, "dump", boom)
        monkeypatch.setattr(pickle, "load", boom)
        schema = make_schema()
        batch = random_batch(schema, 150, seed=5)
        store = HilbertPDCTree.from_batch(schema, batch)
        blob = store.serialize()
        back = HilbertPDCTree.deserialize(schema, blob, None)
        assert len(back) == 150


# -- seeded fuzz (always on) --------------------------------------------------


FUZZ_DTYPES = [np.int64, np.float64, np.uint64]


@pytest.mark.parametrize("seed", range(25))
def test_fuzz_roundtrip(seed):
    """Random column sets: shapes, dtypes, ranges, NaN/inf injection."""
    rng = np.random.default_rng(1000 + seed)
    ncols = int(rng.integers(1, 5))
    columns = []
    for i in range(ncols):
        dt = FUZZ_DTYPES[int(rng.integers(0, 3))]
        n = int(rng.integers(0, 200))
        if rng.random() < 0.5:
            shape = (n, int(rng.integers(1, 6)))
        else:
            shape = (n,)
        if dt is np.float64:
            arr = rng.standard_normal(shape) * 10.0 ** float(
                rng.integers(-300, 300)
            )
            flat = arr.reshape(-1)
            for special in (np.nan, np.inf, -np.inf, -0.0):
                if flat.size and rng.random() < 0.5:
                    flat[rng.integers(0, flat.size)] = special
        elif dt is np.int64:
            span = int(rng.integers(1, 63))
            arr = rng.integers(-(2**span), 2**span, shape, dtype=np.int64)
        else:
            arr = rng.integers(0, 2**63, shape, dtype=np.uint64) * np.uint64(
                2
            ) + np.uint64(int(rng.integers(0, 2)))
        columns.append((f"col{i}", arr))
    roundtrip(columns, compress=bool(rng.random() < 0.5))


@pytest.mark.parametrize("seed", range(10))
def test_fuzz_corruption(seed):
    """Random multi-byte corruption never decodes to wrong data silently."""
    rng = np.random.default_rng(2000 + seed)
    batch = RecordBatch(
        rng.integers(0, 10**6, (50, 3)).astype(np.int64), rng.random(50)
    )
    blob = bytearray(encode_batch(batch, compress=bool(seed % 2)))
    k = int(rng.integers(1, 8))
    for _ in range(k):
        blob[int(rng.integers(0, len(blob)))] ^= int(rng.integers(1, 256))
    try:
        out = decode_batch(bytes(blob))
    except FrameError:
        return  # rejected: the expected outcome
    # astronomically unlikely (crc32 collision); if decode "succeeds"
    # the data must still be byte-identical to count as not-wrong
    assert_bit_identical(out.coords, batch.coords)


# -- hypothesis properties (skipped when the package is absent) ---------------


if HAS_HYPOTHESIS:

    @st.composite
    def column_sets(draw):
        ncols = draw(st.integers(min_value=1, max_value=4))
        n = draw(st.integers(min_value=0, max_value=64))
        cols = []
        for i in range(ncols):
            kind = draw(st.sampled_from(["i8", "f8", "u8w"]))
            width = draw(st.integers(min_value=1, max_value=4))
            shape = (n, width) if draw(st.booleans()) else (n,)
            size = int(np.prod(shape))
            if kind == "i8":
                vals = draw(
                    st.lists(
                        st.integers(
                            min_value=-(2**63), max_value=2**63 - 1
                        ),
                        min_size=size,
                        max_size=size,
                    )
                )
                arr = np.array(vals, dtype=np.int64).reshape(shape)
            elif kind == "f8":
                vals = draw(
                    st.lists(
                        st.floats(allow_nan=True, allow_infinity=True),
                        min_size=size,
                        max_size=size,
                    )
                )
                arr = np.array(vals, dtype=np.float64).reshape(shape)
            else:
                vals = draw(
                    st.lists(
                        st.integers(min_value=0, max_value=2**64 - 1),
                        min_size=size,
                        max_size=size,
                    )
                )
                arr = np.array(vals, dtype=np.uint64).reshape(shape)
            cols.append((f"c{i}", arr))
        return cols

    @settings(max_examples=50, deadline=None)
    @given(cols=column_sets(), compress=st.booleans())
    def test_property_roundtrip(cols, compress):
        roundtrip(cols, compress=compress)

    @settings(max_examples=50, deadline=None)
    @given(
        data=st.binary(min_size=0, max_size=200),
        prefix_magic=st.booleans(),
    )
    def test_property_arbitrary_bytes_never_crash(data, prefix_magic):
        """decode_columns on arbitrary input: FrameError or a valid dict,
        never an unhandled exception."""
        blob = (MAGIC + data) if prefix_magic else data
        try:
            decode_columns(blob)
        except FrameError:
            pass

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        cut=st.integers(min_value=0, max_value=10**6),
    )
    def test_property_truncation_raises(seed, cut):
        rng = np.random.default_rng(seed)
        blob = encode_columns(
            [("c", rng.integers(0, 100, (8, 2)).astype(np.int64))]
        )
        with pytest.raises(FrameError):
            decode_columns(blob[: cut % len(blob)])

"""Tests for the PBS freshness simulator (paper Fig 10)."""

import numpy as np
import pytest

from repro.freshness import LatencyDistribution, PBSResult, PBSSimulator


class TestLatencyDistribution:
    def test_empirical_sampling(self):
        dist = LatencyDistribution(samples=[0.001, 0.002, 0.003])
        rng = np.random.default_rng(0)
        s = dist.sample(1000, rng)
        assert set(np.round(s, 6)) <= {0.001, 0.002, 0.003}
        assert dist.mean() == pytest.approx(0.002)

    def test_lognormal_mean_calibrated(self):
        dist = LatencyDistribution(lognormal_mean=2e-3, cap=10.0)
        assert dist.mean() == pytest.approx(2e-3, rel=0.1)

    def test_lognormal_respects_cap(self):
        dist = LatencyDistribution(cap=0.1)
        rng = np.random.default_rng(1)
        assert dist.sample(10_000, rng).max() <= 0.1

    def test_rejects_bad_samples(self):
        with pytest.raises(ValueError):
            LatencyDistribution(samples=[])
        with pytest.raises(ValueError):
            LatencyDistribution(samples=[-1.0])


class TestPBSSimulator:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PBSSimulator(insert_rate=0)

    def test_missed_at_zero_matches_littles_law(self):
        """E[missed at e=0] ~ rate x mean insert latency."""
        sim = PBSSimulator(insert_rate=50_000, seed=2, expansion_miss_prob=0.0)
        res = sim.missed_curve([0.0], trials=60)
        expected = 50_000 * sim.latency.mean()
        assert res.mean_missed[0] == pytest.approx(expected, rel=0.25)

    def test_missed_decays_with_elapsed_time(self):
        """Paper Fig 10a: missed inserts drop to ~zero by 0.25 s."""
        sim = PBSSimulator(insert_rate=50_000, seed=3)
        res = sim.missed_curve([0.0, 0.05, 0.25, 1.0], trials=60)
        m = res.mean_missed
        assert m[0] > 20
        assert m[1] < m[0] / 10
        assert m[2] < 1.0
        assert m[3] < 1.0

    def test_consistency_within_sync_period(self):
        """Paper: consistency always observed in under 3 seconds."""
        sim = PBSSimulator(insert_rate=50_000, sync_period=3.0, seed=4)
        assert sim.prob_inconsistent(3.1, trials=300) == 0.0

    def test_coverage_scales_missed(self):
        sim = PBSSimulator(insert_rate=50_000, seed=5, expansion_miss_prob=0.0)
        full = sim.missed_curve([0.0], coverage=1.0, trials=80).mean_missed[0]
        sim2 = PBSSimulator(insert_rate=50_000, seed=5, expansion_miss_prob=0.0)
        quarter = sim2.missed_curve([0.0], coverage=0.25, trials=80).mean_missed[0]
        assert quarter == pytest.approx(full * 0.25, rel=0.3)

    def test_pmf_sums_below_one(self):
        sim = PBSSimulator(insert_rate=50_000, seed=6)
        pmf = sim.missed_pmf(0.25, coverage=0.5, trials=300)
        assert len(pmf) == 4
        assert (pmf >= 0).all()
        assert pmf.sum() <= 1.0

    def test_pmf_decreasing_in_elapsed(self):
        """Paper Fig 10b: probabilities shrink as elapsed time grows."""
        sim = PBSSimulator(insert_rate=50_000, seed=7)
        early = sim.missed_pmf(0.01, coverage=1.0, trials=400).sum()
        late = sim.missed_pmf(2.0, coverage=1.0, trials=400).sum()
        assert late <= early

    def test_empirical_latencies_accepted(self):
        dist = LatencyDistribution(samples=np.full(100, 0.002))
        sim = PBSSimulator(
            insert_rate=10_000, insert_latency=dist, seed=8,
            expansion_miss_prob=0.0,
        )
        res = sim.missed_curve([0.0, 0.002, 0.01], trials=60)
        # all latencies exactly 2ms: nothing can be missed past e=2ms
        assert res.mean_missed[0] > 0
        assert res.mean_missed[2] == 0.0

    def test_time_to_fresh(self):
        res = PBSResult(
            np.array([0.0, 0.1, 0.2]), np.array([10.0, 0.4, 0.0]), 1.0
        )
        assert res.time_to_fresh() == 0.1
        res2 = PBSResult(np.array([0.0]), np.array([10.0]), 1.0)
        assert res2.time_to_fresh() == float("inf")


@pytest.mark.sim_only
class TestPBSAgainstMeasuredStaleness:
    """Validate the PBS model against replica staleness the cluster
    actually measured (PR 6 satellite): feed the per-row tee-to-apply
    delays of a replicated run into :class:`LatencyDistribution` and
    check the simulator's predictions against an independent,
    event-stepped measurement of the replication backlog."""

    def test_prediction_matches_measured_backlog(self):
        from repro.cluster import BalancerPolicy, ClusterConfig, VOLAPCluster
        from repro.core import TreeConfig
        from repro.workloads.streams import Operation

        from .conftest import make_schema, random_batch

        schema = make_schema()
        cfg = ClusterConfig(
            num_workers=3,
            num_servers=1,
            tree_config=TreeConfig(leaf_capacity=32, fanout=8),
            balancer=BalancerPolicy(
                max_shard_items=100_000, scan_period=0.1, op_timeout=2.0
            ),
            heartbeat_period=0.1,
            checkpoint_period=0.4,
            replication_factor=1,
            seed=3,
        )
        cluster = VOLAPCluster(schema, cfg)
        cluster.bootstrap(random_batch(schema, 1200, seed=3), shards_per_worker=2)
        cluster.run_for(2.0)  # replicas of every shard seeded + settled

        extra = random_batch(schema, 500, seed=47)
        sess = cluster.session(0, concurrency=8)
        sess.run_stream(
            [
                Operation(
                    "insert",
                    coords=extra.coords[i],
                    measure=float(extra.measures[i]),
                )
                for i in range(len(extra))
            ]
        )

        def inflight() -> int:
            ws = cluster.workers.values()
            return sum(w.repl_rows_teed for w in ws) - sum(
                w.repl_rows_applied for w in ws
            )

        # event-stepped time integral of the replication backlog: the
        # number of acked-but-not-yet-replica-visible rows at any instant
        t_start = cluster.clock.now
        integral, horizon = 0.0, t_start + 60.0
        while cluster.clock.now < horizon:
            val = inflight()
            t_prev = cluster.clock.now
            if not cluster.clock.step():
                break
            integral += val * (cluster.clock.now - t_prev)
            if sess.done and inflight() == 0:
                break
        assert sess.done and inflight() == 0
        window = cluster.clock.now - t_start
        measured_backlog = integral / window

        lags = [
            s for w in cluster.workers.values() for s in w.repl_apply_lags
        ]
        assert len(lags) == len(extra)  # every acked row streamed once
        rate = sum(w.repl_rows_teed for w in cluster.workers.values()) / window

        # the PBS simulator, driven by the measured staleness samples,
        # must reproduce the measured backlog (Little's law) ...
        sim = PBSSimulator(
            insert_rate=rate,
            insert_latency=LatencyDistribution(samples=lags),
            expansion_miss_prob=0.0,
            seed=9,
        )
        predicted = sim.missed_curve([0.0], trials=200).mean_missed[0]
        assert measured_backlog > 0
        assert predicted == pytest.approx(measured_backlog, rel=0.25)
        # ... and predict full freshness past the measured staleness tail
        tail = max(lags) * 1.05
        assert sim.missed_curve([tail], trials=200).mean_missed[0] == 0.0
        assert sim.prob_inconsistent(tail, trials=200) == 0.0

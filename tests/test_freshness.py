"""Tests for the PBS freshness simulator (paper Fig 10)."""

import numpy as np
import pytest

from repro.freshness import LatencyDistribution, PBSResult, PBSSimulator


class TestLatencyDistribution:
    def test_empirical_sampling(self):
        dist = LatencyDistribution(samples=[0.001, 0.002, 0.003])
        rng = np.random.default_rng(0)
        s = dist.sample(1000, rng)
        assert set(np.round(s, 6)) <= {0.001, 0.002, 0.003}
        assert dist.mean() == pytest.approx(0.002)

    def test_lognormal_mean_calibrated(self):
        dist = LatencyDistribution(lognormal_mean=2e-3, cap=10.0)
        assert dist.mean() == pytest.approx(2e-3, rel=0.1)

    def test_lognormal_respects_cap(self):
        dist = LatencyDistribution(cap=0.1)
        rng = np.random.default_rng(1)
        assert dist.sample(10_000, rng).max() <= 0.1

    def test_rejects_bad_samples(self):
        with pytest.raises(ValueError):
            LatencyDistribution(samples=[])
        with pytest.raises(ValueError):
            LatencyDistribution(samples=[-1.0])


class TestPBSSimulator:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PBSSimulator(insert_rate=0)

    def test_missed_at_zero_matches_littles_law(self):
        """E[missed at e=0] ~ rate x mean insert latency."""
        sim = PBSSimulator(insert_rate=50_000, seed=2, expansion_miss_prob=0.0)
        res = sim.missed_curve([0.0], trials=60)
        expected = 50_000 * sim.latency.mean()
        assert res.mean_missed[0] == pytest.approx(expected, rel=0.25)

    def test_missed_decays_with_elapsed_time(self):
        """Paper Fig 10a: missed inserts drop to ~zero by 0.25 s."""
        sim = PBSSimulator(insert_rate=50_000, seed=3)
        res = sim.missed_curve([0.0, 0.05, 0.25, 1.0], trials=60)
        m = res.mean_missed
        assert m[0] > 20
        assert m[1] < m[0] / 10
        assert m[2] < 1.0
        assert m[3] < 1.0

    def test_consistency_within_sync_period(self):
        """Paper: consistency always observed in under 3 seconds."""
        sim = PBSSimulator(insert_rate=50_000, sync_period=3.0, seed=4)
        assert sim.prob_inconsistent(3.1, trials=300) == 0.0

    def test_coverage_scales_missed(self):
        sim = PBSSimulator(insert_rate=50_000, seed=5, expansion_miss_prob=0.0)
        full = sim.missed_curve([0.0], coverage=1.0, trials=80).mean_missed[0]
        sim2 = PBSSimulator(insert_rate=50_000, seed=5, expansion_miss_prob=0.0)
        quarter = sim2.missed_curve([0.0], coverage=0.25, trials=80).mean_missed[0]
        assert quarter == pytest.approx(full * 0.25, rel=0.3)

    def test_pmf_sums_below_one(self):
        sim = PBSSimulator(insert_rate=50_000, seed=6)
        pmf = sim.missed_pmf(0.25, coverage=0.5, trials=300)
        assert len(pmf) == 4
        assert (pmf >= 0).all()
        assert pmf.sum() <= 1.0

    def test_pmf_decreasing_in_elapsed(self):
        """Paper Fig 10b: probabilities shrink as elapsed time grows."""
        sim = PBSSimulator(insert_rate=50_000, seed=7)
        early = sim.missed_pmf(0.01, coverage=1.0, trials=400).sum()
        late = sim.missed_pmf(2.0, coverage=1.0, trials=400).sum()
        assert late <= early

    def test_empirical_latencies_accepted(self):
        dist = LatencyDistribution(samples=np.full(100, 0.002))
        sim = PBSSimulator(
            insert_rate=10_000, insert_latency=dist, seed=8,
            expansion_miss_prob=0.0,
        )
        res = sim.missed_curve([0.0, 0.002, 0.01], trials=60)
        # all latencies exactly 2ms: nothing can be missed past e=2ms
        assert res.mean_missed[0] > 0
        assert res.mean_missed[2] == 0.0

    def test_time_to_fresh(self):
        res = PBSResult(
            np.array([0.0, 0.1, 0.2]), np.array([10.0, 0.4, 0.0]), 1.0
        )
        assert res.time_to_fresh() == 0.1
        res2 = PBSResult(np.array([0.0]), np.array([10.0]), 1.0)
        assert res2.time_to_fresh() == float("inf")

"""Randomised integration sweeps: many small clusters, many shapes.

Each case wires a cluster with randomly drawn parameters (workers,
servers, tree config, balancer aggressiveness, store class, image key
kind), throws a random operation mix at it, lets the balancer churn,
and asserts the global invariants that must survive *any*
configuration: no item lost, full queries exact on every server after a
sync period, all shards accounted for in every image.
"""

import numpy as np
import pytest

from repro.cluster import BalancerPolicy, ClusterConfig, VOLAPCluster
from repro.core import HilbertPDCTree, PDCTree, TreeConfig
from repro.olap.query import full_query
from repro.workloads import QueryGenerator, TPCDSGenerator, tpcds_schema
from repro.workloads.streams import Operation

#: deterministic-replay and model-timer assertions; see conftest
pytestmark = pytest.mark.sim_only


SCHEMA = tpcds_schema()


def run_case(seed: int) -> None:
    rng = np.random.default_rng(seed)
    workers = int(rng.integers(2, 5))
    servers = int(rng.integers(1, 3))
    store_cls = HilbertPDCTree if rng.random() < 0.7 else PDCTree
    key_kind = "mds" if rng.random() < 0.7 else "mbr"
    n0 = int(rng.integers(1500, 4000))
    cfg = ClusterConfig(
        num_workers=workers,
        num_servers=servers,
        tree_config=TreeConfig(
            key_kind=key_kind,
            leaf_capacity=int(rng.integers(8, 64)),
            fanout=int(rng.integers(4, 16)),
        ),
        balancer=BalancerPolicy(
            max_shard_items=int(rng.integers(400, 2000)),
            imbalance_ratio=float(rng.uniform(1.15, 1.6)),
            min_migrate_items=int(rng.integers(50, 200)),
            scan_period=float(rng.uniform(0.1, 0.6)),
        ),
        image_key_kind="mds" if rng.random() < 0.5 else "mbr",
        sync_period=float(rng.uniform(0.5, 3.0)),
        store_cls=store_cls,
        seed=seed,
    )
    gen = TPCDSGenerator(SCHEMA, seed=seed)
    base = gen.batch(n0)
    cluster = VOLAPCluster(SCHEMA, cfg)
    cluster.bootstrap(base, shards_per_worker=int(rng.integers(1, 4)))

    # random mixed stream
    qg = QueryGenerator(SCHEMA, base, seed=seed + 1)
    n_ops = int(rng.integers(100, 300))
    extra = gen.batch(n_ops)
    ops = []
    n_inserts = 0
    for i in range(n_ops):
        if rng.random() < 0.6:
            ops.append(
                Operation(
                    "insert",
                    coords=extra.coords[n_inserts],
                    measure=float(extra.measures[n_inserts]),
                )
            )
            n_inserts += 1
        else:
            ops.append(Operation("query", query=qg.random_query()))
    sess = cluster.session(
        int(rng.integers(0, servers)), concurrency=int(rng.integers(1, 12))
    )
    sess.run_stream(ops)
    cluster.run_until_clients_done()

    # maybe scale out mid-life and let the balancer churn
    if rng.random() < 0.5:
        cluster.add_workers(1)
    cluster.run_for(float(rng.uniform(2.0, 8.0)))

    expected = n0 + n_inserts
    assert cluster.total_items() == expected, "items lost or duplicated"

    # quiesce past the sync period; every server must answer exactly
    cluster.run_for(cfg.sync_period + 0.5)
    for s_idx in range(servers):
        out = []
        q = cluster.session(s_idx, concurrency=1)
        q.on_complete = out.append
        q.run_stream([Operation("query", query=full_query(SCHEMA))])
        cluster.run_until_clients_done()
        assert out[0].result_count == expected, f"server {s_idx} inexact"

    # image bookkeeping: every server's image matches the live shard set
    live = {
        sid for w in cluster.workers.values() for sid in w.shards
    }
    for s in cluster.servers:
        image_ids = {info.shard_id for info in s.image.shards()}
        assert image_ids == live, "image out of sync with workers"
        s.image.validate()


@pytest.mark.parametrize("seed", [11, 23, 37, 59, 71, 83])
def test_random_cluster_configurations(seed):
    run_case(seed)

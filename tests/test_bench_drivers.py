"""Smoke tests for the experiment drivers at miniature scale.

The full-size runs (and their shape assertions) live in ``benchmarks/``;
here we verify the drivers execute end to end, return well-formed data,
and the CLI renders them.
"""

import pytest

from repro.bench import (
    run_cached_aggregates_ablation,
    run_fig10,
    run_fig4,
    run_fig5,
    run_fig8,
    run_fig9,
    run_id_expansion_ablation,
    run_insert_policy_ablation,
    run_split_ablation,
    run_sync_period_ablation,
)


def test_fig4_driver_tiny():
    res = run_fig4(sizes=(1000,), queries_per_bin=2, repeats=1)
    assert set(res.series) == {
        f"{t} {b}"
        for t in ("hilbert_pdc", "pdc")
        for b in ("low", "medium", "high")
    }
    for pts in res.series.values():
        assert len(pts) == 1
        assert pts[0][1] > 0


def test_fig5_driver_tiny():
    rows = run_fig5(dims=(4,), n_items=400, n_queries=4)
    assert len(rows) == 4  # four tree variants
    for r in rows:
        assert r.insert_latency > 0
        assert r.query_latency > 0
        assert r.query_nodes >= 1


def test_fig8_driver_tiny():
    cells = run_fig8(
        workers=2, items_per_worker=800, mixes=(0, 100), ops_per_cell=40
    )
    mixes = {c.insert_pct for c in cells}
    assert mixes == {0, 100}
    pure = [c for c in cells if c.insert_pct == 100]
    assert len(pure) == 1
    assert pure[0].insert_throughput > 0


def test_fig9_driver_tiny():
    points, shards = run_fig9(workers=2, items_per_worker=800, n_queries=20)
    assert shards >= 2
    assert len(points) >= 10
    for p in points:
        assert 0.0 <= p.coverage <= 1.0
        assert p.latency > 0
        assert 0 <= p.shards_searched <= shards


def test_fig10_driver_tiny():
    res = run_fig10(coverages=(1.0,), trials=20, pmf_elapsed=(0.25,))
    assert 1.0 in res.curves
    assert (1.0, 0.25) in res.pmfs
    assert res.curves[1.0].mean_missed[0] >= 0


def test_ablation_drivers_tiny():
    a = run_insert_policy_ablation(n_items=500, n_queries=4)
    assert set(a) == {"least_overlap", "least_enlargement"}
    b = run_id_expansion_ablation(n_items=500, n_queries=4)
    assert set(b) == {"expanded", "raw"}
    c = run_split_ablation(n_items=500, n_queries=4)
    assert set(c) == {"least_overlap", "middle"}
    d = run_cached_aggregates_ablation(n_items=800)
    assert d["cached"]["items_scanned"] == 0
    assert d["uncached"]["items_scanned"] == 800


def test_sync_ablation_driver_tiny():
    out = run_sync_period_ablation(sync_periods=(0.5, 2.0), trials=30)
    assert set(out) == {0.5, 2.0}
    assert all(v >= 0 for v in out.values())


def test_cli_help_and_dispatch(capsys):
    from repro.bench.__main__ import TARGETS, main

    assert set(TARGETS) >= {
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "headline",
        "ablations",
    }
    with pytest.raises(SystemExit):
        main(["not-a-target"])

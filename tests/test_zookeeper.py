"""Tests for the Zookeeper stand-in and the message transport."""

import pytest

from repro.cluster.simclock import SimClock
from repro.cluster.transport import Entity, LatencyModel, Message, Transport
from repro.cluster.zookeeper import Zookeeper


class Recorder(Entity):
    def __init__(self, clock):
        self.clock = clock
        self.received = []

    def receive(self, msg):
        self.received.append((self.clock.now, msg.kind, msg.payload))


class TestZookeeper:
    def test_set_get(self):
        zk = Zookeeper(SimClock())
        zk.set("/a/b", 42)
        assert zk.get("/a/b") == 42
        assert zk.get("/a/missing") is None

    def test_versions_increment(self):
        zk = Zookeeper(SimClock())
        assert zk.version("/x") == 0
        zk.set("/x", 1)
        zk.set("/x", 2)
        assert zk.version("/x") == 2

    def test_ls(self):
        zk = Zookeeper(SimClock())
        zk.set("/shards/2", "b")
        zk.set("/shards/1", "a")
        assert zk.ls("/shards") == ["1", "2"]
        assert zk.ls("/nothing") == []

    def test_delete(self):
        zk = Zookeeper(SimClock())
        zk.set("/a/b", 1)
        assert zk.delete("/a/b")
        assert not zk.exists("/a/b")
        assert not zk.delete("/a/b")

    def test_relative_path_rejected(self):
        zk = Zookeeper(SimClock())
        with pytest.raises(ValueError):
            zk.set("a/b", 1)

    def test_watch_fires_after_notify_latency(self):
        clock = SimClock()
        zk = Zookeeper(clock, notify_latency=0.1)
        events = []
        zk.watch("/shards/", lambda p, d: events.append((clock.now, p, d)))
        clock.at(1.0, lambda: zk.set("/shards/5", "info"))
        clock.run()
        assert events == [(1.1, "/shards/5", "info")]

    def test_watch_prefix_filtering(self):
        clock = SimClock()
        zk = Zookeeper(clock, notify_latency=0.0)
        events = []
        zk.watch("/boxes/", lambda p, d: events.append(p))
        zk.set("/shards/1", "x")
        zk.set("/boxes/1", "y")
        clock.run()
        assert events == ["/boxes/1"]

    def test_watch_fires_on_delete_with_none(self):
        clock = SimClock()
        zk = Zookeeper(clock, notify_latency=0.0)
        events = []
        zk.set("/shards/1", "x")
        zk.watch("/shards/", lambda p, d: events.append((p, d)))
        zk.delete("/shards/1")
        clock.run()
        assert events == [("/shards/1", None)]

    def test_async_set_applies_after_latency(self):
        clock = SimClock()
        zk = Zookeeper(clock, request_latency=0.05)
        versions = []
        zk.aset("/a", 7, done=versions.append)
        assert zk.get("/a") is None  # not yet applied
        clock.run()
        assert zk.get("/a") == 7
        assert versions == [1]

    def test_async_get(self):
        clock = SimClock()
        zk = Zookeeper(clock, request_latency=0.05)
        zk.set("/a", 3)
        out = []
        zk.aget("/a", out.append)
        clock.run()
        assert out == [3]


class TestEphemeralZnodes:
    def test_expires_after_ttl(self):
        clock = SimClock()
        zk = Zookeeper(clock)
        zk.set_ephemeral("/heartbeats/0", 0.0, ttl=0.5)
        assert zk.get("/heartbeats/0") == 0.0
        clock.run_until(0.4)
        assert zk.exists("/heartbeats/0")
        clock.run_until(0.6)
        assert not zk.exists("/heartbeats/0")
        assert zk.expirations == 1

    def test_refresh_keeps_alive(self):
        """Re-publishing before the TTL elapses cancels the old expiry
        (session keep-alive): only the final deadline counts."""
        clock = SimClock()
        zk = Zookeeper(clock)
        zk.set_ephemeral("/heartbeats/1", 0.0, ttl=0.5)
        for t in (0.3, 0.6, 0.9):
            clock.at(t, lambda t=t: zk.set_ephemeral("/heartbeats/1", t, ttl=0.5))
        clock.run_until(1.3)
        assert zk.exists("/heartbeats/1")  # last beat at 0.9 covers 1.4
        clock.run_until(1.5)
        assert not zk.exists("/heartbeats/1")
        assert zk.expirations == 1

    def test_plain_set_makes_persistent(self):
        clock = SimClock()
        zk = Zookeeper(clock)
        zk.set_ephemeral("/node", "x", ttl=0.2)
        zk.set("/node", "y")  # promote to a persistent znode
        clock.run_until(1.0)
        assert zk.get("/node") == "y"
        assert zk.expirations == 0

    def test_expiry_notifies_watchers(self):
        clock = SimClock()
        zk = Zookeeper(clock, notify_latency=0.0)
        events = []
        zk.watch("/heartbeats/", lambda p, d: events.append((p, d)))
        zk.set_ephemeral("/heartbeats/2", 1.0, ttl=0.1)
        clock.run_until(0.5)
        assert events == [("/heartbeats/2", 1.0), ("/heartbeats/2", None)]


class TestTransport:
    def test_delivery_with_latency(self):
        clock = SimClock()
        tr = Transport(clock, LatencyModel(base=0.01, jitter=0.0))
        dst = Recorder(clock)
        tr.send(dst, Message("ping", 1, size=0))
        clock.run()
        assert dst.received == [(0.01, "ping", 1)]

    def test_size_dependent_latency(self):
        clock = SimClock()
        tr = Transport(
            clock, LatencyModel(base=0.0, bandwidth=1000.0, jitter=0.0)
        )
        dst = Recorder(clock)
        tr.send(dst, Message("blob", None, size=500))
        clock.run()
        assert dst.received[0][0] == pytest.approx(0.5)

    def test_counters(self):
        clock = SimClock()
        tr = Transport(clock, LatencyModel(jitter=0.0))
        dst = Recorder(clock)
        tr.send(dst, Message("a", size=100))
        tr.send(dst, Message("b", size=200))
        assert tr.messages_sent == 2
        assert tr.bytes_sent == 300

    def test_jitter_bounded(self):
        clock = SimClock()
        lat = LatencyModel(base=0.001, jitter=0.002)
        import numpy as np

        rng = np.random.default_rng(0)
        for _ in range(100):
            d = lat.delay(0, rng)
            assert 0.001 <= d <= 0.003 + 1e-12

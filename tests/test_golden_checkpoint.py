"""Golden-file compatibility tests for shard checkpoint blobs.

Two committed blobs in ``tests/golden/`` pin the serialization formats
(see ``tests/golden/README.md``):

* the v1 (pre-columnar) layout must keep restoring -- checkpoints
  written by old deployments outlive the code that wrote them;
* the v2 uncompressed column frame must be *byte-stable*: encoding the
  same records reproduces the committed file bit for bit, catching any
  accidental format drift (struct layout, alignment, narrowing rules).

Regenerate only on a deliberate format change::

    PYTHONPATH=src python - <<'PY'
    import sys; sys.path.insert(0, "tests")
    from conftest import make_schema, random_batch
    from repro.olap.colframe import encode_batch
    batch = random_batch(make_schema(), 500, seed=20260808)
    open("tests/golden/checkpoint_v1.bin", "wb").write(batch.to_bytes())
    open("tests/golden/checkpoint_v2.volc", "wb").write(
        encode_batch(batch, compress=False))
    PY
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core import ArrayStore, HilbertPDCTree, PDCTree, TreeConfig
from repro.olap.colframe import decode_batch, encode_batch, is_column_frame

from .conftest import make_schema, random_batch, random_boxes

GOLDEN = Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def golden_batch():
    return random_batch(make_schema(), 500, seed=20260808)


def test_golden_files_exist():
    assert (GOLDEN / "checkpoint_v1.bin").is_file()
    assert (GOLDEN / "checkpoint_v2.volc").is_file()


@pytest.mark.parametrize("cls", [HilbertPDCTree, PDCTree, ArrayStore])
def test_v1_checkpoint_still_restores(cls, golden_batch):
    """A pickle-era checkpoint restores into today's columnar stores."""
    blob = (GOLDEN / "checkpoint_v1.bin").read_bytes()
    assert not is_column_frame(blob)
    schema = make_schema()
    store = cls.deserialize(schema, blob, TreeConfig(leaf_capacity=16))
    assert len(store) == 500
    oracle = ArrayStore.from_batch(schema, golden_batch)
    for box in random_boxes(schema, 10, seed=1):
        got, _ = store.query(box)
        want, _ = oracle.query(box)
        assert got.count == want.count
        assert got.total == pytest.approx(want.total)
        if want.count:
            assert got.vmin == want.vmin and got.vmax == want.vmax


def test_v2_frame_is_byte_stable(golden_batch):
    """Re-encoding the same records reproduces the committed frame."""
    want = (GOLDEN / "checkpoint_v2.volc").read_bytes()
    got = encode_batch(golden_batch, compress=False)
    assert got == want


def test_v2_frame_decodes_bit_identical(golden_batch):
    blob = (GOLDEN / "checkpoint_v2.volc").read_bytes()
    assert is_column_frame(blob)
    out = decode_batch(blob)
    assert np.array_equal(out.coords, golden_batch.coords)
    assert out.measures.tobytes() == golden_batch.measures.tobytes()


def test_v1_and_v2_blobs_hold_the_same_records():
    v1 = decode_batch((GOLDEN / "checkpoint_v1.bin").read_bytes())
    v2 = decode_batch((GOLDEN / "checkpoint_v2.volc").read_bytes())
    assert np.array_equal(v1.coords, v2.coords)
    assert v1.measures.tobytes() == v2.measures.tobytes()


def test_v2_golden_is_smaller_than_v1():
    """The committed artifacts themselves witness the size win."""
    v1 = (GOLDEN / "checkpoint_v1.bin").stat().st_size
    v2 = (GOLDEN / "checkpoint_v2.volc").stat().st_size
    assert v2 * 2 <= v1

"""Tests for roll-up / pivot / drill-down grouped aggregates."""

import pytest

from repro.core import ArrayStore, HilbertPDCTree
from repro.olap.query import query_from_levels
from repro.olap.rollup import drilldown_path, group_boxes, pivot, rollup
from repro.workloads import TPCDSGenerator, tpcds_schema

from .conftest import make_schema, random_batch


@pytest.fixture(scope="module")
def loaded():
    schema = tpcds_schema()
    batch = TPCDSGenerator(schema, seed=5).batch(8000)
    tree = HilbertPDCTree.from_batch(schema, batch)
    oracle = ArrayStore.from_batch(schema, batch)
    return schema, batch, tree, oracle


class TestGroupBoxes:
    def test_boxes_partition_dimension(self, loaded):
        schema, *_ = loaded
        boxes = list(group_boxes(schema, "date", 1))
        h = schema.dimension("date").hierarchy
        assert len(boxes) == h.levels[0].fanout
        d = schema.index_of("date")
        # consecutive group boxes tile the dimension without overlap
        ordered = sorted(boxes, key=lambda pb: int(pb[1].lo[d]))
        for (_, a), (_, b) in zip(ordered, ordered[1:]):
            assert a.hi[d] + 1 == b.lo[d]

    def test_within_clips(self, loaded):
        schema, *_ = loaded
        q = query_from_levels(schema, {"item": (1, (2,))})
        boxes = list(group_boxes(schema, "date", 1, within=q.box))
        d = schema.index_of("item")
        for _, b in boxes:
            assert b.lo[d] == q.box.lo[d]
            assert b.hi[d] == q.box.hi[d]

    def test_bad_depth(self, loaded):
        schema, *_ = loaded
        with pytest.raises(ValueError):
            list(group_boxes(schema, "date", 9))


class TestRollup:
    def test_rollup_totals_match_database(self, loaded):
        schema, batch, tree, _ = loaded
        by_year = rollup(tree, "date", 1)
        assert sum(a.count for a in by_year.values()) == len(batch)
        assert sum(a.total for a in by_year.values()) == pytest.approx(
            float(batch.measures.sum())
        )

    def test_rollup_matches_oracle_per_group(self, loaded):
        schema, batch, tree, oracle = loaded
        by_cat = rollup(tree, "item", 1)
        for path, agg in by_cat.items():
            want, _ = oracle.query(
                next(
                    b
                    for p, b in group_boxes(schema, "item", 1)
                    if p == path
                )
            )
            assert agg.count == want.count

    def test_rollup_depth2(self, loaded):
        schema, batch, tree, _ = loaded
        by_month = rollup(tree, "date", 2)
        assert sum(a.count for a in by_month.values()) == len(batch)
        assert all(len(p) == 2 for p in by_month)

    def test_rollup_within_region(self, loaded):
        schema, batch, tree, _ = loaded
        region = query_from_levels(schema, {"item": (1, (0,))})
        by_year = rollup(tree, "date", 1, within=region.box)
        total, _ = tree.query(region.box)
        assert sum(a.count for a in by_year.values()) == total.count

    def test_keep_empty(self, loaded):
        schema, _, tree, _ = loaded
        h = schema.dimension("date").hierarchy
        full = rollup(tree, "date", 1, keep_empty=True)
        assert len(full) == h.levels[0].fanout


class TestPivot:
    def test_pivot_totals(self, loaded):
        schema, batch, tree, _ = loaded
        table = pivot(tree, "date", 1, "item", 1)
        assert sum(a.count for a in table.values()) == len(batch)

    def test_pivot_consistent_with_rollups(self, loaded):
        schema, _, tree, _ = loaded
        table = pivot(tree, "date", 1, "item", 1)
        by_year = rollup(tree, "date", 1)
        for ypath, agg in by_year.items():
            row_total = sum(
                a.count for (r, _c), a in table.items() if r == ypath
            )
            assert row_total == agg.count

    def test_same_dim_rejected(self, loaded):
        _, _, tree, _ = loaded
        with pytest.raises(ValueError):
            pivot(tree, "date", 1, "date", 2)


class TestDrilldown:
    def test_children_sum_to_parent(self, loaded):
        schema, _, tree, _ = loaded
        by_year = rollup(tree, "date", 1)
        year = next(iter(by_year))
        months = drilldown_path(tree, "date", year)
        assert sum(a.count for a in months.values()) == by_year[year].count
        assert all(p[0] == year[0] for p in months)

    def test_below_leaf_rejected(self, loaded):
        schema, _, tree, _ = loaded
        with pytest.raises(ValueError):
            drilldown_path(tree, "promotion", (0,))

    def test_empty_path_is_top_rollup(self, loaded):
        schema, _, tree, _ = loaded
        top = drilldown_path(tree, "item", ())
        assert top == rollup(tree, "item", 1)


def test_rollup_on_array_store():
    """Roll-up is store-agnostic (works on the scan baseline too)."""
    schema = make_schema([[4, 4], [4, 4]])
    batch = random_batch(schema, 500, seed=3)
    store = ArrayStore.from_batch(schema, batch)
    tree = HilbertPDCTree.from_batch(schema, batch)
    a = rollup(store, "d0", 1)
    b = rollup(tree, "d0", 1)
    assert {p: x.count for p, x in a.items()} == {
        p: x.count for p, x in b.items()
    }

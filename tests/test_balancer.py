"""Balancer policies: pure ``plan()`` unit tests, no simulator.

Every policy plans against a hand-built :class:`WorkerView` snapshot --
no clock, transport, or Zookeeper -- which is the point of the strategy
split: decisions are testable as plain functions.
"""

import pytest

from repro.cluster import (
    BalancerPolicy,
    CostDrivenPolicy,
    MemoryPressurePolicy,
    MigrateAction,
    SplitAction,
    ThresholdPolicy,
    WorkerView,
)
from repro.cluster.cost import CostModel


def view(sizes, shards, busy=(), budget=4):
    return WorkerView(
        sizes=dict(sizes),
        shards={w: dict(s) for w, s in shards.items()},
        busy=frozenset(busy),
        budget=budget,
    )


def balanced_view(budget=4):
    return view(
        {0: 1000, 1: 1000},
        {0: {1: 500, 2: 500}, 1: {3: 500, 4: 500}},
        budget=budget,
    )


def skewed_view(busy=(), budget=4):
    """Worker 0 carries 3000 items, worker 1 is empty."""
    return view(
        {0: 3000, 1: 0},
        {0: {1: 1200, 2: 1000, 3: 800}, 1: {}},
        busy=busy,
        budget=budget,
    )


# -- threshold (the default) ------------------------------------------------


def test_balanced_cluster_plans_nothing():
    assert ThresholdPolicy(max_shard_items=8000).plan(balanced_view()) == []


def test_oversize_shard_is_split():
    policy = ThresholdPolicy(max_shard_items=400, imbalance_ratio=100.0)
    actions = policy.plan(balanced_view())
    assert actions == [
        SplitAction(0, 1),
        SplitAction(0, 2),
        SplitAction(1, 3),
        SplitAction(1, 4),
    ]


def test_imbalance_triggers_migration_of_largest_fitting_shard():
    policy = ThresholdPolicy(
        max_shard_items=8000, imbalance_ratio=1.4, min_migrate_items=200
    )
    actions = policy.plan(skewed_view())
    assert actions[0] == MigrateAction(0, 1, 1)  # the largest that fits
    # after the move projects 1800 vs 1200, nothing fits half the new
    # gap, so the plan falls back to preparing a smaller piece
    assert actions == [MigrateAction(0, 1, 1), SplitAction(0, 2)]


def test_busy_shards_are_never_planned():
    policy = ThresholdPolicy(max_shard_items=8000, min_migrate_items=200)
    actions = policy.plan(skewed_view(busy={1}))
    assert all(a.shard_id != 1 for a in actions)


def test_budget_bounds_the_plan():
    policy = ThresholdPolicy(max_shard_items=400, imbalance_ratio=100.0)
    assert len(policy.plan(balanced_view(budget=2))) == 2
    assert policy.plan(balanced_view(budget=0)) == []


def test_split_for_migration_fallback():
    """Nothing movable fits half the gap: split the largest splittable
    shard instead (paper III-E) and stop planning."""
    policy = ThresholdPolicy(
        max_shard_items=8000, imbalance_ratio=1.2, min_migrate_items=200
    )
    v = view({0: 2000, 1: 0}, {0: {1: 2000}, 1: {}})
    assert policy.plan(v) == [SplitAction(0, 1)]


def test_base_policy_is_threshold_bit_for_bit():
    """``BalancerPolicy(...)`` (the old constructor spelling) must plan
    exactly like ``ThresholdPolicy`` on every view."""
    views = [
        balanced_view(),
        skewed_view(),
        skewed_view(busy={2}),
        view({0: 900, 1: 610, 2: 100}, {
            0: {1: 450, 2: 450},
            1: {3: 610},
            2: {4: 100},
        }),
    ]
    kw = dict(max_shard_items=700, imbalance_ratio=1.3, min_migrate_items=100)
    for v in views:
        assert BalancerPolicy(**kw).plan(v) == ThresholdPolicy(**kw).plan(v)


def test_plan_is_pure_and_does_not_mutate_the_view():
    v = skewed_view()
    sizes_before = dict(v.sizes)
    shards_before = {w: dict(s) for w, s in v.shards.items()}
    for policy in (
        ThresholdPolicy(max_shard_items=500),
        MemoryPressurePolicy(worker_capacity_items=2000),
        CostDrivenPolicy(max_shard_items=500),
    ):
        first = policy.plan(v)
        assert v.sizes == sizes_before
        assert v.shards == shards_before
        assert policy.plan(v) == first  # deterministic


# -- memory pressure --------------------------------------------------------


def test_memory_pressure_idle_below_watermark():
    """Imbalanced but nobody near capacity: the paper's memory-pressure
    policy does nothing (unlike threshold)."""
    policy = MemoryPressurePolicy(
        worker_capacity_items=20_000, max_shard_items=8000
    )
    v = skewed_view()  # 3000 vs 0, far below 0.85 * 20000
    assert policy.plan(v) == []
    assert ThresholdPolicy(max_shard_items=8000).plan(v) != []


def test_memory_pressure_sheds_to_least_loaded():
    policy = MemoryPressurePolicy(
        worker_capacity_items=3000,
        high_watermark=0.85,
        low_watermark=0.6,
        max_shard_items=8000,
        min_migrate_items=100,
    )
    v = view(
        {0: 2800, 1: 500, 2: 900},
        {0: {1: 1000, 2: 1000, 3: 800}, 1: {4: 500}, 2: {5: 900}},
    )
    actions = policy.plan(v)
    assert actions, "worker 0 is above the high watermark"
    assert all(isinstance(a, MigrateAction) for a in actions)
    assert all(a.src == 0 and a.dst == 1 for a in actions[:1])
    # sheds until projected below the low watermark (1800): one
    # 1000-item move suffices (size ties resolve to the higher shard id)
    assert actions == [MigrateAction(0, 1, 2)]


def test_memory_pressure_respects_destination_headroom():
    """Never pushes the destination itself over the high watermark."""
    policy = MemoryPressurePolicy(
        worker_capacity_items=1000,
        high_watermark=0.9,
        low_watermark=0.2,
        max_shard_items=8000,
        min_migrate_items=50,
    )
    # dst has 800/1000: headroom is 100, so only the 90-item shard fits
    v = view(
        {0: 950, 1: 800},
        {0: {1: 500, 2: 360, 3: 90}, 1: {4: 800}},
    )
    actions = policy.plan(v)
    assert actions == [MigrateAction(0, 1, 3)]


def test_memory_pressure_still_splits_oversize_shards():
    policy = MemoryPressurePolicy(
        worker_capacity_items=100_000, max_shard_items=400
    )
    actions = policy.plan(balanced_view())
    assert SplitAction(0, 1) in actions and len(actions) == 4


# -- cost-driven ------------------------------------------------------------


def test_cost_driven_with_ample_budget_matches_threshold():
    kw = dict(max_shard_items=8000, imbalance_ratio=1.4, min_migrate_items=200)
    generous = CostDrivenPolicy(migration_budget=1e9, **kw)
    assert generous.plan(skewed_view()) == ThresholdPolicy(**kw).plan(
        skewed_view()
    )


def test_cost_driven_budget_limits_migrations_per_scan():
    cost = CostModel()
    kw = dict(max_shard_items=8000, imbalance_ratio=1.4, min_migrate_items=200)
    one_move = CostDrivenPolicy(
        # enough for one 1200-item migration, not two
        migration_budget=cost.migrate_time(1200) * 1.5,
        cost=cost,
        **kw,
    )
    actions = one_move.plan(skewed_view())
    migrations = [a for a in actions if isinstance(a, MigrateAction)]
    assert len(migrations) == 1
    # threshold has no such bound on the same view
    assert len(ThresholdPolicy(**kw).plan(skewed_view())) > 1


def test_cost_driven_zero_budget_plans_no_migrations():
    policy = CostDrivenPolicy(
        migration_budget=0.0, max_shard_items=8000, min_migrate_items=200
    )
    actions = policy.plan(skewed_view())
    assert all(not isinstance(a, MigrateAction) for a in actions)


def test_cost_driven_prefers_best_value_moves():
    """Larger shards amortize the per-migration base cost, so with ties
    on fit the policy moves the shard with the best items-per-second
    ratio first."""
    cost = CostModel()
    policy = CostDrivenPolicy(
        migration_budget=cost.migrate_time(1200) * 1.1,
        cost=cost,
        max_shard_items=8000,
        imbalance_ratio=1.4,
        min_migrate_items=200,
    )
    actions = policy.plan(skewed_view())
    assert actions[0] == MigrateAction(0, 1, 1)  # 1200 items: best ratio


def test_cost_model_migrate_time_composition():
    cost = CostModel()
    assert cost.migrate_time(500) == pytest.approx(
        cost.serialize_time(500) + cost.deserialize_time(500)
    )
    assert cost.migrate_time(2000) > cost.migrate_time(100)

"""Cross-cutting property tests tying modules together."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ArrayStore, HilbertPDCTree, TreeConfig
from repro.cluster.simclock import ServicePool, SimClock
from repro.olap.query import full_query
from repro.olap.rollup import rollup

from .conftest import make_schema, random_batch


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=9999),
    n=st.integers(min_value=1, max_value=200),
    depth=st.integers(min_value=1, max_value=2),
)
def test_rollup_partition_property(seed, n, depth):
    """Property: a roll-up partitions the database -- group counts sum to
    the total and every item belongs to exactly one group."""
    schema = make_schema([[4, 4], [8]])
    batch = random_batch(schema, n, seed=seed)
    tree = HilbertPDCTree.from_batch(schema, batch)
    groups = rollup(tree, "d0", depth)
    assert sum(a.count for a in groups.values()) == n
    h = schema.dimension("d0").hierarchy
    for coords in batch.coords:
        path = h.decode(int(coords[0]))[:depth]
        assert path in groups


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=9999),
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=99)),
        min_size=1,
        max_size=60,
    ),
)
def test_tree_oracle_equivalence_under_interleaving(seed, ops):
    """Property: arbitrary insert/query interleavings agree with the
    flat-scan oracle at every step (small capacities force splits)."""
    schema = make_schema([[4, 4], [4, 4]])
    pool = random_batch(schema, 100, seed=seed)
    cfg = TreeConfig(leaf_capacity=4, fanout=3)
    tree = HilbertPDCTree(schema, cfg)
    oracle = ArrayStore(schema)
    boxes = [full_query(schema).box]
    from .conftest import random_boxes

    boxes += random_boxes(schema, 3, seed=seed)
    for is_insert, k in ops:
        if is_insert:
            tree.insert(pool.coords[k], float(pool.measures[k]))
            oracle.insert(pool.coords[k], float(pool.measures[k]))
        else:
            box = boxes[k % len(boxes)]
            got, _ = tree.query(box)
            want, _ = oracle.query(box)
            assert got.count == want.count
            assert got.total == pytest.approx(want.total)
    tree.validate()


@settings(max_examples=20, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=40
    )
)
def test_simclock_order_property(delays):
    """Property: callbacks run in non-decreasing virtual time regardless
    of scheduling order."""
    clock = SimClock()
    seen = []
    for d in delays:
        clock.after(d, lambda: seen.append(clock.now))
    clock.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)


@settings(max_examples=20, deadline=None)
@given(
    services=st.lists(
        st.floats(min_value=0.01, max_value=2.0), min_size=1, max_size=30
    ),
    threads=st.integers(min_value=1, max_value=8),
)
def test_servicepool_conservation_property(services, threads):
    """Property: total busy time equals the sum of service times, and the
    makespan is bounded by the optimal bin-packing bounds."""
    clock = SimClock()
    pool = ServicePool(clock, threads)
    finishes = []

    def submit_all():
        for s in services:
            finishes.append(pool.submit(s, lambda: None))

    clock.at(0.0, submit_all)
    clock.run()
    total = sum(services)
    assert pool.busy_time == pytest.approx(total)
    makespan = max(finishes)
    assert makespan >= total / threads - 1e-9  # cannot beat perfect split
    assert makespan <= total + 1e-9  # cannot be worse than serial


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=9999))
def test_serialize_preserves_everything(seed):
    """Property: SerializeShard/DeserializeShard is lossless for every
    query, not just counts."""
    schema = make_schema([[8], [8]])
    batch = random_batch(schema, 64, seed=seed)
    tree = HilbertPDCTree.from_batch(schema, batch)
    clone = HilbertPDCTree.deserialize(schema, tree.serialize(), tree.config)
    from .conftest import random_boxes

    for box in random_boxes(schema, 5, seed=seed + 1):
        a, _ = tree.query(box)
        b, _ = clone.query(box)
        assert a.count == b.count
        assert a.total == pytest.approx(b.total)

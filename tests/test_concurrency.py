"""Concurrency tests: the PDC-tree locking protocol under real threads.

The paper's trees are multi-threaded with minimal locking (Section
III-C/D: "operations hold only one or two node locks at a given time").
The Python GIL removes parallel speedup but not interleaving, so these
tests genuinely exercise the hand-over-hand protocol: concurrent
inserters and queriers race on one tree, and afterwards all invariants
must hold and no item may be lost.
"""

import threading

import pytest

from repro.core import HilbertPDCTree, PDCTree, TreeConfig
from repro.olap.query import full_query

from .conftest import make_schema, random_batch

THREADED = [HilbertPDCTree, PDCTree]


@pytest.mark.parametrize("cls", THREADED)
def test_concurrent_inserts_lose_nothing(cls):
    schema = make_schema([[8, 8], [8, 8]])
    config = TreeConfig(leaf_capacity=8, fanout=4, thread_safe=True)
    tree = cls(schema, config)
    n_threads = 4
    per_thread = 250
    batches = [random_batch(schema, per_thread, seed=i) for i in range(n_threads)]
    errors = []

    def worker(b):
        try:
            for coords, m in b.iter_rows():
                tree.insert(coords, m)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(b,)) for b in batches]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(tree) == n_threads * per_thread
    tree.validate()
    agg, _ = tree.query(full_query(schema).box)
    assert agg.count == n_threads * per_thread
    expected = sum(float(b.measures.sum()) for b in batches)
    assert agg.total == pytest.approx(expected)


@pytest.mark.parametrize("cls", THREADED)
def test_concurrent_inserts_and_queries(cls):
    """Queries racing with inserts see monotonically growing prefixes."""
    schema = make_schema([[8, 8], [8, 8]])
    config = TreeConfig(leaf_capacity=8, fanout=4, thread_safe=True)
    tree = cls(schema, config)
    batch = random_batch(schema, 600, seed=3)
    box = full_query(schema).box
    stop = threading.Event()
    errors = []
    observed = []

    def inserter():
        try:
            for coords, m in batch.iter_rows():
                tree.insert(coords, m)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)
        finally:
            stop.set()

    def querier():
        try:
            while not stop.is_set():
                agg, _ = tree.query(box)
                observed.append(agg.count)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    def depth_walker():
        # depth() takes node locks hand-over-hand, so it must never
        # crash or see an inconsistent chain while splits race it
        try:
            while not stop.is_set():
                d = tree.depth()
                assert 1 <= d <= 64, d
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = (
        [threading.Thread(target=inserter)]
        + [threading.Thread(target=querier) for _ in range(2)]
        + [threading.Thread(target=depth_walker)]
    )
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(tree) == 600
    tree.validate()
    # Every observation is within the range of what was inserted so far.
    assert all(0 <= c <= 600 for c in observed)
    final, _ = tree.query(box)
    assert final.count == 600


@pytest.mark.parametrize("cls", THREADED)
def test_query_batch_races_inserts(cls):
    """The batched engine (packed-key caches and all) races inserts.

    Measures are 1.0, so any per-box aggregate with ``total != count``
    is a torn read; stale packed snapshots would also show up as lost
    items in the final full-box batch."""
    schema = make_schema([[8, 8], [8, 8]])
    config = TreeConfig(leaf_capacity=8, fanout=4, thread_safe=True)
    tree = cls(schema, config)
    batch = random_batch(schema, 500, seed=91)
    batch.measures[:] = 1.0
    box = full_query(schema).box
    boxes = [box] * 4
    stop = threading.Event()
    errors = []
    torn = []

    def inserter():
        try:
            for coords, m in batch.iter_rows():
                tree.insert(coords, m)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)
        finally:
            stop.set()

    def batch_querier():
        try:
            while not stop.is_set():
                for agg, _ in tree.query_batch(boxes):
                    if agg.total != agg.count:
                        torn.append((agg.count, agg.total))
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=inserter)] + [
        threading.Thread(target=batch_querier) for _ in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert not torn
    assert len(tree) == 500
    tree.validate()
    for agg, _ in tree.query_batch([box]):
        assert agg.count == 500 and agg.total == 500.0


@pytest.mark.parametrize("cls", THREADED)
def test_query_batch_and_depth_walker_race_repacks(cls):
    """Readers race columnar leaf grow/repack and must never observe a
    torn aggregate or an out-of-bounds column view.

    Batched inserts use chunks larger than ``leaf_capacity``, so every
    chunk overflows some leaf and takes the repack path (new column
    buffers spliced under path locks).  Measures are 1.0: any observed
    aggregate with ``total != count`` is a torn read, and a stale or
    over-long column view would crash the querier or produce
    ``count > inserted``."""
    schema = make_schema([[8, 8], [8, 8]])
    config = TreeConfig(leaf_capacity=4, fanout=3, thread_safe=True)
    tree = cls(schema, config)
    total_rows = 800
    chunk = 13  # > leaf_capacity: every chunk forces grow/repack
    batch = random_batch(schema, total_rows, seed=101)
    batch.measures[:] = 1.0
    box = full_query(schema).box
    boxes = [box] * 3
    stop = threading.Event()
    errors = []
    torn = []

    def inserter():
        try:
            for lo in range(0, total_rows, chunk):
                tree.insert_batch(batch.slice(lo, min(lo + chunk, total_rows)))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            stop.set()

    def batch_querier():
        try:
            while not stop.is_set():
                for agg, _ in tree.query_batch(boxes):
                    if agg.total != agg.count:
                        torn.append((agg.count, agg.total))
                    if agg.count > total_rows:
                        torn.append(("overcount", agg.count))
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    def depth_walker():
        try:
            while not stop.is_set():
                d = tree.depth()
                assert 1 <= d <= 64, d
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = (
        [threading.Thread(target=inserter)]
        + [threading.Thread(target=batch_querier) for _ in range(2)]
        + [threading.Thread(target=depth_walker)]
    )
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert not torn
    assert len(tree) == total_rows
    tree.validate()
    for agg, _ in tree.query_batch([box]):
        assert agg.count == total_rows and agg.total == float(total_rows)


def test_thread_safe_flag_creates_locks():
    schema = make_schema([[4, 4]])
    safe = HilbertPDCTree(schema, TreeConfig(thread_safe=True))
    unsafe = HilbertPDCTree(schema, TreeConfig(thread_safe=False))
    assert safe.root.lock is not None
    assert unsafe.root.lock is None


def test_locking_overhead_is_optional(schema, batch):
    """Both modes produce structurally identical results for serial input."""
    cfg_on = TreeConfig(leaf_capacity=16, fanout=8, thread_safe=True)
    cfg_off = TreeConfig(leaf_capacity=16, fanout=8, thread_safe=False)
    a = HilbertPDCTree(schema, cfg_on)
    b = HilbertPDCTree(schema, cfg_off)
    for coords, m in batch.iter_rows():
        a.insert(coords, m)
        b.insert(coords, m)
    a.validate()
    b.validate()
    assert a.depth() == b.depth()
    assert a.node_count() == b.node_count()


def test_concurrent_batch_inserts_and_queries():
    """Batched inserts race queries: no torn aggregates, nothing lost.

    Every measure is 1.0, so any aggregate a querier observes must have
    ``total == count`` -- a torn read (count updated on one path node
    but not the sum, or a half-committed run) would break the equality.
    """
    schema = make_schema([[8, 8], [8, 8]])
    config = TreeConfig(leaf_capacity=8, fanout=4, thread_safe=True)
    tree = HilbertPDCTree(schema, config)
    n_threads = 3
    per_thread = 400
    chunk = 37
    batches = [random_batch(schema, per_thread, seed=50 + i) for i in range(n_threads)]
    for b in batches:
        b.measures[:] = 1.0
    box = full_query(schema).box
    stop = threading.Event()
    errors = []
    torn = []

    def inserter(b):
        try:
            for lo in range(0, len(b), chunk):
                tree.insert_batch(b.slice(lo, min(lo + chunk, len(b))))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def querier():
        try:
            while not stop.is_set():
                agg, _ = tree.query(box)
                if agg.total != agg.count:
                    torn.append((agg.count, agg.total))
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    inserters = [
        threading.Thread(target=inserter, args=(b,)) for b in batches
    ]
    queriers = [threading.Thread(target=querier) for _ in range(2)]
    for t in queriers + inserters:
        t.start()
    for t in inserters:
        t.join()
    stop.set()
    for t in queriers:
        t.join()
    assert not errors
    assert not torn
    total = n_threads * per_thread
    assert len(tree) == total
    tree.validate()
    agg, _ = tree.query(box)
    assert agg.count == total and agg.total == float(total)


def test_mixed_single_and_batch_inserts():
    """Per-record and batched writers interleave on one tree."""
    schema = make_schema([[8, 8], [8, 8]])
    config = TreeConfig(leaf_capacity=8, fanout=4, thread_safe=True)
    tree = HilbertPDCTree(schema, config)
    single = random_batch(schema, 300, seed=71)
    batched = random_batch(schema, 300, seed=72)
    errors = []

    def one_by_one():
        try:
            for coords, m in single.iter_rows():
                tree.insert(coords, m)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    def in_chunks():
        try:
            for lo in range(0, len(batched), 25):
                tree.insert_batch(batched.slice(lo, lo + 25))
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [
        threading.Thread(target=one_by_one),
        threading.Thread(target=in_chunks),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(tree) == 600
    tree.validate()
    agg, _ = tree.query(full_query(schema).box)
    assert agg.count == 600
    expected = float(single.measures.sum()) + float(batched.measures.sum())
    assert agg.total == pytest.approx(expected)

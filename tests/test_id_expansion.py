"""Tests for hierarchical-ID expansion (paper Fig. 3) and key mapping."""

import numpy as np

from repro.hilbert.id_expansion import HilbertKeyMapper, IdExpansion
from repro.olap.hierarchy import Dimension, Hierarchy, Level
from repro.olap.schema import Schema


def two_dim_schema():
    """Mirror of the paper's Fig. 3: unequal per-level widths."""
    d1 = Dimension(
        "d1",
        Hierarchy(
            "d1",
            [Level("a", 16), Level("b", 16), Level("c", 16), Level("d", 16)],
        ),
    )
    d2 = Dimension(
        "d2",
        Hierarchy("d2", [Level("a", 16), Level("b", 2), Level("c", 2), Level("d", 4)]),
    )
    return Schema([d1, d2])


class TestIdExpansion:
    def test_level_maxbits(self):
        exp = IdExpansion(two_dim_schema())
        # level widths: d1 = 4,4,4,4 ; d2 = 4,1,1,2 -> max = 4,4,4,4
        assert exp.level_maxbits == (4, 4, 4, 4)

    def test_expanded_widths(self):
        exp = IdExpansion(two_dim_schema())
        assert exp.expanded_widths == (16, 16)

    def test_d1_expansion_is_identity(self):
        """Dimension whose levels already match the max is unchanged."""
        schema = two_dim_schema()
        exp = IdExpansion(schema)
        v = schema.dimensions[0].hierarchy.encode((15, 15, 15, 15))
        assert exp.expand_value(0, v) == v

    def test_d2_levels_shifted_left(self):
        """Narrower levels shift left to span the same numeric range (Fig. 3)."""
        schema = two_dim_schema()
        exp = IdExpansion(schema)
        h2 = schema.dimensions[1].hierarchy
        # path (0, 1, 0, 0): the level-2 bit must land at the top of its
        # 4-bit expanded slot, i.e. shifted left by 3 within the slot.
        v = h2.encode((0, 1, 0, 0))
        expanded = exp.expand_value(1, v)
        # slot layout (high to low): L1[4] L2[4] L3[4] L4[4]
        assert expanded == 1 << (4 + 4 + 3)

    def test_leaf_level_shift(self):
        schema = two_dim_schema()
        exp = IdExpansion(schema)
        h2 = schema.dimensions[1].hierarchy
        v = h2.encode((0, 0, 0, 3))  # L4 value 3 (2 bits) -> shifted left 2
        assert exp.expand_value(1, v) == 3 << 2

    def test_expansion_preserves_order_within_dimension(self):
        schema = two_dim_schema()
        exp = IdExpansion(schema)
        h2 = schema.dimensions[1].hierarchy
        values = [h2.encode(p) for p in [(0, 0, 0, 0), (0, 0, 0, 3), (0, 1, 1, 2), (15, 1, 1, 3)]]
        expanded = [exp.expand_value(1, v) for v in values]
        assert expanded == sorted(expanded)
        assert len(set(expanded)) == len(expanded)

    def test_expansion_is_injective_exhaustive(self):
        """No two distinct ids collide after expansion (small dimension)."""
        d = Dimension("x", Hierarchy("x", [Level("a", 3), Level("b", 5)]))
        other = Dimension("y", Hierarchy("y", [Level("a", 8), Level("b", 8)]))
        schema = Schema([d, other])
        exp = IdExpansion(schema)
        seen = set()
        for v in range(d.hierarchy.leaf_cardinality):
            e = exp.expand_value(0, v)
            assert e not in seen
            seen.add(e)
            assert 0 <= e < (1 << exp.expanded_widths[0])

    def test_uneven_level_counts(self):
        """A dimension with fewer levels contributes fewer level slots."""
        deep = Dimension(
            "deep", Hierarchy("deep", [Level("a", 4), Level("b", 4), Level("c", 4)])
        )
        shallow = Dimension("shallow", Hierarchy("shallow", [Level("a", 16)]))
        schema = Schema([deep, shallow])
        exp = IdExpansion(schema)
        # level max widths are (4, 2, 2): deep's L1 widens to 4 bits, and
        # shallow (one level) only occupies the first slot.
        assert exp.level_maxbits == (4, 2, 2)
        assert exp.expanded_widths == (8, 4)

    def test_expand_point(self):
        schema = two_dim_schema()
        exp = IdExpansion(schema)
        pt = schema.encode_point([(1, 2, 3, 4), (5, 1, 0, 2)])
        ex = exp.expand_point(pt)
        assert ex == (
            exp.expand_value(0, int(pt[0])),
            exp.expand_value(1, int(pt[1])),
        )


class TestHilbertKeyMapper:
    def test_total_bits(self):
        mapper = HilbertKeyMapper(two_dim_schema())
        assert mapper.total_bits == 32

    def test_keys_injective_on_samples(self):
        schema = two_dim_schema()
        mapper = HilbertKeyMapper(schema)
        rng = np.random.default_rng(7)
        limits = schema.leaf_limits
        coords = rng.integers(0, limits + 1, size=(300, 2), dtype=np.int64)
        keys = mapper.keys(coords)
        uniq = {tuple(c) for c in coords.tolist()}
        assert len(set(keys)) == len(uniq)

    def test_keys_in_range(self):
        schema = two_dim_schema()
        mapper = HilbertKeyMapper(schema)
        rng = np.random.default_rng(3)
        coords = rng.integers(0, schema.leaf_limits + 1, size=(100, 2), dtype=np.int64)
        for k in mapper.keys(coords):
            assert 0 <= k < (1 << 32)

    def test_locality_beats_random_order(self):
        """Hilbert ordering groups nearby points better than random order.

        Sort points by Hilbert key and measure the mean L1 distance of
        neighbours in that order; it must be much smaller than for a
        random order.
        """
        schema = two_dim_schema()
        mapper = HilbertKeyMapper(schema)
        rng = np.random.default_rng(11)
        coords = rng.integers(
            0, schema.leaf_limits + 1, size=(400, 2), dtype=np.int64
        )
        keys = mapper.keys(coords)
        order = np.argsort(np.array([float(k) for k in keys]))
        sorted_pts = coords[order].astype(np.float64)
        hops_h = np.abs(np.diff(sorted_pts, axis=0)).sum() / len(coords)
        hops_r = np.abs(np.diff(coords.astype(np.float64), axis=0)).sum() / len(coords)
        assert hops_h < hops_r * 0.5

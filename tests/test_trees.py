"""Correctness tests for all four tree variants, against the array oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ArrayStore,
    HilbertPDCTree,
    HilbertRTree,
    PDCTree,
    RTree,
    TreeConfig,
)
from repro.olap.keys import Box
from repro.olap.query import full_query
from repro.olap.records import RecordBatch

from .conftest import clustered_batch, make_schema, random_batch, random_boxes

ALL_TREES = [HilbertPDCTree, PDCTree, RTree, HilbertRTree]


def build(cls, schema, batch, config=None):
    tree = cls(schema, config)
    for coords, m in batch.iter_rows():
        tree.insert(coords, m)
    return tree


@pytest.mark.parametrize("cls", ALL_TREES)
class TestTreeCorrectness:
    def test_count_after_inserts(self, cls, schema, batch):
        tree = build(cls, schema, batch)
        assert len(tree) == len(batch)

    def test_invariants_after_inserts(self, cls, schema, batch):
        tree = build(cls, schema, batch)
        tree.validate()

    def test_queries_match_oracle(self, cls, schema, batch):
        tree = build(cls, schema, batch)
        oracle = ArrayStore.from_batch(schema, batch)
        for box in random_boxes(schema, 40, seed=7):
            got, _ = tree.query(box)
            want, _ = oracle.query(box)
            assert got.count == want.count
            assert got.total == pytest.approx(want.total)
            if want.count:
                assert got.vmin == want.vmin and got.vmax == want.vmax

    def test_full_query_aggregates_everything(self, cls, schema, batch):
        tree = build(cls, schema, batch)
        agg, _ = tree.query(full_query(schema).box)
        assert agg.count == len(batch)
        assert agg.total == pytest.approx(float(batch.measures.sum()))

    def test_point_query(self, cls, schema, batch):
        tree = build(cls, schema, batch)
        coords = batch.coords[17]
        agg, _ = tree.query(Box(coords, coords))
        dup = (batch.coords == coords).all(axis=1)
        assert agg.count == int(dup.sum())

    def test_empty_tree_query(self, cls, schema):
        tree = cls(schema)
        agg, stats = tree.query(full_query(schema).box)
        assert agg.is_empty
        assert stats.items_scanned == 0

    def test_query_disjoint_box_is_empty(self, cls, schema, batch):
        tree = build(cls, schema, batch)
        # query outside the mbr of the data
        mbr = tree.mbr()
        lo = mbr.hi + 1
        hi = schema.leaf_limits
        if (lo > hi).any():
            pytest.skip("data reaches the corner of the id space")
        agg, _ = tree.query(Box(lo, hi))
        assert agg.count == 0

    def test_clustered_data(self, cls, schema):
        batch = clustered_batch(schema, 1200, clusters=4, seed=9)
        tree = build(cls, schema, batch)
        tree.validate()
        oracle = ArrayStore.from_batch(schema, batch)
        for box in random_boxes(schema, 25, seed=3):
            got, _ = tree.query(box)
            want, _ = oracle.query(box)
            assert got.count == want.count

    def test_duplicate_points(self, cls, schema):
        coords = np.tile(schema.leaf_limits // 2, (300, 1))
        batch = RecordBatch(coords, np.arange(300.0))
        tree = build(cls, schema, batch)
        tree.validate()
        agg, _ = tree.query(Box(coords[0], coords[0]))
        assert agg.count == 300
        assert agg.vmax == 299.0

    def test_mbr_covers_all_items(self, cls, schema, batch):
        tree = build(cls, schema, batch)
        mbr = tree.mbr()
        assert mbr.contains_points(batch.coords).all()

    def test_from_batch_equivalent_to_inserts(self, cls, schema, batch):
        bulk = cls.from_batch(schema, batch)
        bulk.validate()
        assert len(bulk) == len(batch)
        oracle = ArrayStore.from_batch(schema, batch)
        for box in random_boxes(schema, 20, seed=5):
            got, _ = bulk.query(box)
            want, _ = oracle.query(box)
            assert got.count == want.count

    def test_items_roundtrip(self, cls, schema, batch):
        tree = build(cls, schema, batch)
        got = tree.items()
        assert len(got) == len(batch)
        # same multiset of rows (order-insensitive comparison via sorting)
        a = np.lexsort(got.coords.T)
        b = np.lexsort(batch.coords.T)
        assert np.array_equal(got.coords[a], batch.coords[b])

    def test_mixed_insert_query(self, cls, schema):
        """Queries interleaved with inserts always see current data."""
        batch = random_batch(schema, 600, seed=13)
        tree = cls(schema)
        everything = full_query(schema).box
        for i, (coords, m) in enumerate(batch.iter_rows()):
            tree.insert(coords, m)
            if i % 97 == 0:
                agg, _ = tree.query(everything)
                assert agg.count == i + 1
        tree.validate()


@pytest.mark.parametrize("cls", ALL_TREES)
@pytest.mark.parametrize("key_kind", ["mds", "mbr"])
def test_both_key_kinds(cls, key_kind):
    """Paper Section III-D: every variant exists with MDS and MBR keys."""
    schema = make_schema([[6, 6], [6, 6]])
    batch = random_batch(schema, 500, seed=21)
    config = TreeConfig(key_kind=key_kind, leaf_capacity=16, fanout=6)
    tree = build(cls, schema, batch, config)
    tree.validate()
    oracle = ArrayStore.from_batch(schema, batch)
    for box in random_boxes(schema, 15, seed=2):
        got, _ = tree.query(box)
        want, _ = oracle.query(box)
        assert got.count == want.count


@pytest.mark.parametrize("cls", ALL_TREES)
def test_small_capacities_force_deep_trees(cls):
    schema = make_schema([[4, 4], [4, 4]])
    batch = random_batch(schema, 400, seed=3)
    config = TreeConfig(leaf_capacity=4, fanout=3)
    tree = build(cls, schema, batch, config)
    tree.validate()
    assert tree.depth() >= 4
    agg, _ = tree.query(full_query(schema).box)
    assert agg.count == 400


@pytest.mark.parametrize("cls", ALL_TREES)
def test_cached_aggregates_are_used(cls, schema):
    """Full-coverage queries terminate near the root via cached aggregates."""
    batch = random_batch(schema, 1000, seed=4)
    tree = build(cls, schema, batch)
    _, stats = tree.query(full_query(schema).box)
    assert stats.agg_hits >= 1
    assert stats.nodes_visited <= 3  # root-level cache hit


def test_cache_aggregates_ablation(schema):
    """Disabling the cache forces full descents but keeps answers right."""
    batch = random_batch(schema, 800, seed=6)
    on = build(HilbertPDCTree, schema, batch)
    off = build(
        HilbertPDCTree,
        schema,
        batch,
        TreeConfig(key_kind="mds", cache_aggregates=False),
    )
    box = full_query(schema).box
    agg_on, st_on = on.query(box)
    agg_off, st_off = off.query(box)
    assert agg_on.count == agg_off.count == 800
    assert st_off.items_scanned == 800
    assert st_on.items_scanned == 0
    assert st_off.nodes_visited > st_on.nodes_visited


@pytest.mark.parametrize("cls", [HilbertPDCTree, HilbertRTree])
def test_hilbert_leaf_order_is_curve_order(cls, schema):
    """Leaves read left-to-right yield non-decreasing Hilbert key ranges."""
    batch = random_batch(schema, 900, seed=10)
    tree = build(cls, schema, batch)
    maxes = []
    for leaf in tree._iter_leaves(tree.root):
        assert leaf.lhv == max(leaf.leaf_hkeys())
        maxes.append(leaf.lhv)
    assert maxes == sorted(maxes)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=1, max_value=300),
    cap=st.integers(min_value=2, max_value=16),
    fanout=st.integers(min_value=2, max_value=8),
)
def test_hilbert_pdc_random_shapes(seed, n, cap, fanout):
    """Property: any data size/capacity combination keeps invariants and
    answers the full query exactly."""
    schema = make_schema([[4, 8], [16]])
    batch = random_batch(schema, n, seed=seed)
    config = TreeConfig(leaf_capacity=cap, fanout=fanout)
    tree = HilbertPDCTree.from_batch(schema, batch, config)
    tree.validate()
    agg, _ = tree.query(full_query(schema).box)
    assert agg.count == n


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_pdc_point_inserts_random(seed):
    schema = make_schema([[4, 8], [16]])
    batch = random_batch(schema, 120, seed=seed)
    config = TreeConfig(leaf_capacity=8, fanout=4)
    tree = PDCTree(schema, config)
    for coords, m in batch.iter_rows():
        tree.insert(coords, m)
    tree.validate()
    oracle = ArrayStore.from_batch(schema, batch)
    for box in random_boxes(schema, 8, seed=seed):
        got, _ = tree.query(box)
        want, _ = oracle.query(box)
        assert got.count == want.count

"""Unit and property tests for Box (MBR) keys."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.olap.keys import Box, point_box, union_all


def box(lo, hi):
    return Box(np.array(lo, dtype=np.int64), np.array(hi, dtype=np.int64))


class TestConstruction:
    def test_empty_is_empty(self):
        assert Box.empty(3).is_empty()
        assert Box.empty(3).volume() == 0.0

    def test_from_point(self):
        b = Box.from_point(np.array([1, 2, 3]))
        assert not b.is_empty()
        assert b.volume() == 1.0

    def test_from_points(self):
        pts = np.array([[0, 5], [3, 1], [2, 2]])
        b = Box.from_points(pts)
        assert b == box([0, 1], [3, 5])

    def test_from_points_rejects_empty(self):
        with pytest.raises(ValueError):
            Box.from_points(np.empty((0, 2), dtype=np.int64))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Box(np.array([1, 2]), np.array([3]))


class TestPredicates:
    def test_contains_point(self):
        b = box([0, 0], [10, 10])
        assert b.contains_point(np.array([5, 5]))
        assert b.contains_point(np.array([0, 10]))
        assert not b.contains_point(np.array([11, 5]))

    def test_contains_points_vectorized(self):
        b = box([0, 0], [4, 4])
        pts = np.array([[0, 0], [4, 4], [5, 0], [2, 2]])
        assert b.contains_points(pts).tolist() == [True, True, False, True]

    def test_contains_box(self):
        outer = box([0, 0], [10, 10])
        inner = box([2, 3], [5, 6])
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)
        assert outer.contains_box(Box.empty(2))

    def test_intersects(self):
        a = box([0, 0], [5, 5])
        b2 = box([5, 5], [9, 9])  # share corner point
        c = box([6, 6], [9, 9])
        assert a.intersects(b2)
        assert not a.intersects(c)
        assert not a.intersects(Box.empty(2))


class TestMeasures:
    def test_volume_counts_lattice_points(self):
        assert box([0, 0], [1, 2]).volume() == 6.0

    def test_log_volume(self):
        assert box([0], [7]).log_volume() == pytest.approx(3.0)
        assert Box.empty(2).log_volume() == float("-inf")

    def test_overlap_volume(self):
        a = box([0, 0], [4, 4])
        b2 = box([3, 3], [6, 6])
        assert a.overlap_volume(b2) == 4.0  # 2x2 lattice points
        assert a.overlap_volume(box([9, 9], [10, 10])) == 0.0

    def test_log_overlap_volume_disjoint(self):
        a = box([0, 0], [4, 4])
        assert a.log_overlap_volume(box([9, 9], [10, 10])) == float("-inf")

    def test_margin(self):
        assert box([0, 0], [1, 2]).margin() == 5.0

    def test_enlargement(self):
        a = box([0, 0], [1, 1])
        b2 = box([3, 0], [3, 1])
        assert a.enlargement(b2) == 8.0 - 4.0


class TestCombination:
    def test_union(self):
        a = box([0, 0], [1, 1])
        b2 = box([3, 3], [4, 4])
        assert a.union(b2) == box([0, 0], [4, 4])

    def test_union_with_empty(self):
        a = box([0, 0], [1, 1])
        assert a.union(Box.empty(2)) == a
        assert Box.empty(2).union(a) == a

    def test_intersection(self):
        a = box([0, 0], [5, 5])
        b2 = box([3, 3], [8, 8])
        assert a.intersection(b2) == box([3, 3], [5, 5])
        assert a.intersection(box([9, 9], [10, 10])).is_empty()

    def test_expand_inplace_reports_change(self):
        a = box([0, 0], [5, 5])
        assert not a.expand_inplace(box([1, 1], [2, 2]))
        assert a.expand_inplace(box([0, 0], [6, 5]))
        assert a == box([0, 0], [6, 5])

    def test_expand_point_inplace(self):
        a = Box.empty(2)
        assert a.expand_point_inplace(np.array([3, 4]))
        assert a == box([3, 4], [3, 4])
        assert not a.expand_point_inplace(np.array([3, 4]))

    def test_union_all(self):
        boxes = [box([0, 0], [1, 1]), box([5, 5], [6, 6])]
        assert union_all(boxes) == box([0, 0], [6, 6])
        assert union_all([], num_dims=2).is_empty()
        with pytest.raises(ValueError):
            union_all([])


class TestMisc:
    def test_roundtrip_tuple(self):
        a = box([1, 2], [3, 4])
        assert Box.from_tuple(a.to_tuple()) == a

    def test_point_box(self):
        assert point_box([1, 2]).volume() == 1.0

    def test_copy_is_independent(self):
        a = box([0, 0], [1, 1])
        b2 = a.copy()
        b2.expand_point_inplace(np.array([9, 9]))
        assert a == box([0, 0], [1, 1])

    def test_empty_boxes_equal(self):
        assert Box.empty(2) == Box.empty(2)


coords = st.lists(
    st.integers(min_value=0, max_value=1000), min_size=3, max_size=3
)


@given(coords, coords, coords)
def test_union_contains_both(a, b, c):
    """Property: the union of boxes contains both operands."""
    b1 = Box.from_points(np.array([a, b]))
    b2 = Box.from_points(np.array([b, c]))
    u = b1.union(b2)
    assert u.contains_box(b1)
    assert u.contains_box(b2)


@given(coords, coords, coords, coords)
def test_overlap_symmetric_and_bounded(a, b, c, d):
    """Property: overlap is symmetric and no larger than either volume."""
    b1 = Box.from_points(np.array([a, b]))
    b2 = Box.from_points(np.array([c, d]))
    ov = b1.overlap_volume(b2)
    assert ov == b2.overlap_volume(b1)
    assert ov <= min(b1.volume(), b2.volume()) + 1e-9


@given(coords, coords, coords)
def test_intersection_consistent_with_contains(a, b, p):
    """Property: a point is in the intersection iff it is in both boxes."""
    b1 = Box.from_points(np.array([a, b]))
    b2 = Box.from_points(np.array([b, a]))
    inter = b1.intersection(b2)
    pt = np.array(p)
    assert inter.contains_point(pt) == (
        b1.contains_point(pt) and b2.contains_point(pt)
    )

"""Recursion-limit regression suite.

Every tree walk (``query``, ``query_batch``, ``items``, ``node_count``,
``depth``, ``validate``) and the worker's split-chain resolution are
iterative; a pathologically deep structure -- far beyond Python's
default recursion limit -- must be handled without ``RecursionError``.

Real insert workloads build such chains only after very long split
histories, so the trees here are synthesised: a single-child directory
chain thousands of nodes tall wrapped around a genuine leaf, with
every invariant ``validate()`` checks (keys, aggregates, LHVs) kept
intact.  A second test drives a *real* degenerate workload (sorted
input, ``leaf_capacity=2``) through the same walks.
"""

import sys

import numpy as np
import pytest

from repro.core import (
    ArrayStore,
    HilbertPDCTree,
    HilbertRTree,
    PDCTree,
    RTree,
    TreeConfig,
)
from repro.core.aggregates import Aggregate
from repro.core.base import Hyperplane

from .conftest import make_schema, random_batch, random_boxes

ALL_TREES = [HilbertPDCTree, PDCTree, RTree, HilbertRTree]

#: comfortably past the default recursion limit
CHAIN_DEPTH = max(3000, sys.getrecursionlimit() * 3)


def int_batch(schema, n, seed=0):
    b = random_batch(schema, n, seed=seed)
    b.measures[:] = np.floor(b.measures * 100.0)
    return b


def make_chain_tree(cls, schema, depth):
    """A real tree whose root sits atop ``depth`` single-child dirs.

    The chain keeps every invariant ``validate()`` asserts: each
    directory's key/aggregate/LHV mirror its only child's, so pruning,
    cached-aggregate short-circuits, and the validator all behave as on
    an organically grown tree -- just absurdly deep.
    """
    tree = cls(schema, TreeConfig(leaf_capacity=8, fanout=4))
    data = int_batch(schema, 4, seed=7)
    tree.insert_batch(data)
    assert tree.root.is_leaf
    node = tree.root
    for _ in range(depth):
        parent = tree._new_dir()
        parent.children = [node]
        parent.key = tree.policy.copy(node.key)
        parent.agg = Aggregate(*node.agg.to_tuple())
        parent.lhv = node.lhv
        parent.size = node.size
        node = parent
    tree.root = node
    return tree, data


@pytest.mark.parametrize("cls", ALL_TREES)
def test_deep_chain_walks_do_not_recurse(cls):
    schema = make_schema()
    tree, data = make_chain_tree(cls, schema, CHAIN_DEPTH)

    from repro.olap.keys import Box

    lo = np.zeros(schema.num_dims, dtype=np.int64)
    hi = np.asarray(schema.leaf_limits, dtype=np.int64)
    full = Box(lo, hi)

    agg, stats = tree.query(full)
    assert agg.count == len(data)
    assert stats.nodes_visited >= 1

    # batched engine walks the same chain (cache_aggregates
    # short-circuits at the root, so disable the fast path by querying
    # a box that intersects but does not contain the data)
    batched = tree.query_batch([full] + random_boxes(schema, 3, seed=2))
    assert batched[0][0].to_tuple() == agg.to_tuple()

    assert len(tree.items()) == len(data)
    assert tree.node_count() == CHAIN_DEPTH + 1
    assert tree.depth() == CHAIN_DEPTH + 1
    tree.validate()


@pytest.mark.parametrize("cls", ALL_TREES)
def test_degenerate_sorted_input_leaf_capacity_two(cls):
    """Sorted input with tiny nodes: the adversarial real workload the
    issue calls out.  Everything must stay oracle-identical and no walk
    may recurse."""
    schema = make_schema()
    tree = cls(schema, TreeConfig(leaf_capacity=2, fanout=4))
    oracle = ArrayStore(schema)
    data = int_batch(schema, 400, seed=19)
    order = np.lexsort(data.coords.T[::-1])
    data = data.take(order)
    for coords, m in data.iter_rows():
        tree.insert(coords, m)
    oracle.insert_batch(data)
    tree.validate()
    assert len(tree) == len(data)
    assert tree.depth() >= 3
    boxes = random_boxes(schema, 10, seed=23)
    for box, (bagg, _), in zip(boxes, tree.query_batch(boxes)):
        want, _ = oracle.query(box)
        got, _ = tree.query(box)
        assert got.count == want.count == bagg.count
        assert got.total == want.total == bagg.total


def test_worker_resolves_deep_split_chains():
    """``_resolve_query`` on a 5000-link mapping chain (a shard split
    5000 times while requests were in flight) must not recurse."""
    from repro.cluster.worker import Worker

    w = Worker.__new__(Worker)  # only .mapping is touched
    links = max(5000, sys.getrecursionlimit() * 3)
    plane = Hyperplane(0, 0)
    w.mapping = {i: (plane, i + 1, 100_000 + i) for i in range(links)}
    out = w._resolve_query(0)
    assert len(out) == links + 1
    assert out[0] == links  # the low chain bottoms out first
    assert out[-1] == 100_000  # highs unwind back to the first split

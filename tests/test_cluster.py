"""Integration tests for the full simulated VOLAP cluster."""

import numpy as np
import pytest

from repro.cluster import BalancerPolicy, ClusterConfig, VOLAPCluster
from repro.core import TreeConfig
from repro.olap.query import full_query
from repro.workloads import (
    QueryGenerator,
    StreamGenerator,
    TPCDSGenerator,
    tpcds_schema,
)
from repro.workloads.streams import Operation


@pytest.fixture(scope="module")
def schema():
    return tpcds_schema()


def small_cluster(schema, n_items=6000, workers=3, servers=2, seed=1, **cfg_kw):
    gen = TPCDSGenerator(schema, seed=seed)
    batch = gen.batch(n_items)
    cfg = ClusterConfig(
        num_workers=workers,
        num_servers=servers,
        tree_config=TreeConfig(leaf_capacity=32, fanout=8),
        **cfg_kw,
    )
    cluster = VOLAPCluster(schema, cfg)
    cluster.bootstrap(batch, shards_per_worker=2)
    return cluster, gen, batch


def run_full_query(cluster, schema, server_index=0):
    sess = cluster.session(server_index, concurrency=1)
    out = []
    sess.on_complete = out.append
    sess.run_stream([Operation("query", query=full_query(schema))])
    cluster.run_until_clients_done()
    return out[-1]


class TestBootstrap:
    def test_items_distributed(self, schema):
        cluster, _, batch = small_cluster(schema)
        assert cluster.total_items() == len(batch)
        sizes = cluster.worker_sizes()
        assert len(sizes) == 3
        assert min(sizes.values()) > 0

    def test_servers_see_all_shards(self, schema):
        cluster, _, _ = small_cluster(schema)
        for s in cluster.servers:
            assert len(s.image) == cluster.shard_count()

    def test_full_query_counts_everything(self, schema):
        cluster, _, batch = small_cluster(schema)
        rec = run_full_query(cluster, schema)
        assert rec.result_count == len(batch)


class TestInsertPath:
    def test_inserts_become_queryable(self, schema):
        cluster, gen, batch = small_cluster(schema)
        extra = gen.batch(300)
        sess = cluster.session(0, concurrency=4)
        sess.run_stream(
            [
                Operation("insert", coords=extra.coords[i], measure=float(extra.measures[i]))
                for i in range(len(extra))
            ]
        )
        cluster.run_until_clients_done()
        assert cluster.total_items() == len(batch) + 300
        rec = run_full_query(cluster, schema)
        assert rec.result_count == len(batch) + 300

    def test_insert_latency_recorded(self, schema):
        cluster, gen, _ = small_cluster(schema)
        extra = gen.batch(50)
        sess = cluster.session(0, concurrency=2)
        sess.run_stream(
            [
                Operation("insert", coords=extra.coords[i], measure=1.0)
                for i in range(50)
            ]
        )
        cluster.run_until_clients_done()
        recs = cluster.stats.select(kind="insert")
        assert len(recs) == 50
        assert all(r.latency > 0 for r in recs)

    def test_cross_server_query_sees_inserts_after_sync(self, schema):
        """An insert on server 0 is visible to server 1 within the sync
        period plus notification latency (paper Section IV-F)."""
        cluster, gen, batch = small_cluster(schema, sync_period=0.5)
        extra = gen.batch(200)
        sess = cluster.session(0, concurrency=4)
        sess.run_stream(
            [
                Operation("insert", coords=extra.coords[i], measure=1.0)
                for i in range(200)
            ]
        )
        cluster.run_until_clients_done()
        # allow one sync period to elapse
        cluster.run_for(1.0)
        rec = run_full_query(cluster, schema, server_index=1)
        assert rec.result_count == len(batch) + 200


class TestMixedWorkload:
    def test_mixed_stream_completes(self, schema):
        cluster, gen, batch = small_cluster(schema)
        qg = QueryGenerator(schema, batch, seed=5)
        bins = qg.generate_bins(per_bin=4)
        sg = StreamGenerator(gen, bins, insert_fraction=0.5, seed=6)
        sess = cluster.session(0)
        sess.run_stream(list(sg.operations(600)))
        cluster.run_until_clients_done()
        assert sess.completed == 600
        ins = cluster.stats.select(kind="insert")
        qs = cluster.stats.select(kind="query")
        assert len(ins) + len(qs) == 600
        assert cluster.stats.throughput(ins) > 0

    def test_queries_track_coverage(self, schema):
        cluster, gen, batch = small_cluster(schema)
        qg = QueryGenerator(schema, batch, seed=7)
        bins = qg.generate_bins(per_bin=3)
        sg = StreamGenerator(gen, bins, insert_fraction=0.0, seed=8)
        sess = cluster.session(0)
        sess.run_stream(list(sg.operations(60)))
        cluster.run_until_clients_done()
        recs = cluster.stats.select(kind="query")
        assert all(not np.isnan(r.coverage) for r in recs)
        assert all(r.shards_searched >= 0 for r in recs)


@pytest.mark.sim_only
class TestSplits:
    def test_oversized_shards_get_split(self, schema):
        cluster, gen, batch = small_cluster(
            schema,
            balancer=BalancerPolicy(max_shard_items=800, scan_period=0.2),
        )
        before = cluster.shard_count()
        cluster.run_for(5.0)  # let the manager scan and split
        assert cluster.stats.splits > 0
        assert cluster.shard_count() > before
        # no data lost
        assert cluster.total_items() == len(batch)
        rec = run_full_query(cluster, schema)
        assert rec.result_count == len(batch)

    def test_splits_propagate_to_all_servers(self, schema):
        cluster, _, _ = small_cluster(
            schema,
            balancer=BalancerPolicy(max_shard_items=800, scan_period=0.2),
        )
        cluster.run_for(5.0)
        expected = cluster.shard_count()
        for s in cluster.servers:
            assert len(s.image) == expected

    def test_inserts_during_splits_not_lost(self, schema):
        cluster, gen, batch = small_cluster(
            schema,
            balancer=BalancerPolicy(max_shard_items=800, scan_period=0.1),
        )
        extra = gen.batch(500)
        sess = cluster.session(0, concurrency=8)
        sess.run_stream(
            [
                Operation("insert", coords=extra.coords[i], measure=1.0)
                for i in range(500)
            ]
        )
        cluster.run_until_clients_done()
        cluster.run_for(6.0)
        assert cluster.stats.splits > 0
        assert cluster.total_items() == len(batch) + 500
        rec = run_full_query(cluster, schema)
        assert rec.result_count == len(batch) + 500


@pytest.mark.sim_only
class TestMigrations:
    def test_new_workers_receive_data(self, schema):
        """Elastic scale-up (paper Fig. 6): empty workers fill up."""
        cluster, _, batch = small_cluster(
            schema,
            balancer=BalancerPolicy(
                max_shard_items=100_000,
                imbalance_ratio=1.2,
                min_migrate_items=50,
                scan_period=0.2,
            ),
        )
        new_ids = cluster.add_workers(2)
        cluster.run_for(10.0)
        sizes = cluster.worker_sizes()
        assert cluster.stats.migrations > 0
        for wid in new_ids:
            assert sizes[wid] > 0, f"worker {wid} never received data"
        assert cluster.total_items() == len(batch)

    def test_queries_correct_during_migration(self, schema):
        cluster, _, batch = small_cluster(
            schema,
            balancer=BalancerPolicy(
                max_shard_items=100_000,
                imbalance_ratio=1.2,
                min_migrate_items=50,
                scan_period=0.2,
            ),
        )
        cluster.add_workers(2)
        # interleave queries with the rebalancing
        for _ in range(4):
            cluster.run_for(1.0)
            rec = run_full_query(cluster, schema)
            assert rec.result_count == len(batch)

    def test_balance_improves(self, schema):
        cluster, _, _ = small_cluster(
            schema,
            balancer=BalancerPolicy(
                max_shard_items=100_000,
                imbalance_ratio=1.2,
                min_migrate_items=50,
                scan_period=0.2,
            ),
        )
        cluster.add_workers(2)
        sizes0 = cluster.worker_sizes()  # new workers still empty
        gap0 = max(sizes0.values()) - min(sizes0.values())
        cluster.run_for(10.0)
        sizes1 = cluster.worker_sizes()
        gap1 = max(sizes1.values()) - min(sizes1.values())
        assert gap1 < gap0


class TestBulkLoad:
    def test_bulk_load_adds_items(self, schema):
        cluster, gen, batch = small_cluster(schema)
        extra = gen.batch(4000)
        dt = cluster.bulk_load(extra)
        assert dt > 0
        assert cluster.total_items() == len(batch) + 4000
        rec = run_full_query(cluster, schema)
        assert rec.result_count == len(batch) + 4000

    def test_bulk_much_faster_than_point_inserts(self, schema):
        """Paper Section IV-C: bulk ingestion beats point insertion by a
        wide margin (400k/s vs 50k/s on the testbed)."""
        cluster, gen, _ = small_cluster(schema)
        extra = gen.batch(2000)
        bulk_dt = cluster.bulk_load(extra)
        bulk_rate = 2000 / bulk_dt

        cluster2, gen2, _ = small_cluster(schema)
        extra2 = gen2.batch(2000)
        sess = cluster2.session(0, concurrency=16)
        t0 = cluster2.clock.now
        sess.run_stream(
            [
                Operation("insert", coords=extra2.coords[i], measure=1.0)
                for i in range(2000)
            ]
        )
        cluster2.run_until_clients_done()
        point_rate = 2000 / (cluster2.clock.now - t0)
        assert bulk_rate > 3 * point_rate

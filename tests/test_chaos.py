"""Chaos suite: deterministic fault injection against the full cluster.

Exercises the failure-handling layer end to end: message drop /
duplication with exactly-once acknowledged inserts, worker crash ->
heartbeat expiry -> checkpoint restore, degraded (deadline-bounded)
queries with achieved-coverage reporting, partitions that heal, and the
zero-overhead guarantee when no fault plan is installed.
"""

import numpy as np
import pytest

from repro.cluster import (
    BalancerPolicy,
    ClusterConfig,
    FaultPlan,
    RetryPolicy,
    VOLAPCluster,
)
from repro.cluster.faults import FaultInjector
from repro.cluster.simclock import SimClock
from repro.cluster.transport import LatencyModel
from repro.core import TreeConfig
from repro.olap.query import full_query
from repro.workloads.streams import Operation

from .conftest import make_schema, random_batch

#: deterministic-replay and model-timer assertions; see conftest
pytestmark = pytest.mark.sim_only


INSERT_KINDS = {"client_insert", "insert", "insert_ack", "insert_done"}

#: tight timers so chaos runs converge in little virtual time
CHAOS_RETRY = RetryPolicy(
    timeout=0.4,
    max_attempts=12,
    insert_timeout=0.1,
    max_insert_retries=8,
    query_deadline=0.3,
    backoff_base=0.02,
    backoff_factor=1.5,
    backoff_jitter=0.005,
)


def chaos_cluster(
    schema,
    n_items=2000,
    workers=3,
    servers=1,
    seed=3,
    heartbeat_period=0.1,
    heartbeat_miss_k=3,
    checkpoint_period=0.4,
    retry=CHAOS_RETRY,
    max_shard_items=100_000,  # keep the balancer quiet unless wanted
    replication_factor=0,
    max_staleness=None,
):
    cfg = ClusterConfig(
        num_workers=workers,
        num_servers=servers,
        tree_config=TreeConfig(leaf_capacity=32, fanout=8),
        balancer=BalancerPolicy(
            max_shard_items=max_shard_items, scan_period=0.1, op_timeout=2.0
        ),
        retry=retry,
        heartbeat_period=heartbeat_period,
        heartbeat_miss_k=heartbeat_miss_k,
        checkpoint_period=checkpoint_period,
        replication_factor=replication_factor,
        max_staleness=max_staleness,
        seed=seed,
    )
    cluster = VOLAPCluster(schema, cfg)
    batch = random_batch(schema, n_items, seed=seed)
    cluster.bootstrap(batch, shards_per_worker=2)
    return cluster, batch


def insert_ops(batch):
    return [
        Operation(
            "insert", coords=batch.coords[i], measure=float(batch.measures[i])
        )
        for i in range(len(batch))
    ]


def run_one_query(cluster, schema, server_index=0):
    sess = cluster.session(server_index, concurrency=1)
    out = []
    sess.on_complete = out.append
    sess.run_stream([Operation("query", query=full_query(schema))])
    cluster.run_until_clients_done(max_virtual=120.0)
    return out[-1]


@pytest.fixture
def schema():
    return make_schema()


class TestDropAndDuplicate:
    def test_acked_inserts_exactly_once(self, schema):
        """10% drop + 10% duplication on the whole insert path: every
        acknowledged insert lands exactly once in the global count."""
        cluster, batch = chaos_cluster(schema, n_items=1500, seed=3)
        extra = random_batch(schema, 250, seed=17)
        inj = cluster.inject_faults(
            FaultPlan()
            .drop(0.10, kinds=INSERT_KINDS)
            .duplicate(0.10, kinds=INSERT_KINDS),
            seed=7,
        )
        sess = cluster.session(0, concurrency=4)
        sess.run_stream(insert_ops(extra))
        cluster.run_until_clients_done(max_virtual=300.0)

        acked = [r for r in cluster.stats.select(kind="insert") if r.ok]
        assert len(acked) + cluster.stats.failures == len(extra)
        # faults actually fired, and retransmits were deduplicated
        assert inj.dropped > 0 and inj.duplicated > 0
        dedup = sum(w.dedup_hits for w in cluster.workers.values())
        assert dedup > 0
        # exactly-once: the store grew by precisely the acked inserts
        assert cluster.total_items() == len(batch) + len(acked)
        # retransmits happened (some ops needed more than one attempt)
        assert max(r.attempts for r in acked) >= 1
        assert cluster.stats.failures == 0  # retry budget suffices here

    def test_same_seed_same_outcome(self, schema):
        """The whole chaos run is deterministic: same seeds, same counts."""

        def run():
            cluster, batch = chaos_cluster(schema, n_items=800, seed=5)
            extra = random_batch(schema, 120, seed=23)
            inj = cluster.inject_faults(
                FaultPlan().drop(0.15, kinds=INSERT_KINDS).duplicate(0.1),
                seed=11,
            )
            sess = cluster.session(0, concurrency=3)
            sess.run_stream(insert_ops(extra))
            cluster.run_until_clients_done(max_virtual=300.0)
            return (
                cluster.total_items(),
                cluster.transport.messages_sent,
                inj.dropped,
                inj.duplicated,
                cluster.stats.failures,
                round(cluster.clock.now, 9),
            )

        assert run() == run()


class TestCrashFailover:
    def test_crash_restore_and_degraded_window(self, schema):
        """After a worker crash the manager restores its shards from
        checkpoints; queries degrade (achieved < 1) only while the
        worker's shards are missing, then recover to full coverage."""
        cluster, batch = chaos_cluster(schema, n_items=2000, seed=3)
        cluster.run_for(1.0)  # let checkpoints cover every shard
        assert len(cluster.checkpoints) == cluster.shard_count()

        lost = cluster.workers[0].total_items()
        assert lost > 0
        cluster.crash_worker(0)
        t_crash = cluster.clock.now

        # a query inside the recovery window: the dead worker misses the
        # per-worker deadline, so the reply is partial but prompt
        rec = run_one_query(cluster, schema)
        assert rec.ok
        assert rec.achieved < 1.0
        assert rec.latency <= CHAOS_RETRY.query_deadline + 0.1
        assert rec.result_count == len(batch) - lost

        # heartbeat TTL (0.3s) expires, the manager scan (0.1s) fires,
        # blobs transfer and deserialize: give it a generous window
        cluster.run_for(2.0)
        assert len(cluster.stats.failovers) == 1
        _, dead_wid, n_lost = cluster.stats.failovers[0]
        assert dead_wid == 0 and n_lost > 0
        assert cluster.worker_sizes()[0] == 0  # crashed stays empty
        assert cluster.total_items() == len(batch)  # nothing lost

        # post-recovery: full coverage again, no degradation
        rec2 = run_one_query(cluster, schema)
        assert rec2.achieved == 1.0
        assert rec2.result_count == len(batch)
        # degraded replies happened only inside the recovery window
        assert all(
            t_crash <= r.submit_time for r in cluster.stats.degraded()
        )
        assert not cluster.stats.degraded(since=t_crash + 2.0)

    def test_inserts_survive_crash_via_retry(self, schema):
        """Inserts aimed at a crashed worker retry until the restored
        mapping converges; acknowledged ones are never lost."""
        cluster, batch = chaos_cluster(schema, n_items=1200, seed=3)
        cluster.run_for(1.0)
        cluster.crash_worker(1)
        extra = random_batch(schema, 150, seed=31)
        sess = cluster.session(0, concurrency=4)
        sess.run_stream(insert_ops(extra))
        cluster.run_until_clients_done(max_virtual=300.0)
        acked = [r for r in cluster.stats.select(kind="insert") if r.ok]
        # exactly-once accounting against whatever was acknowledged,
        # minus pre-crash items that the checkpoint had not yet covered
        checkpoint_gap = 0  # ran quiesced: checkpoints were current
        assert cluster.total_items() == len(batch) + len(acked) - checkpoint_gap
        assert len(acked) == len(extra)  # retries rode out the crash

    def test_total_loss_heals_after_restart(self, schema):
        """Both workers die (the first restore targets a corpse, the
        second has no survivors at all); restarting one worker lets the
        manager re-issue every pending restore until the full database
        is back, and mid-recovery queries report honest coverage."""
        cluster, batch = chaos_cluster(schema, n_items=800, seed=3, workers=2)
        cluster.run_for(1.0)
        cluster.crash_worker(0)
        cluster.crash_worker(1)
        cluster.run_for(2.0)
        assert cluster.total_items() == 0
        rec = run_one_query(cluster, schema)
        assert rec.ok and rec.achieved == 0.0 and rec.result_count == 0
        cluster.restart_worker(0)
        cluster.run_for(8.0)  # scan retries + op_timeout (2s) re-issues
        assert cluster.manager._pending_restores == set()
        assert cluster.total_items() == len(batch)
        rec2 = run_one_query(cluster, schema)
        assert rec2.achieved == 1.0 and rec2.result_count == len(batch)

    def test_restarted_worker_rejoins(self, schema):
        cluster, _ = chaos_cluster(schema, n_items=600, seed=3)
        cluster.run_for(1.0)
        cluster.crash_worker(2)
        cluster.run_for(2.0)  # declared dead, shards restored elsewhere
        assert 2 in cluster.manager.dead_workers
        cluster.restart_worker(2)
        cluster.run_for(1.0)  # fresh heartbeats clear the death record
        assert 2 not in cluster.manager.dead_workers


class TestPartition:
    def test_partition_heals(self, schema):
        """A 0.3s server<->worker partition: inserts stall, retry with
        backoff, and all complete exactly once after healing."""
        cluster, batch = chaos_cluster(schema, n_items=900, seed=3)
        start = cluster.clock.now
        cluster.inject_faults(
            FaultPlan().partition(
                "server-0", "worker-*", start=start, end=start + 0.3
            ),
            seed=13,
        )
        extra = random_batch(schema, 80, seed=41)
        sess = cluster.session(0, concurrency=2)
        sess.run_stream(insert_ops(extra))
        cluster.run_until_clients_done(max_virtual=300.0)
        assert cluster.stats.failures == 0
        assert cluster.total_items() == len(batch) + len(extra)
        # the partition really blocked traffic: retransmits happened
        assert sess.retries + cluster.servers[0].insert_timeouts > 0

    def test_healed_partition_cannot_yield_two_primaries(self, schema):
        """A partitioned-but-alive primary is declared dead and its
        replicas are promoted; when the partition heals the old primary
        notices the lapse, sees the new epochs, demotes itself, and
        rejoins through quarantine -- never serving as a second primary."""
        cluster, batch = chaos_cluster(
            schema, n_items=1000, seed=3, replication_factor=1
        )
        cluster.run_for(2.0)  # replicas seeded
        drain_replication(cluster)
        held = set(cluster.workers[0].shards)
        assert held
        start = cluster.clock.now
        cluster.inject_faults(
            FaultPlan().isolate("worker-0", start=start, end=start + 1.2),
            seed=43,
        )
        cluster.run_for(1.2)
        # behind the partition: heartbeats lapsed, death declared, and
        # every shard worker 0 owned now runs on a promoted replica
        assert 0 in cluster.manager.dead_workers
        assert cluster.manager.promotions_done >= len(held)
        # ...but worker 0 itself is alive and still holds its copies
        assert not cluster.workers[0].crashed
        # partition heals: the next beat detects the lapse, reconciles
        # against the flipped znodes, and steps down everywhere
        cluster.run_for(2.0)
        assert cluster.workers[0].demotions == len(held)
        assert not (held & set(cluster.workers[0].shards))
        assert_single_primary(cluster)
        # quarantine probation elapsed on steady beats: full member again
        assert 0 not in cluster.manager.dead_workers
        assert cluster.manager.rejoins >= 1
        assert cluster.total_items() == len(batch)
        rec = run_one_query(cluster, schema)
        assert rec.achieved == 1.0 and rec.result_count == len(batch)


#: the shard-migration protocol surface, for fault plans.  The one-shot
#: ``queue_transfer`` hand-off is deliberately excluded: it is sent
#: exactly once inside the cut-over (the fault-tolerance boundary is
#: the manager's retry of the whole migration op, not that message).
MIGRATE_KINDS = {
    "migrate_shard",
    "migrate_in",
    "migrate_ready",
    "migrate_done",
    "migrate_failed",
    "migrate_abort",
    "drop_shard",
}


class TestMigrateWhileQuerying:
    def test_columnar_transfer_survives_drop_duplicate(self, schema, monkeypatch):
        """Scale-up migrations race live inserts and queries while the
        migration control surface suffers 10% drop + 10% duplication.

        Every shard blob and handed-off insertion queue crosses the
        wire as a column frame (spied via the worker's codec entry
        points); despite the faults, migrations complete, no
        acknowledged insert is lost or doubled, and post-chaos queries
        see the full database from exactly one primary per shard."""
        from repro.cluster import worker as worker_mod
        from repro.olap.colframe import is_column_frame

        sent_frames = []
        decoded_frames = []
        real_to = worker_mod.batch_to_wire
        real_from = worker_mod.batch_from_wire

        def spy_to(batch, **kw):
            blob = real_to(batch, **kw)
            assert is_column_frame(blob)
            sent_frames.append(len(blob))
            return blob

        def spy_from(blob):
            assert is_column_frame(blob)
            decoded_frames.append(len(blob))
            return real_from(blob)

        monkeypatch.setattr(worker_mod, "batch_to_wire", spy_to)
        monkeypatch.setattr(worker_mod, "batch_from_wire", spy_from)

        cfg = ClusterConfig(
            num_workers=2,
            num_servers=1,
            tree_config=TreeConfig(leaf_capacity=32, fanout=8),
            # a slow WAN-ish link: shard blobs take real virtual time to
            # cross, so migration freeze windows are wide enough for the
            # insert stream to pile rows into the hand-off queues
            latency=LatencyModel(base=0.01, bandwidth=2e5, jitter=1e-3),
            balancer=BalancerPolicy(
                max_shard_items=100_000,
                imbalance_ratio=1.2,
                min_migrate_items=50,
                scan_period=0.2,
                op_timeout=2.0,
            ),
            retry=CHAOS_RETRY,
            heartbeat_period=0.1,
            heartbeat_miss_k=3,
            checkpoint_period=0.4,
            seed=3,
        )
        cluster = VOLAPCluster(schema, cfg)
        batch = random_batch(schema, 2000, seed=3)
        cluster.bootstrap(batch, shards_per_worker=2)
        inj = cluster.inject_faults(
            FaultPlan()
            .drop(0.20, kinds=MIGRATE_KINDS)
            .duplicate(0.20, kinds=MIGRATE_KINDS),
            seed=7,
        )
        cluster.add_workers(2)  # imbalance: the balancer starts migrating
        extra = random_batch(schema, 600, seed=17)
        sess = cluster.session(0, concurrency=4)
        # drip the inserts so the stream spans the whole rebalancing
        # phase -- inserts that land on a frozen (mid-migration) shard
        # pile into its hand-off queue, which must then cross the wire
        ops = insert_ops(extra)
        step = 25
        for lo in range(0, len(ops), step):
            sess.run_stream(ops[lo : lo + step])
            cluster.run_for(0.25)
        cluster.run_until_clients_done(max_virtual=300.0)
        acked = [r for r in cluster.stats.select(kind="insert") if r.ok]
        assert len(acked) == len(extra)
        cluster.run_for(10.0)  # let aborted/timed-out ops retry and settle
        cluster.clear_faults()
        cluster.run_for(5.0)

        assert inj.dropped > 0 and inj.duplicated > 0
        assert cluster.stats.migrations > 0, "no migration ever completed"
        # the hand-off path ran, and everything sent was frame-decoded
        assert sent_frames, "no insertion queue was ever handed off"
        assert decoded_frames == sent_frames
        # exactly-once through all of it
        assert cluster.manager.lifecycle.quiescent()
        assert_single_primary(cluster)
        assert cluster.total_items() == len(batch) + len(acked)
        rec = run_one_query(cluster, schema)
        assert rec.achieved == 1.0
        assert rec.result_count == len(batch) + len(acked)

    def test_checkpoint_restore_promote_is_pickle_free(self, schema, monkeypatch):
        """The whole recovery hot path -- periodic checkpoints, crash
        restore, replica seeding and promotion -- moves shards only as
        column frames.  Poisoning :mod:`pickle` proves it: any stray
        ``dumps``/``loads`` anywhere in the cycle fails the run."""
        import pickle

        cluster, batch = chaos_cluster(
            schema, n_items=1000, seed=3, replication_factor=1
        )

        def poisoned(*a, **kw):  # pragma: no cover - must never run
            raise AssertionError("pickle used on the shard hot path")

        for name in ("dumps", "loads", "dump", "load"):
            monkeypatch.setattr(pickle, name, poisoned)
        cluster.run_for(2.0)  # checkpoints written, replicas seeded
        drain_replication(cluster)
        assert cluster.manager.checkpoints.puts > 0
        cluster.crash_worker(1)
        cluster.run_for(4.0)  # death declared; restore + promote cycle
        assert cluster.manager.promotions_done > 0
        assert_single_primary(cluster)
        assert cluster.total_items() == len(batch)
        rec = run_one_query(cluster, schema)
        assert rec.achieved == 1.0 and rec.result_count == len(batch)


#: the whole replication / failover protocol surface, for fault plans
REPL_KINDS = {
    "replicate_shard",
    "replica_install",
    "replica_batch",
    "replica_ack",
    "replicate_done",
    "promote_shard",
    "promote_done",
    "primary_handoff",
    "handoff_ack",
}


def live_primaries(cluster, sid):
    """Live workers currently serving ``sid`` as a primary."""
    return [
        wid
        for wid, w in cluster.workers.items()
        if not w.crashed and sid in w.shards
    ]


def assert_single_primary(cluster):
    """Every published shard is primaried by exactly one live worker."""
    for name in cluster.zk.ls("/shards"):
        sid = int(name)
        owners = live_primaries(cluster, sid)
        assert len(owners) == 1, f"shard {sid} primaried by {owners}"
        assert cluster.zk.get(f"/shards/{sid}")[2] == owners[0]


def drain_replication(cluster, max_virtual=10.0):
    """Run until every primary's replication log is fully acked."""
    horizon = cluster.clock.now + max_virtual
    while cluster.clock.now < horizon:
        logs = [
            st["log"]
            for w in cluster.workers.values()
            if not w.crashed
            for st in w._repl.values()
        ]
        if logs and all(not log for log in logs):
            return
        cluster.run_for(0.1)
    raise AssertionError("replication stream never drained")


class TestReplication:
    def test_replicas_seed_and_stream_catches_up(self, schema):
        """Every settled shard gets K=1 async replicas seeded from the
        live insert stream; after quiescing, each replica's watermark
        frontier has caught the primary's head."""
        cluster, batch = chaos_cluster(
            schema, n_items=1200, seed=3, replication_factor=1
        )
        cluster.run_for(2.0)  # seed replicas
        assert {int(s) for s in cluster.zk.ls("/shards")} == set(
            cluster.manager.replica_sets
        )
        assert all(
            len(h) == 1 for h in cluster.manager.replica_sets.values()
        )
        extra = random_batch(schema, 200, seed=17)
        sess = cluster.session(0, concurrency=4)
        sess.run_stream(insert_ops(extra))
        cluster.run_until_clients_done(max_virtual=120.0)
        drain_replication(cluster)
        cluster.run_for(0.3)  # one more beat publishes final watermarks
        applied = sum(w.repl_rows_applied for w in cluster.workers.values())
        assert applied == len(extra)  # streamed exactly once, no re-seeds
        assert sum(w.repl_batches_sent for w in cluster.workers.values()) > 0
        for sid in cluster.manager.replica_sets:
            head = cluster.zk.get(f"/repl/heads/{sid}")
            (holder,) = cluster.manager.replica_sets[sid]
            wm = cluster.zk.get(f"/replicas/{sid}/{holder}")
            assert wm is not None and head is not None
            assert wm[0] == head[0]  # same epoch
            assert wm[1] >= head[1]  # frontier caught the head
        # replica copies hold exactly the primary's data
        for wid, w in cluster.workers.items():
            for sid, store in w.replicas.items():
                owner = cluster.zk.get(f"/shards/{sid}")[2]
                assert len(store) == len(cluster.workers[owner].shards[sid])

    def test_crash_promotes_replica_without_checkpoints(self, schema):
        """Primary death heals by promoting the freshest replica: a
        metadata flip with zero checkpoint deserializations, after which
        reads see the full database again."""
        cluster, batch = chaos_cluster(
            schema, n_items=1500, seed=3, replication_factor=1
        )
        cluster.run_for(2.0)
        extra = random_batch(schema, 150, seed=19)
        sess = cluster.session(0, concurrency=4)
        sess.run_stream(insert_ops(extra))
        cluster.run_until_clients_done(max_virtual=120.0)
        drain_replication(cluster)  # no acked row may ride only on w0
        lost = set(cluster.workers[0].shards)
        assert lost
        cluster.crash_worker(0)
        cluster.run_for(3.0)
        assert cluster.manager.promotions_done == len(lost)
        assert len(cluster.stats.promotions) == len(lost)
        assert (
            sum(w.checkpoint_deserializations for w in cluster.workers.values())
            == 0
        ), "promotion path touched a checkpoint blob"
        assert cluster.manager._pending_restores == set()
        assert_single_primary(cluster)
        assert cluster.total_items() == len(batch) + len(extra)
        rec = run_one_query(cluster, schema)
        assert rec.achieved == 1.0
        assert rec.result_count == len(batch) + len(extra)

    def test_no_replica_falls_back_to_restore(self, schema):
        """With replication off the heal path degrades gracefully to the
        checkpoint restore of the seed code path."""
        cluster, batch = chaos_cluster(
            schema, n_items=1000, seed=3, replication_factor=0
        )
        cluster.run_for(1.0)
        cluster.crash_worker(0)
        cluster.run_for(3.0)
        assert cluster.manager.promotions_done == 0
        assert (
            sum(w.checkpoint_deserializations for w in cluster.workers.values())
            > 0
        )
        assert cluster.manager._pending_restores == set()
        assert cluster.total_items() == len(batch)
        assert_single_primary(cluster)

    def test_bounded_staleness_reads_offload_to_replicas(self, schema):
        """Under sustained insert load, queries carrying a staleness
        budget offload to less-loaded replicas; every recorded query's
        achieved staleness stays within the budget."""
        from repro.olap.query import full_query as fq

        budget = 1.0
        cluster, batch = chaos_cluster(
            schema, n_items=1500, seed=3, replication_factor=1
        )
        cluster.run_for(2.0)
        extra = random_batch(schema, 400, seed=23)
        writer = cluster.session(0, concurrency=16)
        writer.run_stream(insert_ops(extra))
        reader = cluster.session(0, concurrency=2)
        queries = []
        for _ in range(30):
            q = fq(schema)
            q.max_staleness = budget
            queries.append(Operation("query", query=q))
        reader.run_stream(queries)
        cluster.run_until_clients_done(max_virtual=300.0)
        recs = cluster.stats.select(kind="query")
        assert len(recs) == 30
        assert all(r.staleness <= budget + 1e-9 for r in recs)
        served = cluster.servers[0].replica_reads
        assert served > 0, "no query ever offloaded to a replica"
        assert any(r.staleness > 0.0 for r in recs)
        # queries without a budget never touch replicas: primaries only
        assert all(
            r.staleness == 0.0
            for r in cluster.stats.select(kind="insert")
        )

    def test_crash_during_promotion_single_primary(self, schema):
        """The full fault matrix (drop + duplicate + delay on the whole
        replication surface) plus a crash of the promotion target itself:
        the manager falls to the next-freshest replica or a checkpoint,
        and at quiescence every shard has exactly one primary and no
        acknowledged insert is lost."""
        cluster, batch = chaos_cluster(
            schema, n_items=1200, seed=3, replication_factor=2
        )
        cluster.run_for(2.5)  # seed two replicas of every shard
        cluster.inject_faults(
            FaultPlan()
            .drop(0.08, kinds=REPL_KINDS)
            .duplicate(0.15, kinds=REPL_KINDS)
            .delay(0.10, extra=0.05),
            seed=29,
        )
        extra = random_batch(schema, 120, seed=31)
        sess = cluster.session(0, concurrency=4)
        sess.run_stream(insert_ops(extra))
        cluster.run_until_clients_done(max_virtual=300.0)
        drain_replication(cluster, max_virtual=30.0)
        cluster.crash_worker(0)
        # catch the heal mid-flight and kill the promotion target too
        target = None
        for _ in range(500_000):
            ops = [
                op
                for op in cluster.manager.lifecycle.ops.values()
                if op.kind == "promote"
            ]
            if ops:
                target = ops[0].dst
                break
            if not cluster.clock.step():
                break
        assert target is not None, "no promotion was ever attempted"
        cluster.crash_worker(target)
        cluster.run_for(10.0)
        cluster.clear_faults()
        cluster.run_for(8.0)
        assert cluster.manager._pending_restores == set()
        assert cluster.manager.lifecycle.quiescent()
        assert_single_primary(cluster)
        acked = [r for r in cluster.stats.select(kind="insert") if r.ok]
        assert cluster.total_items() == len(batch) + len(acked)
        rec = run_one_query(cluster, schema)
        assert rec.achieved == 1.0
        assert rec.result_count == len(batch) + len(acked)


class TestZeroOverhead:
    def test_no_plan_is_byte_identical(self, schema):
        """With no FaultPlan installed, the transport's behaviour (and
        hence the whole simulation) is identical to the seed code path;
        an installed-but-empty plan also changes nothing."""

        def run(with_empty_plan):
            cluster, batch = chaos_cluster(schema, n_items=700, seed=9)
            if with_empty_plan:
                cluster.inject_faults(FaultPlan(), seed=99)
            extra = random_batch(schema, 60, seed=51)
            sess = cluster.session(0, concurrency=2)
            sess.run_stream(insert_ops(extra))
            cluster.run_until_clients_done(max_virtual=120.0)
            lat = [r.latency for r in cluster.stats.select()]
            return (
                cluster.clock.now,
                cluster.transport.messages_sent,
                cluster.transport.bytes_sent,
                lat,
            )

        base = run(False)
        empty = run(True)
        assert base[0] == empty[0]
        assert base[1] == empty[1]
        assert base[2] == empty[2]
        assert base[3] == pytest.approx(empty[3])


class TestFaultPlanUnit:
    def test_windows_and_kind_filters(self):
        clock = SimClock()
        plan = (
            FaultPlan()
            .drop(1.0, kinds={"insert"}, start=1.0, end=2.0)
            .delay(1.0, extra=0.5, dst="worker-0")
        )
        inj = FaultInjector(plan, clock, seed=0)

        class Named:
            def __init__(self, name):
                self.name = name

        class Msg:
            def __init__(self, kind, sender=None):
                self.kind = kind
                self.sender = sender

        w0 = Named("worker-0")
        other = Named("server-0")
        # outside the window: not dropped, but delayed toward worker-0
        assert inj.plan_delivery(Msg("insert"), w0) == [0.5]
        assert inj.plan_delivery(Msg("insert"), other) == [0.0]
        clock.now = 1.5  # inside the drop window
        assert inj.plan_delivery(Msg("insert"), other) == []
        assert inj.plan_delivery(Msg("query"), other) == [0.0]
        assert inj.dropped == 1 and inj.delayed == 1

    def test_partition_requires_matching_pair(self):
        clock = SimClock()
        inj = FaultInjector(
            FaultPlan().partition("server-0", "worker-1"), clock, seed=0
        )

        class Named:
            def __init__(self, name):
                self.name = name

        class Msg:
            kind = "insert"

            def __init__(self, sender):
                self.sender = sender

        s0, w1, w2 = Named("server-0"), Named("worker-1"), Named("worker-2")
        assert inj.plan_delivery(Msg(s0), w1) == []  # s0 -> w1 cut
        assert inj.plan_delivery(Msg(w1), s0) == []  # reverse cut too
        assert inj.plan_delivery(Msg(s0), w2) == [0.0]  # unaffected pair

    def test_insert_failed_frees_client_slot(self, schema):
        """Satellite: nack exhaustion must produce an explicit
        insert_failed (counted) instead of silently leaking the slot."""
        from repro.cluster.image import ShardInfo
        from repro.cluster.server import Server
        from repro.cluster.transport import LatencyModel, Transport
        from repro.cluster.worker import Worker
        from repro.cluster.zookeeper import Zookeeper
        from repro.cluster.client import ClientSession
        from repro.cluster.stats import ClusterStats
        from repro.olap.keys import Box

        clock = SimClock()
        transport = Transport(clock, LatencyModel(jitter=0.0))
        zk = Zookeeper(clock)
        w = Worker(0, clock, transport, zk, schema)
        # the system image claims worker 0 owns shard 1, but it doesn't:
        # every route resolves stale and nacks
        info = ShardInfo(
            1,
            Box(np.zeros(schema.num_dims, dtype=np.int64), schema.leaf_limits),
            0,
            10,
        )
        zk.set("/shards/1", info.to_wire())
        policy = RetryPolicy(
            timeout=50.0,
            max_attempts=1,
            insert_timeout=10.0,
            max_insert_retries=2,
            backoff_base=0.01,
            backoff_jitter=0.0,
        )
        server = Server(0, clock, transport, zk, schema, {0: w}, retry=policy)
        server.load_image()
        stats = ClusterStats()
        sess = ClientSession(
            0, transport, server, stats, concurrency=1, retry=policy
        )
        coords = np.zeros(schema.num_dims, dtype=np.int64)
        sess.run_stream(
            [Operation("insert", coords=coords, measure=1.0) for _ in range(2)]
        )
        clock.run_until(40.0)
        assert sess.done  # both slots were released
        assert sess.completed == 2
        assert stats.failures == 2
        assert server.insert_failures == 2
        assert all(not r.ok for r in stats.ops)

"""Runtime seam tests: frame codec, timers, fault aliasing, backends.

Covers the PR 9 surface: the column-frame wire codec and its exact
sizing, timer ordering/cancellation on both clock implementations, the
defensive-copy fix for fault-duplicated deliveries, sim-vs-asyncio
outcome equivalence, the chaos matrix on the asyncio backend, and an
mp smoke test asserting the zero-pickling data plane.
"""

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    FaultPlan,
    RetryPolicy,
    VOLAPCluster,
)
from repro.cluster.simclock import SimClock
from repro.cluster.transport import Entity, Message, Transport
from repro.core import TreeConfig
from repro.olap.query import full_query
from repro.olap.records import RecordBatch
from repro.runtime import frames, make_runtime
from repro.runtime.asyncio_rt import WallClock
from repro.workloads.streams import Operation

from .conftest import make_schema, random_batch

INSERT_KINDS = {"client_insert", "insert", "insert_ack", "insert_done"}

#: retry timers for wall-clock chaos runs.  On a real runtime, model
#: time also elapses while handlers burn real CPU (real seconds /
#: time_scale), so model timeouts must stay well above the chain's
#: real processing time -- unlike the sim, where handlers are free.
#: At time_scale=0.01, a ~2ms real insert chain costs ~0.2 model
#: seconds; 5-second timeouts keep healthy attempts from tripping.
FAST_RETRY = RetryPolicy(
    timeout=5.0,
    max_attempts=8,
    insert_timeout=2.0,
    max_insert_retries=6,
    query_deadline=5.0,
    backoff_base=0.2,
    backoff_factor=1.5,
    backoff_jitter=0.05,
)


class _Sink(Entity):
    name = "sink"

    def __init__(self):
        self.got = []

    def receive(self, msg):
        self.got.append(msg)


def small_config(runtime, **kw):
    kw.setdefault("num_workers", 2)
    kw.setdefault("num_servers", 1)
    kw.setdefault("tree_config", TreeConfig(leaf_capacity=32, fanout=8))
    kw.setdefault("time_scale", 0.01)
    return ClusterConfig(runtime=runtime, **kw)


# -------------------------------------------------------------------------
# frame codec
# -------------------------------------------------------------------------


class TestFrames:
    def roundtrip(self, kind, payload, route="worker-0"):
        blob = frames.encode(kind, payload, route=route)
        assert frames.wire_size(kind, payload, route) == len(blob)
        sink = _Sink()
        got_kind, got, got_route = frames.decode(blob, lambda name: sink)
        assert got_kind == kind
        assert got_route == route
        return got

    def test_insert(self):
        sink = _Sink()
        coords = np.array([3, 5, 7], dtype=np.int64)
        got = self.roundtrip("insert", (2, coords, 0.25, 91, 17, sink))
        sid, c, v, token, op_id, reply = got
        assert (sid, token, op_id) == (2, 91, 17)
        assert np.array_equal(c, coords) and v == 0.25
        assert reply.name == "sink"

    def test_insert_batch(self):
        sink = _Sink()
        entries = [
            (1, np.array([1, 2, 3], dtype=np.int64), 0.5, 11, 100, None),
            (4, np.array([7, 8, 9], dtype=np.int64), 1.5, 12, 101, None),
        ]
        got_entries, reply = self.roundtrip("insert_batch", (entries, sink))
        assert len(got_entries) == 2
        for want, got in zip(entries, got_entries):
            assert got[0] == want[0]
            assert np.array_equal(got[1], want[1])
            assert got[2:5] == want[2:5]

    def test_bulk_insert(self):
        rng = np.random.default_rng(0)
        batch = RecordBatch(
            rng.integers(0, 50, size=(32, 3)).astype(np.int64), rng.random(32)
        )
        sid, got_batch, token, reply = self.roundtrip(
            "bulk_insert", (7, batch, 12345, _Sink())
        )
        assert (sid, token) == (7, 12345)
        assert np.array_equal(got_batch.coords, batch.coords)
        assert np.allclose(got_batch.measures, batch.measures)

    def test_query_and_result(self):
        box_t = ((0, 0, 0), (9, 9, 9))
        token, sids, got_box, reply = self.roundtrip(
            "query", (55, [1, 2, 9], box_t, _Sink())
        )
        assert token == 55 and list(sids) == [1, 2, 9] and got_box == box_t
        got = self.roundtrip(
            "query_result", (55, (10, 2.5, 0.1, 0.9), 3, 1, 0), route="server-0"
        )
        assert got[0] == 55 and got[1] == (10, 2.5, 0.1, 0.9)

    def test_query_batch_ragged(self):
        entries = [
            (1, [4, 5], ((0, 0, 0), (3, 3, 3)), None),
            (2, [], ((1, 1, 1), (2, 2, 2)), None),
            (3, [9], ((0, 1, 2), (5, 6, 7)), None),
        ]
        got_entries, reply = self.roundtrip("query_batch", (entries, _Sink()))
        assert [list(e[1]) for e in got_entries] == [[4, 5], [], [9]]
        assert [e[2] for e in got_entries] == [e[2] for e in entries]

    def test_acks(self):
        assert self.roundtrip("insert_ack", (42, 1), route="server-0")[:2] == (42, 1)
        assert self.roundtrip("bulk_ack", (77, 0), route="bulk-sink")[:2] == (77, 0)
        acked, wid, nacked = self.roundtrip(
            "insert_batch_ack", ([5, 6, 7], 2, [(8, 3)]), route="server-0"
        )
        assert list(acked) == [5, 6, 7] and wid == 2
        assert [tuple(x) for x in nacked] == [(8, 3)]

    def test_non_data_kind_raises_and_trips_spy(self):
        before = frames.codec_stats()["data_pickled"]
        with pytest.raises(ValueError):
            frames.encode("split_shard", (1, 2, 3))
        assert frames.codec_stats()["data_pickled"] == before + 1

    def test_wire_size_exact_for_control_kinds(self):
        # non-codable kinds still get a real serialized length, not 128
        sink = _Sink()
        n = frames.wire_size("restore_shard", (3, b"x" * 1000, sink))
        assert n > 1000


# -------------------------------------------------------------------------
# timers: ordering and cancellation on both clock implementations
# -------------------------------------------------------------------------


def _drain_wall(clock, deadline=5.0):
    import time as _t

    end = _t.monotonic() + deadline
    while clock.next_deadline() is not None:
        clock.fire_due()
        _t.sleep(0.0002)
        if _t.monotonic() > end:  # pragma: no cover - hang guard
            raise RuntimeError("wall clock did not drain")


@pytest.mark.parametrize("impl", ["sim", "wall"])
class TestTimers:
    def make(self, impl):
        if impl == "sim":
            clock = SimClock()
            return clock, clock.run
        # 0.01: model delays run 100x compressed -- small enough that
        # the test is fast, large enough that scheduling overhead (a
        # few microseconds real) cannot reorder 0.1-model-second gaps
        clock = WallClock(time_scale=0.01)
        clock.start()
        return clock, lambda: _drain_wall(clock)

    def test_ordering_and_fifo_ties(self, impl):
        clock, drain = self.make(impl)
        fired = []
        # absolute deadlines off one anchor: on the wall clock a loaded
        # host can stall between registration calls, and relative
        # after() offsets would then skew against each other
        t0 = clock.now
        clock.at(t0 + 0.3, lambda: fired.append("late"))
        clock.at(t0 + 0.1, lambda: fired.append("a"))
        clock.at(t0 + 0.1, lambda: fired.append("b"))
        clock.at(t0 + 0.2, lambda: fired.append("mid"))
        drain()
        assert fired == ["a", "b", "mid", "late"]

    def test_cancellation(self, impl):
        clock, drain = self.make(impl)
        fired = []
        keep = clock.after(0.2, lambda: fired.append("keep"))
        kill = clock.after(0.1, lambda: fired.append("kill"))
        kill.cancel()
        drain()
        assert fired == ["keep"]
        assert keep is not None

    def test_every_cancel_stops_recurrence(self, impl):
        clock, drain = self.make(impl)
        ticks = []
        handle = clock.every(0.05, lambda: ticks.append(clock.now))

        def stop():
            handle.cancel()

        clock.after(0.17, stop)
        drain()
        # exact counts differ with wall sleep granularity; the property
        # is that the recurrence fired and then stopped for good
        assert 1 <= len(ticks) <= 4
        n = len(ticks)
        drain()
        assert len(ticks) == n

    def test_pool_seam(self, impl):
        clock, drain = self.make(impl)
        pool = clock.make_pool(4)
        done = []
        pool.submit(0.01, lambda: done.append(1))
        pool.submit(0.02, lambda: done.append(2))
        drain()
        assert sorted(done) == [1, 2]
        assert pool.jobs == 2
        assert pool.busy_time == pytest.approx(0.03)


def test_wallclock_pauses_between_drives():
    import time as _t

    clock = WallClock(time_scale=1.0)
    clock.start()
    _t.sleep(0.02)
    clock.stop()
    frozen = clock.now
    _t.sleep(0.03)
    assert clock.now == frozen  # time does not pass while stopped
    assert frozen >= 0.02


# -------------------------------------------------------------------------
# fault-path aliasing regression
# -------------------------------------------------------------------------


class _DupInjector:
    """Minimal injector: always deliver two copies."""

    def plan_delivery(self, msg, dst):
        return [0.0, 0.0]


class _MutatingSink(Entity):
    """Receiver that mutates the payload it is handed (as the worker's
    insert path mutates entry contexts in place)."""

    name = "mut-sink"

    def __init__(self):
        self.seen = []

    def receive(self, msg):
        self.seen.append(list(msg.payload))
        msg.payload.clear()  # corrupt the delivered object


def test_duplicate_delivery_gets_defensive_copy():
    clock = SimClock()
    transport = Transport(clock)
    transport.faults = _DupInjector()
    sink = _MutatingSink()
    transport.send(sink, Message("restore_shard", [1, 2, 3]))
    clock.run()
    # the duplicate must see the original payload even though the first
    # delivery cleared the shared list
    assert sink.seen == [[1, 2, 3], [1, 2, 3]]


def test_clone_preserves_entity_identity():
    sink = _Sink()
    msg = Message("insert", (1, [2, 3], sink))
    copy_ = msg.clone()
    assert copy_.payload[2] is sink  # reply-to handles pass by identity
    assert copy_.payload is not msg.payload


# -------------------------------------------------------------------------
# backends: equivalence, chaos matrix, mp smoke
# -------------------------------------------------------------------------


def _workload_outcome(runtime):
    schema = make_schema()
    cluster = VOLAPCluster(
        schema,
        small_config(
            runtime, seed=9, heartbeat_period=0.0, checkpoint_period=0.0
        ),
    )
    cluster.bootstrap(random_batch(schema, 1200, seed=4), shards_per_worker=2)
    extra = random_batch(schema, 150, seed=5)
    sess = cluster.session(0, concurrency=4)
    sess.run_stream(
        [
            Operation(
                "insert", coords=extra.coords[i], measure=float(extra.measures[i])
            )
            for i in range(len(extra))
        ]
    )
    cluster.run_until_clients_done(max_virtual=600.0)
    r = cluster.execute(full_query(schema))
    out = (
        cluster.total_items(),
        r.value.count,
        round(r.value.total, 6),
        cluster.stats.failures,
    )
    cluster.close()
    return out


def test_sim_asyncio_equivalence():
    """Same seed, same workload: identical acknowledged state and query
    answers on the discrete-event and wall-clock backends."""
    assert _workload_outcome("sim") == _workload_outcome("asyncio")


@pytest.mark.parametrize("fault", ["drop", "duplicate", "delay"])
def test_chaos_matrix_on_asyncio(fault):
    """Drop / duplicate / delay plans on the asyncio backend preserve
    exactly-once acknowledged inserts."""
    schema = make_schema()
    cluster = VOLAPCluster(
        schema,
        small_config(
            "asyncio",
            seed=3,
            retry=FAST_RETRY,
            heartbeat_period=0.0,
            checkpoint_period=0.0,
        ),
    )
    base = random_batch(schema, 800, seed=3)
    cluster.bootstrap(base, shards_per_worker=2)
    plan = FaultPlan()
    if fault == "drop":
        plan.drop(0.10, kinds=INSERT_KINDS)
    elif fault == "duplicate":
        plan.duplicate(0.15, kinds=INSERT_KINDS)
    else:
        plan.delay(0.25, extra=1.0, kinds=INSERT_KINDS)
    inj = cluster.inject_faults(plan, seed=7)
    extra = random_batch(schema, 120, seed=17)
    sess = cluster.session(0, concurrency=4)
    sess.run_stream(
        [
            Operation(
                "insert", coords=extra.coords[i], measure=float(extra.measures[i])
            )
            for i in range(len(extra))
        ]
    )
    cluster.run_until_clients_done(max_virtual=900.0)
    acked = [r for r in cluster.stats.select(kind="insert") if r.ok]
    assert len(acked) + cluster.stats.failures == len(extra)
    if fault == "drop":
        assert inj.dropped > 0
    elif fault == "duplicate":
        assert inj.duplicated > 0
    else:
        assert inj.delayed > 0
    # exactly-once: the store grew by precisely the acked inserts
    assert cluster.total_items() == len(base) + len(acked)
    cluster.close()


def test_mp_backend_smoke_zero_pickle_data_plane():
    """End to end on forked workers: bootstrap + bulk load + query,
    with the codec spy proving no data-plane row was ever pickled."""
    schema = make_schema()
    frames.reset_codec_stats()
    cluster = VOLAPCluster(
        schema,
        small_config("mp", seed=1, heartbeat_period=0.0, checkpoint_period=0.0),
    )
    try:
        base = random_batch(schema, 1500, seed=2)
        cluster.bootstrap(base, shards_per_worker=2)
        cluster.bulk_load(random_batch(schema, 1000, seed=6))
        cluster.barrier()
        assert cluster.total_items() == 2500
        r = cluster.execute(full_query(schema))
        assert r.value.count == 2500
        stats = cluster.runtime.codec_stats()
        assert stats["data_frames"] > 0
        assert stats["data_pickled"] == 0
    finally:
        cluster.close()


def test_make_runtime_rejects_unknown_backend():
    with pytest.raises(ValueError):
        make_runtime("threads")

"""Differential-oracle suite for the batched ingestion path.

Every tree variant, fed the same seeded workload through either
``insert`` or ``insert_batch`` (with and without ``thread_safe``), must
report byte-identical aggregates to the flat :class:`ArrayStore` oracle
on random query boxes.  Measures are integer-valued floats so sums are
exact regardless of accumulation order, making "identical" mean ``==``,
not ``approx``.

The vectorized compact-Hilbert kernel is likewise pinned to the scalar
reference: same curve, same keys, bit for bit, including multi-word
(>63 bit) index spaces.
"""

import numpy as np
import pytest

from repro.core import (
    ArrayStore,
    HilbertPDCTree,
    HilbertRTree,
    PDCTree,
    RTree,
    TreeConfig,
)
from repro.hilbert.compact_hilbert import CompactHilbertCurve
from repro.hilbert.id_expansion import HilbertKeyMapper
from repro.olap.records import RecordBatch

from .conftest import clustered_batch, make_schema, random_batch, random_boxes

ALL_TREES = [HilbertPDCTree, PDCTree, RTree, HilbertRTree]

#: (schema spec, tree config kwargs) -- small fanouts force deep trees
SHAPES = [
    ([[8, 12, 31], [4, 16], [10, 10]], dict(leaf_capacity=16, fanout=8)),
    ([[32], [6, 6], [4, 4, 4], [16]], dict(leaf_capacity=8, fanout=4)),
]


def int_batch(schema, n, seed=0, clustered=False) -> RecordBatch:
    """Seeded batch with integer-valued measures (order-proof sums)."""
    b = clustered_batch(schema, n, seed=seed) if clustered else random_batch(
        schema, n, seed=seed
    )
    b.measures[:] = np.floor(b.measures * 100.0)
    return b


def assert_matches_oracle(store, oracle, boxes):
    """Per-box queries AND the batched engine must both match the oracle.

    ``query_batch`` is required to be *bit-identical* to the per-box
    path: same aggregates (same merge order, so ``==`` on floats) and
    the same ``OpStats`` (same nodes visited, same pruning decisions).
    """
    batched = store.query_batch(boxes)
    assert len(batched) == len(boxes)
    for box, (bagg, bstats) in zip(boxes, batched):
        got, stats = store.query(box)
        want, _ = oracle.query(box)
        assert got.count == want.count
        assert got.total == want.total
        if want.count:
            assert got.vmin == want.vmin
            assert got.vmax == want.vmax
        assert bagg.to_tuple() == got.to_tuple()
        assert bstats.nodes_visited == stats.nodes_visited
        assert bstats.leaves_visited == stats.leaves_visited
        assert bstats.items_scanned == stats.items_scanned
        assert bstats.agg_hits == stats.agg_hits


@pytest.mark.parametrize("cls", ALL_TREES)
@pytest.mark.parametrize("thread_safe", [False, True])
@pytest.mark.parametrize("chunk", [1, 7, 256])
def test_insert_batch_matches_oracle(cls, thread_safe, chunk):
    schema = make_schema()
    config = TreeConfig(leaf_capacity=16, fanout=8, thread_safe=thread_safe)
    tree = cls(schema, config)
    oracle = ArrayStore(schema)
    data = int_batch(schema, 700, seed=11)
    for lo in range(0, len(data), chunk):
        sub = data.slice(lo, min(lo + chunk, len(data)))
        tree.insert_batch(sub)
        oracle.insert_batch(sub)
    assert len(tree) == len(data)
    tree.validate()
    assert_matches_oracle(tree, oracle, random_boxes(schema, 12, seed=5))


@pytest.mark.parametrize("spec,cfg", SHAPES)
@pytest.mark.parametrize("cls", ALL_TREES)
def test_shapes_and_dims(cls, spec, cfg):
    """Batched inserts stay oracle-identical across dims and fanouts."""
    schema = make_schema(spec)
    tree = cls(schema, TreeConfig(**cfg))
    oracle = ArrayStore(schema)
    data = int_batch(schema, 500, seed=23, clustered=True)
    for lo in range(0, len(data), 64):
        sub = data.slice(lo, min(lo + 64, len(data)))
        tree.insert_batch(sub)
        oracle.insert_batch(sub)
    tree.validate()
    assert_matches_oracle(tree, oracle, random_boxes(schema, 10, seed=7))


@pytest.mark.parametrize("cls", ALL_TREES)
def test_insert_and_insert_batch_agree(cls):
    """The batched path answers exactly like the per-record path."""
    schema = make_schema()
    config = TreeConfig(leaf_capacity=16, fanout=8)
    one = cls(schema, config)
    batched = cls(schema, config)
    data = int_batch(schema, 600, seed=31)
    for coords, m in data.iter_rows():
        one.insert(coords, m)
    for lo in range(0, len(data), 100):
        batched.insert_batch(data.slice(lo, min(lo + 100, len(data))))
    one.validate()
    batched.validate()
    assert len(one) == len(batched) == len(data)
    for box in random_boxes(schema, 12, seed=13):
        a, _ = one.query(box)
        b, _ = batched.query(box)
        assert a.count == b.count
        assert a.total == b.total


@pytest.mark.parametrize("cls", ALL_TREES)
@pytest.mark.parametrize("thread_safe", [False, True])
@pytest.mark.parametrize("chunk", [1, 7, 256])
def test_query_batch_matches_per_box(cls, thread_safe, chunk):
    """Batched == loop-of-``query`` == oracle, at every batch size.

    The box set includes the degenerate cases the vectorized predicates
    must get right: an empty box, the full domain, and exact point
    boxes taken from inserted rows.
    """
    from repro.olap.keys import Box, point_box

    schema = make_schema()
    config = TreeConfig(leaf_capacity=16, fanout=8, thread_safe=thread_safe)
    tree = cls(schema, config)
    oracle = ArrayStore(schema)
    data = int_batch(schema, 700, seed=17)
    tree.insert_batch(data)
    oracle.insert_batch(data)

    boxes = random_boxes(schema, 40, seed=29)
    boxes.append(Box.empty(schema.num_dims))
    boxes.append(Box(np.zeros(schema.num_dims, dtype=np.int64), schema.leaf_limits))
    boxes.extend(point_box(data.coords[i]) for i in (0, 133, 699))

    for lo in range(0, len(boxes), chunk):
        sub = boxes[lo : lo + chunk]
        batched = tree.query_batch(sub)
        oracle_batched = oracle.query_batch(sub)
        for box, (bagg, bstats), (oagg, _) in zip(
            boxes[lo:], batched, oracle_batched
        ):
            sagg, sstats = tree.query(box)
            assert bagg.to_tuple() == sagg.to_tuple()
            assert bagg.count == oagg.count
            assert bagg.total == oagg.total
            assert (
                bstats.nodes_visited,
                bstats.leaves_visited,
                bstats.items_scanned,
                bstats.agg_hits,
            ) == (
                sstats.nodes_visited,
                sstats.leaves_visited,
                sstats.items_scanned,
                sstats.agg_hits,
            )
    assert tree.query_batch([]) == []


def test_empty_and_single_batches():
    schema = make_schema()
    tree = HilbertPDCTree(schema)
    assert tree.insert_batch(RecordBatch.empty(schema.num_dims)).work == 0
    data = int_batch(schema, 1, seed=3)
    tree.insert_batch(data)
    assert len(tree) == 1
    tree.validate()


# -- columnar leaves: boundary, repack, and codec differentials --------------

CAP = 8


@pytest.mark.parametrize("cls", ALL_TREES)
@pytest.mark.parametrize("thread_safe", [False, True])
@pytest.mark.parametrize("n", [CAP - 1, CAP, CAP + 1])
def test_split_boundary_at_leaf_capacity(cls, thread_safe, n):
    """Exactly leaf_capacity ± 1 records: the overflow/split boundary.

    At ``n == CAP`` the root leaf is exactly full; ``CAP + 1`` forces
    the first split (or repack) out of a full columnar leaf.  Both the
    per-record and the batched path must agree with the oracle."""
    schema = make_schema()
    config = TreeConfig(leaf_capacity=CAP, fanout=4, thread_safe=thread_safe)
    data = int_batch(schema, n, seed=40 + n)
    one = cls(schema, config)
    batched = cls(schema, config)
    oracle = ArrayStore(schema)
    for coords, m in data.iter_rows():
        one.insert(coords, m)
    batched.insert_batch(data)
    oracle.insert_batch(data)
    one.validate()
    batched.validate()
    assert len(one) == len(batched) == n
    boxes = random_boxes(schema, 8, seed=n)
    assert_matches_oracle(one, oracle, boxes)
    assert_matches_oracle(batched, oracle, boxes)


@pytest.mark.parametrize("cls", ALL_TREES)
@pytest.mark.parametrize("thread_safe", [False, True])
@pytest.mark.parametrize("chunk", [CAP - 1, CAP, CAP + 1, 64])
def test_chunks_around_capacity_match_oracle(cls, thread_safe, chunk):
    """Chunk sizes straddling leaf_capacity drive repack-on-overflow at
    every fill level; results stay oracle-identical (incl. OpStats
    between query and query_batch)."""
    schema = make_schema()
    config = TreeConfig(leaf_capacity=CAP, fanout=4, thread_safe=thread_safe)
    tree = cls(schema, config)
    oracle = ArrayStore(schema)
    data = int_batch(schema, 400, seed=47, clustered=True)
    for lo in range(0, len(data), chunk):
        sub = data.slice(lo, min(lo + chunk, len(data)))
        tree.insert_batch(sub)
        oracle.insert_batch(sub)
    tree.validate()
    assert_matches_oracle(tree, oracle, random_boxes(schema, 10, seed=chunk))


@pytest.mark.parametrize("cls", [HilbertPDCTree, HilbertRTree])
def test_repack_on_overflow_is_exercised_and_correct(cls):
    """Over-capacity runs must take the repack path (asserted via the
    ``repacks`` counter) and still match the oracle."""
    schema = make_schema()
    config = TreeConfig(leaf_capacity=CAP, fanout=4)
    tree = cls(schema, config)
    oracle = ArrayStore(schema)
    data = int_batch(schema, 300, seed=53, clustered=True)
    stats = tree.insert_batch(data)
    oracle.insert_batch(data)
    assert stats.repacks >= 1
    tree.validate()
    assert_matches_oracle(tree, oracle, random_boxes(schema, 10, seed=3))


@pytest.mark.parametrize("cls", ALL_TREES)
def test_leaves_are_numpy_columns(cls):
    """No per-record Python objects remain in any leaf: every leaf holds
    contiguous int64/float64 (and uint64 key) numpy columns."""
    schema = make_schema()
    tree = cls(schema, TreeConfig(leaf_capacity=CAP, fanout=4))
    tree.insert_batch(int_batch(schema, 200, seed=59))
    leaves = list(tree._iter_leaves(tree.root))
    assert leaves
    for leaf in leaves:
        cols = leaf.cols
        assert cols.coords.dtype == np.int64 and cols.coords.flags.c_contiguous
        assert cols.measures.dtype == np.float64
        if tree.uses_hilbert:
            assert cols.hwords is not None
            assert cols.hwords.dtype == np.uint64
            # live rows are in packed-word (== numeric key) order
            ints = cols.key_ints()
            assert ints == sorted(ints)
        else:
            assert cols.hwords is None


@pytest.mark.parametrize("cls", ALL_TREES)
@pytest.mark.parametrize("thread_safe", [False, True])
def test_serialize_roundtrip_matches_oracle(cls, thread_safe):
    """store -> column frame -> store is oracle-identical, and the
    rebuilt tree equals a direct bulk load of the same items
    (query_batch OpStats included)."""
    schema = make_schema()
    config = TreeConfig(leaf_capacity=CAP, fanout=4, thread_safe=thread_safe)
    tree = cls(schema, config)
    oracle = ArrayStore(schema)
    data = int_batch(schema, 350, seed=61)
    tree.insert_batch(data)
    oracle.insert_batch(data)
    back = cls.deserialize(schema, tree.serialize(), config)
    back.validate()
    assert len(back) == len(tree)
    assert_matches_oracle(back, oracle, random_boxes(schema, 10, seed=9))
    direct = cls.from_batch(schema, tree.items(), config)
    for box in random_boxes(schema, 10, seed=9):
        a, astats = back.query(box)
        b, bstats = direct.query(box)
        assert a.to_tuple() == b.to_tuple()
        assert astats.nodes_visited == bstats.nodes_visited


def test_hilbert_word_keys_match_object_ints():
    """The packed uint64 word rows in leaves encode exactly the keys the
    object-int mapper computes (ordering equivalence is load-bearing)."""
    schema = make_schema()
    tree = HilbertPDCTree(schema, TreeConfig(leaf_capacity=CAP, fanout=4))
    data = int_batch(schema, 150, seed=67)
    tree.insert_batch(data)
    want = sorted(tree.mapper.keys(data.coords))
    got = sorted(
        k
        for leaf in tree._iter_leaves(tree.root)
        for k in leaf.leaf_hkeys()
    )
    assert got == want


# -- vectorized Hilbert kernel vs the scalar reference ---------------------

WIDTH_VECTORS = [
    [3, 3],
    [5, 2, 4],
    [1, 7, 3, 2],
    [16, 16, 16],  # 48 bits: single-word assembly
    [20, 20, 20, 20],  # 80 bits: multi-word (object ints)
]


@pytest.mark.parametrize("widths", WIDTH_VECTORS)
def test_index_batch_matches_scalar(widths):
    curve = CompactHilbertCurve(widths)
    rng = np.random.default_rng(sum(widths))
    limits = np.array([(1 << w) - 1 for w in widths], dtype=np.uint64)
    pts = (
        rng.integers(0, limits + 1, size=(200, len(widths)), dtype=np.uint64)
    )
    got = curve.index_batch(pts)
    want = [curve.index([int(v) for v in row]) for row in pts]
    assert list(got) == want


@pytest.mark.parametrize("expand", [True, False])
def test_mapper_keys_match_scalar(expand):
    schema = make_schema()
    mapper = HilbertKeyMapper(schema, expand=expand)
    data = random_batch(schema, 150, seed=9)
    got = mapper.keys(data.coords)
    want = [mapper.key(row) for row in data.coords]
    assert got == want

"""Tests for the load-balancing shard operations (paper Section III-E):
SplitQuery, Split, SerializeShard / DeserializeShard, on every store."""

import numpy as np
import pytest

from repro.core import (
    ArrayStore,
    HilbertPDCTree,
    HilbertRTree,
    PDCTree,
    RTree,
)
from repro.core.base import Hyperplane
from repro.olap.query import full_query
from repro.olap.records import RecordBatch

from .conftest import make_schema, random_batch

ALL_STORES = [ArrayStore, HilbertPDCTree, PDCTree, RTree, HilbertRTree]


@pytest.mark.parametrize("cls", ALL_STORES)
class TestSplitQuery:
    def test_split_query_balances(self, cls, schema):
        batch = random_batch(schema, 800, seed=1)
        store = cls.from_batch(schema, batch)
        plane = store.split_query()
        mask = plane.side_mask(batch.coords)
        low = int(mask.sum())
        # approximately equal halves (paper: "approximately equal size")
        assert 0.25 * len(batch) <= low <= 0.75 * len(batch)

    def test_split_partitions_data(self, cls, schema):
        batch = random_batch(schema, 500, seed=2)
        store = cls.from_batch(schema, batch)
        plane = store.split_query()
        a, b = store.split(plane)
        assert len(a) + len(b) == len(batch)
        assert len(a) > 0 and len(b) > 0
        # the two sides are spatially separated by the hyperplane
        assert (a.items().coords[:, plane.dim] <= plane.value).all()
        assert (b.items().coords[:, plane.dim] > plane.value).all()

    def test_split_preserves_aggregates(self, cls, schema):
        batch = random_batch(schema, 400, seed=3)
        store = cls.from_batch(schema, batch)
        a, b = store.split(store.split_query())
        box = full_query(schema).box
        agg_a, _ = a.query(box)
        agg_b, _ = b.query(box)
        assert agg_a.count + agg_b.count == 400
        assert agg_a.total + agg_b.total == pytest.approx(
            float(batch.measures.sum())
        )

    def test_serialize_roundtrip(self, cls, schema):
        batch = random_batch(schema, 300, seed=4)
        store = cls.from_batch(schema, batch)
        blob = store.serialize()
        assert isinstance(blob, bytes)
        restored = cls.deserialize(schema, blob, store.config)
        assert len(restored) == 300
        box = full_query(schema).box
        agg, _ = restored.query(box)
        assert agg.count == 300
        assert agg.total == pytest.approx(float(batch.measures.sum()))

    def test_split_tiny_shard_rejected(self, cls, schema):
        store = cls.from_batch(
            schema, RecordBatch(np.zeros((1, 3), dtype=np.int64), np.ones(1))
        )
        with pytest.raises(ValueError):
            store.split_query()


def test_split_query_single_point_cloud_rejected(schema):
    """All-identical items cannot be separated by any hyperplane."""
    coords = np.tile(schema.leaf_limits // 3, (50, 1))
    store = ArrayStore.from_batch(schema, RecordBatch(coords, np.ones(50)))
    with pytest.raises(ValueError):
        store.split_query()


def test_split_query_skewed_distribution(schema):
    """Median split works when one value dominates a dimension."""
    rng = np.random.default_rng(5)
    coords = rng.integers(0, schema.leaf_limits + 1, size=(200, 3), dtype=np.int64)
    coords[:150, 0] = 7  # heavy repetition in dim 0
    store = ArrayStore.from_batch(schema, RecordBatch(coords, np.ones(200)))
    plane = store.split_query()
    mask = plane.side_mask(coords)
    assert 0 < int(mask.sum()) < 200


class TestHyperplane:
    def test_roundtrip(self):
        h = Hyperplane(2, 17)
        assert Hyperplane.from_tuple(h.to_tuple()) == h

    def test_side_mask(self):
        h = Hyperplane(0, 5)
        coords = np.array([[5, 0], [6, 0]])
        assert h.side_mask(coords).tolist() == [True, False]

"""Tests for the load-balancing shard operations (paper Section III-E):
SplitQuery, Split, SerializeShard / DeserializeShard, on every store."""

import numpy as np
import pytest

from repro.core import (
    ArrayStore,
    HilbertPDCTree,
    HilbertRTree,
    PDCTree,
    RTree,
)
from repro.core.base import Hyperplane
from repro.olap.query import full_query
from repro.olap.records import RecordBatch

from .conftest import random_batch

ALL_STORES = [ArrayStore, HilbertPDCTree, PDCTree, RTree, HilbertRTree]


@pytest.mark.parametrize("cls", ALL_STORES)
class TestSplitQuery:
    def test_split_query_balances(self, cls, schema):
        batch = random_batch(schema, 800, seed=1)
        store = cls.from_batch(schema, batch)
        plane = store.split_query()
        mask = plane.side_mask(batch.coords)
        low = int(mask.sum())
        # approximately equal halves (paper: "approximately equal size")
        assert 0.25 * len(batch) <= low <= 0.75 * len(batch)

    def test_split_partitions_data(self, cls, schema):
        batch = random_batch(schema, 500, seed=2)
        store = cls.from_batch(schema, batch)
        plane = store.split_query()
        a, b = store.split(plane)
        assert len(a) + len(b) == len(batch)
        assert len(a) > 0 and len(b) > 0
        # the two sides are spatially separated by the hyperplane
        assert (a.items().coords[:, plane.dim] <= plane.value).all()
        assert (b.items().coords[:, plane.dim] > plane.value).all()

    def test_split_preserves_aggregates(self, cls, schema):
        batch = random_batch(schema, 400, seed=3)
        store = cls.from_batch(schema, batch)
        a, b = store.split(store.split_query())
        box = full_query(schema).box
        agg_a, _ = a.query(box)
        agg_b, _ = b.query(box)
        assert agg_a.count + agg_b.count == 400
        assert agg_a.total + agg_b.total == pytest.approx(
            float(batch.measures.sum())
        )

    def test_serialize_roundtrip(self, cls, schema):
        batch = random_batch(schema, 300, seed=4)
        store = cls.from_batch(schema, batch)
        blob = store.serialize()
        assert isinstance(blob, bytes)
        restored = cls.deserialize(schema, blob, store.config)
        assert len(restored) == 300
        box = full_query(schema).box
        agg, _ = restored.query(box)
        assert agg.count == 300
        assert agg.total == pytest.approx(float(batch.measures.sum()))

    def test_split_tiny_shard_rejected(self, cls, schema):
        store = cls.from_batch(
            schema, RecordBatch(np.zeros((1, 3), dtype=np.int64), np.ones(1))
        )
        with pytest.raises(ValueError):
            store.split_query()


def test_split_query_single_point_cloud_rejected(schema):
    """All-identical items cannot be separated by any hyperplane."""
    coords = np.tile(schema.leaf_limits // 3, (50, 1))
    store = ArrayStore.from_batch(schema, RecordBatch(coords, np.ones(50)))
    with pytest.raises(ValueError):
        store.split_query()


def test_split_query_skewed_distribution(schema):
    """Median split works when one value dominates a dimension."""
    rng = np.random.default_rng(5)
    coords = rng.integers(0, schema.leaf_limits + 1, size=(200, 3), dtype=np.int64)
    coords[:150, 0] = 7  # heavy repetition in dim 0
    store = ArrayStore.from_batch(schema, RecordBatch(coords, np.ones(200)))
    plane = store.split_query()
    mask = plane.side_mask(coords)
    assert 0 < int(mask.sum()) < 200


class TestHyperplane:
    def test_roundtrip(self):
        h = Hyperplane(2, 17)
        assert Hyperplane.from_tuple(h.to_tuple()) == h

    def test_side_mask(self):
        h = Hyperplane(0, 5)
        coords = np.array([[5, 0], [6, 0]])
        assert h.side_mask(coords).tolist() == [True, False]


class TestStaleRouteInsert:
    """Inserts racing a migration: routed to the old owner they either
    ride the frozen-shard queue or get nacked, trigger an image refresh
    and a retry -- never lost, never double-counted."""

    def make_rig(self, schema, batch):
        from repro.cluster.server import Server
        from repro.cluster.simclock import SimClock
        from repro.cluster.transport import Entity, LatencyModel, Message, Transport
        from repro.cluster.worker import Worker
        from repro.cluster.zookeeper import Zookeeper
        from repro.core import TreeConfig

        clock = SimClock()
        transport = Transport(clock, LatencyModel(jitter=0.0))
        zk = Zookeeper(clock)
        cfg = TreeConfig(leaf_capacity=16, fanout=8)
        workers = {
            wid: Worker(wid, clock, transport, zk, schema, tree_config=cfg)
            for wid in (0, 1)
        }
        store = HilbertPDCTree.from_batch(schema, batch, cfg)
        workers[0].install_shard(1, store)
        server = Server(0, clock, transport, zk, schema, workers, sync_period=1.0)
        server.load_image()
        return clock, transport, zk, workers, server

    def run_inserts(self, clock, server, coords, n):
        from repro.cluster.transport import Entity, Message

        class Sink(Entity):
            name = "sink"

            def __init__(self):
                self.received = []

            def receive(self, msg):
                self.received.append(msg)

        sink = Sink()
        for i in range(n):
            server.receive(
                Message("client_insert", (100 + i, coords, 1.0, sink))
            )
        clock.run_until(20.0)
        return sink.received

    def total(self, workers):
        return sum(w.total_items() for w in workers.values())

    def test_insert_during_inflight_migration(self, schema):
        """An insert arriving while the shard is frozen for migration is
        queued at the source and carried over exactly once."""
        from repro.cluster.transport import Message

        batch = random_batch(schema, 300, seed=6)
        clock, transport, zk, workers, server = self.make_rig(schema, batch)

        class Quiet:
            name = "quiet"

            def receive(self, msg):
                pass

        # freeze shard 1 for migration, then insert before it completes
        workers[0].receive(Message("migrate_shard", (1, workers[1], Quiet())))
        got = self.run_inserts(clock, server, batch.coords[0], 3)
        done = [m for m in got if m.kind == "insert_done"]
        assert len(done) == 3
        assert 1 in workers[1].shards and 1 not in workers[0].shards
        assert self.total(workers) == len(batch) + 3

    def test_stale_image_nack_refresh_retry(self, schema):
        """The server's image still points at the old owner after a
        migration: the insert nacks, the server refreshes its image from
        Zookeeper and retries against the new owner -- exactly once."""
        batch = random_batch(schema, 300, seed=7)
        clock, transport, zk, workers, server = self.make_rig(schema, batch)
        # migrate shard 1 off worker 0 entirely (zk now names worker 1)
        from repro.cluster.transport import Message

        class Quiet:
            name = "quiet"

            def receive(self, msg):
                pass

        workers[0].receive(Message("migrate_shard", (1, workers[1], Quiet())))
        clock.run_until(5.0)
        assert zk.get("/shards/1")[2] == 1
        # poison the server's local image back to the stale owner
        server.image.update_worker(1, 0)
        got = self.run_inserts(clock, server, batch.coords[0], 2)
        done = [m for m in got if m.kind == "insert_done"]
        assert len(done) == 2
        assert server.insert_retries >= 2  # the nack path actually fired
        assert len(workers[1].shards[1]) == len(batch) + 2
        assert self.total(workers) == len(batch) + 2

"""End-to-end exactness: cluster answers vs a ground-truth oracle.

A sequential session (concurrency 1) on one server must observe
*exactly* the data it has already had acknowledged -- the paper's
same-server freshness guarantee ("user sessions attached to the same
server will observe a very low time between an insert being issued and
its effect being visible in subsequent queries"; with a sequential
session the visibility must be exact).
"""

import numpy as np
import pytest

from repro.cluster import BalancerPolicy, ClusterConfig, VOLAPCluster
from repro.core import ArrayStore, TreeConfig
from repro.workloads import QueryGenerator, TPCDSGenerator, tpcds_schema
from repro.workloads.streams import Operation


@pytest.fixture(scope="module")
def schema():
    return tpcds_schema()


def build_cluster(schema, seed=0, **balancer_kw):
    gen = TPCDSGenerator(schema, seed=seed)
    base = gen.batch(4000)
    cfg = ClusterConfig(
        num_workers=3,
        num_servers=2,
        tree_config=TreeConfig(leaf_capacity=32, fanout=8),
        balancer=BalancerPolicy(**balancer_kw) if balancer_kw else BalancerPolicy(),
    )
    cluster = VOLAPCluster(schema, cfg)
    cluster.bootstrap(base, shards_per_worker=2)
    return cluster, gen, base


def test_sequential_session_sees_exact_prefix(schema):
    """Interleaved inserts and queries, strict sequential session: every
    query result equals the oracle count for its box."""
    cluster, gen, base = build_cluster(schema, seed=3)
    oracle = ArrayStore.from_batch(schema, base)
    qg = QueryGenerator(schema, base, seed=4)

    rng = np.random.default_rng(5)
    extra = gen.batch(150)
    queries = [qg.random_query() for _ in range(40)]

    ops = []
    expected = []  # oracle count at submission, per query op index
    oracle_pending = []
    qi = ii = 0
    for _ in range(190):
        if (rng.random() < 0.75 and ii < 150) or qi >= 40:
            ops.append(
                Operation(
                    "insert",
                    coords=extra.coords[ii],
                    measure=float(extra.measures[ii]),
                )
            )
            oracle_pending.append(ii)
            ii += 1
        else:
            q = queries[qi]
            qi += 1
            ops.append(Operation("query", query=q))
            # at this point, with a sequential session, all prior inserts
            # are acknowledged -> they must all be visible
            for k in oracle_pending:
                oracle.insert(extra.coords[k], float(extra.measures[k]))
            oracle_pending.clear()
            expected.append(oracle.count_in(q.box))

    results = []
    sess = cluster.session(0, concurrency=1)
    sess.on_complete = lambda rec: (
        results.append(rec.result_count) if rec.kind == "query" else None
    )
    sess.run_stream(ops)
    cluster.run_until_clients_done()

    assert len(results) == len(expected)
    for got, want in zip(results, expected):
        assert got == want


@pytest.mark.sim_only  # per-query oracle: no deadline may ever degrade
def test_exactness_survives_concurrent_rebalancing(schema):
    """The same exactness holds while the manager splits and migrates."""
    cluster, gen, base = build_cluster(
        schema,
        seed=7,
        max_shard_items=700,
        imbalance_ratio=1.2,
        min_migrate_items=100,
        scan_period=0.05,
    )
    cluster.add_workers(1)  # trigger migrations during the stream
    oracle = ArrayStore.from_batch(schema, base)
    qg = QueryGenerator(schema, base, seed=8)

    extra = gen.batch(120)
    ops = []
    expected = []
    pending = []
    rng = np.random.default_rng(9)
    ii = 0
    for step in range(160):
        if rng.random() < 0.7 and ii < 120:
            ops.append(
                Operation(
                    "insert", coords=extra.coords[ii], measure=1.0
                )
            )
            pending.append(ii)
            ii += 1
        else:
            q = qg.random_query()
            ops.append(Operation("query", query=q))
            for k in pending:
                oracle.insert(extra.coords[k], 1.0)
            pending.clear()
            expected.append(oracle.count_in(q.box))

    results = []
    sess = cluster.session(0, concurrency=1)
    sess.on_complete = lambda rec: (
        results.append(rec.result_count) if rec.kind == "query" else None
    )
    sess.run_stream(ops)
    cluster.run_until_clients_done()
    cluster.run_for(5.0)

    assert cluster.stats.splits + cluster.stats.migrations > 0, (
        "rebalancing never happened; test is vacuous"
    )
    for got, want in zip(results, expected):
        assert got == want


def test_cross_server_eventual_exactness(schema):
    """After quiescing past the sync period, *any* server answers exactly."""
    cluster, gen, base = build_cluster(schema, seed=11)
    extra = gen.batch(200)
    sess = cluster.session(0, concurrency=8)
    sess.run_stream(
        [
            Operation("insert", coords=extra.coords[i], measure=1.0)
            for i in range(200)
        ]
    )
    cluster.run_until_clients_done()
    cluster.run_for(cluster.config.sync_period + 0.5)

    oracle = ArrayStore.from_batch(schema, base)
    for i in range(200):
        oracle.insert(extra.coords[i], 1.0)
    qg = QueryGenerator(schema, base, seed=12)
    queries = [qg.random_query() for _ in range(15)]
    for server_idx in (0, 1):
        results = []
        sess = cluster.session(server_idx, concurrency=1)
        sess.on_complete = lambda rec: results.append(rec.result_count)
        sess.run_stream([Operation("query", query=q) for q in queries])
        cluster.run_until_clients_done()
        for q, got in zip(queries, results):
            assert got == oracle.count_in(q.box), f"server {server_idx}"

"""Tests for the Aggregate bundle and OpStats/TreeConfig plumbing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.aggregates import Aggregate
from repro.core.config import OpStats, TreeConfig


class TestAggregate:
    def test_empty(self):
        a = Aggregate.empty()
        assert a.is_empty
        assert a.count == 0

    def test_of_value(self):
        a = Aggregate.of_value(3.5)
        assert a.count == 1
        assert a.total == 3.5
        assert a.vmin == a.vmax == 3.5

    def test_of_array(self):
        a = Aggregate.of_array(np.array([1.0, 2.0, 3.0]))
        assert a.count == 3
        assert a.total == 6.0
        assert a.vmin == 1.0 and a.vmax == 3.0

    def test_of_empty_array(self):
        assert Aggregate.of_array(np.array([])).is_empty

    def test_add_value(self):
        a = Aggregate.empty()
        a.add_value(5.0)
        a.add_value(-1.0)
        assert a.count == 2
        assert a.total == 4.0
        assert a.vmin == -1.0 and a.vmax == 5.0

    def test_merge(self):
        a = Aggregate.of_array(np.array([1.0, 2.0]))
        b = Aggregate.of_array(np.array([5.0]))
        a.merge(b)
        assert a.count == 3 and a.total == 8.0 and a.vmax == 5.0

    def test_merge_with_empty_is_identity(self):
        a = Aggregate.of_value(2.0)
        before = a.to_tuple()
        a.merge(Aggregate.empty())
        assert a.to_tuple() == before

    def test_merged_does_not_mutate(self):
        a = Aggregate.of_value(1.0)
        b = Aggregate.of_value(2.0)
        c = a.merged(b)
        assert a.count == 1 and c.count == 2

    def test_mean(self):
        a = Aggregate.of_array(np.array([2.0, 4.0]))
        assert a.mean == 3.0
        with pytest.raises(ValueError):
            Aggregate.empty().mean

    def test_approx_equal(self):
        a = Aggregate.of_array(np.array([0.1] * 10))
        b = Aggregate.empty()
        for _ in range(10):
            b.add_value(0.1)
        assert a.approx_equal(b)
        assert not a.approx_equal(Aggregate.of_value(1.0))

    def test_copy_independent(self):
        a = Aggregate.of_value(1.0)
        b = a.copy()
        b.add_value(9.0)
        assert a.count == 1


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
def test_merge_associativity_property(values):
    """Property: incremental adds == one-shot array aggregate."""
    arr = np.array(values)
    one_shot = Aggregate.of_array(arr)
    incremental = Aggregate.empty()
    for v in values:
        incremental.add_value(v)
    assert incremental.approx_equal(one_shot, rel=1e-6)


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=30),
    st.integers(min_value=1, max_value=29),
)
def test_merge_split_property(values, k):
    """Property: aggregating two halves then merging == aggregating all."""
    k = min(k, len(values))
    arr = np.array(values)
    left = Aggregate.of_array(arr[:k])
    right = Aggregate.of_array(arr[k:])
    assert left.merged(right).approx_equal(Aggregate.of_array(arr), rel=1e-6)


class TestOpStats:
    def test_merge(self):
        a = OpStats(nodes_visited=2, items_scanned=10)
        b = OpStats(nodes_visited=3, splits=1, agg_hits=2)
        a.merge(b)
        assert a.nodes_visited == 5
        assert a.items_scanned == 10
        assert a.splits == 1
        assert a.agg_hits == 2

    def test_work_positive(self):
        assert OpStats(nodes_visited=1).work >= 1


class TestTreeConfig:
    def test_defaults_valid(self):
        c = TreeConfig()
        assert c.leaf_capacity == 64

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"leaf_capacity": 1},
            {"fanout": 1},
            {"key_kind": "weird"},
            {"insert_policy": "nope"},
            {"split_policy": "nope"},
            {"mds_max_intervals": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            TreeConfig(**kwargs)

    def test_frozen(self):
        c = TreeConfig()
        with pytest.raises(AttributeError):
            c.leaf_capacity = 10

"""Unit and property tests for MDS (interval-set) keys."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.olap.keys import Box
from repro.olap.mds import MDS


def box(lo, hi):
    return Box(np.array(lo, dtype=np.int64), np.array(hi, dtype=np.int64))


class TestConstruction:
    def test_empty(self):
        m = MDS.empty(2)
        assert m.is_empty()
        assert m.num_dims == 2

    def test_from_point(self):
        m = MDS.from_point(np.array([3, 5]))
        assert m.covers_point([3, 5])
        assert not m.covers_point([3, 6])

    def test_from_box(self):
        m = MDS.from_box(box([0, 0], [4, 4]))
        assert m.covers_point([2, 2])
        assert m.mbr() == box([0, 0], [4, 4])

    def test_explicit_intervals(self):
        m = MDS([[(0, 3), (10, 12)], [(5, 5)]])
        assert m.covers_point([2, 5])
        assert m.covers_point([11, 5])
        assert not m.covers_point([5, 5])

    def test_rejects_overlapping_intervals(self):
        with pytest.raises(ValueError):
            MDS([[(0, 5), (3, 8)]])

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            MDS([], max_intervals=0)


class TestExpansion:
    def test_expand_point_adds_interval(self):
        m = MDS.from_point(np.array([0, 0]))
        assert m.expand_point_inplace([10, 0])
        assert m.covers_point([10, 0])
        assert not m.covers_point([5, 0])  # gap preserved: MDS is tight

    def test_expand_point_merges_adjacent(self):
        m = MDS.from_point(np.array([4]))
        m.expand_point_inplace([5])
        assert m.intervals[0] == [[4, 5]]

    def test_expand_point_noop_when_covered(self):
        m = MDS.from_box(box([0], [9]))
        assert not m.expand_point_inplace([5])

    def test_cap_forces_coalescing(self):
        m = MDS.empty(1, max_intervals=2)
        m.expand_point_inplace([0])
        m.expand_point_inplace([10])
        m.expand_point_inplace([12])  # closest to 10 -> merged with it
        assert m.intervals[0] == [[0, 0], [10, 12]]
        m.expand_point_inplace([100])
        assert len(m.intervals[0]) == 2

    def test_expand_with_other_mds(self):
        a = MDS.from_point(np.array([0, 0]))
        b = MDS.from_point(np.array([9, 9]))
        assert a.expand_inplace(b)
        assert a.covers_point([9, 9])
        assert a.covers_point([0, 0])

    def test_expand_box(self):
        m = MDS.empty(2)
        assert m.expand_box_inplace(box([1, 1], [2, 2]))
        assert m.covers_point([2, 1])
        assert not m.expand_box_inplace(box([1, 1], [2, 2]))


class TestPredicates:
    def test_intersects_box(self):
        m = MDS([[(0, 3), (10, 12)], [(0, 9)]])
        assert m.intersects_box(box([2, 5], [4, 6]))
        assert not m.intersects_box(box([5, 0], [8, 9]))  # falls in the gap

    def test_within_box(self):
        m = MDS([[(2, 3), (5, 6)], [(1, 1)]])
        assert m.within_box(box([0, 0], [9, 9]))
        assert not m.within_box(box([3, 0], [9, 9]))

    def test_empty_behaviour(self):
        m = MDS.empty(2)
        assert not m.intersects_box(box([0, 0], [9, 9]))
        assert m.within_box(box([0, 0], [9, 9]))


class TestMeasures:
    def test_side_lengths_sum_intervals(self):
        m = MDS([[(0, 3), (10, 12)]])
        assert m.side_lengths().tolist() == [7.0]

    def test_overlap_lengths(self):
        a = MDS([[(0, 5), (10, 15)]])
        b = MDS([[(4, 11)]])
        assert a.overlap_lengths(b).tolist() == [2.0 + 2.0]

    def test_log_overlap_volume_disjoint(self):
        a = MDS([[(0, 5)], [(0, 5)]])
        b = MDS([[(7, 9)], [(0, 5)]])
        assert a.log_overlap_volume(b) == float("-inf")

    def test_log_volume(self):
        m = MDS([[(0, 7)], [(0, 3)]])
        assert m.log_volume() == pytest.approx(3.0 + 2.0)


class TestTightness:
    def test_mds_tighter_than_mbr_on_clustered_data(self):
        """The motivating property: two clusters -> MBR covers the gap, MDS not."""
        m = MDS.empty(1)
        for v in [0, 1, 2, 100, 101, 102]:
            m.expand_point_inplace([v])
        assert m.side_lengths()[0] == 6.0
        mbr = m.mbr()
        assert mbr.side_lengths()[0] == 103.0

    def test_copy_independent(self):
        a = MDS.from_point(np.array([1]))
        b = a.copy()
        b.expand_point_inplace([50])
        assert not a.covers_point([50])


@given(
    st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=30),
    st.integers(min_value=1, max_value=6),
)
def test_mds_always_covers_inserted_points(values, cap):
    """Property: every inserted point stays covered regardless of coalescing."""
    m = MDS.empty(1, max_intervals=cap)
    for v in values:
        m.expand_point_inplace([v])
        assert m.covers_point([v])
    for v in values:
        assert m.covers_point([v])
    assert len(m.intervals[0]) <= cap
    # intervals stay sorted and disjoint
    ivs = m.intervals[0]
    for a, b in zip(ivs, ivs[1:]):
        assert a[1] < b[0] - 1 or a[1] < b[0]


@given(
    st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=20),
    st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=20),
)
def test_union_covers_both(xs, ys):
    """Property: union of two MDS covers everything either one covered."""
    a = MDS.empty(1)
    b = MDS.empty(1)
    for x in xs:
        a.expand_point_inplace([x])
    for y in ys:
        b.expand_point_inplace([y])
    u = a.union(b)
    for v in xs + ys:
        assert u.covers_point([v])


@given(st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=15))
def test_mbr_contains_mds(values):
    """Property: the MBR of an MDS contains every covered point."""
    m = MDS.empty(1, max_intervals=3)
    for v in values:
        m.expand_point_inplace([v])
    mbr = m.mbr()
    for v in range(61):
        if m.covers_point([v]):
            assert mbr.contains_point(np.array([v]))

"""Unit tests for Worker and Server entities in isolation."""

import numpy as np
import pytest

from repro.cluster.cost import CostModel
from repro.cluster.image import ShardInfo
from repro.cluster.server import Server
from repro.cluster.simclock import SimClock
from repro.cluster.transport import Entity, LatencyModel, Message, Transport
from repro.cluster.worker import Worker
from repro.cluster.zookeeper import Zookeeper
from repro.core import HilbertPDCTree, TreeConfig
from repro.olap.keys import Box
from repro.olap.query import full_query


class Sink(Entity):
    name = "sink"

    def __init__(self):
        self.received = []

    def receive(self, msg):
        self.received.append(msg)


@pytest.fixture
def rig(schema):
    clock = SimClock()
    transport = Transport(clock, LatencyModel(jitter=0.0))
    zk = Zookeeper(clock)
    return clock, transport, zk


def make_worker(rig, schema, wid=0):
    clock, transport, zk = rig
    return Worker(
        wid,
        clock,
        transport,
        zk,
        schema,
        tree_config=TreeConfig(leaf_capacity=16, fanout=8),
    )


def install(worker, schema, batch, shard_id=1):
    store = HilbertPDCTree.from_batch(schema, batch, worker.tree_config)
    worker.install_shard(shard_id, store)
    return store


class TestWorkerInsert:
    def test_insert_then_ack(self, rig, schema, batch):
        clock, transport, zk = rig
        w = make_worker(rig, schema)
        install(w, schema, batch)
        sink = Sink()
        coords = batch.coords[0]
        w.receive(Message("insert", (1, coords, 2.0, 99, 99, sink)))
        clock.run()
        assert w.total_items() == len(batch) + 1
        assert sink.received[0].kind == "insert_ack"
        assert sink.received[0].payload == (99, 0)

    def test_unknown_shard_nacks(self, rig, schema, batch):
        clock, transport, zk = rig
        w = make_worker(rig, schema)
        sink = Sink()
        w.receive(Message("insert", (42, batch.coords[0], 1.0, 5, 5, sink)))
        clock.run()
        assert sink.received[0].kind == "insert_nack"

    def test_frozen_shard_queues(self, rig, schema, batch):
        clock, transport, zk = rig
        w = make_worker(rig, schema)
        install(w, schema, batch)
        w.frozen.add(1)
        w.queues[1] = HilbertPDCTree(schema, w.tree_config)
        sink = Sink()
        w.receive(Message("insert", (1, batch.coords[0], 1.0, 5, 5, sink)))
        clock.run()
        assert len(w.queues[1]) == 1
        assert len(w.shards[1]) == len(batch)  # shard untouched


class TestWorkerQuery:
    def test_query_full(self, rig, schema, batch):
        clock, transport, zk = rig
        w = make_worker(rig, schema)
        install(w, schema, batch)
        sink = Sink()
        box = full_query(schema).box
        w.receive(Message("query", (7, [1], box.to_tuple(), sink)))
        clock.run()
        msg = sink.received[0]
        assert msg.kind == "query_result"
        token, agg_t, searched, wid, missing = msg.payload
        assert token == 7
        assert agg_t[0] == len(batch)
        assert searched == 1
        assert missing == 0

    def test_query_includes_queue(self, rig, schema, batch):
        clock, transport, zk = rig
        w = make_worker(rig, schema)
        install(w, schema, batch)
        w.frozen.add(1)
        w.queues[1] = HilbertPDCTree(schema, w.tree_config)
        w.queues[1].insert(batch.coords[0], 5.0)
        sink = Sink()
        box = full_query(schema).box
        w.receive(Message("query", (7, [1], box.to_tuple(), sink)))
        clock.run()
        assert sink.received[0].payload[1][0] == len(batch) + 1

    def test_query_through_mapping(self, rig, schema, batch):
        """Queries addressed to a split parent reach both children."""
        clock, transport, zk = rig
        w = make_worker(rig, schema)
        store = install(w, schema, batch)
        plane = store.split_query()
        low, high = store.split(plane)
        w.shards[10] = low
        w.shards[11] = high
        del w.shards[1]
        w.mapping[1] = (plane, 10, 11)
        sink = Sink()
        box = full_query(schema).box
        w.receive(Message("query", (3, [1], box.to_tuple(), sink)))
        clock.run()
        token, agg_t, searched, _, _missing = sink.received[0].payload
        assert agg_t[0] == len(batch)
        assert searched == 2


class TestWorkerSplit:
    def test_split_shard_lifecycle(self, rig, schema, batch):
        clock, transport, zk = rig
        w = make_worker(rig, schema)
        install(w, schema, batch)
        sink = Sink()
        w.receive(Message("split_shard", (1, 100, 101, sink)))
        clock.run()
        assert sink.received[0].kind == "split_done"
        assert 100 in w.shards and 101 in w.shards and 1 not in w.shards
        assert 1 in w.mapping
        assert len(w.shards[100]) + len(w.shards[101]) == len(batch)
        # zookeeper published the new shards and dropped the old one
        assert zk.get("/shards/100") is not None
        assert zk.get("/shards/101") is not None
        assert not zk.exists("/shards/1")

    def test_split_missing_shard_fails(self, rig, schema):
        clock, transport, zk = rig
        w = make_worker(rig, schema)
        sink = Sink()
        w.receive(Message("split_shard", (9, 100, 101, sink)))
        clock.run()
        assert sink.received[0].kind == "split_failed"

    def test_insert_resolution_after_split(self, rig, schema, batch):
        clock, transport, zk = rig
        w = make_worker(rig, schema)
        install(w, schema, batch)
        sink = Sink()
        w.receive(Message("split_shard", (1, 100, 101, sink)))
        clock.run()
        plane, low, high = w.mapping[1]
        coords = batch.coords[0]
        expected = low if coords[plane.dim] <= plane.value else high
        before = len(w.shards[expected])
        w.receive(Message("insert", (1, coords, 1.0, 5, 5, sink)))
        clock.run()
        assert len(w.shards[expected]) == before + 1


class TestWorkerMigration:
    def test_migration_moves_shard(self, rig, schema, batch):
        clock, transport, zk = rig
        src = make_worker(rig, schema, wid=0)
        dst = make_worker(rig, schema, wid=1)
        install(src, schema, batch)
        sink = Sink()
        src.receive(Message("migrate_shard", (1, dst, sink)))
        clock.run()
        assert sink.received[-1].kind == "migrate_done"
        assert 1 not in src.shards
        assert len(dst.shards[1]) == len(batch)
        # zookeeper reflects the new owner
        assert zk.get("/shards/1")[2] == 1

    def test_queued_inserts_follow_migration(self, rig, schema, batch):
        clock, transport, zk = rig
        src = make_worker(rig, schema, wid=0)
        dst = make_worker(rig, schema, wid=1)
        install(src, schema, batch)
        sink = Sink()
        src.receive(Message("migrate_shard", (1, dst, sink)))
        # while frozen, an insert arrives at the source
        src.receive(Message("insert", (1, batch.coords[0], 9.0, 4, 4, sink)))
        clock.run()
        assert len(dst.shards[1]) == len(batch) + 1

    def test_migrate_missing_shard_fails(self, rig, schema):
        clock, transport, zk = rig
        src = make_worker(rig, schema, wid=0)
        dst = make_worker(rig, schema, wid=1)
        sink = Sink()
        src.receive(Message("migrate_shard", (7, dst, sink)))
        clock.run()
        assert sink.received[0].kind == "migrate_failed"


class TestServer:
    def make_server(self, rig, schema, workers):
        clock, transport, zk = rig
        return Server(
            0, clock, transport, zk, schema, workers, sync_period=1.0
        )

    def test_insert_roundtrip(self, rig, schema, batch):
        clock, transport, zk = rig
        w = make_worker(rig, schema)
        install(w, schema, batch)
        server = self.make_server(rig, schema, {0: w})
        server.load_image()
        sink = Sink()
        server.receive(
            Message("client_insert", (1, batch.coords[0], 1.0, sink))
        )
        clock.run_until(1.0 - 1e-9)  # avoid periodic sync tail
        assert sink.received[0].kind == "insert_done"
        assert w.total_items() == len(batch) + 1

    def test_query_roundtrip(self, rig, schema, batch):
        clock, transport, zk = rig
        w = make_worker(rig, schema)
        install(w, schema, batch)
        server = self.make_server(rig, schema, {0: w})
        server.load_image()
        sink = Sink()
        server.receive(
            Message("client_query", (1, full_query(schema), sink))
        )
        clock.run_until(0.9)
        msg = sink.received[0]
        assert msg.kind == "query_done"
        _tok, _t0, agg, searched, _cov, achieved, _stale, _src = msg.payload
        assert agg.count == len(batch)
        assert searched >= 1

    def test_dirty_boxes_synced(self, rig, schema, batch):
        clock, transport, zk = rig
        w = make_worker(rig, schema)
        install(w, schema, batch)
        server = self.make_server(rig, schema, {0: w})
        server.load_image()
        # force an expansion: a point outside the current shard box
        outside = schema.leaf_limits.copy()
        sink = Sink()
        server.receive(Message("client_insert", (2, outside, 1.0, sink)))
        clock.run_until(0.5)
        assert server.image.dirty
        clock.run_until(1.5)  # past the sync tick
        assert not server.image.dirty
        assert zk.get("/boxes/1") is not None

    def test_box_event_expands_other_server(self, rig, schema, batch):
        clock, transport, zk = rig
        w = make_worker(rig, schema)
        install(w, schema, batch)
        s0 = self.make_server(rig, schema, {0: w})
        clock2_servers_share = Server(
            1, clock, transport, zk, schema, {0: w}, sync_period=1.0
        )
        s0.load_image()
        clock2_servers_share.load_image()
        from repro.cluster.wire import key_to_wire

        big = Box(np.zeros(schema.num_dims, dtype=np.int64), schema.leaf_limits)
        zk.set("/boxes/1", key_to_wire(big))
        clock.run_until(0.5)
        info = clock2_servers_share.image.get(1)
        assert info.box.contains_point(schema.leaf_limits)

    def test_shard_event_adds_and_removes(self, rig, schema):
        clock, transport, zk = rig
        w = make_worker(rig, schema)
        server = self.make_server(rig, schema, {0: w})
        info = ShardInfo(
            5, Box(np.zeros(3, dtype=np.int64), np.ones(3, dtype=np.int64)), 0
        )
        zk.set("/shards/5", info.to_wire())
        clock.run_until(0.5)
        assert 5 in server.image
        zk.delete("/shards/5")
        clock.run_until(0.9)
        assert 5 not in server.image


class TestCostModel:
    def test_monotone_in_work(self):
        from repro.core.config import OpStats

        cost = CostModel()
        small = OpStats(nodes_visited=1)
        big = OpStats(nodes_visited=100, items_scanned=1000)
        assert cost.insert_time(big) > cost.insert_time(small)
        assert cost.query_time(big) > cost.query_time(small)

    def test_bulk_cheaper_per_item(self):
        cost = CostModel()
        per_item_bulk = cost.bulk_time(1000) / 1000
        from repro.core.config import OpStats

        per_item_point = cost.insert_time(OpStats(nodes_visited=4))
        assert per_item_bulk < per_item_point / 5

    def test_all_times_positive(self):
        cost = CostModel()
        assert cost.split_time(100) > 0
        assert cost.serialize_time(100) > 0
        assert cost.deserialize_time(100) > 0
        assert cost.route_time(10) > 0
        assert cost.merge_time(0) > 0

"""Shard-op lifecycle: machine unit tests and chaos invariants.

The :class:`~repro.cluster.lifecycle.ShardOpMachine` owns every
in-flight split/migrate/restore -- busy tracking, per-kind budgets,
give-up timers, kind-matched release, spans.  The first half drives the
machine directly (no cluster); the second half asserts its invariants
end to end under chaos: no shard stays busy past its timeout, budgets
return to zero at quiescence, every ``manager.*`` span is finished or
reported open, and mapping-table chains stay acyclic and resolvable.
"""

import pytest

from repro.cluster import (
    BalancerPolicy,
    ClusterConfig,
    FaultPlan,
    Message,
    ShardOpMachine,
    VOLAPCluster,
)

from repro.cluster.lifecycle import (
    ABORTED,
    CUTOVER,
    DONE,
    INSTALLING,
    PLANNED,
    TIMED_OUT,
    TRANSFERRING,
)
from repro.cluster.simclock import SimClock
from repro.core import TreeConfig
from repro.obs import Observability
from repro.workloads.streams import Operation

from .conftest import make_schema, random_batch
from .test_chaos import CHAOS_RETRY

#: deterministic-replay and model-timer assertions; see conftest
pytestmark = pytest.mark.sim_only


class _Transport:
    """The only transport surface the machine touches is ``obs``."""

    def __init__(self, obs=None):
        self.obs = obs


def make_machine(obs=None, **knobs):
    clock = SimClock()
    m = ShardOpMachine(clock, _Transport(obs))
    for k, v in knobs.items():
        setattr(m, k, v)
    return clock, m


# -- machine unit tests ----------------------------------------------------


def test_happy_path_records_transitions():
    clock, m = make_machine()
    op = m.admit("split", 7, src=0)
    assert op is not None and m.busy(7) and m.balance_inflight == 1
    m.dispatched(7)
    assert op.state == TRANSFERRING
    assert m.complete(7, "split", ok=True)
    assert op.state == DONE and op.terminal
    assert m.quiescent() and m.balance_inflight == 0
    assert [s for _, s in op.history] == [PLANNED, TRANSFERRING, DONE]
    assert m.log == [op]


def test_busy_shard_rejects_second_op():
    _, m = make_machine()
    assert m.admit("split", 7) is not None
    assert m.admit("migrate", 7) is None
    assert m.admit("restore", 7) is None
    assert m.started == {
        "split": 1,
        "migrate": 0,
        "restore": 0,
        "replicate": 0,
        "promote": 0,
        "spill": 0,
        "rehydrate": 0,
    }


def admit_dispatched(m, kind, sid, **kw):
    """Admit + dispatch, the way the manager always pairs them."""
    op = m.admit(kind, sid, **kw)
    if op is not None:
        m.dispatched(sid)
    return op


def test_balance_budget_is_enforced():
    _, m = make_machine(max_inflight=2)
    assert admit_dispatched(m, "split", 1) is not None
    assert admit_dispatched(m, "migrate", 2) is not None
    assert admit_dispatched(m, "split", 3) is None  # pool exhausted
    assert m.complete(2, "migrate")
    assert admit_dispatched(m, "split", 3) is not None  # slot freed


def test_restore_budget_is_a_separate_pool():
    _, m = make_machine(max_inflight=1, max_inflight_restores=2)
    assert admit_dispatched(m, "split", 1) is not None  # balance pool full
    assert admit_dispatched(m, "restore", 2) is not None
    assert admit_dispatched(m, "restore", 3) is not None
    assert admit_dispatched(m, "restore", 4) is None  # restore pool full
    assert admit_dispatched(m, "migrate", 5) is None  # balance still full
    assert m.balance_inflight == 1 and m.restore_inflight == 2
    assert m.complete(3, "restore")
    assert admit_dispatched(m, "restore", 4) is not None


def test_stale_done_of_wrong_kind_is_ignored():
    """Regression: a stale/duplicated ``split_done`` for a shard that is
    now busy with a *restore* must release nothing (the old ``_release``
    ignored its ``expected_kind`` and popped the restore's entry)."""
    _, m = make_machine()
    op = admit_dispatched(m, "restore", 7)
    assert m.complete(7, "split") is False
    assert m.complete(7, "migrate") is False
    assert m.active(7) is op and op.state == TRANSFERRING
    assert m.restore_inflight == 1 and m.balance_inflight == 0
    assert m.complete(7, "restore") is True
    assert m.restore_inflight == 0


def test_timeout_fires_and_late_ack_is_ignored():
    clock, m = make_machine(op_timeout=2.0)
    fired = []
    m.on_timeout = fired.append
    op = m.admit("migrate", 7, src=1, dst=2)
    m.dispatched(7)
    clock.run_until(1.9)
    assert m.busy(7) and not fired
    clock.run_until(2.1)
    assert not m.busy(7)
    assert op.state == TIMED_OUT and m.timed_out == 1
    assert m.balance_inflight == 0
    assert fired == [op]
    # the straggler ack that eventually arrives releases nothing
    assert m.complete(7, "migrate") is False
    assert m.timed_out == 1 and m.balance_inflight == 0


def test_completion_disarms_timeout():
    clock, m = make_machine(op_timeout=2.0)
    m.admit("split", 7)
    m.dispatched(7)
    assert m.complete(7, "split")
    clock.run_until(5.0)
    assert m.timed_out == 0
    # the shard can go busy again without the old timer interfering
    op2 = m.admit("split", 7)
    clock.run_until(6.0)
    assert m.active(7) is op2


def test_failure_ack_records_aborted():
    _, m = make_machine()
    op = m.admit("split", 7)
    m.dispatched(7)
    assert m.complete(7, "split", ok=False)
    assert op.state == ABORTED


def test_worker_phases_advance_in_order():
    _, m = make_machine()
    op = m.admit("migrate", 7, src=0, dst=1)
    m.dispatched(7)
    m.advance(7, INSTALLING)
    m.advance(7, INSTALLING)  # repeat is a no-op, not an error
    m.advance(7, CUTOVER)
    assert m.complete(7, "migrate")
    assert [s for _, s in op.history] == [
        PLANNED,
        TRANSFERRING,
        INSTALLING,
        CUTOVER,
        DONE,
    ]


def test_illegal_transition_raises():
    _, m = make_machine()
    op = m.admit("split", 7)
    with pytest.raises(ValueError):
        m._transition(op, INSTALLING)  # PLANNED cannot skip TRANSFERRING


def test_spans_open_and_close_with_ops():
    clock = SimClock()
    obs = Observability(clock, profile_trees=False)
    m = ShardOpMachine(clock, _Transport(obs))
    m.op_timeout = 1.0
    m.admit("split", 1)
    m.dispatched(1)
    m.admit("restore", 2)
    m.dispatched(2)
    m.complete(1, "split", ok=True)
    clock.run_until(2.0)  # restore times out
    spans = {s.name: s for s in obs.tracer.spans}
    assert spans["manager.split"].closed and spans["manager.split"].tags["ok"]
    timed = spans["manager.restore"]
    assert timed.closed and timed.tags["timeout"] and not timed.tags["ok"]
    assert obs.tracer.open_spans() == []


def test_transition_counters_land_in_registry():
    clock = SimClock()
    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    m = ShardOpMachine(clock, _Transport(), registry=reg)
    m.admit("split", 1)
    m.dispatched(1)
    m.complete(1, "split")
    fam = reg.snapshot()["counters"]["volap_lifecycle_transitions_total"]
    rows = {
        (s["labels"]["kind"], s["labels"]["state"]): s["value"]
        for s in fam["series"]
    }
    assert rows[("split", PLANNED)] == 1
    assert rows[("split", TRANSFERRING)] == 1
    assert rows[("split", DONE)] == 1


# -- manager-level regression (satellite: kind-matched release) ------------


def failover_cluster(schema, seed=3, shards_per_worker=2, **balancer_kw):
    kw = dict(max_shard_items=100_000, scan_period=0.1, op_timeout=2.0)
    kw.update(balancer_kw)
    cfg = ClusterConfig(
        num_workers=3,
        num_servers=1,
        tree_config=TreeConfig(leaf_capacity=32, fanout=8),
        balancer=BalancerPolicy(**kw),
        retry=CHAOS_RETRY,
        heartbeat_period=0.1,
        heartbeat_miss_k=3,
        checkpoint_period=0.3,
        seed=seed,
    )
    cluster = VOLAPCluster(schema, cfg)
    cluster.bootstrap(
        random_batch(schema, 1500, seed=seed),
        shards_per_worker=shards_per_worker,
    )
    return cluster


def wait_for_restore(cluster, max_steps=200_000):
    for _ in range(max_steps):
        active = [
            op
            for op in cluster.manager.lifecycle.ops.values()
            if op.kind == "restore"
        ]
        if active:
            return active[0]
        if not cluster.clock.step():
            break
    raise AssertionError("no restore op became active")


@pytest.mark.parametrize("stale_kind", ["split_done", "migrate_done"])
def test_stale_done_cannot_corrupt_inflight_restore(stale_kind):
    schema = make_schema()
    cluster = failover_cluster(schema)
    cluster.run_for(1.0)
    cluster.crash_worker(0)
    op = wait_for_restore(cluster)
    sid = op.shard_id
    splits, migrations = cluster.stats.splits, cluster.stats.migrations
    payload = (
        (sid, 9999, 10000, 0) if stale_kind == "split_done" else (sid, 0, 1)
    )
    cluster.manager.receive(Message(stale_kind, payload, sender=None))
    lc = cluster.manager.lifecycle
    assert lc.active(sid) is op, "stale ack released an in-flight restore"
    assert (cluster.stats.splits, cluster.stats.migrations) == (
        splits,
        migrations,
    ), "stale ack was recorded as a completed balancing op"
    assert lc.balance_inflight == 0, "stale ack corrupted the budget"
    cluster.run_for(15.0)
    assert cluster.manager._pending_restores == set()
    assert lc.quiescent()
    assert lc.balance_inflight == 0 and lc.restore_inflight == 0


def test_restore_budget_bounds_mass_failover():
    """Satellite: restores draw from ``max_inflight_restores``, so a
    mass failover cannot stampede one survivor with deserialize work."""
    schema = make_schema()
    cluster = failover_cluster(
        schema, shards_per_worker=6, max_inflight_restores=2
    )
    cluster.run_for(1.0)
    lc = cluster.manager.lifecycle
    cluster.crash_worker(0)  # owns 6 shards; the restore budget is 2
    peak = 0
    horizon = cluster.clock.now + 30.0
    # sample after every event so no transient in-flight state is missed
    while cluster.clock.now < horizon:
        if not cluster.clock.step():
            break
        peak = max(peak, lc.restore_inflight)
        if peak and not cluster.manager._pending_restores and lc.quiescent():
            break
    assert peak == 2, f"restore pool peaked at {peak}, budget is 2"
    assert cluster.manager._pending_restores == set()
    assert cluster.manager.restores_done == 6
    assert lc.quiescent() and lc.restore_inflight == 0


# -- chaos invariant suite -------------------------------------------------


def resolve_chain(worker, sid, limit=128):
    """Resolve a mapping chain by hand with a hard step bound, so a
    cyclic or unbounded chain fails the test instead of hanging it."""
    out, stack, steps = [], [sid], 0
    while stack:
        steps += 1
        assert steps <= limit, f"mapping chain from {sid} too deep or cyclic"
        s = stack.pop()
        entry = worker.mapping.get(s)
        if entry is None:
            out.append(s)
        else:
            _, low, high = entry
            stack.append(high)
            stack.append(low)
    return out


def assert_lifecycle_invariants(cluster):
    lc = cluster.manager.lifecycle
    now = cluster.clock.now
    # 1. no shard stays busy past its give-up timer
    for op in lc.ops.values():
        assert now - op.started_at <= lc.op_timeout + 1e-9, (
            f"{op.kind} of shard {op.shard_id} busy past its timeout"
        )
    # 2. the budget pools always equal the live op counts
    kinds = [op.kind for op in lc.ops.values()]
    assert lc.balance_inflight == sum(k in ("split", "migrate") for k in kinds)
    assert lc.restore_inflight == sum(k in ("restore", "promote") for k in kinds)
    assert lc.replica_inflight == sum(k == "replicate" for k in kinds)
    assert lc.residency_inflight == sum(
        k in ("spill", "rehydrate") for k in kinds
    )
    assert 0 <= lc.balance_inflight <= lc.max_inflight
    assert 0 <= lc.restore_inflight <= lc.max_inflight_restores
    assert 0 <= lc.replica_inflight <= lc.max_inflight_replications
    assert 0 <= lc.residency_inflight <= lc.max_inflight_residency
    # 3. mapping chains stay acyclic and resolve to known shard ids
    known = set()
    for w in cluster.workers.values():
        known |= set(w.shards) | set(w.queues) | set(w.mapping)
    known |= {int(name) for name in cluster.zk.ls("/shards")}
    for w in cluster.workers.values():
        for sid in list(w.mapping):
            for leaf in resolve_chain(w, sid):
                assert leaf in known, (
                    f"mapping chain from {sid} ends at unknown shard {leaf}"
                )


@pytest.mark.parametrize("seed", [1, 5, 11])
def test_lifecycle_invariants_under_chaos(seed):
    """Fuzz: splits + migrations + crash/restart under drop, duplicate
    and delay faults on the balancing protocol, with invariants checked
    throughout and at quiescence."""
    schema = make_schema()
    cfg = ClusterConfig(
        num_workers=3,
        num_servers=1,
        tree_config=TreeConfig(leaf_capacity=32, fanout=8),
        balancer=BalancerPolicy(
            max_shard_items=300,
            imbalance_ratio=1.2,
            min_migrate_items=50,
            scan_period=0.1,
            op_timeout=2.0,
        ),
        retry=CHAOS_RETRY,
        heartbeat_period=0.1,
        heartbeat_miss_k=3,
        checkpoint_period=0.3,
        seed=seed,
    )
    cluster = VOLAPCluster(schema, cfg)
    cluster.observe(profile_trees=False)
    cluster.bootstrap(random_batch(schema, 1200, seed=seed), shards_per_worker=2)
    cluster.inject_faults(
        FaultPlan()
        .drop(
            0.08,
            kinds={"split_done", "migrate_done", "migrate_in", "restore_shard"},
        )
        .duplicate(
            0.3, kinds={"split_done", "migrate_done", "restore_done"}
        )
        .delay(0.15, extra=0.5),
        seed=seed * 13 + 1,
    )
    sess = cluster.session(0, concurrency=4)
    extra = random_batch(schema, 150, seed=seed + 100)
    sess.run_stream(
        [
            Operation("insert", coords=extra.coords[i], measure=1.0)
            for i in range(len(extra))
        ]
    )
    for i in range(40):
        cluster.run_for(0.25)
        if i == 8:
            cluster.crash_worker(seed % 3)
        if i == 24:
            cluster.restart_worker(seed % 3)
        assert_lifecycle_invariants(cluster)
    cluster.clear_faults()
    cluster.run_until_clients_done(max_virtual=120.0)
    # drain to quiescence: no op outlives faults by more than a timeout
    for _ in range(200):
        cluster.run_for(0.25)
        assert_lifecycle_invariants(cluster)
        if (
            cluster.manager.lifecycle.quiescent()
            and not cluster.manager._pending_restores
        ):
            break
    lc = cluster.manager.lifecycle
    assert lc.quiescent(), "in-flight ops never drained"
    assert lc.balance_inflight == 0 and lc.restore_inflight == 0
    # every op ever admitted reached a terminal state
    assert all(op.terminal for op in lc.log)
    done = sum(op.state == DONE for op in lc.log)
    assert done > 0, "chaos run never completed a single op"
    # every manager.* span is finished or reported open
    obs = cluster.obs
    open_ids = {id(s) for s in obs.tracer.open_spans()}
    for span in obs.tracer.spans:
        if span.name.startswith("manager."):
            assert span.closed or id(span) in open_ids
    assert not any(
        s.name.startswith("manager.") for s in obs.tracer.open_spans()
    ), "a manager span leaked past quiescence"

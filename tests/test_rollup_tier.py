"""Rollup cache tier: kernel units, store policy, adaptive routing,
and the differential/chaos guarantees of the unified query API.

The strict tests use integer-valued measures so float64 sums are exact
regardless of merge order -- "bit-identical" then means every Aggregate
field compares equal between the rollup path and a tree descent over
the same data.
"""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, RollupConfig, VOLAPCluster
from repro.core.aggregates import Aggregate
from repro.olap.keys import Box
from repro.olap.query import Query, full_query
from repro.olap.rollup import (
    CubeCells,
    CubeKey,
    accumulate_cells,
    cell_indices,
    cube_candidate,
    cube_ranges,
    cube_shape,
)
from repro.olap.rollup_store import RollupStore
from repro.workloads.streams import Operation

from .conftest import make_schema, random_batch

#: deterministic-replay and model-timer assertions; see conftest
pytestmark = pytest.mark.sim_only


SCHEMA_SPEC = [[8, 12], [4, 16]]  # small: cubes stay admissible


def int_batch(schema, n, seed):
    b = random_batch(schema, n, seed=seed)
    b.measures[:] = np.floor(b.measures * 100.0)
    return b


def insert_ops(batch):
    return [
        Operation(
            "insert", coords=batch.coords[i], measure=float(batch.measures[i])
        )
        for i in range(len(batch))
    ]


def brute(schema, batch, box):
    keep = np.all(
        (batch.coords >= box.lo) & (batch.coords <= box.hi), axis=1
    )
    m = batch.measures[keep]
    if len(m) == 0:
        return Aggregate.empty()
    return Aggregate(len(m), float(m.sum()), float(m.min()), float(m.max()))


def make_cluster(schema, boot, *, rollup, seed=3, **kw):
    cluster = VOLAPCluster(
        schema,
        ClusterConfig(
            num_workers=kw.pop("num_workers", 3),
            num_servers=kw.pop("num_servers", 1),
            seed=seed,
            rollup=rollup,
            **kw,
        ),
    )
    cluster.bootstrap(boot)
    return cluster


def assert_same_agg(a: Aggregate, b: Aggregate) -> None:
    assert a.count == b.count
    assert a.total == b.total
    assert a.vmin == b.vmin
    assert a.vmax == b.vmax


def warm(cluster, query, rounds=4, budget=1.0):
    for _ in range(rounds):
        cluster.execute(query, max_staleness=budget)
    cluster.run_for(1.0)  # quiesce streams: acks, watermarks


# -- kernel units ------------------------------------------------------------


class TestCubeKernel:
    def test_cube_shape_and_indices(self):
        schema = make_schema(SCHEMA_SPEC)
        key = CubeKey.make(schema, [("d0", 1), ("d1", 1)])
        shape = cube_shape(schema, key)
        h0 = schema.dimensions[0].hierarchy
        h1 = schema.dimensions[1].hierarchy
        assert shape == (
            1 << (h0.total_bits - h0.suffix_bits(1)),
            1 << (h1.total_bits - h1.suffix_bits(1)),
        )
        coords = np.array([[0, 0], [1, 1]], dtype=np.int64)
        idx = cell_indices(schema, key, coords)
        s0 = h0.suffix_bits(1)
        s1 = h1.suffix_bits(1)
        want = (coords[:, 0] >> s0) * shape[1] + (coords[:, 1] >> s1)
        assert np.array_equal(idx, want)

    def test_leaf_key_is_identity(self):
        schema = make_schema(SCHEMA_SPEC)
        d0_depth = len(schema.dimensions[0].hierarchy.levels)
        key = CubeKey.make(schema, [("d0", d0_depth)])
        h0 = schema.dimensions[0].hierarchy
        assert cube_shape(schema, key)[0] == 1 << h0.total_bits

    def test_make_sorts_by_schema_order(self):
        schema = make_schema(SCHEMA_SPEC)
        a = CubeKey.make(schema, [("d1", 1), ("d0", 2)])
        b = CubeKey.make(schema, [("d0", 2), ("d1", 1)])
        assert a == b
        assert a.dims == ("d0", "d1")
        assert CubeKey.from_wire(a.to_wire()) == a

    def test_accumulate_matches_brute_force(self):
        schema = make_schema(SCHEMA_SPEC)
        batch = int_batch(schema, 500, seed=7)
        key = CubeKey.make(schema, [("d0", 1)])
        cells = accumulate_cells(schema, key, batch.coords, batch.measures)
        shape = cube_shape(schema, key)
        h0 = schema.dimensions[0].hierarchy
        width = 1 << h0.suffix_bits(1)
        total = Aggregate.empty()
        for g in range(shape[0]):
            got = cells.select(shape, [(g, g)])
            lo = np.array([g * width, 0], dtype=np.int64)
            hi = np.array(
                [g * width + width - 1, schema.leaf_limits[1]],
                dtype=np.int64,
            )
            want = brute(schema, batch, Box(lo, hi))
            assert_same_agg(got, want)
            total.merge(got)
        assert_same_agg(total, brute(schema, batch, full_query(schema).box))

    def test_global_cube_single_cell(self):
        schema = make_schema(SCHEMA_SPEC)
        batch = int_batch(schema, 200, seed=9)
        key = CubeKey((), ())
        cells = accumulate_cells(schema, key, batch.coords, batch.measures)
        assert cells.num_cells == 1
        got = cells.select((), [])
        assert_same_agg(got, brute(schema, batch, full_query(schema).box))

    def test_cube_ranges_alignment(self):
        schema = make_schema(SCHEMA_SPEC)
        key = CubeKey.make(schema, [("d0", 1)])
        h0 = schema.dimensions[0].hierarchy
        width = 1 << h0.suffix_bits(1)
        full = full_query(schema).box
        # aligned level-1 interval on the key dim: answerable
        lo = full.lo.copy()
        hi = full.hi.copy()
        lo[0], hi[0] = width, 2 * width - 1
        assert cube_ranges(schema, key, Box(lo, hi)) == [(1, 1)]
        # unaligned interval: not answerable
        hi2 = hi.copy()
        hi2[0] = 2 * width - 2
        assert cube_ranges(schema, key, Box(lo, hi2)) is None
        # constrained non-key dim: not answerable
        hi3 = hi.copy()
        hi3[1] = full.hi[1] - 1
        assert cube_ranges(schema, key, Box(lo, hi3)) is None
        # full box: trivially answerable by any cube
        assert cube_ranges(schema, key, full) is not None

    def test_cube_candidate_picks_coarsest(self):
        schema = make_schema(SCHEMA_SPEC)
        full = full_query(schema).box
        assert cube_candidate(schema, full) == CubeKey((), ())
        h0 = schema.dimensions[0].hierarchy
        width = 1 << h0.suffix_bits(1)
        lo = full.lo.copy()
        hi = full.hi.copy()
        lo[0], hi[0] = 0, width - 1
        assert cube_candidate(schema, Box(lo, hi)) == CubeKey.make(
            schema, [("d0", 1)]
        )
        # unaligned on d0: falls through to the leaf depth
        hi[0] = width - 2
        key = cube_candidate(schema, Box(lo, hi))
        assert key.dims == ("d0",)
        assert key.depths[0] == len(h0.levels)


# -- store policy ------------------------------------------------------------


class TestRollupStore:
    def test_demand_threshold_gates_admission(self):
        schema = make_schema(SCHEMA_SPEC)
        store = RollupStore(schema, admit_after=3)
        key = CubeKey((), ())
        assert store.note_miss(key, 0.0) is False
        assert store.note_miss(key, 0.0) is False
        assert store.note_miss(key, 0.0) is True
        assert store.admit(key, 0.0) is not None
        assert key in store

    def test_budget_evicts_coldest(self):
        schema = make_schema(SCHEMA_SPEC)
        k_cold = CubeKey.make(schema, [("d0", 1)])
        k_hot = CubeKey.make(schema, [("d1", 1)])
        k_new = CubeKey.make(schema, [("d0", 2)])
        cells = 1
        for n in cube_shape(schema, k_new):
            cells *= n
        store = RollupStore(
            schema, budget_bytes=cells * 32 + 256, admit_after=1
        )
        assert store.admit(k_cold, 0.0) is not None
        assert store.admit(k_hot, 0.0) is not None
        # cubes occupy bytes only once slabs install; fake one each
        for k in (k_cold, k_hot):
            cube = store.cubes[k]
            cube.slabs[0] = CubeCells(cube.num_cells)
        store.touch(k_hot, 1.0)
        store.touch(k_hot, 1.1)
        # make the incoming key hot enough to outrank the cold cube
        for t in (1.0, 1.05, 1.1):
            store.note_miss(k_new, t)
        assert store.admit(k_new, 1.2, shard_count=1) is not None
        assert k_cold not in store
        assert k_hot in store  # decayed hits beat the incoming demand
        assert store.evictions >= 1

    def test_oversized_key_refused(self):
        schema = make_schema()  # default: d0 has 8*12*31 leaves
        store = RollupStore(schema, max_cells=16)
        leaf = len(schema.dimensions[0].hierarchy.levels)
        big = CubeKey.make(schema, [("d0", leaf)])
        assert store.admit(big, 0.0) is None

    def test_match_prefers_fewest_cells(self):
        schema = make_schema(SCHEMA_SPEC)
        store = RollupStore(schema, admit_after=1)
        fine = CubeKey.make(schema, [("d0", 2)])
        coarse = CubeKey((), ())
        store.admit(fine, 0.0)
        store.admit(coarse, 0.0)
        cube, ranges = store.match(full_query(schema).box)
        assert cube.key == coarse  # 1 cell beats the level-2 grid
        assert ranges == []

    def test_missing_slab_reported(self):
        schema = make_schema(SCHEMA_SPEC)
        store = RollupStore(schema, admit_after=1)
        key = CubeKey((), ())
        cube = store.admit(key, 0.0)
        batch = int_batch(schema, 100, seed=3)
        cube.slabs[7] = accumulate_cells(
            schema, key, batch.coords, batch.measures
        )
        agg, missing = store.cube_answer(cube, [], [7, 9])
        assert missing == [9]
        assert agg.count == 100
        store.drop_shard(7)
        agg, missing = store.cube_answer(cube, [], [7, 9])
        assert missing == [7, 9]
        assert agg.count == 0


# -- unified API -------------------------------------------------------------


class TestUnifiedAPI:
    def setup_method(self):
        self.schema = make_schema(SCHEMA_SPEC)
        self.boot = int_batch(self.schema, 800, seed=2)

    def test_execute_shapes(self):
        cluster = make_cluster(self.schema, self.boot, rollup=None)
        q = full_query(self.schema)
        single = cluster.execute(q)
        assert single.value.count == len(self.boot)
        assert single.source == "tree"
        assert single.coverage == 1.0
        many = cluster.execute([q, q])
        assert isinstance(many, list) and len(many) == 2
        assert_same_agg(many[0].value, many[1].value)

    def test_routing_validation(self):
        cluster = make_cluster(self.schema, self.boot, rollup=None)
        with pytest.raises(ValueError, match="routing"):
            cluster.execute(full_query(self.schema), routing="warp")

    def test_per_query_fields_override_args(self):
        cluster = make_cluster(
            self.schema, self.boot, rollup=RollupConfig(admit_after=1)
        )
        q = full_query(self.schema)
        warm(cluster, q, rounds=3)
        pinned = Query(q.box, routing="tree", max_staleness=1.0)
        res = cluster.execute([pinned], routing="auto", max_staleness=1.0)
        assert res[0].source == "tree"

    def test_rollup_disabled_is_inert(self):
        cluster = make_cluster(self.schema, self.boot, rollup=None)
        q = full_query(self.schema)
        for _ in range(4):
            r = cluster.execute(q, max_staleness=1.0)
            assert r.source == "tree"
        snap = cluster.metrics.snapshot()
        for fam in list(snap["counters"]) + list(snap["gauges"]):
            assert "rollup" not in fam

    def test_query_singleton_shim(self):
        from repro.cluster import cluster as cluster_mod

        cluster = make_cluster(self.schema, self.boot, rollup=None)
        q = full_query(self.schema)
        cluster_mod._warned_batch_aliases.discard("query")
        with pytest.warns(DeprecationWarning, match="use VOLAPCluster.execute"):
            agg, achieved = cluster.query(q)
        assert agg.count == len(self.boot)
        assert achieved == 1.0

    def test_rollup_builder_cross_product(self):
        qs = Query.rollup(self.schema, group_by=("d0:1", "d1:1"))
        h0 = self.schema.dimensions[0].hierarchy
        h1 = self.schema.dimensions[1].hierarchy
        assert len(qs) == h0.levels[0].fanout * h1.levels[0].fanout
        assert all(q.group_levels == (("d0", 1), ("d1", 1)) for q in qs)
        paths = {q.group_path for q in qs}
        assert len(paths) == len(qs)

    def test_rollup_builder_where_restricts(self):
        qs = Query.rollup(
            self.schema, group_by=("d1:1",), where={"d0": (1, (2,))}
        )
        h1 = self.schema.dimensions[1].hierarchy
        assert len(qs) == h1.levels[0].fanout
        h0 = self.schema.dimensions[0].hierarchy
        width = 1 << h0.suffix_bits(1)
        for q in qs:
            assert q.box.lo[0] == 2 * width
            assert q.box.hi[0] == 3 * width - 1

    def test_rollup_builder_rejects_duplicates(self):
        with pytest.raises(ValueError, match="twice"):
            Query.rollup(self.schema, group_by=("d0:1", "d0:2"))
        with pytest.raises(ValueError, match="dim:level"):
            Query.rollup(self.schema, group_by=("d0",))


# -- satellite 3: budget-less stays pure tree descent ------------------------


class TestBudgetlessIdentity:
    def test_never_cube_routed_even_when_warm(self):
        schema = make_schema(SCHEMA_SPEC)
        boot = int_batch(schema, 1000, seed=4)
        cluster = make_cluster(
            schema, boot, rollup=RollupConfig(admit_after=1)
        )
        q = full_query(schema)
        warm(cluster, q, rounds=4)
        assert len(cluster.servers[0].router.store) >= 1
        for _ in range(3):
            r = cluster.execute(q)
            assert r.source == "tree"
            assert r.staleness == 0.0
        pinned = cluster.execute(q, routing="tree")
        assert_same_agg(r.value, pinned.value)
        assert_same_agg(r.value, brute(schema, boot, q.box))

    def test_budgetless_identical_under_racing_inserts(self):
        schema = make_schema(SCHEMA_SPEC)
        boot = int_batch(schema, 600, seed=5)
        stream = int_batch(schema, 300, seed=6)
        cluster = make_cluster(
            schema, boot, rollup=RollupConfig(admit_after=1)
        )
        q = full_query(schema)
        warm(cluster, q, rounds=3)
        sess = cluster.session(concurrency=4)
        sess.run_stream(insert_ops(stream))
        while not sess.done:
            r = cluster.execute(q)  # races the insert stream
            assert r.source == "tree"
            cluster.run_for(0.05)
        cluster.run_for(1.0)
        final = cluster.execute(q)
        assert final.source == "tree"
        want = brute(schema, boot, q.box)
        want.merge(brute(schema, stream, q.box))
        assert_same_agg(final.value, want)


# -- satellite 4: differential suite -----------------------------------------


CUBE_QUERIES = [
    ("global", lambda s: full_query(s)),
    ("d0-level1", lambda s: Query.rollup(s, group_by=("d0:1",))[1]),
    ("d0xd1", lambda s: Query.rollup(s, group_by=("d0:1", "d1:1"))[3]),
    ("d1-level2", lambda s: Query.rollup(s, group_by=("d1:2",))[5]),
]


class TestDifferential:
    @pytest.mark.parametrize("name,qf", CUBE_QUERIES)
    @pytest.mark.parametrize("budget", [5e-3, 1.0])
    def test_rollup_hit_bit_identical(self, name, qf, budget):
        schema = make_schema(SCHEMA_SPEC)
        boot = int_batch(schema, 900, seed=8)
        cluster = make_cluster(
            schema, boot, rollup=RollupConfig(admit_after=1)
        )
        q = qf(schema)
        warm(cluster, q, rounds=3, budget=budget)
        hit = cluster.execute(q, max_staleness=budget)
        tree = cluster.execute(q, routing="tree")
        assert hit.source == "rollup"
        assert hit.staleness <= budget
        assert_same_agg(hit.value, tree.value)
        assert_same_agg(tree.value, brute(schema, boot, q.box))

    def test_zero_budget_falls_back_to_tree(self):
        schema = make_schema(SCHEMA_SPEC)
        boot = int_batch(schema, 500, seed=9)
        cluster = make_cluster(
            schema, boot, rollup=RollupConfig(admit_after=1)
        )
        q = full_query(schema)
        warm(cluster, q, rounds=3)
        r = cluster.execute(q, max_staleness=0.0)
        # lag is measured against heartbeat age, never exactly zero
        assert r.source == "tree"
        assert_same_agg(r.value, brute(schema, boot, q.box))

    def test_forced_rollup_ignores_budget(self):
        schema = make_schema(SCHEMA_SPEC)
        boot = int_batch(schema, 500, seed=10)
        cluster = make_cluster(
            schema, boot, rollup=RollupConfig(admit_after=1)
        )
        q = full_query(schema)
        warm(cluster, q, rounds=3)
        r = cluster.execute(q, routing="rollup", max_staleness=0.0)
        assert r.source == "rollup"
        assert_same_agg(r.value, brute(schema, boot, q.box))

    def test_racing_inserts_converge_bit_identical(self):
        schema = make_schema(SCHEMA_SPEC)
        boot = int_batch(schema, 600, seed=11)
        stream = int_batch(schema, 400, seed=12)
        cluster = make_cluster(
            schema, boot, rollup=RollupConfig(admit_after=1), batch_size=8,
            batch_linger=5e-4,
        )
        q = full_query(schema)
        warm(cluster, q, rounds=3)
        sess = cluster.session(concurrency=8)
        sess.run_stream(insert_ops(stream))
        while not sess.done:
            r = cluster.execute(q, max_staleness=1.0)
            assert r.value.count <= len(boot) + len(stream)
            cluster.run_for(0.05)
        cluster.run_for(1.5)  # drain tees, acks, watermarks
        hit = cluster.execute(q, routing="rollup")
        tree = cluster.execute(q, routing="tree")
        assert hit.source == "rollup"
        want = brute(schema, boot, q.box)
        want.merge(brute(schema, stream, q.box))
        assert_same_agg(tree.value, want)
        assert_same_agg(hit.value, want)

    def test_hybrid_path_bit_identical(self):
        """Dropping one shard's slab forces rollup + tree delta; the
        merged answer must equal a pure descent."""
        schema = make_schema(SCHEMA_SPEC)
        boot = int_batch(schema, 800, seed=13)
        cluster = make_cluster(
            schema, boot, rollup=RollupConfig(admit_after=1)
        )
        q = full_query(schema)
        warm(cluster, q, rounds=3)
        router = cluster.servers[0].router
        sids = sorted(router.store.shard_ids())
        assert len(sids) >= 2
        # forget one shard's slab but keep its stream state intact:
        # plan() sees a missing slab -> that shard goes down the tree
        for cube in router.store.cubes.values():
            cube.slabs.pop(sids[0], None)
        hit = cluster.execute(q, max_staleness=1.0)
        assert hit.source == "hybrid"
        assert_same_agg(hit.value, brute(schema, boot, q.box))

    def test_eviction_mid_query_safe(self):
        """A cube evicted between routing and reply must not corrupt
        the in-flight answer, and the next query re-misses cleanly."""
        schema = make_schema(SCHEMA_SPEC)
        boot = int_batch(schema, 700, seed=14)
        cluster = make_cluster(
            schema, boot, rollup=RollupConfig(admit_after=1)
        )
        q = full_query(schema)
        warm(cluster, q, rounds=3)
        router = cluster.servers[0].router
        keys = list(router.store.cubes)
        # drop every cube in the window between the route decision
        # (query arrives after ~200us of transport latency) and the
        # reply: the answer was computed eagerly at plan time, so the
        # eviction must not corrupt it
        cluster.clock.after(
            3.5e-4, lambda: [router.store.drop(k) for k in keys]
        )
        r = cluster.execute(q, max_staleness=1.0)
        assert r.source == "rollup"  # routed before the eviction hit
        assert_same_agg(r.value, brute(schema, boot, q.box))
        assert len(router.store) == 0
        nxt = cluster.execute(q, max_staleness=1.0)
        assert_same_agg(nxt.value, brute(schema, boot, q.box))


# -- satellite 4: chaos coverage ---------------------------------------------


class TestChaos:
    def test_cube_survives_migration(self):
        schema = make_schema(SCHEMA_SPEC)
        boot = int_batch(schema, 900, seed=15)
        cluster = make_cluster(
            schema, boot, rollup=RollupConfig(admit_after=1), num_workers=3,
        )
        q = full_query(schema)
        warm(cluster, q, rounds=3)
        # force-migrate one warm shard to another worker
        src_wid, src = next(
            (wid, w) for wid, w in cluster.workers.items() if w.shards
        )
        sid = next(iter(src.shards))
        dst_wid = next(w for w in cluster.workers if w != src_wid)
        cluster.manager._start_migration(src_wid, dst_wid, sid)
        cluster.run_for(2.0)
        assert sid in cluster.workers[dst_wid].shards
        tree = cluster.execute(q, routing="tree")
        assert_same_agg(tree.value, brute(schema, boot, q.box))
        # the router fenced the moved shard and resynced from the new
        # owner; once streams settle the cube answer matches again
        cluster.run_for(2.0)
        hit = cluster.execute(q, routing="rollup")
        assert_same_agg(hit.value, tree.value)

    def test_cube_survives_promotion(self):
        schema = make_schema(SCHEMA_SPEC)
        boot = int_batch(schema, 900, seed=16)
        cluster = make_cluster(
            schema, boot, rollup=RollupConfig(admit_after=1),
            num_workers=3, replication_factor=1,
        )
        cluster.run_for(2.0)  # let replicas seed
        q = full_query(schema)
        warm(cluster, q, rounds=3)
        wid = next(wid for wid, w in cluster.workers.items() if w.shards)
        cluster.crash_worker(wid)
        cluster.run_for(4.0)
        tree = cluster.execute(q, routing="tree")
        hit = cluster.execute(q, routing="rollup")
        # whatever survived the failover, both tiers agree exactly
        assert_same_agg(hit.value, tree.value)
        assert tree.value.count > 0

    def test_inserts_after_migration_keep_cube_fresh(self):
        schema = make_schema(SCHEMA_SPEC)
        boot = int_batch(schema, 600, seed=17)
        stream = int_batch(schema, 200, seed=18)
        cluster = make_cluster(
            schema, boot, rollup=RollupConfig(admit_after=1), num_workers=3,
        )
        q = full_query(schema)
        warm(cluster, q, rounds=3)
        src_wid, src = next(
            (wid, w) for wid, w in cluster.workers.items() if w.shards
        )
        sid = next(iter(src.shards))
        dst_wid = next(w for w in cluster.workers if w != src_wid)
        cluster.manager._start_migration(src_wid, dst_wid, sid)
        cluster.run_for(2.0)
        sess = cluster.session(concurrency=4)
        sess.run_stream(insert_ops(stream))
        cluster.run_for(3.0)
        assert sess.done
        want = brute(schema, boot, q.box)
        want.merge(brute(schema, stream, q.box))
        tree = cluster.execute(q, routing="tree")
        hit = cluster.execute(q, routing="rollup")
        assert_same_agg(tree.value, want)
        assert_same_agg(hit.value, want)


# -- metrics -----------------------------------------------------------------


class TestRollupMetrics:
    def test_counters_and_gauges_exported(self):
        schema = make_schema(SCHEMA_SPEC)
        boot = int_batch(schema, 600, seed=19)
        cluster = make_cluster(
            schema, boot, rollup=RollupConfig(admit_after=2)
        )
        q = full_query(schema)
        for _ in range(4):
            cluster.execute(q, max_staleness=1.0)
        cluster.run_for(1.0)
        snap = cluster.metrics.snapshot()
        hits = snap["counters"]["volap_rollup_hits_total"]["series"]
        misses = snap["counters"]["volap_rollup_misses_total"]["series"]
        assert sum(s["value"] for s in hits) >= 1
        assert sum(s["value"] for s in misses) >= 1
        assert "volap_rollup_cubes" in snap["gauges"]
        assert "volap_rollup_resident_bytes" in snap["gauges"]
        assert "volap_rollup_staleness_seconds" in snap["gauges"]
        cubes = snap["gauges"]["volap_rollup_cubes"]["series"]
        assert sum(s["value"] for s in cubes) >= 1

    def test_eviction_counter(self):
        schema = make_schema(SCHEMA_SPEC)
        boot = int_batch(schema, 400, seed=20)
        # budget fits one cube: pinning a second one must evict
        cluster = make_cluster(
            schema, boot,
            rollup=RollupConfig(admit_after=1, budget_bytes=1600),
        )
        q = full_query(schema)
        warm(cluster, q, rounds=2)
        router = cluster.servers[0].router
        assert len(router.store) == 1
        shards = len(cluster.servers[0].image.search(router._full_box))
        big = CubeKey.make(schema, [("d1", 1)])
        # give the incoming key enough demand to outbid the resident
        for _ in range(4):
            router.store.note_miss(big, cluster.clock.now)
        assert router.materialize(big, shard_count=shards)
        assert router.store.evictions >= 1
        assert big in router.store
        snap = cluster.metrics.snapshot()
        ev = snap["counters"]["volap_rollup_evictions_total"]["series"]
        assert sum(s["value"] for s in ev) >= 1

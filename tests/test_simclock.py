"""Tests for the discrete-event kernel."""

import pytest

from repro.cluster.simclock import ServicePool, SimClock


class TestSimClock:
    def test_events_run_in_time_order(self):
        clock = SimClock()
        log = []
        clock.at(2.0, lambda: log.append("b"))
        clock.at(1.0, lambda: log.append("a"))
        clock.at(3.0, lambda: log.append("c"))
        clock.run()
        assert log == ["a", "b", "c"]
        assert clock.now == 3.0

    def test_fifo_for_simultaneous_events(self):
        clock = SimClock()
        log = []
        for i in range(5):
            clock.at(1.0, lambda i=i: log.append(i))
        clock.run()
        assert log == [0, 1, 2, 3, 4]

    def test_after_relative(self):
        clock = SimClock()
        out = []
        clock.after(0.5, lambda: out.append(clock.now))
        clock.run()
        assert out == [0.5]

    def test_cannot_schedule_past(self):
        clock = SimClock()
        clock.at(1.0, lambda: None)
        clock.run()
        with pytest.raises(ValueError):
            clock.at(0.5, lambda: None)
        with pytest.raises(ValueError):
            clock.after(-1, lambda: None)

    def test_run_until_stops(self):
        clock = SimClock()
        log = []
        clock.at(1.0, lambda: log.append(1))
        clock.at(2.0, lambda: log.append(2))
        clock.run_until(1.5)
        assert log == [1]
        assert clock.now == 1.5
        clock.run_until(3.0)
        assert log == [1, 2]

    def test_nested_scheduling(self):
        clock = SimClock()
        log = []

        def outer():
            log.append(("outer", clock.now))
            clock.after(1.0, lambda: log.append(("inner", clock.now)))

        clock.at(1.0, outer)
        clock.run()
        assert log == [("outer", 1.0), ("inner", 2.0)]

    def test_every_fires_periodically(self):
        clock = SimClock()
        ticks = []
        clock.every(1.0, lambda: ticks.append(clock.now), until=5.0)
        clock.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_every_rejects_bad_period(self):
        with pytest.raises(ValueError):
            SimClock().every(0, lambda: None)


class TestServicePool:
    def test_single_thread_serialises(self):
        clock = SimClock()
        pool = ServicePool(clock, 1)
        finishes = []
        clock.at(0.0, lambda: finishes.append(pool.submit(1.0, lambda: None)))
        clock.at(0.0, lambda: finishes.append(pool.submit(1.0, lambda: None)))
        clock.run()
        assert finishes == [1.0, 2.0]

    def test_parallel_threads(self):
        clock = SimClock()
        pool = ServicePool(clock, 4)
        finishes = []
        def submit_all():
            for _ in range(4):
                finishes.append(pool.submit(1.0, lambda: None))
        clock.at(0.0, submit_all)
        clock.run()
        assert finishes == [1.0] * 4

    def test_mgk_queueing(self):
        """5 unit jobs on 2 threads: last finishes at ceil(5/2) = 3."""
        clock = SimClock()
        pool = ServicePool(clock, 2)
        finishes = []
        def submit_all():
            for _ in range(5):
                finishes.append(pool.submit(1.0, lambda: None))
        clock.at(0.0, submit_all)
        clock.run()
        assert max(finishes) == 3.0

    def test_idle_gap_not_counted(self):
        clock = SimClock()
        pool = ServicePool(clock, 1)
        done = []
        clock.at(5.0, lambda: pool.submit(1.0, lambda: done.append(clock.now)))
        clock.run()
        assert done == [6.0]

    def test_utilization(self):
        clock = SimClock()
        pool = ServicePool(clock, 2)
        clock.at(0.0, lambda: pool.submit(1.0, lambda: None))
        clock.run()
        assert pool.utilization(1.0) == pytest.approx(0.5)

    def test_rejects_bad_args(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            ServicePool(clock, 0)
        pool = ServicePool(clock, 1)
        with pytest.raises(ValueError):
            pool.submit(-1.0, lambda: None)

    def test_backlog(self):
        clock = SimClock()
        pool = ServicePool(clock, 1)
        def submit():
            pool.submit(2.0, lambda: None)
            assert pool.backlog == pytest.approx(2.0)
        clock.at(0.0, submit)
        clock.run()
        assert pool.backlog == 0.0

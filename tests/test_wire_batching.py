"""Wire-level batching: equivalence with the singleton path, and
exactly-once delivery of batched inserts under network faults.

Batching changes only the framing: with the same seeded workload, a
cluster running ``batch_size > 1`` must end with aggregates
identical to the unbatched cluster (integer-valued measures make sums
order-proof), the same completed-op and failure counts, and fewer
messages on the wire.  Dropping or duplicating any of the new message
kinds must never lose or double-apply a record -- retransmits degrade
to the singleton path and workers dedup per ``op_id``.
"""

import warnings

import numpy as np
import pytest

from repro.cluster.cluster import ClusterConfig, VOLAPCluster
from repro.cluster.faults import FaultPlan, RetryPolicy
from repro.core.aggregates import Aggregate
from repro.core.array_store import ArrayStore
from repro.olap.keys import Box
from repro.olap.query import Query
from repro.workloads.streams import Operation

from .conftest import make_schema, random_batch, random_boxes


def int_batch(schema, n, seed):
    b = random_batch(schema, n, seed=seed)
    b.measures[:] = np.floor(b.measures * 100.0)
    return b


def insert_ops(batch):
    return [
        Operation(
            "insert", coords=batch.coords[i], measure=float(batch.measures[i])
        )
        for i in range(len(batch))
    ]


def full_box(schema):
    lo = np.zeros(schema.num_dims, dtype=np.int64)
    hi = np.asarray(schema.leaf_limits, dtype=np.int64)
    return Box(lo, hi)


def cluster_aggregate(cluster, schema):
    """Ground truth straight off the shards (and insertion queues)."""
    total = Aggregate.empty()
    box = full_box(schema)
    for w in cluster.workers.values():
        for s in w.shards.values():
            agg, _ = s.query(box)
            total.merge(agg)
        for q in w.queues.values():
            agg, _ = q.query(box)
            total.merge(agg)
    return total


def query_ops(boxes):
    return [Operation("query", query=Query(b)) for b in boxes]


def run_cluster(schema, boot, stream, *, batch_size, faults=None, retry=None,
                concurrency=64, num_workers=3):
    kwargs = dict(
        num_workers=num_workers,
        num_servers=2,
        seed=5,
        batch_size=batch_size,
        batch_linger=5e-4,
    )
    if retry is not None:
        kwargs["retry"] = retry
    cluster = VOLAPCluster(schema, ClusterConfig(**kwargs))
    cluster.bootstrap(boot)
    if faults is not None:
        cluster.inject_faults(faults)
    sess = cluster.session(concurrency=concurrency)
    sess.run_stream(insert_ops(stream))
    cluster.run_until_clients_done()
    return cluster, sess


def run_query_cluster(schema, boot, boxes, *, batch_size, faults=None,
                      retry=None, concurrency=32, num_workers=3,
                      heartbeat_period=None, crash=None):
    """Bootstrap static data, then drive a pure query stream."""
    kwargs = dict(
        num_workers=num_workers,
        num_servers=2,
        seed=5,
        batch_size=batch_size,
        batch_linger=5e-4,
    )
    if retry is not None:
        kwargs["retry"] = retry
    if heartbeat_period is not None:
        kwargs["heartbeat_period"] = heartbeat_period
    cluster = VOLAPCluster(schema, ClusterConfig(**kwargs))
    cluster.bootstrap(boot, shards_per_worker=2)
    if crash is not None:
        cluster.crash_worker(crash)
    if faults is not None:
        cluster.inject_faults(faults)
    recs = []
    sess = cluster.session(concurrency=concurrency)
    sess.on_complete = recs.append
    sess.run_stream(query_ops(boxes))
    cluster.run_until_clients_done(max_virtual=300.0)
    return cluster, sess, recs


class TestWireEquivalence:
    def test_batched_equals_unbatched(self):
        schema = make_schema()
        boot = int_batch(schema, 800, seed=1)
        stream = int_batch(schema, 1200, seed=2)
        plain, sp = run_cluster(schema, boot, stream, batch_size=1)
        batched, sb = run_cluster(schema, boot, stream, batch_size=32)
        a = cluster_aggregate(plain, schema)
        b = cluster_aggregate(batched, schema)
        assert a.count == b.count == len(boot) + len(stream)
        assert a.total == b.total
        assert plain.stats.failures == batched.stats.failures == 0
        assert sp.completed == sb.completed == len(stream)
        assert len(plain.stats.ops) == len(batched.stats.ops)
        assert sb.batches_sent > 0
        assert batched.transport.messages_sent < plain.transport.messages_sent

    def test_batch_size_one_sends_no_batches(self):
        schema = make_schema()
        boot = int_batch(schema, 300, seed=3)
        stream = int_batch(schema, 200, seed=4)
        cluster, sess = run_cluster(schema, boot, stream, batch_size=1)
        assert sess.batches_sent == 0
        assert cluster.stats.failures == 0


BATCH_KINDS = {
    "client_insert_batch",
    "insert_batch",
    "insert_batch_ack",
    "insert_done_batch",
}


@pytest.mark.sim_only
class TestBatchingUnderFaults:
    def _chaos_retry(self):
        return RetryPolicy(
            timeout=0.2,
            max_attempts=8,
            insert_timeout=0.1,
            max_insert_retries=8,
            backoff_base=0.02,
            backoff_jitter=0.005,
        )

    @pytest.mark.parametrize("action", ["drop", "duplicate"])
    def test_faulted_batches_apply_exactly_once(self, action):
        """Lost/duplicated batch messages never lose or double a record.

        One worker, so per-worker ``op_id`` dedup is globally complete:
        with several workers a server retry can re-route an already
        applied row to a *different* worker (stale-image residue shared
        with the singleton path of PR 1), which is not what this test
        is about -- it pins the batching machinery itself.
        """
        schema = make_schema()
        boot = int_batch(schema, 400, seed=6)
        stream = int_batch(schema, 600, seed=7)
        plan = FaultPlan()
        if action == "drop":
            plan.drop(0.3, kinds=BATCH_KINDS, end=0.5)
        else:
            plan.duplicate(0.5, kinds=BATCH_KINDS, end=0.5)
        cluster, sess = run_cluster(
            schema, boot, stream, batch_size=32,
            faults=plan, retry=self._chaos_retry(), num_workers=1,
        )
        agg = cluster_aggregate(cluster, schema)
        # exactly once: every record applied, none twice, despite the
        # retransmits (drop) or duplicate deliveries
        assert agg.count == len(boot) + len(stream)
        assert agg.total == float(boot.measures.sum() + stream.measures.sum())
        assert sess.completed == len(stream)
        assert cluster.stats.failures == 0
        if action == "drop":
            assert cluster.transport.faults.dropped > 0
        else:
            assert cluster.transport.faults.duplicated > 0
            assert sum(w.dedup_hits for w in cluster.workers.values()) > 0


QUERY_BATCH_KINDS = {
    "client_query_batch",
    "query_batch",
    "query_result_batch",
}


def oracle_counts(schema, boot, boxes):
    oracle = ArrayStore.from_batch(schema, boot, None)
    return [oracle.query(b)[0].count for b in boxes]


class TestQueryBatching:
    def test_batched_equals_unbatched_queries(self):
        """Same boxes over the same static data: batch_size=32 must
        answer exactly like batch_size=1, with fewer wire messages."""
        schema = make_schema()
        boot = int_batch(schema, 1500, seed=1)
        boxes = random_boxes(schema, 80, seed=9)
        want = sorted(oracle_counts(schema, boot, boxes))

        plain, sp, rp = run_query_cluster(schema, boot, boxes, batch_size=1)
        batched, sb, rb = run_query_cluster(schema, boot, boxes, batch_size=32)
        assert sp.completed == sb.completed == len(boxes)
        assert plain.stats.failures == batched.stats.failures == 0
        assert sp.query_batches_sent == 0
        assert sb.query_batches_sent > 0
        assert sorted(r.result_count for r in rp) == want
        assert sorted(r.result_count for r in rb) == want
        assert all(r.achieved == 1.0 for r in rb)
        assert batched.transport.messages_sent < plain.transport.messages_sent

    def test_cluster_execute_convenience(self):
        """``VOLAPCluster.execute`` returns ordered, oracle-exact
        results with full coverage."""
        schema = make_schema()
        boot = int_batch(schema, 1200, seed=2)
        boxes = random_boxes(schema, 30, seed=11)
        oracle = ArrayStore.from_batch(schema, boot, None)

        cluster = VOLAPCluster(
            schema,
            ClusterConfig(num_workers=3, num_servers=2, seed=5,
                          batch_size=16, batch_linger=5e-4),
        )
        cluster.bootstrap(boot)
        results = cluster.execute([Query(b) for b in boxes])
        assert len(results) == len(boxes)
        for box, res in zip(boxes, results):
            want, _ = oracle.query(box)
            assert res.value.count == want.count
            assert res.value.total == want.total
            assert res.coverage == 1.0
            assert res.source == "tree"
            assert res.staleness == 0.0

    def test_query_batch_shim_warns_once_and_matches_execute(self):
        """The deprecated ``query_batch`` wrapper warns once, then
        returns the legacy ``(agg, achieved)`` pairs for the same
        answers ``execute`` gives."""
        from repro.cluster import cluster as cluster_mod

        schema = make_schema()
        boot = int_batch(schema, 400, seed=4)
        boxes = random_boxes(schema, 8, seed=21)
        cluster = VOLAPCluster(
            schema, ClusterConfig(num_workers=2, num_servers=1, seed=7)
        )
        cluster.bootstrap(boot)
        want = cluster.execute([Query(b) for b in boxes])

        cluster_mod._warned_batch_aliases.discard("query_batch")
        with pytest.warns(DeprecationWarning, match="use VOLAPCluster.execute"):
            legacy = cluster.query_batch([Query(b) for b in boxes])
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second call: no warning
            legacy2 = cluster.query_batch([Query(b) for b in boxes])
        for res, (agg, achieved) in zip(want, legacy):
            assert agg.count == res.value.count
            assert achieved == res.coverage
        assert [a.count for a, _ in legacy] == [a.count for a, _ in legacy2]

    def test_ops_total_counts_logical_queries(self):
        """Batched queries are recorded exactly like singletons: the
        ``volap_ops_total`` query series grows by one per *logical*
        query, not one per wire batch."""
        schema = make_schema()
        boot = int_batch(schema, 600, seed=3)
        boxes = random_boxes(schema, 48, seed=13)
        cluster, sess, recs = run_query_cluster(
            schema, boot, boxes, batch_size=16
        )
        assert sess.completed == len(boxes)
        assert sess.query_batches_sent < len(boxes)
        snap = cluster.metrics.snapshot()
        series = snap["counters"]["volap_ops_total"]["series"]
        qcount = sum(
            s["value"]
            for s in series
            if s["labels"].get("kind") == "query"
            and s["labels"].get("ok") in ("true", "True")
        )
        assert qcount == len(boxes)
        assert len(cluster.stats.select(kind="query")) == len(boxes)


class TestQueryBatchingUnderFaults:
    @pytest.mark.parametrize("action", ["drop", "duplicate"])
    def test_faulted_query_batches_stay_exact(self, action):
        """Dropping or duplicating any batched-query message kind must
        neither lose a query (retransmits degrade to the singleton
        path) nor skew a result (duplicate worker results are counted
        once per token)."""
        schema = make_schema()
        boot = int_batch(schema, 900, seed=6)
        boxes = random_boxes(schema, 60, seed=17)
        want = sorted(oracle_counts(schema, boot, boxes))
        plan = FaultPlan()
        if action == "drop":
            plan.drop(0.3, kinds=QUERY_BATCH_KINDS, end=0.5)
        else:
            plan.duplicate(0.5, kinds=QUERY_BATCH_KINDS, end=0.5)
        retry = RetryPolicy(
            timeout=0.2,
            max_attempts=8,
            insert_timeout=0.1,
            max_insert_retries=8,
            backoff_base=0.02,
            backoff_jitter=0.005,
        )
        cluster, sess, recs = run_query_cluster(
            schema, boot, boxes, batch_size=16, faults=plan, retry=retry
        )
        assert sess.completed == len(boxes)
        assert cluster.stats.failures == 0
        assert all(r.ok for r in recs)
        assert sorted(r.result_count for r in recs) == want
        if action == "drop":
            assert cluster.transport.faults.dropped > 0
        else:
            assert cluster.transport.faults.duplicated > 0

    def test_crashed_worker_degrades_batched_queries(self):
        """With failover disabled and one worker down, batched queries
        still answer within the deadline -- as degraded partials with
        ``achieved < 1`` -- instead of hanging."""
        schema = make_schema()
        boot = int_batch(schema, 900, seed=8)
        # full-domain boxes are guaranteed to fan out to every worker,
        # including the dead one
        boxes = [full_box(schema) for _ in range(12)]
        retry = RetryPolicy(timeout=60.0, query_deadline=0.5)
        cluster, sess, recs = run_query_cluster(
            schema, boot, boxes, batch_size=8, retry=retry,
            heartbeat_period=0, crash=0,
        )
        assert sess.completed == len(boxes)
        assert all(r.ok for r in recs)
        assert all(r.achieved < 1.0 for r in recs)
        assert cluster.stats.degraded()
        # the live workers' shards were still searched
        assert all(r.shards_searched > 0 for r in recs)

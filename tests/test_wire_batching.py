"""Wire-level batching: equivalence with the singleton path, and
exactly-once delivery of batched inserts under network faults.

Batching changes only the framing: with the same seeded workload, a
cluster running ``batch_size > 1`` must end with aggregates
identical to the unbatched cluster (integer-valued measures make sums
order-proof), the same completed-op and failure counts, and fewer
messages on the wire.  Dropping or duplicating any of the new message
kinds must never lose or double-apply a record -- retransmits degrade
to the singleton path and workers dedup per ``op_id``.
"""

import numpy as np
import pytest

from repro.cluster.cluster import ClusterConfig, VOLAPCluster
from repro.cluster.faults import FaultPlan, RetryPolicy
from repro.core.aggregates import Aggregate
from repro.olap.keys import Box
from repro.workloads.streams import Operation

from .conftest import make_schema, random_batch


def int_batch(schema, n, seed):
    b = random_batch(schema, n, seed=seed)
    b.measures[:] = np.floor(b.measures * 100.0)
    return b


def insert_ops(batch):
    return [
        Operation(
            "insert", coords=batch.coords[i], measure=float(batch.measures[i])
        )
        for i in range(len(batch))
    ]


def full_box(schema):
    lo = np.zeros(schema.num_dims, dtype=np.int64)
    hi = np.asarray(schema.leaf_limits, dtype=np.int64)
    return Box(lo, hi)


def cluster_aggregate(cluster, schema):
    """Ground truth straight off the shards (and insertion queues)."""
    total = Aggregate.empty()
    box = full_box(schema)
    for w in cluster.workers.values():
        for s in w.shards.values():
            agg, _ = s.query(box)
            total.merge(agg)
        for q in w.queues.values():
            agg, _ = q.query(box)
            total.merge(agg)
    return total


def run_cluster(schema, boot, stream, *, batch_size, faults=None, retry=None,
                concurrency=64, num_workers=3):
    kwargs = dict(
        num_workers=num_workers,
        num_servers=2,
        seed=5,
        batch_size=batch_size,
        batch_linger=5e-4,
    )
    if retry is not None:
        kwargs["retry"] = retry
    cluster = VOLAPCluster(schema, ClusterConfig(**kwargs))
    cluster.bootstrap(boot)
    if faults is not None:
        cluster.inject_faults(faults)
    sess = cluster.session(concurrency=concurrency)
    sess.run_stream(insert_ops(stream))
    cluster.run_until_clients_done()
    return cluster, sess


class TestWireEquivalence:
    def test_batched_equals_unbatched(self):
        schema = make_schema()
        boot = int_batch(schema, 800, seed=1)
        stream = int_batch(schema, 1200, seed=2)
        plain, sp = run_cluster(schema, boot, stream, batch_size=1)
        batched, sb = run_cluster(schema, boot, stream, batch_size=32)
        a = cluster_aggregate(plain, schema)
        b = cluster_aggregate(batched, schema)
        assert a.count == b.count == len(boot) + len(stream)
        assert a.total == b.total
        assert plain.stats.failures == batched.stats.failures == 0
        assert sp.completed == sb.completed == len(stream)
        assert len(plain.stats.ops) == len(batched.stats.ops)
        assert sb.batches_sent > 0
        assert batched.transport.messages_sent < plain.transport.messages_sent

    def test_batch_size_one_sends_no_batches(self):
        schema = make_schema()
        boot = int_batch(schema, 300, seed=3)
        stream = int_batch(schema, 200, seed=4)
        cluster, sess = run_cluster(schema, boot, stream, batch_size=1)
        assert sess.batches_sent == 0
        assert cluster.stats.failures == 0


BATCH_KINDS = {
    "client_insert_batch",
    "insert_batch",
    "insert_batch_ack",
    "insert_done_batch",
}


class TestBatchingUnderFaults:
    def _chaos_retry(self):
        return RetryPolicy(
            timeout=0.2,
            max_attempts=8,
            insert_timeout=0.1,
            max_insert_retries=8,
            backoff_base=0.02,
            backoff_jitter=0.005,
        )

    @pytest.mark.parametrize("action", ["drop", "duplicate"])
    def test_faulted_batches_apply_exactly_once(self, action):
        """Lost/duplicated batch messages never lose or double a record.

        One worker, so per-worker ``op_id`` dedup is globally complete:
        with several workers a server retry can re-route an already
        applied row to a *different* worker (stale-image residue shared
        with the singleton path of PR 1), which is not what this test
        is about -- it pins the batching machinery itself.
        """
        schema = make_schema()
        boot = int_batch(schema, 400, seed=6)
        stream = int_batch(schema, 600, seed=7)
        plan = FaultPlan()
        if action == "drop":
            plan.drop(0.3, kinds=BATCH_KINDS, end=0.5)
        else:
            plan.duplicate(0.5, kinds=BATCH_KINDS, end=0.5)
        cluster, sess = run_cluster(
            schema, boot, stream, batch_size=32,
            faults=plan, retry=self._chaos_retry(), num_workers=1,
        )
        agg = cluster_aggregate(cluster, schema)
        # exactly once: every record applied, none twice, despite the
        # retransmits (drop) or duplicate deliveries
        assert agg.count == len(boot) + len(stream)
        assert agg.total == float(boot.measures.sum() + stream.measures.sum())
        assert sess.completed == len(stream)
        assert cluster.stats.failures == 0
        if action == "drop":
            assert cluster.transport.faults.dropped > 0
        else:
            assert cluster.transport.faults.duplicated > 0
            assert sum(w.dedup_hits for w in cluster.workers.values()) > 0

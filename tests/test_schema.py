"""Tests for Schema, Query construction, and RecordBatch."""

import numpy as np
import pytest

from repro.olap.hierarchy import Dimension, Hierarchy, Level, flat_dimension
from repro.olap.query import full_query, query_from_levels
from repro.olap.records import RecordBatch, concat_batches
from repro.olap.schema import Schema


def small_schema():
    date = Dimension(
        "date", Hierarchy("date", [Level("year", 8), Level("month", 12), Level("day", 31)])
    )
    store = Dimension(
        "store", Hierarchy("store", [Level("country", 4), Level("city", 16)])
    )
    return Schema([date, store])


class TestSchema:
    def test_num_dims(self):
        assert small_schema().num_dims == 2

    def test_leaf_widths(self):
        s = small_schema()
        assert s.leaf_widths.tolist() == [12, 6]
        assert s.leaf_limits.tolist() == [(1 << 12) - 1, (1 << 6) - 1]

    def test_index_of(self):
        s = small_schema()
        assert s.index_of("date") == 0
        assert s.index_of("store") == 1
        with pytest.raises(KeyError):
            s.index_of("nope")

    def test_dimension_lookup(self):
        s = small_schema()
        assert s.dimension("store").name == "store"

    def test_encode_decode_point(self):
        s = small_schema()
        pt = s.encode_point([(3, 11, 30), (2, 9)])
        assert pt.dtype == np.int64
        assert s.decode_point(pt) == ((3, 11, 30), (2, 9))

    def test_encode_point_wrong_arity(self):
        with pytest.raises(ValueError):
            small_schema().encode_point([(1, 2, 3)])

    def test_validate_coords(self):
        s = small_schema()
        s.validate_coords(np.array([[0, 0], [100, 63]]))
        with pytest.raises(ValueError):
            s.validate_coords(np.array([[1 << 12, 0]]))
        with pytest.raises(ValueError):
            s.validate_coords(np.array([[-1, 0]]))
        with pytest.raises(ValueError):
            s.validate_coords(np.array([[0, 0, 0]]))

    def test_duplicate_names_rejected(self):
        d = flat_dimension("x", 4)
        with pytest.raises(ValueError):
            Schema([d, d])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Schema([])

    def test_iteration_and_len(self):
        s = small_schema()
        assert len(s) == 2
        assert [d.name for d in s] == ["date", "store"]

    def test_equality(self):
        assert small_schema() == small_schema()


class TestQuery:
    def test_full_query_covers_all(self):
        s = small_schema()
        q = full_query(s)
        assert q.coverage == 1.0
        assert q.box.lo.tolist() == [0, 0]
        assert q.box.hi.tolist() == s.leaf_limits.tolist()

    def test_query_from_levels_single_dim(self):
        s = small_schema()
        q = query_from_levels(s, {"date": (1, (3,))})
        h = s.dimension("date").hierarchy
        lo, hi = h.prefix_range(1, 3)
        assert q.box.lo[0] == lo and q.box.hi[0] == hi
        # unconstrained dimension spans everything
        assert q.box.lo[1] == 0 and q.box.hi[1] == s.leaf_limits[1]

    def test_query_from_levels_deep(self):
        s = small_schema()
        q = query_from_levels(s, {"date": (2, (3, 7)), "store": (2, (1, 5))})
        assert q.box.contains_point(s.encode_point([(3, 7, 15), (1, 5)]))
        assert not q.box.contains_point(s.encode_point([(3, 8, 0), (1, 5)]))

    def test_bad_depth_rejected(self):
        s = small_schema()
        with pytest.raises(ValueError):
            query_from_levels(s, {"date": (4, (0, 0, 0, 0))})
        with pytest.raises(ValueError):
            query_from_levels(s, {"date": (2, (0,))})


class TestRecordBatch:
    def test_empty(self):
        b = RecordBatch.empty(3)
        assert len(b) == 0
        assert b.num_dims == 3

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RecordBatch(np.zeros(3, dtype=np.int64), np.zeros(3))
        with pytest.raises(ValueError):
            RecordBatch(np.zeros((3, 2), dtype=np.int64), np.zeros(2))

    def test_row_access(self):
        b = RecordBatch(np.array([[1, 2], [3, 4]]), np.array([1.5, 2.5]))
        coords, m = b.row(1)
        assert coords.tolist() == [3, 4]
        assert m == 2.5

    def test_take_and_slice(self):
        b = RecordBatch(np.arange(10).reshape(5, 2), np.arange(5.0))
        t = b.take(np.array([0, 2]))
        assert t.coords.tolist() == [[0, 1], [4, 5]]
        s = b.slice(1, 3)
        assert len(s) == 2

    def test_serialisation_roundtrip(self):
        b = RecordBatch(np.array([[1, 2], [3, 4]]), np.array([1.5, 2.5]))
        b2 = RecordBatch.from_bytes(b.to_bytes())
        assert np.array_equal(b.coords, b2.coords)
        assert np.array_equal(b.measures, b2.measures)

    def test_serialisation_empty(self):
        b = RecordBatch.empty(4)
        b2 = RecordBatch.from_bytes(b.to_bytes())
        assert len(b2) == 0 and b2.num_dims == 4

    def test_validate_against_schema(self):
        s = small_schema()
        good = RecordBatch(np.array([[5, 5]]), np.array([1.0]))
        good.validate(s)
        bad = RecordBatch(np.array([[1 << 12, 0]]), np.array([1.0]))
        with pytest.raises(ValueError):
            bad.validate(s)

    def test_concat(self):
        a = RecordBatch(np.array([[1, 2]]), np.array([1.0]))
        b = RecordBatch(np.array([[3, 4]]), np.array([2.0]))
        c = concat_batches([a, b], 2)
        assert len(c) == 2
        assert concat_batches([], 2).num_dims == 2

    def test_iter_rows(self):
        b = RecordBatch(np.array([[1, 2], [3, 4]]), np.array([1.0, 2.0]))
        rows = list(b.iter_rows())
        assert rows[0][1] == 1.0 and rows[1][0].tolist() == [3, 4]

"""Tests for the TPC-DS generator, query generator, and streams."""

import numpy as np
import pytest

from repro.workloads import (
    PAPER_BINS,
    QueryGenerator,
    StreamGenerator,
    TPCDSGenerator,
    synthetic_schema,
    tpcds_schema,
)


class TestTpcdsSchema:
    def test_eight_dimensions(self):
        s = tpcds_schema()
        assert s.num_dims == 8

    def test_dimension_names_match_fig1(self):
        s = tpcds_schema()
        names = {d.name for d in s.dimensions}
        assert names == {
            "store",
            "customer",
            "customer_birth",
            "item",
            "date",
            "time",
            "household",
            "promotion",
        }

    def test_hierarchy_depths(self):
        s = tpcds_schema()
        assert s.dimension("store").num_levels == 4
        assert s.dimension("date").num_levels == 3
        assert s.dimension("promotion").num_levels == 1

    def test_synthetic_schema(self):
        s = synthetic_schema(16, levels=2, fanout=8)
        assert s.num_dims == 16
        assert all(d.num_levels == 2 for d in s.dimensions)


class TestTPCDSGenerator:
    def test_batch_shape_and_validity(self):
        s = tpcds_schema()
        gen = TPCDSGenerator(s, seed=1)
        b = gen.batch(500)
        assert len(b) == 500
        b.validate(s)  # coordinates within every dimension's id space

    def test_deterministic_with_seed(self):
        s = tpcds_schema()
        a = TPCDSGenerator(s, seed=7).batch(100)
        b = TPCDSGenerator(s, seed=7).batch(100)
        assert np.array_equal(a.coords, b.coords)

    def test_different_seeds_differ(self):
        s = tpcds_schema()
        a = TPCDSGenerator(s, seed=1).batch(100)
        b = TPCDSGenerator(s, seed=2).batch(100)
        assert not np.array_equal(a.coords, b.coords)

    def test_skew_concentrates_values(self):
        """Zipf skew: the most popular level-1 value dominates."""
        s = tpcds_schema()
        gen = TPCDSGenerator(s, seed=3, skew=1.5)
        b = gen.batch(3000)
        d = s.index_of("item")
        h = s.dimension("item").hierarchy
        top = np.array([h.prefix_of(int(v), 1) for v in b.coords[:, d]])
        counts = np.bincount(top)
        assert counts.max() / 3000 > 0.3

    def test_time_correlation_advances(self):
        s = tpcds_schema()
        gen = TPCDSGenerator(s, seed=4, time_correlated=True)
        d = s.index_of("date")
        h = s.dimension("date").hierarchy
        first = gen.batch(1000)
        for _ in range(60):
            gen.batch(1000)
        late = gen.batch(1000)
        top_first = np.mean([h.prefix_of(int(v), 1) for v in first.coords[:, d]])
        top_late = np.mean([h.prefix_of(int(v), 1) for v in late.coords[:, d]])
        assert top_late > top_first

    def test_stream_chunks(self):
        s = tpcds_schema()
        gen = TPCDSGenerator(s, seed=5)
        chunks = list(gen.stream(2500, chunk=1000))
        assert [len(c) for c in chunks] == [1000, 1000, 500]

    def test_measures_positive(self):
        s = tpcds_schema()
        b = TPCDSGenerator(s, seed=6).batch(200)
        assert (b.measures > 0).all()


class TestQueryGenerator:
    @pytest.fixture(scope="class")
    def setup(self):
        s = tpcds_schema()
        batch = TPCDSGenerator(s, seed=1).batch(5000)
        return s, batch

    def test_random_query_measures_coverage(self, setup):
        s, batch = setup
        qg = QueryGenerator(s, batch, seed=2)
        q = qg.random_query()
        assert 0.0 <= q.coverage <= 1.0

    def test_coverage_is_true_fraction(self, setup):
        s, batch = setup
        qg = QueryGenerator(s, batch, seed=3)
        q = qg.random_query()
        inside = q.box.contains_points(batch.coords).sum()
        assert q.coverage == pytest.approx(inside / len(batch))

    def test_bins_fill(self, setup):
        s, batch = setup
        qg = QueryGenerator(s, batch, seed=4)
        bins = qg.generate_bins(per_bin=5)
        for name, (lo, hi) in zip(bins.names, bins.edges):
            assert len(bins.queries[name]) >= 5
            for q in bins.queries[name]:
                assert lo <= q.coverage <= hi

    def test_paper_bins_partition_unit_interval(self):
        assert PAPER_BINS[0][0] == 0.0
        assert PAPER_BINS[-1][1] == 1.0

    def test_sampling_from_bin(self, setup):
        s, batch = setup
        qg = QueryGenerator(s, batch, seed=5)
        bins = qg.generate_bins(per_bin=3)
        rng = np.random.default_rng(0)
        q = bins.sample("low", rng)
        assert q.coverage <= 1.0 / 3.0

    def test_sample_empty_bin_raises(self, setup):
        s, batch = setup
        qg = QueryGenerator(s, batch, seed=6)
        bins = qg.generate_bins(per_bin=1)
        bins.queries["low"].clear()
        with pytest.raises(ValueError):
            bins.sample("low", np.random.default_rng(0))

    def test_queries_for_coverage_band(self, setup):
        s, batch = setup
        qg = QueryGenerator(s, batch, seed=7)
        qs = qg.queries_for_coverage((0.4, 0.6), 4)
        assert len(qs) == 4
        assert all(0.4 <= q.coverage <= 0.6 for q in qs)

    def test_empty_reference_rejected(self, setup):
        s, _ = setup
        from repro.olap.records import RecordBatch

        with pytest.raises(ValueError):
            QueryGenerator(s, RecordBatch.empty(s.num_dims))


class TestStreamGenerator:
    @pytest.fixture(scope="class")
    def parts(self):
        s = tpcds_schema()
        gen = TPCDSGenerator(s, seed=1)
        batch = gen.batch(4000)
        qg = QueryGenerator(s, batch, seed=2)
        bins = qg.generate_bins(per_bin=4)
        return s, gen, bins

    def test_mix_fraction_respected(self, parts):
        _, gen, bins = parts
        sg = StreamGenerator(gen, bins, insert_fraction=0.25, seed=3)
        ops = list(sg.operations(2000))
        ins = sum(1 for o in ops if o.is_insert)
        assert 0.2 <= ins / 2000 <= 0.3

    def test_pure_insert_stream(self, parts):
        _, gen, bins = parts
        sg = StreamGenerator(gen, bins, insert_fraction=1.0, seed=4)
        ops = list(sg.operations(100))
        assert all(o.is_insert for o in ops)
        assert all(o.coords is not None for o in ops)

    def test_pure_query_stream(self, parts):
        _, gen, bins = parts
        sg = StreamGenerator(gen, bins, insert_fraction=0.0, seed=5)
        ops = list(sg.operations(100))
        assert all(not o.is_insert for o in ops)
        assert all(o.query is not None for o in ops)

    def test_coverage_mix_restricts_bins(self, parts):
        _, gen, bins = parts
        sg = StreamGenerator(
            gen, bins, insert_fraction=0.0, coverage_mix=["high"], seed=6
        )
        ops = list(sg.operations(50))
        assert all(o.query.coverage >= 2.0 / 3.0 for o in ops)

    def test_bad_fraction_rejected(self, parts):
        _, gen, bins = parts
        with pytest.raises(ValueError):
            StreamGenerator(gen, bins, insert_fraction=1.5)

    def test_empty_bin_mix_rejected(self, parts):
        _, gen, bins = parts
        bins.queries["medium"].clear()
        try:
            with pytest.raises(ValueError):
                StreamGenerator(
                    gen, bins, insert_fraction=0.0, coverage_mix=["medium"]
                )
        finally:
            pass

    def test_batch_plan(self, parts):
        _, gen, bins = parts
        sg = StreamGenerator(gen, bins, insert_fraction=0.5, seed=7)
        ins, qs = sg.batch_plan(100)
        assert ins == 50 and qs == 50

"""Unit tests for dimension hierarchies and path encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.olap.hierarchy import (
    Hierarchy,
    Level,
    bits_for,
    flat_dimension,
    uniform_dimension,
)


def make_date():
    return Hierarchy("date", [Level("year", 8), Level("month", 12), Level("day", 31)])


class TestBitsFor:
    def test_small_values(self):
        assert bits_for(1) == 1
        assert bits_for(2) == 1
        assert bits_for(3) == 2
        assert bits_for(4) == 2
        assert bits_for(5) == 3
        assert bits_for(256) == 8

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bits_for(0)


class TestLevel:
    def test_bits_property(self):
        assert Level("month", 12).bits == 4

    def test_rejects_bad_fanout(self):
        with pytest.raises(ValueError):
            Level("x", 0)


class TestHierarchy:
    def test_total_bits(self):
        h = make_date()
        assert h.total_bits == 3 + 4 + 5

    def test_encode_decode_roundtrip(self):
        h = make_date()
        for path in [(0, 0, 0), (7, 11, 30), (3, 5, 17)]:
            assert h.decode(h.encode(path)) == path

    def test_encode_rejects_out_of_range(self):
        h = make_date()
        with pytest.raises(ValueError):
            h.encode((8, 0, 0))
        with pytest.raises(ValueError):
            h.encode((0, 12, 0))

    def test_encode_rejects_wrong_length(self):
        h = make_date()
        with pytest.raises(ValueError):
            h.encode((1, 2))

    def test_encode_is_order_preserving_per_level(self):
        h = make_date()
        # Deeper paths under the same prefix sort after shallower siblings' start
        a = h.encode((3, 0, 0))
        b = h.encode((3, 11, 30))
        c = h.encode((4, 0, 0))
        assert a < b < c

    def test_prefix_range_contains_descendants(self):
        h = make_date()
        lo, hi = h.prefix_range(1, 3)
        for month in (0, 11):
            for day in (0, 30):
                assert lo <= h.encode((3, month, day)) <= hi

    def test_prefix_range_disjoint_siblings(self):
        h = make_date()
        lo3, hi3 = h.prefix_range(1, 3)
        lo4, hi4 = h.prefix_range(1, 4)
        assert hi3 < lo4

    def test_prefix_range_nested(self):
        h = make_date()
        ylo, yhi = h.prefix_range(1, 3)
        mlo, mhi = h.prefix_range(2, h.encode_prefix((3, 7)))
        assert ylo <= mlo <= mhi <= yhi

    def test_prefix_of_inverts_prefix_range(self):
        h = make_date()
        v = h.encode((5, 9, 20))
        assert h.prefix_of(v, 1) == 5
        assert h.prefix_of(v, 2) == h.encode_prefix((5, 9))
        assert h.prefix_of(v, 3) == v

    def test_suffix_bits(self):
        h = make_date()
        assert h.suffix_bits(1) == 9
        assert h.suffix_bits(2) == 5
        assert h.suffix_bits(3) == 0
        with pytest.raises(ValueError):
            h.suffix_bits(0)

    def test_leaf_cardinality(self):
        h = make_date()
        assert h.leaf_cardinality == 1 << 12

    def test_rejects_empty_levels(self):
        with pytest.raises(ValueError):
            Hierarchy("x", [])

    def test_rejects_too_wide(self):
        with pytest.raises(ValueError):
            Hierarchy("x", [Level("a", 2**40), Level("b", 2**40)])

    def test_decode_rejects_out_of_range(self):
        h = make_date()
        with pytest.raises(ValueError):
            h.decode(1 << 12)
        with pytest.raises(ValueError):
            h.decode(-1)

    def test_equality_and_hash(self):
        assert make_date() == make_date()
        assert hash(make_date()) == hash(make_date())
        other = Hierarchy("date", [Level("year", 9), Level("month", 12), Level("day", 31)])
        assert make_date() != other


class TestHelpers:
    def test_flat_dimension(self):
        d = flat_dimension("promo", 100)
        assert d.num_levels == 1
        assert d.total_bits == 7

    def test_uniform_dimension(self):
        d = uniform_dimension("x", [4, 4, 4])
        assert d.num_levels == 3
        assert d.total_bits == 6
        assert d.hierarchy.level_names() == ("x_l0", "x_l1", "x_l2")


@given(
    st.lists(st.integers(min_value=2, max_value=64), min_size=1, max_size=5),
    st.data(),
)
def test_roundtrip_property(fanouts, data):
    """encode/decode round-trips for arbitrary hierarchies and paths."""
    h = Hierarchy("h", [Level(f"l{i}", f) for i, f in enumerate(fanouts)])
    path = tuple(
        data.draw(st.integers(min_value=0, max_value=f - 1)) for f in fanouts
    )
    assert h.decode(h.encode(path)) == path


@given(
    st.lists(st.integers(min_value=2, max_value=32), min_size=2, max_size=4),
    st.data(),
)
def test_prefix_range_property(fanouts, data):
    """Every full path under a prefix encodes within the prefix's range."""
    h = Hierarchy("h", [Level(f"l{i}", f) for i, f in enumerate(fanouts)])
    depth = data.draw(st.integers(min_value=1, max_value=len(fanouts)))
    path = tuple(
        data.draw(st.integers(min_value=0, max_value=f - 1)) for f in fanouts
    )
    prefix = h.encode_prefix(path[:depth])
    lo, hi = h.prefix_range(depth, prefix)
    v = h.encode(path)
    assert lo <= v <= hi
    assert h.prefix_of(v, depth) == prefix

"""Observability subsystem: spans, metrics, profiler, exporters, API.

Covers the documented guarantees of docs/observability.md:

* span trees follow the fixed stage sequences, and on a fault-free run
  every closed child span ends at or before its parent's end;
* under chaos (drops/duplicates, crash + failover) traces stay
  *structurally* well-formed -- every parent exists, stage names come
  from the documented vocabulary, and open spans belong only to crashed
  workers -- while strict timing is intentionally allowed to bend;
* the metrics snapshot schema, and the regression that two sequential
  clusters in one process report independent metrics (no module state);
* the Prometheus text exposition against a golden file;
* the batching-knob deprecation shim (warns once, forwards);
* zero-overhead defaults: ``transport.obs`` / ``tree.profiler`` None.
"""

import warnings
from pathlib import Path

import numpy as np
import pytest

from repro import MetricsRegistry, Query, TreeProfiler
from repro.cluster import (
    BalancerPolicy,
    ClusterConfig,
    FaultPlan,
    RetryPolicy,
    VOLAPCluster,
)
from repro.cluster import cluster as cluster_mod
from repro.core import HilbertPDCTree, TreeConfig
from repro.obs.export import to_prometheus
from repro.olap.query import full_query
from repro.workloads.streams import Operation

from .conftest import make_schema, random_batch

GOLDEN = Path(__file__).parent / "golden" / "metrics.prom"

#: every stage name a span may legally carry
STAGE_VOCAB = {
    "client.insert", "server.route_insert", "worker.apply_insert",
    "tree.insert",
    "client.query", "server.route_query", "worker.query", "tree.query",
    "manager.split", "worker.split", "manager.migrate", "manager.restore",
    "manager.replicate", "worker.replicate", "manager.promote",
    "worker.promote",
}

FAST_RETRY = RetryPolicy(
    timeout=0.4,
    max_attempts=12,
    insert_timeout=0.1,
    max_insert_retries=8,
    query_deadline=0.3,
    backoff_base=0.02,
    backoff_factor=1.5,
    backoff_jitter=0.005,
)


def small_cluster(schema, n_items=1200, workers=3, batch_size=1, seed=3,
                  **cfg_kwargs):
    cfg = ClusterConfig(
        num_workers=workers,
        num_servers=1,
        tree_config=TreeConfig(leaf_capacity=32, fanout=8),
        balancer=BalancerPolicy(max_shard_items=100_000, scan_period=0.1),
        batch_size=batch_size,
        seed=seed,
        **cfg_kwargs,
    )
    cluster = VOLAPCluster(schema, cfg)
    cluster.bootstrap(random_batch(schema, n_items, seed=seed),
                      shards_per_worker=2)
    return cluster


def insert_ops(batch):
    return [
        Operation(
            "insert", coords=batch.coords[i], measure=float(batch.measures[i])
        )
        for i in range(len(batch))
    ]


def run_ops(cluster, ops, concurrency=4, max_virtual=300.0):
    sess = cluster.session(0, concurrency=concurrency)
    sess.run_stream(ops)
    cluster.run_until_clients_done(max_virtual=max_virtual)
    return sess


def assert_well_formed(obs):
    """Structural trace invariants that hold under ANY fault plan."""
    by_id = {s.span_id: s for s in obs.tracer.spans}
    for s in obs.tracer.spans:
        assert s.name in STAGE_VOCAB, s.name
        if s.parent_id is not None:
            parent = by_id[s.parent_id]
            assert parent.trace_id == s.trace_id
        else:
            assert s.name.startswith(("client.", "manager."))
        assert s.end is None or s.end >= s.start


@pytest.fixture
def schema():
    return make_schema()


class TestSpanTrees:
    def test_disabled_by_default(self, schema):
        cluster = small_cluster(schema, n_items=50)
        assert cluster.obs is None
        assert cluster.transport.obs is None
        for w in cluster.workers.values():
            for store in w.shards.values():
                assert getattr(store, "profiler", None) is None

    def test_observe_idempotent_and_unobserve(self, schema):
        cluster = small_cluster(schema, n_items=50)
        obs = cluster.observe()
        assert cluster.observe() is obs
        assert cluster.obs is obs
        assert obs.registry is cluster.metrics
        cluster.unobserve()
        assert cluster.obs is None

    def test_singleton_insert_and_query_sequences(self, schema):
        """Fault-free, unbatched: the exact documented stage sequences,
        one trace per op, everything closed, child ends <= parent ends."""
        cluster = small_cluster(schema, batch_size=1)
        obs = cluster.observe()
        extra = random_batch(schema, 30, seed=11)
        ops = insert_ops(extra) + [
            Operation("query", query=full_query(schema)) for _ in range(5)
        ]
        run_ops(cluster, ops)

        traces = obs.traces()
        assert len(traces) == len(ops)
        assert obs.open_spans() == []
        n_insert = n_query = 0
        for tid, spans in traces.items():
            seq = obs.span_tree(tid)
            if seq[0] == "client.insert":
                n_insert += 1
                assert seq == [
                    "client.insert",
                    "server.route_insert",
                    "worker.apply_insert",
                    "tree.insert",
                ]
            else:
                n_query += 1
                assert seq[0] == "client.query"
                assert seq[1] == "server.route_query"
                # then one worker.query per worker, each with >= 1
                # tree.query child
                rest = seq[2:]
                assert rest, "full query must reach workers"
                assert set(rest) == {"worker.query", "tree.query"}
                assert rest[0] == "worker.query"
        assert n_insert == len(extra) and n_query == 5
        # fault-free timing invariant: closed children end before parents
        by_id = {s.span_id: s for s in obs.tracer.spans}
        for s in obs.tracer.spans:
            if s.parent_id is not None:
                assert s.end <= by_id[s.parent_id].end
        assert_well_formed(obs)

    def test_batched_insert_sequences(self, schema):
        """Wire batching: per-row worker spans tagged batched=True and
        no tree.insert stage (the batch applies through insert_batch)."""
        cluster = small_cluster(schema, batch_size=8)
        obs = cluster.observe()
        extra = random_batch(schema, 40, seed=12)
        run_ops(cluster, insert_ops(extra), concurrency=16)

        assert obs.open_spans() == []
        worker_rows = 0
        for tid in obs.traces():
            seq = obs.span_tree(tid)
            assert seq == [
                "client.insert",
                "server.route_insert",
                "worker.apply_insert",
            ]
        for s in obs.tracer.spans:
            if s.name == "worker.apply_insert":
                assert s.tags.get("batched") is True
                worker_rows += 1
        assert worker_rows == len(extra)
        # the profiler saw batched tree applies, not per-row inserts
        kinds = {p.kind for p in obs.profiler.records}
        assert "insert_batch" in kinds and "insert" not in kinds
        assert sum(
            p.rows for p in obs.profiler.select("insert_batch")
        ) == len(extra)

    def test_span_durations_feed_registry(self, schema):
        cluster = small_cluster(schema)
        obs = cluster.observe()
        run_ops(cluster, insert_ops(random_batch(schema, 10, seed=13)))
        snap = cluster.metrics.snapshot()
        hist = snap["histograms"]["volap_span_seconds"]
        assert hist["count"] == len(obs.tracer.spans)
        stages = {s["labels"]["stage"] for s in hist["series"]}
        assert "client.insert" in stages and "tree.insert" in stages


class TestSpansUnderChaos:
    def test_drop_duplicate_traces_stay_well_formed(self, schema):
        """10% drop + duplicate on the insert path: stage sequences stay
        within the vocabulary and every span's parent exists.  Strict
        child-before-parent timing is NOT asserted -- a retransmit's
        second server subtree may outlive the client span by design."""
        cluster = small_cluster(schema, retry=FAST_RETRY)
        obs = cluster.observe()
        kinds = {"client_insert", "insert", "insert_ack", "insert_done"}
        inj = cluster.inject_faults(
            FaultPlan().drop(0.10, kinds=kinds).duplicate(0.10, kinds=kinds),
            seed=7,
        )
        extra = random_batch(schema, 120, seed=17)
        run_ops(cluster, insert_ops(extra))

        assert inj.dropped > 0
        assert_well_formed(obs)
        # no crash happened, so every span eventually closed
        assert obs.open_spans() == []
        # retransmits: some traces carry more than one server subtree
        retried = [
            tid
            for tid, spans in obs.traces().items()
            if sum(s.name == "server.route_insert" for s in spans) > 1
        ]
        assert retried, "fault plan should force at least one retransmit"

    def test_crash_failover_spans_and_open_spans(self, schema):
        """Crash a worker mid-ingest: manager.restore spans appear, and
        any span left open belongs to the crashed worker."""
        cluster = small_cluster(
            schema,
            workers=3,
            retry=FAST_RETRY,
            heartbeat_period=0.1,
            heartbeat_miss_k=3,
            checkpoint_period=0.4,
        )
        obs = cluster.observe()
        cluster.run_for(1.0)  # let checkpoints land
        extra = random_batch(schema, 150, seed=19)
        sess = cluster.session(0, concurrency=4)
        sess.run_stream(insert_ops(extra))
        cluster.run_for(0.05)
        cluster.crash_worker(1)
        cluster.run_until_clients_done(max_virtual=300.0)
        cluster.run_for(5.0)  # failure detection + restores

        assert_well_formed(obs)
        restores = [s for s in obs.tracer.spans if s.name == "manager.restore"]
        assert restores and all(s.closed for s in restores)
        for s in obs.open_spans():
            assert s.entity == "worker-1", s


class TestMetricsRegistry:
    def test_snapshot_schema_and_op_counts(self, schema):
        cluster = small_cluster(schema)
        extra = random_batch(schema, 25, seed=5)
        ops = insert_ops(extra) + [
            Operation("query", query=full_query(schema)) for _ in range(3)
        ]
        run_ops(cluster, ops)
        snap = cluster.metrics.snapshot()  # live without observe()
        assert set(snap) == {"counters", "gauges", "histograms"}
        ops_total = snap["counters"]["volap_ops_total"]
        assert ops_total["total"] == len(ops)
        for row in ops_total["series"]:
            assert set(row) == {"labels", "value"}
        lat = snap["histograms"]["volap_op_latency_seconds"]
        for key in ("count", "sum", "mean", "p50", "p95", "p99",
                    "buckets", "series"):
            assert key in lat
        assert lat["count"] == len(ops)
        # snapshot-time collector pulled live per-entity gauges
        items = snap["gauges"]["volap_worker_items"]
        assert items["total"] == cluster.total_items()

    def test_two_sequential_clusters_are_independent(self, schema):
        """Regression for shared mutable state: metrics and stats of a
        second cluster must not see the first cluster's ops."""
        first = small_cluster(schema, n_items=300)
        run_ops(first, insert_ops(random_batch(schema, 20, seed=1)))
        second = small_cluster(schema, n_items=300)
        run_ops(second, insert_ops(random_batch(schema, 7, seed=2)))

        s1 = first.stats.registry.snapshot()
        s2 = second.stats.registry.snapshot()
        assert s1["counters"]["volap_ops_total"]["total"] == 20
        assert s2["counters"]["volap_ops_total"]["total"] == 7
        assert len(first.stats.ops) == 20 and len(second.stats.ops) == 7
        assert first.metrics is not second.metrics

    def test_kind_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("x_total").inc()
        with pytest.raises(ValueError):
            r.gauge("x_total")

    def test_counter_monotonic(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.counter("c").inc(-1)

    def test_histogram_quantiles_and_merge(self):
        r = MetricsRegistry()
        h = r.histogram("h", buckets=(1, 2, 4, 8))
        for v in (0.5, 1.5, 3, 3, 7):
            h.observe(v)
        assert h.count == 5 and h.quantile(0.5) == 4.0
        merged = h.merged(r.histogram("h", buckets=(1, 2, 4, 8), extra="y"))
        assert merged.count == 5


class TestPrometheusGolden:
    @staticmethod
    def _registry():
        r = MetricsRegistry()
        r.counter("volap_ops_total", help="completed client operations",
                  kind="insert", ok="true").inc(41)
        r.counter("volap_ops_total", kind="query", ok="true").inc(7)
        r.gauge("volap_worker_items", worker="0").set(1200)
        r.gauge("volap_worker_items", worker="1").set(800)
        h = r.histogram("volap_op_latency_seconds",
                        buckets=(0.001, 0.01, 0.1), kind="insert")
        for v in (0.0005, 0.002, 0.002, 0.05, 0.5):
            h.observe(v)
        return r

    def test_matches_golden_file(self):
        text = to_prometheus(self._registry())
        assert text == GOLDEN.read_text()

    def test_cluster_export_parses(self, schema):
        """Every exposition line from a real run matches the format."""
        cluster = small_cluster(schema)
        obs = cluster.observe()
        run_ops(cluster, insert_ops(random_batch(schema, 10, seed=3)))
        text = obs.to_prometheus()
        assert "volap_messages_total" in text
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                name_part, value = line.rsplit(" ", 1)
                assert name_part.startswith("volap_")
                float(value)  # parseable number


class TestDeprecationShim:
    def setup_method(self):
        cluster_mod._warned_batch_aliases.clear()

    def test_old_names_warn_once_and_forward(self):
        with pytest.warns(DeprecationWarning) as rec:
            cfg = ClusterConfig(client_batch_size=8, client_batch_linger=1e-3)
        msgs = [str(w.message) for w in rec]
        assert any("client_batch_size" in m for m in msgs)
        assert any("client_batch_linger" in m for m in msgs)
        assert cfg.batch_size == 8
        assert cfg.batch_linger == 1e-3
        # legacy attrs read back the resolved values for old readers
        assert cfg.client_batch_size == 8
        # second use: already warned, silent
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cfg2 = ClusterConfig(client_batch_size=4)
        assert cfg2.batch_size == 4

    def test_new_names_never_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cfg = ClusterConfig(batch_size=16, batch_linger=2e-3)
        assert cfg.batch_size == 16
        assert cfg.client_batch_size == 16  # mirror, no warning


class TestTreeProfiler:
    def test_standalone_tree_profiling(self, schema):
        batch = random_batch(schema, 400, seed=9)
        tree = HilbertPDCTree(schema)
        assert tree.profiler is None  # zero-overhead default
        tree.profiler = TreeProfiler()
        for i in range(200):
            tree.insert(batch.coords[i], float(batch.measures[i]))
        tree.insert_batch(batch.slice(200, 400))
        tree.query(full_query(schema).box)

        summary = tree.profiler.summary()
        assert summary["insert"]["ops"] == 200
        assert summary["insert_batch"]["rows"] == 200
        assert summary["query"]["ops"] == 1
        assert summary["query"]["nodes_visited"] >= 1

    def test_profiler_ring_bound(self, schema):
        prof = TreeProfiler(keep=5)
        tree = HilbertPDCTree(schema)
        tree.profiler = prof
        batch = random_batch(schema, 20, seed=2)
        for coords, m in batch.iter_rows():
            tree.insert(coords, m)
        assert len(prof.records) == 5
        assert prof.dropped == 15 and prof.ops == 20


class TestPublicApi:
    def test_curated_exports(self):
        import repro

        for name in ("MetricsRegistry", "Observability", "TreeProfiler",
                     "Query", "full_query", "query_from_levels"):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_query_range_level_names(self, schema):
        dim = schema.dimensions[0]
        level = dim.hierarchy.levels[0]
        by_name = Query.range(schema, **{dim.name: (level.name, (1,))})
        by_depth = Query.range(schema, **{dim.name: (1, (1,))})
        assert np.array_equal(by_name.box.lo, by_depth.box.lo)
        assert np.array_equal(by_name.box.hi, by_depth.box.hi)
        with pytest.raises(ValueError, match="no level named"):
            Query.range(schema, **{dim.name: ("nope", (1,))})

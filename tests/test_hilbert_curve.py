"""Tests for the classic and compact Hilbert curves.

The compact curve is tested against its ground-truth definition: the
rank of a point among all valid domain points in padded-curve order
(Hamilton & Rau-Chaplin's order-isomorphism theorem).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hilbert.compact_hilbert import (
    CompactHilbertCurve,
    HilbertCurve,
    gray_code,
    gray_code_inverse,
)


class TestGrayCode:
    def test_first_values(self):
        assert [gray_code(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_inverse(self):
        for i in range(256):
            assert gray_code_inverse(gray_code(i)) == i

    def test_adjacent_codes_differ_one_bit(self):
        for i in range(255):
            diff = gray_code(i) ^ gray_code(i + 1)
            assert bin(diff).count("1") == 1


class TestHilbertCurve:
    @pytest.mark.parametrize("n,m", [(1, 5), (2, 4), (3, 3), (4, 2), (5, 2)])
    def test_bijective(self, n, m):
        c = HilbertCurve(n, m)
        pts = {c.point(h) for h in range(1 << (n * m))}
        assert len(pts) == 1 << (n * m)

    @pytest.mark.parametrize("n,m", [(2, 4), (3, 3), (4, 2)])
    def test_adjacency(self, n, m):
        """Consecutive indices map to points at L1 distance exactly 1."""
        c = HilbertCurve(n, m)
        prev = c.point(0)
        for h in range(1, 1 << (n * m)):
            cur = c.point(h)
            assert sum(abs(a - b) for a, b in zip(prev, cur)) == 1
            prev = cur

    @pytest.mark.parametrize("n,m", [(2, 5), (3, 4), (6, 2)])
    def test_index_point_roundtrip(self, n, m):
        c = HilbertCurve(n, m)
        step = max(1, (1 << (n * m)) // 500)
        for h in range(0, 1 << (n * m), step):
            assert c.index(c.point(h)) == h

    def test_2d_order_is_classic(self):
        """First-order 2-d curve visits the quadrants in the textbook order."""
        c = HilbertCurve(2, 1)
        # Hamilton's convention: dimension j is bit j of l, giving the
        # U-shaped visit order (0,0) -> (0,1) -> (1,1) -> (1,0).
        assert [c.point(h) for h in range(4)] == [(0, 0), (0, 1), (1, 1), (1, 0)]

    def test_out_of_range_rejected(self):
        c = HilbertCurve(2, 3)
        with pytest.raises(ValueError):
            c.index((8, 0))
        with pytest.raises(ValueError):
            c.point(64)

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            HilbertCurve(0, 3)
        with pytest.raises(ValueError):
            HilbertCurve(2, -1)


class TestCompactHilbertCurve:
    @pytest.mark.parametrize(
        "widths",
        [(1, 2), (2, 1), (2, 3), (3, 1, 2), (1, 1, 3), (2, 2, 2), (0, 2, 1)],
    )
    def test_index_equals_brute_force_rank(self, widths):
        """Ground truth: compact index == rank in padded-curve order."""
        cc = CompactHilbertCurve(widths)
        for p in cc._iter_domain():
            assert cc.index(p) == cc.brute_force_rank(p)

    @pytest.mark.parametrize("widths", [(2, 3), (3, 1, 2), (2, 2, 2)])
    def test_dense_bijection(self, widths):
        """Compact indices are exactly 0 .. 2**total_bits - 1."""
        cc = CompactHilbertCurve(widths)
        idx = sorted(cc.index(p) for p in cc._iter_domain())
        assert idx == list(range(1 << cc.total_bits))

    @pytest.mark.parametrize("widths", [(1, 2), (2, 3), (3, 1, 2), (2, 2, 2)])
    def test_point_inverts_index(self, widths):
        cc = CompactHilbertCurve(widths)
        for p in cc._iter_domain():
            assert cc.point(cc.index(p)) == p

    def test_equal_widths_matches_plain_curve_order(self):
        """With equal widths the compact order equals the plain Hilbert order."""
        cc = CompactHilbertCurve((3, 3))
        plain = HilbertCurve(2, 3)
        pts = list(cc._iter_domain())
        assert sorted(pts, key=cc.index) == sorted(pts, key=plain.index)

    def test_large_widths_do_not_overflow(self):
        """Widths summing past 64 bits work via python ints."""
        cc = CompactHilbertCurve((40, 40, 40))
        p = (2**40 - 1, 0, 2**39)
        h = cc.index(p)
        assert 0 <= h < 1 << 120
        assert cc.point(h) == p

    def test_out_of_range_rejected(self):
        cc = CompactHilbertCurve((2, 3))
        with pytest.raises(ValueError):
            cc.index((4, 0))
        with pytest.raises(ValueError):
            cc.index((0, 0, 0))
        with pytest.raises(ValueError):
            cc.point(1 << 5)

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            CompactHilbertCurve(())
        with pytest.raises(ValueError):
            CompactHilbertCurve((0, 0))
        with pytest.raises(ValueError):
            CompactHilbertCurve((-1, 2))


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=3), min_size=2, max_size=4),
    st.data(),
)
def test_compact_order_isomorphism_property(widths, data):
    """Property: compact index order == padded Hilbert index order."""
    cc = CompactHilbertCurve(widths)
    padded = HilbertCurve(cc.num_dims, cc.max_bits)
    p = tuple(
        data.draw(st.integers(min_value=0, max_value=(1 << w) - 1))
        for w in widths
    )
    q = tuple(
        data.draw(st.integers(min_value=0, max_value=(1 << w) - 1))
        for w in widths
    )
    ci, cj = cc.index(p), cc.index(q)
    pi, pj = padded.index(p), padded.index(q)
    assert (ci < cj) == (pi < pj)
    assert (ci == cj) == (p == q)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=5), st.integers(min_value=2, max_value=4), st.data())
def test_plain_curve_locality_property(n, m, data):
    """Property: adjacent indices are adjacent points (unit L1 step)."""
    c = HilbertCurve(n, m)
    h = data.draw(st.integers(min_value=0, max_value=(1 << (n * m)) - 2))
    a, b = c.point(h), c.point(h + 1)
    assert sum(abs(x - y) for x, y in zip(a, b)) == 1

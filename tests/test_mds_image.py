"""Tests for MDS bounding keys in the system image (paper III-A:
"either a Minimum Bounding Rectangle (MBR, one box) or Minimum
Describing Subset (MDS, multiple boxes)")."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, VOLAPCluster
from repro.cluster.image import LocalImage, ShardInfo
from repro.cluster.wire import key_from_wire, key_to_wire
from repro.core import TreeConfig
from repro.olap.keys import Box
from repro.olap.mds import MDS
from repro.olap.query import full_query
from repro.workloads import TPCDSGenerator, tpcds_schema
from repro.workloads.streams import Operation


def box(lo, hi):
    return Box(np.array(lo, dtype=np.int64), np.array(hi, dtype=np.int64))


class TestWire:
    def test_box_roundtrip(self):
        b = box([1, 2], [3, 4])
        assert key_from_wire(key_to_wire(b)) == b

    def test_mds_roundtrip(self):
        m = MDS([[(0, 3), (10, 12)], [(5, 5)]], max_intervals=6)
        out = key_from_wire(key_to_wire(m))
        assert out == m
        assert out.max_intervals == 6

    def test_bad_inputs(self):
        with pytest.raises(TypeError):
            key_to_wire("nope")
        with pytest.raises(ValueError):
            key_from_wire(("weird", ()))


class TestMDSImage:
    def test_add_and_route(self):
        img = LocalImage(2, key_kind="mds")
        img.add_shard(ShardInfo(1, box([0, 0], [10, 10]), 0))
        img.add_shard(ShardInfo(2, box([50, 50], [60, 60]), 1))
        assert img.route_insert(np.array([5, 5])).shard_id == 1
        assert img.route_insert(np.array([55, 55])).shard_id == 2
        img.validate()

    def test_adopts_box_keys_as_mds(self):
        img = LocalImage(2, key_kind="mds")
        img.add_shard(ShardInfo(1, box([0, 0], [10, 10]), 0))
        assert isinstance(img.get(1).key, MDS)

    def test_adopts_mds_keys_in_mbr_image(self):
        img = LocalImage(2, key_kind="mbr")
        m = MDS([[(0, 3), (20, 22)], [(0, 9)]])
        img.add_shard(ShardInfo(1, m, 0))
        assert isinstance(img.get(1).key, Box)
        assert img.get(1).key == box([0, 0], [22, 9])

    def test_mds_image_skips_gap_queries(self):
        """The fidelity payoff: a query probing the gap between a
        shard's data clusters is not routed to it under MDS keys but is
        under MBR keys."""
        gap_probe = box([14, 0], [16, 9])
        shard_key = MDS([[(0, 3), (25, 28)], [(0, 9)]])
        mbr_img = LocalImage(2, key_kind="mbr")
        mds_img = LocalImage(2, key_kind="mds")
        for img in (mbr_img, mds_img):
            img.add_shard(
                ShardInfo(1, key_from_wire(key_to_wire(shard_key)), 0)
            )
        assert len(mbr_img.search(gap_probe)) == 1
        assert len(mds_img.search(gap_probe)) == 0

    def test_expansion_with_mds(self):
        img = LocalImage(2, key_kind="mds")
        img.add_shard(ShardInfo(1, box([0, 0], [5, 5]), 0))
        changed = img.expand_shard(1, box([50, 50], [55, 55]))
        assert changed
        # expansion keeps the gap: the middle is still excluded
        assert len(img.search(box([20, 20], [30, 30]))) == 0
        assert len(img.search(box([51, 51], [52, 52]))) == 1

    def test_shard_info_box_property(self):
        m = MDS([[(0, 3), (25, 28)], [(0, 9)]])
        info = ShardInfo(1, m, 0)
        assert info.box == box([0, 0], [28, 9])


class TestMDSImageCluster:
    def test_end_to_end_with_mds_image(self):
        """Full cluster with MDS-keyed shards and MDS image stays exact."""
        schema = tpcds_schema()
        gen = TPCDSGenerator(schema, seed=2)
        batch = gen.batch(4000)
        cfg = ClusterConfig(
            num_workers=2,
            num_servers=2,
            tree_config=TreeConfig(key_kind="mds", leaf_capacity=32, fanout=8),
            image_key_kind="mds",
        )
        cluster = VOLAPCluster(schema, cfg)
        cluster.bootstrap(batch, shards_per_worker=2)
        for s in cluster.servers:
            assert isinstance(next(iter(s.image.shards())).key, MDS)
        # inserts + full query remain exact
        extra = gen.batch(100)
        sess = cluster.session(0, concurrency=4)
        sess.run_stream(
            [
                Operation("insert", coords=extra.coords[i], measure=1.0)
                for i in range(100)
            ]
        )
        cluster.run_until_clients_done()
        out = []
        q = cluster.session(1, concurrency=1)
        q.on_complete = out.append
        cluster.run_for(cluster.config.sync_period + 0.2)
        q.run_stream([Operation("query", query=full_query(schema))])
        cluster.run_until_clients_done()
        assert out[0].result_count == 4100

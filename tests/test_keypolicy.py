"""Tests for the key-policy strategy layer (MBR vs MDS uniformity)."""

import numpy as np
import pytest

from repro.core.keypolicy import MBRPolicy, MDSPolicy, make_policy
from repro.olap.keys import Box


@pytest.fixture(params=["mbr", "mds"])
def policy(request):
    return make_policy(request.param)


class TestFactory:
    def test_kinds(self):
        assert make_policy("mbr").kind == "mbr"
        assert make_policy("mds").kind == "mds"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("nope")

    def test_mds_cap_threaded_through(self):
        p = make_policy("mds", mds_max_intervals=2)
        key = p.from_point(np.array([0]))
        p.expand_point(key, np.array([10]))
        p.expand_point(key, np.array([20]))
        assert len(key.intervals[0]) <= 2


class TestUniformBehaviour:
    """Both policies satisfy the same contracts the trees rely on."""

    def test_from_point_covers_point(self, policy):
        pt = np.array([3, 7])
        key = policy.from_point(pt)
        assert policy.covers_point(key, pt)

    def test_expand_point_reports_change(self, policy):
        key = policy.from_point(np.array([0, 0]))
        assert policy.expand_point(key, np.array([5, 5]))
        assert not policy.expand_point(key, np.array([0, 0]))

    def test_expand_key(self, policy):
        a = policy.from_point(np.array([0, 0]))
        b = policy.from_point(np.array([9, 9]))
        assert policy.expand(a, b)
        assert policy.covers_point(a, np.array([9, 9]))

    def test_intersects_and_within(self, policy):
        key = policy.from_point(np.array([5, 5]))
        policy.expand_point(key, np.array([7, 7]))
        big = Box(np.array([0, 0]), np.array([10, 10]))
        small = Box(np.array([7, 7]), np.array([7, 7]))
        off = Box(np.array([20, 20]), np.array([30, 30]))
        assert policy.intersects_box(key, big)
        assert policy.intersects_box(key, small)
        assert not policy.intersects_box(key, off)
        assert policy.within_box(key, big)
        assert not policy.within_box(key, small)

    def test_empty_key_semantics(self, policy):
        key = policy.empty(2)
        box = Box(np.array([0, 0]), np.array([10, 10]))
        assert not policy.intersects_box(key, box)

    def test_log_overlap_symmetry(self, policy):
        a = policy.from_point(np.array([0, 0]))
        policy.expand_point(a, np.array([5, 5]))
        b = policy.from_point(np.array([3, 3]))
        policy.expand_point(b, np.array([8, 8]))
        assert policy.log_overlap(a, b) == policy.log_overlap(b, a)

    def test_log_overlap_disjoint_is_neg_inf(self, policy):
        a = policy.from_point(np.array([0, 0]))
        b = policy.from_point(np.array([50, 50]))
        assert policy.log_overlap(a, b) == float("-inf")

    def test_union_of(self, policy):
        keys = [
            policy.from_point(np.array([i * 10, i * 10])) for i in range(3)
        ]
        u = policy.union_of(keys, 2)
        for i in range(3):
            assert policy.covers_point(u, np.array([i * 10, i * 10]))

    def test_mbr_extraction(self, policy):
        key = policy.from_point(np.array([2, 3]))
        policy.expand_point(key, np.array([8, 1]))
        mbr = policy.mbr(key)
        assert isinstance(mbr, Box)
        assert mbr.lo.tolist() == [2, 1]
        assert mbr.hi.tolist() == [8, 3]

    def test_copy_is_independent(self, policy):
        key = policy.from_point(np.array([0, 0]))
        cp = policy.copy(key)
        policy.expand_point(cp, np.array([9, 9]))
        assert not policy.covers_point(key, np.array([9, 9]))

    def test_covers(self, policy):
        a = policy.from_point(np.array([0, 0]))
        policy.expand_point(a, np.array([10, 10]))
        b = policy.from_point(np.array([10, 10]))
        assert policy.covers(a, b)
        c = policy.from_point(np.array([40, 40]))
        assert not policy.covers(a, c)


class TestPolicyDifferences:
    def test_mds_excludes_gaps_mbr_does_not(self):
        """The structural difference that motivates MDS keys."""
        mbr, mds = MBRPolicy(), MDSPolicy(max_intervals=4)
        probe = Box(np.array([50]), np.array([50]))
        k_mbr = mbr.from_point(np.array([0]))
        mbr.expand_point(k_mbr, np.array([100]))
        k_mds = mds.from_point(np.array([0]))
        mds.expand_point(k_mds, np.array([100]))
        assert mbr.intersects_box(k_mbr, probe)
        assert not mds.intersects_box(k_mds, probe)

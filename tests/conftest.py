"""Shared fixtures: schemas, random data, and tree factories."""

import os

import numpy as np
import pytest

from repro.olap.hierarchy import Dimension, Hierarchy, Level
from repro.olap.records import RecordBatch
from repro.olap.schema import Schema


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "sim_only: test depends on virtual-time determinism (bit-identical "
        "replays, tight model timers, migration timing); always runs on the "
        "sim runtime even when VOLAP_RUNTIME selects a real backend",
    )


@pytest.fixture(autouse=True)
def _pin_sim_only_tests(request, monkeypatch):
    """Pin ``sim_only``-marked tests to the sim runtime.

    The CI backend matrix re-runs the whole suite with
    ``VOLAP_RUNTIME=asyncio``; tests that assert on discrete-event
    semantics (exact replay equality, model-time staleness math, timers
    sized for zero-cost handlers) are marked ``sim_only`` and keep the
    default backend here instead of failing spuriously on wall clocks.
    """
    if request.node.get_closest_marker("sim_only") is not None:
        if os.environ.get("VOLAP_RUNTIME", "sim") != "sim":
            monkeypatch.setenv("VOLAP_RUNTIME", "sim")


def make_schema(spec=None) -> Schema:
    """Schema from a list of per-dimension fanout lists."""
    if spec is None:
        spec = [[8, 12, 31], [4, 16], [10, 10]]
    dims = []
    for i, fanouts in enumerate(spec):
        name = f"d{i}"
        dims.append(
            Dimension(
                name,
                Hierarchy(
                    name, [Level(f"{name}_l{j}", f) for j, f in enumerate(fanouts)]
                ),
            )
        )
    return Schema(dims)


def random_batch(schema: Schema, n: int, seed: int = 0) -> RecordBatch:
    rng = np.random.default_rng(seed)
    coords = rng.integers(
        0, schema.leaf_limits + 1, size=(n, schema.num_dims), dtype=np.int64
    )
    return RecordBatch(coords, rng.random(n))


def clustered_batch(schema: Schema, n: int, clusters: int = 5, seed: int = 0) -> RecordBatch:
    """Hierarchy-clustered data: items concentrate under a few prefixes."""
    rng = np.random.default_rng(seed)
    d = schema.num_dims
    centers = rng.integers(0, schema.leaf_limits + 1, size=(clusters, d), dtype=np.int64)
    which = rng.integers(0, clusters, size=n)
    spread = np.maximum(schema.leaf_limits // 16, 1)
    jitter = rng.integers(-spread, spread + 1, size=(n, d))
    coords = np.clip(centers[which] + jitter, 0, schema.leaf_limits)
    return RecordBatch(coords.astype(np.int64), rng.random(n))


def random_boxes(schema: Schema, n: int, seed: int = 1):
    from repro.olap.keys import Box

    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        a = rng.integers(0, schema.leaf_limits + 1)
        b = rng.integers(0, schema.leaf_limits + 1)
        out.append(Box(np.minimum(a, b), np.maximum(a, b)))
    return out


@pytest.fixture
def schema():
    return make_schema()


@pytest.fixture
def batch(schema):
    return random_batch(schema, 1500, seed=42)

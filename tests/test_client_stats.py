"""Tests for client sessions, cluster statistics, and bench tables."""

import numpy as np
import pytest

from repro.bench.tables import render_series, render_table
from repro.cluster.client import ClientSession
from repro.cluster.simclock import SimClock
from repro.cluster.stats import ClusterStats, OpRecord
from repro.cluster.transport import Entity, LatencyModel, Message, Transport
from repro.workloads.streams import Operation


class EchoServer(Entity):
    """Fake server acking everything after a fixed delay."""

    name = "echo"

    def __init__(self, clock, transport, delay=0.01):
        self.clock = clock
        self.transport = transport
        self.delay = delay
        self.seen = 0

    def receive(self, msg):
        self.seen += 1
        op_id = msg.payload[0]
        client = msg.payload[-1]
        if msg.kind == "client_insert_batch":
            self.batches = getattr(self, "batches", 0) + 1
            op_ids = [row[0] for row in msg.payload[0]]
            reply = Message("insert_done_batch", (op_ids,))
        elif msg.kind == "client_insert":
            reply = Message("insert_done", (op_id, self.clock.now))
        else:
            from repro.core.aggregates import Aggregate

            query = msg.payload[1]
            reply = Message(
                "query_done",
                (op_id, self.clock.now, Aggregate.of_value(1.0), 2,
                 query.coverage, 1.0, 0.0, "tree"),
            )
        self.clock.after(self.delay, lambda: client.receive(reply))


def make_rig(delay=0.01):
    clock = SimClock()
    transport = Transport(clock, LatencyModel(base=0.0, jitter=0.0))
    server = EchoServer(clock, transport, delay)
    stats = ClusterStats()
    return clock, transport, server, stats


def insert_ops(n):
    return [
        Operation("insert", coords=np.zeros(2, dtype=np.int64), measure=1.0)
        for _ in range(n)
    ]


class TestClientSession:
    def test_completes_all_ops(self):
        clock, transport, server, stats = make_rig()
        c = ClientSession(0, transport, server, stats, concurrency=4)
        c.run_stream(insert_ops(20))
        clock.run()
        assert c.done
        assert c.completed == 20
        assert len(stats.ops) == 20

    def test_batched_session_completes_all_ops(self):
        """Coalesced inserts: fewer wire messages, same per-op records."""
        clock, transport, server, stats = make_rig()
        c = ClientSession(
            0, transport, server, stats, concurrency=16,
            batch_size=8, batch_linger=1e-3,
        )
        c.run_stream(insert_ops(40))
        clock.run()
        assert c.done
        assert c.completed == 40
        assert len(stats.ops) == 40  # per-record accounting survives
        assert all(r.ok for r in stats.ops)
        assert c.batches_sent > 0
        assert server.seen < 40  # coalescing actually happened

    def test_linger_flushes_short_batches(self):
        """A window smaller than the batch never fills it; the linger
        timer must flush anyway."""
        clock, transport, server, stats = make_rig()
        c = ClientSession(
            0, transport, server, stats, concurrency=2,
            batch_size=64, batch_linger=1e-3,
        )
        c.run_stream(insert_ops(6))
        clock.run()
        assert c.done and c.completed == 6
        assert c.batches_sent >= 3  # ~window-sized flushes

    def test_concurrency_bounds_outstanding(self):
        clock, transport, server, stats = make_rig()
        c = ClientSession(0, transport, server, stats, concurrency=3)
        c.run_stream(insert_ops(10))
        assert c._outstanding == 3  # only the window is in flight

    def test_closed_loop_pacing(self):
        """With concurrency 1 and service delay d, ops complete serially."""
        clock, transport, server, stats = make_rig(delay=0.5)
        c = ClientSession(0, transport, server, stats, concurrency=1)
        c.run_stream(insert_ops(4))
        clock.run()
        completes = sorted(r.complete_time for r in stats.ops)
        gaps = np.diff(completes)
        assert (gaps >= 0.5 - 1e-9).all()

    def test_on_done_callback(self):
        clock, transport, server, stats = make_rig()
        c = ClientSession(0, transport, server, stats, concurrency=2)
        fired = []
        c.on_done = lambda: fired.append(clock.now)
        c.run_stream(insert_ops(5))
        clock.run()
        assert len(fired) == 1

    def test_query_records_coverage(self):
        from repro.olap.query import Query
        from repro.olap.keys import Box

        clock, transport, server, stats = make_rig()
        c = ClientSession(0, transport, server, stats, concurrency=1)
        q = Query(Box(np.zeros(2, dtype=np.int64), np.ones(2, dtype=np.int64)))
        q.coverage = 0.42
        c.run_stream([Operation("query", query=q)])
        clock.run()
        rec = stats.ops[0]
        assert rec.kind == "query"
        assert rec.coverage == 0.42
        assert rec.shards_searched == 2

    def test_bad_concurrency(self):
        clock, transport, server, stats = make_rig()
        with pytest.raises(ValueError):
            ClientSession(0, transport, server, stats, concurrency=0)


class TestClusterStats:
    def test_select_filters(self):
        s = ClusterStats()
        s.record_op(OpRecord("insert", 0.0, 1.0))
        s.record_op(OpRecord("query", 2.0, 3.0, coverage=0.5))
        s.record_op(OpRecord("query", 4.0, 5.0, coverage=0.9))
        assert len(s.select(kind="insert")) == 1
        assert len(s.select(kind="query", coverage_band=(0.8, 1.0))) == 1
        assert len(s.select(since=1.5)) == 2
        assert len(s.select(until=1.0)) == 1

    def test_throughput(self):
        s = ClusterStats()
        for i in range(10):
            s.record_op(OpRecord("insert", i * 0.1, i * 0.1 + 0.05))
        recs = s.select()
        assert s.throughput(recs) == pytest.approx(10 / 0.95)
        assert s.throughput([]) == 0.0

    def test_latency_stats(self):
        s = ClusterStats()
        s.record_op(OpRecord("insert", 0.0, 0.2))
        s.record_op(OpRecord("insert", 0.0, 0.4))
        out = s.latency_stats(s.select())
        assert out["mean"] == pytest.approx(0.3)
        assert out["max"] == pytest.approx(0.4)
        assert np.isnan(s.latency_stats([])["mean"])

    def test_latency_stats_empty_has_same_keys(self):
        """Regression: the empty-input dict used to miss the "max" key,
        so ``latency_stats(recs)["max"]`` blew up on quiet windows."""
        s = ClusterStats()
        empty = s.latency_stats([])
        s.record_op(OpRecord("insert", 0.0, 0.2))
        full = s.latency_stats(s.select())
        assert set(empty) == set(full)
        assert all(np.isnan(v) for v in empty.values())

    def test_balance_series(self):
        s = ClusterStats()
        s.snapshot_workers(0.0, {0: 100, 1: 50})
        s.record_migration(0.5)
        s.snapshot_workers(1.0, {0: 80, 1: 70})
        rows = s.balance_series()
        assert rows[0] == (0.0, 50, 100, 0)
        assert rows[1] == (1.0, 70, 80, 1)

    def test_split_and_migration_counters(self):
        s = ClusterStats()
        s.record_split(1.0)
        s.record_migration(2.0)
        s.record_migration(3.0)
        assert s.splits == 1
        assert s.migrations == 2
        assert len(s.balance_events) == 3


class TestTables:
    def test_render_table_alignment(self):
        out = render_table("T", ["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_render_table_empty(self):
        out = render_table("T", ["x"], [])
        assert "x" in out

    def test_render_series(self):
        out = render_series("S", {"line": [(1, 2.0), (3, 4.0)]})
        assert "-- line" in out
        assert "1" in out

    def test_float_formatting(self):
        out = render_table("T", ["v"], [[123456.789], [0.00012], [3.14159]])
        assert "123,457" in out
        assert "0.00012" in out
        assert "3.14" in out

"""Shard residency tier: spill, lazy rehydrate, and larger-than-memory.

Covers the residency state machine (HOT <-> WARM) end to end: the
unified blob codec, budget-driven LRU spills with the ±1-shard
hysteresis, bounding-key pruning of WARM shards, checkpoint-tick
elision (a spill's blob *is* the checkpoint), the manager-driven
spill/rehydrate protocol under its own lifecycle pool, and the
headline differential: a cluster whose hot budget is a fraction of the
dataset serves full-coverage queries **bit-identical** to an all-hot
twin -- including under message chaos and a crash of the worker
holding spilled shards.

Every differential uses integer-valued measures: float64 integer sums
below 2**53 are exact, so aggregate equality is independent of
summation order (see ``repro.workloads.sensors`` for the fixed-point
stream variant).
"""

import numpy as np
import pytest

from repro.cluster import (
    BalancerPolicy,
    ClusterConfig,
    FaultPlan,
    MemoryPressurePolicy,
    ShardOpMachine,
    VOLAPCluster,
    WorkerView,
)
from repro.cluster.simclock import SimClock
from repro.cluster.storage import HOT, WARM
from repro.core import TreeConfig
from repro.olap.keys import Box
from repro.olap.query import Query, full_query
from repro.olap.records import RecordBatch

from .conftest import make_schema, random_boxes
from .test_chaos import CHAOS_RETRY, INSERT_KINDS, insert_ops

#: deterministic-replay and model-timer assertions; see conftest
pytestmark = pytest.mark.sim_only


def int_batch(schema, n, seed=0):
    """Random rows with integer-valued measures (exact float64 sums)."""
    rng = np.random.default_rng(seed)
    coords = rng.integers(
        0, schema.leaf_limits + 1, size=(n, schema.num_dims), dtype=np.int64
    )
    measures = rng.integers(1, 1_000_000, size=n).astype(np.float64)
    return RecordBatch(coords, measures)


def residency_cluster(
    schema,
    n_items=1500,
    budget=None,
    seed=3,
    shards_per_worker=2,
    retry=None,
    checkpoint_period=0.4,
):
    cfg = ClusterConfig(
        num_workers=3,
        num_servers=1,
        tree_config=TreeConfig(leaf_capacity=32, fanout=8),
        balancer=BalancerPolicy(
            max_shard_items=100_000, scan_period=0.1, op_timeout=2.0
        ),
        retry=retry if retry is not None else CHAOS_RETRY,
        heartbeat_period=0.1,
        heartbeat_miss_k=3,
        checkpoint_period=checkpoint_period,
        hot_budget_bytes=budget,
        seed=seed,
    )
    cluster = VOLAPCluster(schema, cfg)
    batch = int_batch(schema, n_items, seed=seed)
    cluster.bootstrap(batch, shards_per_worker=shards_per_worker)
    return cluster, batch


def agg_tuples(results):
    return [r.value.to_tuple() for r in results]


@pytest.fixture
def schema():
    return make_schema()


# -- state machine unit behaviour ------------------------------------------


class TestResidencyStateMachine:
    def test_spill_then_rehydrate_roundtrip(self, schema):
        cluster, _ = residency_cluster(schema)
        w = cluster.workers[0]
        sid = sorted(w.shards)[0]
        items = len(w.shards[sid])
        bytes_before = w.resident_bytes()

        entry = w.storage.spill(sid)
        assert w.storage.residency(sid) == WARM
        assert sid not in w.shards and sid in w.storage.cold
        assert entry.items == items and entry.blob_bytes > 0
        assert w.resident_bytes() < bytes_before
        assert w.total_items() >= items  # WARM items still counted

        store = w.storage.rehydrate(sid)
        assert w.storage.residency(sid) == HOT
        assert len(store) == items and sid not in w.storage.cold
        assert w.storage.spills == 1 and w.storage.rehydrates == 1

    def test_rehydrate_is_idempotent(self, schema):
        cluster, _ = residency_cluster(schema)
        w = cluster.workers[0]
        sid = sorted(w.shards)[0]
        w.storage.spill(sid)
        first = w.storage.rehydrate(sid)
        again = w.storage.rehydrate(sid)
        assert again is first
        assert w.storage.rehydrates == 1
        assert w.storage.rehydrate(999_999) is None  # unknown shard

    def test_frozen_shard_refuses_to_spill(self, schema):
        cluster, _ = residency_cluster(schema)
        w = cluster.workers[0]
        sid = sorted(w.shards)[0]
        w.frozen.add(sid)
        with pytest.raises(ValueError, match="frozen"):
            w.storage.spill(sid)
        w.frozen.discard(sid)
        with pytest.raises(ValueError, match="not HOT"):
            w.storage.spill(999_999)

    def test_spill_publishes_warm_residency(self, schema):
        cluster, _ = residency_cluster(schema)
        w = cluster.workers[0]
        server = cluster.servers[0]
        sid = sorted(w.shards)[0]
        w.storage.spill(sid)
        cluster.run_for(0.2)  # let the zk watch fan out
        assert cluster.zk.get(f"/shards/{sid}")[4] == WARM
        assert server.image.get(sid).residency == WARM
        w.storage.rehydrate(sid)
        cluster.run_for(0.2)
        assert cluster.zk.get(f"/shards/{sid}")[4] == HOT
        assert server.image.get(sid).residency == HOT

    def test_residency_pool_is_separate(self):
        class _Transport:
            obs = None

        m = ShardOpMachine(SimClock(), _Transport())
        m.max_inflight_residency = 2
        assert m.admit("spill", 1, src=0) is not None
        m.dispatched(1)
        assert m.admit("rehydrate", 2, src=0) is not None
        m.dispatched(2)
        assert m.admit("spill", 3, src=0) is None  # pool exhausted
        assert m.admit("split", 4) is not None  # balance pool unaffected
        assert m.residency_inflight == 2 and m.balance_inflight == 1
        assert m.complete(1, "spill")
        assert m.admit("rehydrate", 3, src=0) is not None
        assert m.started["spill"] == 1 and m.started["rehydrate"] == 2


# -- lazy rehydrate on the data paths --------------------------------------


class TestLazyRehydrate:
    def test_query_rehydrates_and_matches_all_hot_result(self, schema):
        cluster, _ = residency_cluster(schema)
        q = full_query(schema)
        before = cluster.execute(q)
        w = cluster.workers[0]
        for sid in sorted(w.shards):
            w.storage.spill(sid)
        assert w.storage.cold and not w.shards
        after = cluster.execute(q)
        assert after.value.to_tuple() == before.value.to_tuple()
        assert after.coverage == 1.0
        assert w.storage.rehydrates > 0
        # the blobs never left the worker: not a checkpoint restore
        assert w.checkpoint_deserializations == 0

    def test_insert_rehydrates_target_shard(self, schema):
        cluster, batch = residency_cluster(schema)
        w = cluster.workers[0]
        sid = sorted(w.shards)[0]
        w.storage.spill(sid)
        server = cluster.servers[0]
        # find a row routed to the spilled shard and insert it
        row = next(
            i
            for i in range(len(batch))
            if server.image.route_insert(batch.coords[i]).shard_id == sid
        )
        sess = cluster.session(0, concurrency=1)
        sess.run_stream(
            [insert_ops(batch.slice(row, row + 1))[0]]
        )
        cluster.run_until_clients_done(max_virtual=60.0)
        assert w.storage.residency(sid) == HOT
        assert w.storage.rehydrates == 1

    def test_warm_shard_bbox_prunes_without_reading_blob(self, schema):
        cluster, _ = residency_cluster(schema, n_items=0, shards_per_worker=1)
        w = cluster.workers[0]
        rng = np.random.default_rng(7)
        limits = schema.leaf_limits
        # two shards with disjoint d0 ranges so their boxes cannot touch
        half = int(limits[0]) // 2
        lo_coords = rng.integers(
            0, limits + 1, size=(200, schema.num_dims), dtype=np.int64
        )
        lo_coords[:, 0] = rng.integers(0, half, size=200)
        hi_coords = rng.integers(
            0, limits + 1, size=(200, schema.num_dims), dtype=np.int64
        )
        hi_coords[:, 0] = rng.integers(half + 1, int(limits[0]) + 1, size=200)
        lo_batch = RecordBatch(
            lo_coords, rng.integers(1, 1000, 200).astype(np.float64)
        )
        hi_batch = RecordBatch(
            hi_coords, rng.integers(1, 1000, 200).astype(np.float64)
        )
        make = lambda b: cluster.config.store_cls.from_batch(  # noqa: E731
            schema, b, cluster.config.tree_config
        )
        sid_lo, sid_hi = 7001, 7002
        w.install_shard(sid_lo, make(lo_batch))
        w.install_shard(sid_hi, make(hi_batch))
        for s in cluster.servers:
            s.load_image()
        w.storage.spill(sid_hi)
        decoded_before = w.storage.blobs_decoded
        # a box covering only the low half: the WARM shard is pruned by
        # its bounding key -- counted as searched, blob untouched
        lo_box = Box(
            np.zeros(schema.num_dims, dtype=np.int64),
            np.array([half] + list(limits[1:]), dtype=np.int64),
        )
        r = cluster.execute(Query(lo_box))
        assert r.coverage == 1.0
        assert r.value.count == 200
        assert r.value.total == float(lo_batch.measures.sum())
        assert w.storage.blobs_decoded == decoded_before
        assert w.storage.residency(sid_hi) == WARM
        # the full box does need the blob: lazy rehydrate kicks in
        r2 = cluster.execute(full_query(schema))
        assert r2.value.count == 400
        assert w.storage.blobs_decoded == decoded_before + 1
        assert w.storage.residency(sid_hi) == HOT


# -- checkpoint interaction ------------------------------------------------


class TestCheckpointElision:
    def test_checkpoint_tick_skips_warm_shards(self, schema):
        cluster, _ = residency_cluster(schema, checkpoint_period=0.5)
        cluster.run_for(1.0)  # at least one checkpoint tick for every shard
        w = cluster.workers[0]
        sid = sorted(w.shards)[0]
        hot_sid = sorted(w.shards)[1]
        w.storage.spill(sid)
        spill_blob, _, spill_time = cluster.checkpoints.get(sid)
        cluster.run_for(1.6)  # several more ticks
        blob, _, t = cluster.checkpoints.get(sid)
        assert t == spill_time, "checkpoint tick re-encoded a WARM shard"
        assert blob is spill_blob
        # hot shards kept checkpointing meanwhile
        assert cluster.checkpoints.get(hot_sid)[2] > spill_time

    def test_rehydrate_serves_restore_without_deserialization_count(
        self, schema
    ):
        """A rehydrate is *not* a checkpoint restore: the counter the
        failover path uses stays untouched when reads pull WARM shards
        back, so restore metrics keep meaning 'blob replayed after a
        crash'."""
        cluster, _ = residency_cluster(schema)
        w = cluster.workers[0]
        for sid in sorted(w.shards):
            w.storage.spill(sid)
        cluster.execute(full_query(schema))
        assert w.storage.rehydrates > 0
        assert all(
            wk.checkpoint_deserializations == 0
            for wk in cluster.workers.values()
        )


# -- manager-driven residency protocol -------------------------------------


class TestManagerResidencyOps:
    def test_spill_and_rehydrate_via_protocol(self, schema):
        cluster, _ = residency_cluster(schema)
        m = cluster.manager
        w = cluster.workers[1]
        sid = sorted(w.shards)[0]
        m._start_spill(1, sid)
        assert m.lifecycle.residency_inflight == 1
        cluster.run_for(1.0)
        assert w.storage.residency(sid) == WARM
        assert m.spills_done == 1 and m.lifecycle.quiescent()
        m._start_rehydrate(1, sid)
        cluster.run_for(1.0)
        assert w.storage.residency(sid) == HOT
        assert m.rehydrates_done == 1 and m.lifecycle.quiescent()
        assert m.lifecycle.residency_inflight == 0

    def test_spill_of_missing_shard_fails_cleanly(self, schema):
        cluster, _ = residency_cluster(schema)
        m = cluster.manager
        m._start_spill(1, 424242)
        cluster.run_for(1.0)
        assert m.spills_done == 0 and m.lifecycle.quiescent()

    def test_memory_pressure_policy_plans_spills(self, schema):
        cluster, _ = residency_cluster(schema, budget=1)
        cluster.run_for(0.5)
        for w in cluster.workers.values():
            w.publish_stats()
        view = WorkerView.from_stats(
            {
                wid: cluster.zk.get(f"/stats/workers/{wid}")
                for wid in cluster.workers
            },
            busy=(),
            budget=4,
        )
        assert view.resident_bytes  # workers exported measured bytes
        policy = MemoryPressurePolicy(worker_budget_bytes=64)
        actions = policy.plan(view)
        spills = [a for a in actions if a.kind == "spill"]
        # every worker is far over a 64-byte budget: spills are planned
        # for hot shards (never already-warm ones)
        assert spills
        for a in spills:
            assert a.shard_id in view.hot_shards(a.worker_id)


# -- budget enforcement and the larger-than-memory differential ------------


class TestLargerThanMemory:
    def _budget_for(self, schema, n_items, seed, divisor=4):
        """Per-worker budget sized so the dataset is >= 3x the
        aggregate hot budget, measured on an unconstrained twin."""
        ref, _ = residency_cluster(schema, n_items=n_items, seed=seed)
        total = sum(w.resident_bytes() for w in ref.workers.values())
        max_shard = max(
            s.resident_bytes()
            for w in ref.workers.values()
            for s in w.shards.values()
        )
        budget = max(total // (len(ref.workers) * divisor), 1)
        return ref, budget, max_shard

    def test_budget_bounds_residency_with_hysteresis(self, schema):
        n = 4000
        ref, budget, max_shard = self._budget_for(schema, n, seed=11)
        cluster, _ = residency_cluster(
            schema, n_items=n, budget=budget, seed=11, shards_per_worker=4
        )
        # the dataset cannot fit: every worker spilled something
        for w in cluster.workers.values():
            assert w.storage.spills > 0
            assert w.resident_bytes() <= budget + max_shard
        total_data = sum(w.resident_bytes() for w in ref.workers.values())
        assert total_data >= 3 * budget * len(cluster.workers)

    def test_full_coverage_differential_bit_identical(self, schema):
        n = 4000
        ref, budget, max_shard = self._budget_for(schema, n, seed=11)
        queries = [full_query(schema)] + [
            Query(b) for b in random_boxes(schema, 6, seed=2)
        ]
        expected = agg_tuples(ref.execute(queries))
        cluster, _ = residency_cluster(
            schema, n_items=n, budget=budget, seed=11, shards_per_worker=4
        )
        got = cluster.execute(queries)
        assert agg_tuples(got) == expected
        assert all(r.coverage == 1.0 for r in got)
        # serving the queries rehydrated lazily, then re-spilled to stay
        # under budget: the tier was genuinely exercised
        assert sum(w.storage.rehydrates for w in cluster.workers.values()) > 0
        for w in cluster.workers.values():
            assert w.resident_bytes() <= budget + max_shard

    def test_differential_under_chaos_and_spilled_failover(self, schema):
        """Drop/duplicate chaos on the insert path, then a crash of the
        worker holding spilled shards: the healed, budgeted cluster
        still answers bit-identical to the all-hot fault-free twin."""
        n = 3000
        ref, budget, max_shard = self._budget_for(schema, n, seed=13)
        extra = int_batch(schema, 200, seed=99)
        # reference: all-hot, fault-free, same extra inserts
        sess = ref.session(0, concurrency=4)
        sess.run_stream(insert_ops(extra))
        ref.run_until_clients_done(max_virtual=300.0)
        assert ref.stats.failures == 0
        queries = [full_query(schema)] + [
            Query(b) for b in random_boxes(schema, 4, seed=5)
        ]
        expected = agg_tuples(ref.execute(queries))

        cluster, _ = residency_cluster(
            schema, n_items=n, budget=budget, seed=13, shards_per_worker=4
        )
        inj = cluster.inject_faults(
            FaultPlan()
            .drop(0.08, kinds=INSERT_KINDS)
            .duplicate(0.08, kinds=INSERT_KINDS),
            seed=21,
        )
        sess = cluster.session(0, concurrency=4)
        sess.run_stream(insert_ops(extra))
        cluster.run_until_clients_done(max_virtual=300.0)
        assert cluster.stats.failures == 0, "retry budget must absorb chaos"
        assert inj.dropped > 0 and inj.duplicated > 0
        cluster.clear_faults()
        # quiesce past a checkpoint period so every hot shard's blob is
        # current, then kill the worker with the most spilled shards
        cluster.run_for(1.0)
        victim = max(
            cluster.workers.values(), key=lambda w: len(w.storage.cold)
        )
        assert victim.storage.cold, "budget run must leave spilled shards"
        lost = len(victim.shards) + len(victim.storage.cold)
        cluster.crash_worker(victim.worker_id)
        for _ in range(400):
            cluster.run_for(0.25)
            if (
                cluster.manager.restores_done >= lost
                and cluster.manager.lifecycle.quiescent()
                and not cluster.manager._pending_restores
            ):
                break
        assert cluster.manager.restores_done >= lost
        got = cluster.execute(queries)
        assert agg_tuples(got) == expected
        assert all(r.coverage == 1.0 for r in got)
        for w in cluster.workers.values():
            if not w.crashed:
                assert w.resident_bytes() <= budget + 2 * max_shard

"""Network event monitoring on the cluster, instrumented end to end.

The paper targets "applications that monitor high velocity data
streams".  This example defines its own dimension hierarchies -- the
library is not tied to TPC-DS -- for a network-operations scenario:

* ``src``      region > site > host
* ``dst``      region > site > host
* ``service``  class > port-group
* ``time``     hour > minute > second
* ``severity`` level (flat)

It runs the full distributed system (servers, workers, Zookeeper,
manager) with the observability subsystem switched on via the public
API -- ``cluster.observe()`` -- ingests a burst of events, answers the
on-call dashboard with :meth:`Query.range` level-name constraints, and
then reads the instrumentation back out: the span tree of one query,
the tree profiler's work summary, the metrics snapshot, and a
Prometheus-text excerpt.

Run:  python examples/event_monitoring.py
"""

import os
import tempfile

from repro import Query, TPCDSGenerator, full_query
from repro.cluster import ClusterConfig, VOLAPCluster
from repro.olap import Dimension, Hierarchy, Level, Schema
from repro.workloads.streams import Operation


def network_schema() -> Schema:
    def dim(name, levels):
        return Dimension(name, Hierarchy(name, [Level(n, f) for n, f in levels]))

    return Schema(
        [
            dim("src", [("region", 8), ("site", 16), ("host", 64)]),
            dim("dst", [("region", 8), ("site", 16), ("host", 64)]),
            dim("service", [("class", 6), ("port_group", 32)]),
            dim("time", [("hour", 24), ("minute", 60), ("second", 60)]),
            dim("severity", [("level", 5)]),
        ]
    )


def dashboard(schema: Schema) -> dict[str, Query]:
    """The on-call panels, as level-name constraints (Query.range
    resolves ``("region", (3,))`` against the hierarchy's level names;
    a 1-based depth works too)."""
    return {
        "all traffic": full_query(schema),
        "src region 3": Query.range(schema, src=("region", (3,))),
        "critical sev": Query.range(schema, severity=("level", (4,))),
        "svc class 2": Query.range(schema, service=("class", (2,))),
        "hour 0": Query.range(schema, time=("hour", (0,))),
        "00:00 minute": Query.range(schema, time=("minute", (0, 0))),
    }


def main() -> None:
    schema = network_schema()
    # TPCDSGenerator works over any hierarchical schema: Zipf-skewed
    # values per level (hot hosts, hot services), time advancing with
    # the stream.
    gen = TPCDSGenerator(schema, seed=11, skew=1.1, time_correlated=True)

    cluster = VOLAPCluster(
        schema,
        ClusterConfig(num_workers=4, num_servers=2, batch_size=16),
    )
    cluster.bootstrap(gen.batch(20_000), shards_per_worker=3)
    obs = cluster.observe()  # spans + message metrics + tree profiling on
    print(
        f"Cluster up: {len(cluster.workers)} workers, "
        f"{len(cluster.servers)} servers, {cluster.shard_count()} shards, "
        f"{cluster.total_items():,} events indexed"
    )

    # -- a burst of events arrives (batched wire path) -----------------------
    events = gen.batch(4_000)
    ingest = cluster.session(0, concurrency=32)
    ingest.run_stream(
        [
            Operation(
                "insert",
                coords=events.coords[i],
                measure=float(events.measures[i]),
            )
            for i in range(len(events))
        ]
    )
    cluster.run_until_clients_done()
    print(f"Ingested {len(events):,} events -> {cluster.total_items():,} total")

    # -- the on-call dashboard ------------------------------------------------
    # concurrency 1: completions arrive in issue order, so results zip
    # back to their panel names
    panels = dashboard(schema)
    sess = cluster.session(1, concurrency=1)
    collected = []
    sess.on_complete = collected.append
    names = list(panels)
    sess.run_stream([Operation("query", query=panels[n]) for n in names])
    cluster.run_until_clients_done()

    print("\nDashboard:")
    for name, rec in zip(names, collected):
        print(
            f"  {name:14s} n={rec.result_count:8,}  "
            f"latency={rec.latency * 1e3:6.2f} ms  "
            f"shards={rec.shards_searched}"
        )

    # -- one query, end to end: the span tree ---------------------------------
    # every op is a trace; pick the dashboard query with the widest
    # fan-out and show its causally-linked stages with virtual durations
    query_roots = [
        s for s in obs.tracer.roots() if s.name == "client.query"
    ]
    root = max(query_roots, key=lambda s: len(obs.tracer.trace(s.trace_id)))
    print(f"\nSpan tree of one dashboard query (trace {root.trace_id}):")

    def show(span, depth=0):
        dur = f"{span.duration * 1e3:7.3f} ms" if span.closed else "   open  "
        print(f"  {dur}  {'  ' * depth}{span.name} [{span.entity}]")
        for child in sorted(
            obs.tracer.children(span), key=lambda s: s.span_id
        ):
            show(child, depth + 1)

    show(root)
    print(f"  stages: {' > '.join(obs.span_tree(root.trace_id))}")

    # -- what the index did: tree profiler summary ----------------------------
    print("\nTree work per operation kind:")
    for kind, row in obs.profiler.summary().items():
        print(
            f"  {kind:13s} ops={row['ops']:6,.0f} rows={row['rows']:7,.0f} "
            f"nodes/op={row['nodes_per_op']:6.1f} "
            f"leaf-scan frac={row['leaf_scan_fraction']:.2f}"
        )

    # -- metrics: snapshot + Prometheus text ----------------------------------
    snap = cluster.metrics.snapshot()
    ops = snap["counters"]["volap_ops_total"]
    lat = snap["histograms"]["volap_op_latency_seconds"]
    print(f"\nOps recorded: {ops['total']:,.0f} "
          f"(p95 latency {lat['p95'] * 1e3:.2f} ms virtual)")
    msgs = snap["counters"]["volap_messages_total"]
    top = sorted(msgs["series"], key=lambda s: -s["value"])[:4]
    print("Top message kinds: " + ", ".join(
        f"{s['labels']['kind']}={s['value']:,.0f}" for s in top
    ))

    prom = obs.to_prometheus()
    excerpt = [l for l in prom.splitlines() if "volap_tree_ops_total" in l]
    print("\nPrometheus excerpt:")
    for line in excerpt:
        print(f"  {line}")

    # -- export the whole trace for offline tooling ---------------------------
    out = os.path.join(tempfile.gettempdir(), "volap_events.jsonl")
    lines = obs.dump_events_jsonl(out)
    print(f"\nWrote {lines:,} events (spans + metrics snapshot) to {out}")
    print(f"Open spans (should be 0 on a healthy run): {len(obs.open_spans())}")


if __name__ == "__main__":
    main()

"""Network event monitoring: a custom schema on high-velocity streams.

The paper targets "applications that monitor high velocity data
streams".  This example defines its own dimension hierarchies -- the
library is not tied to TPC-DS -- for a network-operations scenario:

* ``src``      region > site > host
* ``dst``      region > site > host
* ``service``  class > port-group
* ``time``     hour > minute > second
* ``severity`` level (flat)

It ingests bursts of events, then answers the monitoring questions an
on-call engineer would ask: per-region traffic, a hot-minute drilldown,
severity slices -- each an aggregate query at hierarchy levels.

Run:  python examples/event_monitoring.py
"""

import numpy as np

from repro import HilbertPDCTree, TPCDSGenerator, query_from_levels
from repro.olap import Dimension, Hierarchy, Level, Schema
from repro.olap.query import full_query


def network_schema() -> Schema:
    def dim(name, levels):
        return Dimension(name, Hierarchy(name, [Level(n, f) for n, f in levels]))

    return Schema(
        [
            dim("src", [("region", 8), ("site", 16), ("host", 64)]),
            dim("dst", [("region", 8), ("site", 16), ("host", 64)]),
            dim("service", [("class", 6), ("port_group", 32)]),
            dim("time", [("hour", 24), ("minute", 60), ("second", 60)]),
            dim("severity", [("level", 5)]),
        ]
    )


def main() -> None:
    schema = network_schema()
    # TPCDSGenerator works over any hierarchical schema: it draws
    # Zipf-skewed values per level (hot hosts and hot services, like
    # real traffic), with time advancing alongside the stream.
    gen = TPCDSGenerator(schema, seed=11, skew=1.1, time_correlated=True)

    tree = HilbertPDCTree(schema)
    bytes_total = 0.0
    print("Ingesting 6 bursts of 5,000 events each...")
    for burst in range(6):
        events = gen.batch(5_000)
        for coords, measure in events.iter_rows():
            tree.insert(coords, measure)
        bytes_total += float(events.measures.sum())
    print(f"  {len(tree):,} events indexed\n")

    # -- the on-call dashboard ------------------------------------------------
    agg, _ = tree.query(full_query(schema).box)
    print(f"All traffic: {agg.count:,} events, volume {agg.total:,.0f}")

    print("\nPer-source-region breakdown:")
    for region in range(8):
        q = query_from_levels(schema, {"src": (1, (region,))})
        agg, _ = tree.query(q.box)
        if agg.count:
            bar = "#" * max(1, int(50 * agg.count / len(tree)))
            print(f"  region {region}: {agg.count:7,} {bar}")

    print("\nCritical severity (level 4) by service class:")
    for svc in range(6):
        q = query_from_levels(
            schema, {"severity": (1, (4,)), "service": (1, (svc,))}
        )
        agg, st = tree.query(q.box)
        print(
            f"  class {svc}: {agg.count:6,} events "
            f"(max size {agg.vmax if agg.count else 0:.1f}, "
            f"{st.nodes_visited} nodes visited)"
        )

    # -- hot-minute drilldown --------------------------------------------------
    # find the busiest hour first, then drill into its minutes
    counts = []
    for hour in range(24):
        q = query_from_levels(schema, {"time": (1, (hour,))})
        agg, _ = tree.query(q.box)
        counts.append(agg.count)
    hot_hour = int(np.argmax(counts))
    print(f"\nBusiest hour: {hot_hour:02d}:00 with {counts[hot_hour]:,} events")
    minute_counts = []
    for minute in range(0, 60, 10):
        q = query_from_levels(schema, {"time": (2, (hot_hour, minute))})
        agg, _ = tree.query(q.box)
        minute_counts.append((minute, agg.count))
    for minute, c in minute_counts:
        print(f"  {hot_hour:02d}:{minute:02d}  {c:6,}")


if __name__ == "__main__":
    main()

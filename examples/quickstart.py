"""Quickstart: index TPC-DS-style facts and run aggregate queries.

Covers the core single-node API in ~60 lines:

* build the paper's 8-dimension hierarchical schema (Fig. 1),
* bulk load a Hilbert PDC tree,
* run aggregate queries at hierarchy levels and inspect the cached-
  aggregate "coverage resilience" in the work counters,
* insert new items -- point-wise and batched -- and see them in the
  next query immediately.

Run:  python examples/quickstart.py
"""

from repro import (
    HilbertPDCTree,
    TPCDSGenerator,
    full_query,
    query_from_levels,
    tpcds_schema,
)


def main() -> None:
    schema = tpcds_schema()
    print(f"Schema: {schema.num_dims} hierarchical dimensions")
    for dim in schema:
        levels = " > ".join(dim.hierarchy.level_names())
        print(f"  {dim.name:15s} {levels}")

    # -- generate and bulk load 50k fact rows ------------------------------
    gen = TPCDSGenerator(schema, seed=42)
    batch = gen.batch(50_000)
    tree = HilbertPDCTree.from_batch(schema, batch)
    print(f"\nLoaded {len(tree):,} items "
          f"(depth={tree.depth()}, nodes={tree.node_count()})")

    # -- a full-database aggregate ----------------------------------------
    agg, stats = tree.query(full_query(schema).box)
    print(
        f"\nTotal sales: count={agg.count:,} sum={agg.total:,.0f} "
        f"mean={agg.mean:.2f}"
    )
    print(
        f"  work: {stats.nodes_visited} nodes visited, "
        f"{stats.items_scanned} items scanned, {stats.agg_hits} cached "
        "aggregate hits  <- the cache answers at the root"
    )

    # -- drill down: one year, one item category ----------------------------
    q = query_from_levels(
        schema, {"date": (1, (3,)), "item": (1, (2,))}
    )
    agg, stats = tree.query(q.box)
    print(
        f"\nYear 3 x category 2: count={agg.count:,} sum={agg.total:,.0f}"
    )
    print(
        f"  work: {stats.nodes_visited} nodes, "
        f"{stats.items_scanned} items scanned"
    )

    # -- real-time: inserts are visible immediately --------------------------
    fresh = gen.batch(5)
    for coords, measure in fresh.iter_rows():
        tree.insert(coords, measure)
    agg, _ = tree.query(full_query(schema).box)
    print(f"\nAfter 5 point inserts: count={agg.count:,} (was 50,000)")

    # -- high-velocity: whole batches in one call ----------------------------
    # insert_batch sorts the batch by compact Hilbert key and inserts
    # ordered runs -- several times faster than a per-record loop
    tree.insert_batch(gen.batch(5_000))
    agg, _ = tree.query(full_query(schema).box)
    print(f"After a 5,000-row insert_batch: count={agg.count:,}")


if __name__ == "__main__":
    main()

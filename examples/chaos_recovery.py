"""Chaos and recovery: fault injection, worker failover, degraded queries.

A cluster ingests under a 10% message drop + duplication plan (every
acknowledged insert still lands exactly once thanks to op-id
deduplication), then loses a worker outright: heartbeat TTL znodes
expire, the manager declares it dead and restores its shards from
periodic checkpoints onto the survivors.  Queries issued during the
recovery window return within their deadline with a reported coverage
fraction < 1 instead of stalling; afterwards coverage is exact again.

Run:  python examples/chaos_recovery.py
"""

from repro import TPCDSGenerator, tpcds_schema
from repro.cluster import (
    BalancerPolicy,
    ClusterConfig,
    FaultPlan,
    RetryPolicy,
    VOLAPCluster,
)
from repro.olap.query import full_query
from repro.workloads.streams import Operation


def one_query(cluster, schema):
    sess = cluster.session(0, concurrency=1)
    got = []
    sess.on_complete = got.append
    sess.run_stream([Operation("query", query=full_query(schema))])
    cluster.run_until_clients_done()
    return got[0]


def main() -> None:
    schema = tpcds_schema()
    gen = TPCDSGenerator(schema, seed=3)

    retry = RetryPolicy(
        timeout=0.4,
        max_attempts=12,
        insert_timeout=0.1,
        max_insert_retries=8,
        query_deadline=0.25,
        backoff_base=0.02,
    )
    cluster = VOLAPCluster(
        schema,
        ClusterConfig(
            num_workers=3,
            num_servers=1,
            balancer=BalancerPolicy(max_shard_items=100_000, scan_period=0.1),
            retry=retry,
            heartbeat_period=0.1,
            heartbeat_miss_k=3,
            checkpoint_period=0.4,
        ),
    )
    n = 20_000
    cluster.bootstrap(gen.batch(n), shards_per_worker=2)
    print(f"bootstrap: {n:,} items on 3 workers, {cluster.shard_count()} shards")

    # -- phase 1: ingest through a lossy, duplicating network ---------------
    inj = cluster.inject_faults(
        FaultPlan().drop(0.10).duplicate(0.10), seed=7
    )
    extra = gen.batch(1_000)
    sess = cluster.session(0, concurrency=8)
    sess.run_stream(
        [
            Operation("insert", coords=extra.coords[i], measure=float(extra.measures[i]))
            for i in range(len(extra))
        ]
    )
    cluster.run_until_clients_done(max_virtual=600.0)
    dedup = sum(w.dedup_hits for w in cluster.workers.values())
    print(
        f"\nlossy ingest of {len(extra):,} inserts: "
        f"{inj.dropped} messages dropped, {inj.duplicated} duplicated"
    )
    print(
        f"  retransmits deduplicated at workers: {dedup}; "
        f"failures: {cluster.stats.failures}"
    )
    assert cluster.total_items() == n + len(extra), "exactly-once violated!"
    print(f"  global count {cluster.total_items():,} = exactly-once ✓")
    cluster.clear_faults()

    # -- phase 2: kill a worker, query during and after recovery -----------
    cluster.run_for(1.0)  # let checkpoints cover the fresh inserts
    victim = 0
    lost = cluster.worker_sizes()[victim]
    cluster.crash_worker(victim)
    print(f"\ncrashed worker {victim} (held {lost:,} items)")

    rec = one_query(cluster, schema)
    print(
        f"  query during recovery: coverage {rec.achieved:.0%}, "
        f"n={rec.result_count:,}, latency {rec.latency * 1000:.0f} ms "
        f"(deadline {retry.query_deadline * 1000:.0f} ms)"
    )

    cluster.run_for(2.0)  # heartbeat expiry + manager restore
    t, wid, k = cluster.stats.failovers[0]
    print(f"  manager declared worker {wid} dead at t={t:.2f}s, restored {k} shards")

    rec2 = one_query(cluster, schema)
    print(
        f"  query after recovery:  coverage {rec2.achieved:.0%}, "
        f"n={rec2.result_count:,}"
    )
    assert rec2.achieved == 1.0 and rec2.result_count == n + len(extra)
    print("no item lost: checkpoints + failover restored the full database ✓")


if __name__ == "__main__":
    main()

"""Chaos and recovery: faults, replica promotion, bounded-staleness reads.

A replicated cluster (``replication_factor=1``) ingests under a 10%
message drop + duplication plan (every acknowledged insert still lands
exactly once thanks to op-id deduplication), then loses workers two
different ways:

* With a live replica, failover is a **promotion**: the manager flips
  the freshest replica to primary -- zero checkpoint blobs touched.
* When a shard's primary *and* replica are both gone, the manager
  falls back to the seed path: **restore** from periodic checkpoints.

Queries throughout carry an optional ``max_staleness`` budget.  During
the failure-detection window a budget query keeps 100% coverage by
reading the dead primary's shards from their replicas (the achieved
staleness is reported per query); a budget-less query degrades to
partial coverage instead of stalling.

Run:  python examples/chaos_recovery.py
"""

from repro import TPCDSGenerator, tpcds_schema
from repro.cluster import (
    BalancerPolicy,
    ClusterConfig,
    FaultPlan,
    RetryPolicy,
    VOLAPCluster,
)
from repro.olap.query import full_query
from repro.workloads.streams import Operation


def one_query(cluster, schema, max_staleness=None):
    sess = cluster.session(0, concurrency=1)
    got = []
    sess.on_complete = got.append
    q = full_query(schema)
    q.max_staleness = max_staleness
    sess.run_stream([Operation("query", query=q)])
    cluster.run_until_clients_done()
    return got[0]


def show(tag, rec):
    print(
        f"  {tag}: coverage {rec.achieved:.0%}, n={rec.result_count:,}, "
        f"staleness {rec.staleness * 1000:.1f} ms, "
        f"latency {rec.latency * 1000:.0f} ms"
    )


def main() -> None:
    schema = tpcds_schema()
    gen = TPCDSGenerator(schema, seed=3)

    retry = RetryPolicy(
        timeout=0.4,
        max_attempts=12,
        insert_timeout=0.1,
        max_insert_retries=8,
        query_deadline=0.25,
        backoff_base=0.02,
    )
    cluster = VOLAPCluster(
        schema,
        ClusterConfig(
            num_workers=3,
            num_servers=1,
            balancer=BalancerPolicy(
                max_shard_items=100_000, scan_period=0.1, op_timeout=2.0
            ),
            retry=retry,
            heartbeat_period=0.1,
            heartbeat_miss_k=3,
            checkpoint_period=0.4,
            replication_factor=1,
        ),
    )
    n = 20_000
    cluster.bootstrap(gen.batch(n), shards_per_worker=2)
    print(
        f"bootstrap: {n:,} items on 3 workers, {cluster.shard_count()} "
        f"shards, 1 async replica per shard"
    )
    cluster.run_for(2.0)  # seed the replicas from snapshots

    # -- phase 1: ingest through a lossy, duplicating network ---------------
    inj = cluster.inject_faults(FaultPlan().drop(0.10).duplicate(0.10), seed=7)
    extra = gen.batch(1_000)
    sess = cluster.session(0, concurrency=8)
    sess.run_stream(
        [
            Operation("insert", coords=extra.coords[i], measure=float(extra.measures[i]))
            for i in range(len(extra))
        ]
    )
    cluster.run_until_clients_done(max_virtual=600.0)
    dedup = sum(w.dedup_hits for w in cluster.workers.values())
    print(
        f"\nlossy ingest of {len(extra):,} inserts: "
        f"{inj.dropped} messages dropped, {inj.duplicated} duplicated"
    )
    print(
        f"  retransmits deduplicated at workers: {dedup}; "
        f"failures: {cluster.stats.failures}"
    )
    assert cluster.total_items() == n + len(extra), "exactly-once violated!"
    print(f"  global count {cluster.total_items():,} = exactly-once ✓")
    cluster.clear_faults()
    cluster.run_for(1.0)  # checkpoints + replica stream catch up

    # -- phase 2: bounded-staleness reads (healthy cluster) -----------------
    print("\nbounded-staleness reads (budget 100 ms, replicas offload):")
    for _ in range(3):
        show("query", one_query(cluster, schema, max_staleness=0.1))
    print(f"  shard reads served by replicas: {cluster.servers[0].replica_reads}")

    # -- phase 3: kill a primary -> replica promotion -----------------------
    victim = 0
    lost = cluster.worker_sizes()[victim]
    cluster.crash_worker(victim)
    print(f"\ncrashed worker {victim} (held {lost:,} items)")

    rec = one_query(cluster, schema)  # no budget: honest partial coverage
    show("during recovery, no budget   ", rec)
    rec = one_query(cluster, schema, max_staleness=0.5)
    show("during recovery, 500ms budget", rec)

    cluster.run_for(2.0)  # heartbeat expiry + promotions
    t, wid, k = cluster.stats.failovers[0]
    deser = sum(w.checkpoint_deserializations for w in cluster.workers.values())
    print(
        f"  declared dead at t={t:.2f}s -> {cluster.manager.promotions_done} "
        f"replicas promoted, {deser} checkpoint blobs deserialized"
    )
    show("after promotion              ", one_query(cluster, schema))

    # -- phase 4: double failure -> promote where possible, restore the rest
    cluster.restart_worker(victim)
    cluster.run_for(3.0)  # rejoin through quarantine, re-seed replicas
    promoted_before = cluster.manager.promotions_done
    restored_before = cluster.manager.restores_done
    cluster.crash_worker(1)
    cluster.crash_worker(2)
    print("\ncrashed workers 1 AND 2: some shards lose primary + replica")
    cluster.run_for(8.0)
    promoted = cluster.manager.promotions_done - promoted_before
    restored = cluster.manager.restores_done - restored_before
    print(
        f"  healed onto the survivor: {promoted} shards by replica "
        f"promotion, {restored} by checkpoint restore"
    )
    rec = one_query(cluster, schema)
    show("after double failure         ", rec)
    assert rec.achieved == 1.0 and rec.result_count == n + len(extra)
    print("no item lost: replicas + checkpoints restored the full database ✓")


if __name__ == "__main__":
    main()

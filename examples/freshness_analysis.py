"""Freshness analysis: how stale can a cross-server query be?

Reproduces the paper's Section IV-F methodology end to end:

1. run a mixed workload on the simulated cluster and *measure* the
   insert latency distribution (the paper used "the query and insert
   latency distributions observed for VOLAP in these experiments");
2. feed the measured distribution into the PBS simulator at the paper's
   insert rate;
3. report missed-insert curves per coverage and the probability of
   k missed inserts at 0.25 / 1 / 2 seconds elapsed time (Fig 10).

Run:  python examples/freshness_analysis.py
"""

import numpy as np

from repro import TPCDSGenerator, tpcds_schema
from repro.cluster import ClusterConfig, VOLAPCluster
from repro.freshness import LatencyDistribution, PBSSimulator
from repro.workloads import QueryGenerator, StreamGenerator


def measure_insert_latencies(schema) -> list[float]:
    """Step 1: observe insert latencies on a live (simulated) cluster."""
    gen = TPCDSGenerator(schema, seed=5)
    batch = gen.batch(20_000)
    cluster = VOLAPCluster(
        schema, ClusterConfig(num_workers=4, num_servers=2)
    )
    cluster.bootstrap(batch, shards_per_worker=3)
    qg = QueryGenerator(schema, batch, seed=6)
    bins = qg.generate_bins(per_bin=8)
    sg = StreamGenerator(gen, bins, insert_fraction=0.7, seed=7)
    sess = cluster.session(0, concurrency=24)
    sess.run_stream(list(sg.operations(3_000)))
    cluster.run_until_clients_done()
    lat = [r.latency for r in cluster.stats.select(kind="insert")]
    print(
        f"measured {len(lat)} insert latencies: "
        f"mean={np.mean(lat) * 1e3:.2f} ms, p95={np.percentile(lat, 95) * 1e3:.2f} ms"
    )
    return lat


def main() -> None:
    schema = tpcds_schema()
    latencies = measure_insert_latencies(schema)

    sim = PBSSimulator(
        insert_rate=50_000,  # the paper's regime
        insert_latency=LatencyDistribution(samples=latencies),
        sync_period=3.0,
        seed=1,
    )

    elapsed = [0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 3.0]
    print("\nAvg missed inserts vs elapsed time (Fig 10a):")
    for cov in (0.25, 0.5, 1.0):
        res = sim.missed_curve(elapsed, coverage=cov, trials=100)
        row = "  ".join(f"{m:7.2f}" for m in res.mean_missed)
        print(f"  coverage {cov:4.0%}: {row}")
    print("  elapsed (s):  " + "  ".join(f"{e:7.2f}" for e in elapsed))

    print("\nP(k missed) after 0.25 / 1 / 2 s (Fig 10b), coverage 50%:")
    for e in (0.25, 1.0, 2.0):
        pmf = sim.missed_pmf(e, coverage=0.5, trials=3_000)
        row = "  ".join(f"P({k})={p:.4f}" for k, p in enumerate(pmf, 1))
        print(f"  after {e:4.2f}s: {row}")

    print(
        "\nP(any inconsistency) at 3.0s elapsed: "
        f"{sim.prob_inconsistent(3.0, trials=2_000):.6f} "
        "(the paper always observed consistency within 3 s)"
    )


if __name__ == "__main__":
    main()

"""Elastic scaling: add workers live and watch the load balancer work.

Reproduces the dynamics of paper Fig. 6 interactively: a cluster under
a growing database adds two empty workers; the manager detects the
imbalance through Zookeeper statistics and migrates shards until the
per-worker sizes converge -- while queries keep running and keep
returning exact results.

Run:  python examples/elastic_scaling.py
"""

from repro import TPCDSGenerator, tpcds_schema
from repro.cluster import BalancerPolicy, ClusterConfig, VOLAPCluster
from repro.olap.query import full_query
from repro.workloads.streams import Operation


def show_sizes(cluster, label):
    sizes = cluster.worker_sizes()
    bar = "  ".join(f"W{wid}:{n:6,}" for wid, n in sorted(sizes.items()))
    gap = max(sizes.values()) - min(sizes.values())
    print(f"{label:28s} {bar}   (gap {gap:,})")


def check_exactness(cluster, schema, expected):
    sess = cluster.session(0, concurrency=1)
    got = []
    sess.on_complete = got.append
    sess.run_stream([Operation("query", query=full_query(schema))])
    cluster.run_until_clients_done()
    assert got[0].result_count == expected, (got[0].result_count, expected)
    return got[0]


def main() -> None:
    schema = tpcds_schema()
    gen = TPCDSGenerator(schema, seed=3)

    cluster = VOLAPCluster(
        schema,
        ClusterConfig(
            num_workers=4,
            num_servers=2,
            balancer=BalancerPolicy(
                max_shard_items=6_000,
                imbalance_ratio=1.25,
                min_migrate_items=300,
                scan_period=0.5,
            ),
        ),
    )
    n = 40_000
    cluster.bootstrap(gen.batch(n), shards_per_worker=3)
    show_sizes(cluster, "bootstrap (p=4)")

    # -- scale out: two empty workers join ----------------------------------
    cluster.add_workers(2)
    show_sizes(cluster, "workers added (p=6)")

    for step in range(1, 5):
        cluster.run_for(2.5)
        show_sizes(cluster, f"after {2.5 * step:.1f}s of balancing")

    print(
        f"\nmigrations: {cluster.stats.migrations}, "
        f"splits: {cluster.stats.splits}"
    )

    # -- correctness was never interrupted -----------------------------------
    rec = check_exactness(cluster, schema, n)
    print(
        f"full-coverage query during steady state: n={rec.result_count:,} "
        f"(exact), latency {rec.latency * 1000:.2f} ms"
    )

    # -- keep growing: the database doubles, shards split ------------------
    grow = gen.batch(n)
    cluster.bulk_load(grow)
    cluster.run_for(8.0)
    show_sizes(cluster, f"after bulk-loading {n:,} more")
    print(
        f"shards now: {cluster.shard_count()} "
        f"(splits so far: {cluster.stats.splits})"
    )
    check_exactness(cluster, schema, 2 * n)
    print("exactness verified after growth — no item lost in any migration")


if __name__ == "__main__":
    main()

"""Retail dashboard: a live OLAP session over a high-velocity sale stream.

The scenario the paper's introduction motivates: a retailer ingests
point-of-sale facts continuously and analysts ask aggregate questions
that must include the newest data.  This example runs the full
distributed system (servers, workers, Zookeeper, manager) on the
simulated substrate, interleaves a sales stream with dashboard queries,
and prints the dashboard after each round -- note the counts growing as
the stream flows.

Run:  python examples/retail_dashboard.py [--backend sim|asyncio]

The same entity code runs on the discrete-event sim (default) or in
wall-clock time on the asyncio backend (docs/runtime.md); with
``--backend asyncio`` the latencies printed are real milliseconds.
"""

import argparse

from repro import TPCDSGenerator, tpcds_schema
from repro.cluster import ClusterConfig, VOLAPCluster
from repro.olap.query import full_query, query_from_levels
from repro.workloads.streams import Operation


def dashboard_queries(schema):
    """The analyst's standing dashboard panels."""
    return {
        "all sales": full_query(schema),
        "year 3": query_from_levels(schema, {"date": (1, (3,))}),
        "year 3 / dec": query_from_levels(schema, {"date": (2, (3, 11))}),
        "category 0": query_from_levels(schema, {"item": (1, (0,))}),
        "country 2 stores": query_from_levels(schema, {"store": (1, (2,))}),
        "income band 5": query_from_levels(schema, {"household": (1, (5,))}),
    }


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--backend",
        choices=("sim", "asyncio"),
        default="sim",
        help="runtime backend (docs/runtime.md)",
    )
    args = ap.parse_args()

    schema = tpcds_schema()
    gen = TPCDSGenerator(schema, seed=7, time_correlated=True)

    cluster = VOLAPCluster(
        schema,
        ClusterConfig(
            num_workers=4,
            num_servers=2,
            runtime=args.backend,
            # 1 model second == 100 real ms on the asyncio backend;
            # generous so retry timeouts dwarf real handler time
            # (docs/runtime.md, "Wall-clock semantics")
            time_scale=0.1,
        ),
    )
    cluster.bootstrap(gen.batch(30_000), shards_per_worker=3)
    print(
        f"Cluster up: {len(cluster.workers)} workers, "
        f"{len(cluster.servers)} servers, {cluster.shard_count()} shards, "
        f"{cluster.total_items():,} facts"
    )

    panels = dashboard_queries(schema)
    for round_no in range(1, 4):
        # -- a burst of fresh sales arrives ---------------------------------
        sales = gen.batch(2_000)
        ingest = cluster.session(0, concurrency=16)
        ingest.run_stream(
            [
                Operation(
                    "insert",
                    coords=sales.coords[i],
                    measure=float(sales.measures[i]),
                )
                for i in range(len(sales))
            ]
        )
        cluster.run_until_clients_done()

        # -- the analyst refreshes the dashboard (other server!) -------------
        # concurrency 1: completions arrive in issue order, so results
        # can be zipped back to their panel names
        results = {}
        sess = cluster.session(1, concurrency=1)
        collected = []
        sess.on_complete = collected.append
        names = list(panels)
        sess.run_stream(
            [Operation("query", query=panels[n]) for n in names]
        )
        cluster.run_until_clients_done()
        for name, rec in zip(names, collected):
            results[name] = rec

        print(f"\n=== Dashboard, round {round_no} "
              f"(t={cluster.clock.now:.2f}s, {cluster.total_items():,} facts)")
        for name, rec in results.items():
            print(
                f"  {name:18s} n={rec.result_count:8,}  "
                f"latency={rec.latency * 1000:6.2f} ms  "
                f"shards={rec.shards_searched}"
            )

    ins = cluster.stats.select(kind="insert")
    print(
        f"\nIngest: {len(ins):,} sales at "
        f"{cluster.stats.throughput(ins):,.0f} facts/s (virtual), "
        f"mean latency {cluster.stats.latency_stats(ins)['mean'] * 1e3:.2f} ms"
    )
    cluster.close()


if __name__ == "__main__":
    main()

"""Plain-text rendering of experiment results (the "figures" as rows)."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "render_series"]


def render_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> str:
    """Fixed-width table with a title rule, ready for printing."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(header)
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_series(title: str, series: dict[str, Sequence[tuple]]) -> str:
    """Named (x, y) series, one block per name."""
    lines = [title, "=" * len(title)]
    for name, points in series.items():
        lines.append(f"-- {name}")
        for pt in points:
            lines.append("   " + "  ".join(_fmt(v) for v in pt))
    return "\n".join(lines)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.4g}"
    return str(v)

"""Experiment drivers regenerating every figure of the paper."""

from .fig_cluster import (
    HeadlineResult,
    MixCell,
    PolicyComparisonRow,
    ScaleUpPhase,
    ScaleUpResult,
    run_fig6_fig7,
    run_fig8,
    run_image_key_ablation,
    run_fig9,
    run_headline,
    run_policy_comparison,
)
from .fig_freshness import Fig10Result, run_fig10, run_sync_period_ablation
from .fig_tree import (
    Fig4Result,
    Fig5Row,
    run_cached_aggregates_ablation,
    run_fig4,
    run_fig5,
    run_id_expansion_ablation,
    run_insert_policy_ablation,
    run_split_ablation,
)
from .tables import render_series, render_table

__all__ = [
    "Fig10Result",
    "Fig4Result",
    "Fig5Row",
    "HeadlineResult",
    "MixCell",
    "PolicyComparisonRow",
    "ScaleUpPhase",
    "ScaleUpResult",
    "render_series",
    "render_table",
    "run_cached_aggregates_ablation",
    "run_fig10",
    "run_fig4",
    "run_fig5",
    "run_fig6_fig7",
    "run_fig8",
    "run_fig9",
    "run_headline",
    "run_id_expansion_ablation",
    "run_policy_comparison",
    "run_image_key_ablation",
    "run_insert_policy_ablation",
    "run_split_ablation",
    "run_sync_period_ablation",
]

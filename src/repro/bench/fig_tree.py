"""Single-node tree experiments: paper Figures 4 and 5 plus ablations.

Every driver returns plain data (lists of rows) so the ``benchmarks/``
targets can both print the figure and assert its shape.  Sizes are
scaled down from the paper's testbed (DESIGN.md section 6); shapes, not
absolute magnitudes, are the reproduction target.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core import (
    HilbertPDCTree,
    HilbertRTree,
    PDCTree,
    RTree,
    TreeConfig,
)
from ..workloads.highdim import (
    heterogeneous_schema,
    latent_cluster_batch,
    level_constrained_queries,
)
from ..workloads.querygen import PAPER_BIN_NAMES, QueryGenerator
from ..workloads.tpcds import TPCDSGenerator, tpcds_schema

__all__ = [
    "Fig4Result",
    "Fig5Row",
    "run_fig4",
    "run_fig5",
    "run_insert_policy_ablation",
    "run_id_expansion_ablation",
    "run_split_ablation",
    "run_cached_aggregates_ablation",
]


def _build_by_inserts(cls, schema, batch, config=None):
    tree = cls(schema, config)
    t0 = time.perf_counter()
    for coords, m in batch.iter_rows():
        tree.insert(coords, m)
    return tree, time.perf_counter() - t0


# ---------------------------------------------------------------------------
# Figure 4: Hilbert PDC tree vs PDC tree, query time vs size per coverage
# ---------------------------------------------------------------------------


@dataclass
class Fig4Result:
    sizes: list[int]
    #: series["<tree> <bin>"] = [(size, avg_query_seconds)]
    series: dict[str, list[tuple[int, float]]] = field(default_factory=dict)

    def avg(self, tree: str, bin_name: str) -> float:
        pts = self.series[f"{tree} {bin_name}"]
        return float(np.mean([y for _, y in pts]))


def run_fig4(
    sizes: Sequence[int] = (10_000, 20_000, 40_000),
    queries_per_bin: int = 6,
    repeats: int = 3,
    seed: int = 1,
) -> Fig4Result:
    """Query time vs tree size for both trees and three coverage bands."""
    schema = tpcds_schema()
    result = Fig4Result(sizes=list(sizes))
    for name in ("hilbert_pdc", "pdc"):
        for bin_name in PAPER_BIN_NAMES:
            result.series[f"{name} {bin_name}"] = []
    for n in sizes:
        gen = TPCDSGenerator(schema, seed=seed)
        batch = gen.batch(n)
        qg = QueryGenerator(schema, batch, seed=seed + 1)
        bins = qg.generate_bins(per_bin=queries_per_bin)
        trees = {
            "hilbert_pdc": HilbertPDCTree.from_batch(schema, batch),
            "pdc": _build_by_inserts(PDCTree, schema, batch)[0],
        }
        for tname, tree in trees.items():
            for bin_name in PAPER_BIN_NAMES:
                qs = bins.queries[bin_name][:queries_per_bin]
                t0 = time.perf_counter()
                for _ in range(repeats):
                    for q in qs:
                        tree.query(q.box)
                avg = (time.perf_counter() - t0) / (repeats * len(qs))
                result.series[f"{tname} {bin_name}"].append((n, avg))
    return result


# ---------------------------------------------------------------------------
# Figure 5: insert/query latency vs number of dimensions, four tree variants
# ---------------------------------------------------------------------------


@dataclass
class Fig5Row:
    tree: str
    dims: int
    insert_latency: float  # seconds per insert
    query_latency: float  # seconds per query (wall)
    query_nodes: float  # nodes visited per query (work measure)
    query_scanned: float  # items scanned per query


FIG5_TREES: dict[str, type] = {
    "hilbert_pdc": HilbertPDCTree,
    "hilbert_r": HilbertRTree,
    "pdc": PDCTree,
    "r": RTree,
}


def run_fig5(
    dims: Sequence[int] = (4, 8, 16, 32, 64),
    n_items: int = 4000,
    n_queries: int = 15,
    clusters: int = 12,
    seed: int = 3,
) -> list[Fig5Row]:
    """Insert and query latency as dimensionality grows.

    Latent-cluster data over a heterogeneous-width schema; queries
    constrain three dimensions at level 1 (see
    :mod:`repro.workloads.highdim`)."""
    rows: list[Fig5Row] = []
    for d in dims:
        schema = heterogeneous_schema(d, seed=seed)
        batch, centers = latent_cluster_batch(
            schema, n_items, clusters=clusters, seed=seed
        )
        queries = level_constrained_queries(
            schema, centers, n_queries, constrained_dims=3, seed=seed + 1
        )
        for tname, cls in FIG5_TREES.items():
            tree, build_s = _build_by_inserts(cls, schema, batch)
            nv = sc = 0
            t0 = time.perf_counter()
            for q in queries:
                _, st = tree.query(q)
                nv += st.nodes_visited
                sc += st.items_scanned
            q_s = (time.perf_counter() - t0) / len(queries)
            rows.append(
                Fig5Row(
                    tree=tname,
                    dims=d,
                    insert_latency=build_s / n_items,
                    query_latency=q_s,
                    query_nodes=nv / len(queries),
                    query_scanned=sc / len(queries),
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md section 5)
# ---------------------------------------------------------------------------


def run_insert_policy_ablation(
    n_items: int = 5000, n_queries: int = 20, seed: int = 5
) -> dict[str, float]:
    """Least-overlap vs least-enlargement child choice in the PDC tree.

    Returns average items scanned per query for each policy (lower is a
    tighter tree)."""
    schema = heterogeneous_schema(12, seed=seed)
    batch, centers = latent_cluster_batch(schema, n_items, seed=seed)
    queries = level_constrained_queries(schema, centers, n_queries, seed=seed + 1)
    out = {}
    for policy in ("least_overlap", "least_enlargement"):
        cfg = TreeConfig(key_kind="mds", insert_policy=policy)
        tree, _ = _build_by_inserts(PDCTree, schema, batch, cfg)
        scanned = sum(tree.query(q)[1].items_scanned for q in queries)
        out[policy] = scanned / n_queries
    return out


def run_id_expansion_ablation(
    n_items: int = 5000, n_queries: int = 20, seed: int = 7
) -> dict[str, float]:
    """Fig. 3 ID expansion on vs off in the Hilbert PDC tree.

    Returns average items scanned per query; raw (unexpanded) ids lose
    locality for narrow dimensions on heterogeneous schemas."""
    schema = heterogeneous_schema(12, seed=seed)
    batch, centers = latent_cluster_batch(schema, n_items, seed=seed)
    queries = level_constrained_queries(schema, centers, n_queries, seed=seed + 1)
    out = {}
    for label, expand in (("expanded", True), ("raw", False)):
        cfg = TreeConfig(key_kind="mds", hilbert_expand_ids=expand)
        tree = HilbertPDCTree.from_batch(schema, batch, cfg)
        scanned = sum(tree.query(q)[1].items_scanned for q in queries)
        out[label] = scanned / n_queries
    return out


def run_split_ablation(
    n_items: int = 5000, n_queries: int = 20, seed: int = 9
) -> dict[str, float]:
    """Least-overlap split position vs middle split in the Hilbert PDC
    tree; average items scanned per query."""
    schema = heterogeneous_schema(12, seed=seed)
    batch, centers = latent_cluster_batch(schema, n_items, seed=seed)
    queries = level_constrained_queries(schema, centers, n_queries, seed=seed + 1)
    out = {}
    for policy in ("least_overlap", "middle"):
        cfg = TreeConfig(key_kind="mds", split_policy=policy)
        tree, _ = _build_by_inserts(HilbertPDCTree, schema, batch, cfg)
        scanned = sum(tree.query(q)[1].items_scanned for q in queries)
        out[policy] = scanned / n_queries
    return out


def run_cached_aggregates_ablation(
    n_items: int = 8000, seed: int = 11
) -> dict[str, dict[str, float]]:
    """Cached node aggregates on vs off: work per full-coverage query."""
    from ..olap.query import full_query

    schema = tpcds_schema()
    batch = TPCDSGenerator(schema, seed=seed).batch(n_items)
    box = full_query(schema).box
    out = {}
    for label, cached in (("cached", True), ("uncached", False)):
        cfg = TreeConfig(key_kind="mds", cache_aggregates=cached)
        tree = HilbertPDCTree.from_batch(schema, batch, cfg)
        _, st = tree.query(box)
        out[label] = {
            "nodes_visited": float(st.nodes_visited),
            "items_scanned": float(st.items_scanned),
            "agg_hits": float(st.agg_hits),
        }
    return out

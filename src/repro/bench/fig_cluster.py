"""Cluster experiments: paper Figures 6-9 and the headline throughput.

All cluster numbers are *virtual-time* rates and latencies from the
discrete-event substrate (DESIGN.md section 2); real index and protocol
code runs underneath.  Database sizes follow the scale-down rule
N ~ p x `items_per_worker` with `items_per_worker` three orders of
magnitude below the paper's 50 M.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..cluster import (
    BalancerPolicy,
    ClusterConfig,
    CostDrivenPolicy,
    MemoryPressurePolicy,
    ThresholdPolicy,
    VOLAPCluster,
)
from ..core import TreeConfig
from ..olap.schema import Schema
from ..workloads.querygen import PAPER_BIN_NAMES, PAPER_BINS, QueryGenerator
from ..workloads.streams import Operation, StreamGenerator
from ..workloads.tpcds import TPCDSGenerator, tpcds_schema

__all__ = [
    "ScaleUpPhase",
    "run_image_key_ablation",
    "MixCell",
    "PolicyComparisonRow",
    "run_fig6_fig7",
    "run_fig8",
    "run_fig9",
    "run_headline",
    "run_policy_comparison",
]


def _default_tree_config() -> TreeConfig:
    return TreeConfig(leaf_capacity=64, fanout=16)


def _make_cluster(
    schema: Schema,
    workers: int,
    servers: int = 2,
    max_shard_items: int = 4000,
    seed: int = 0,
) -> VOLAPCluster:
    cfg = ClusterConfig(
        num_workers=workers,
        num_servers=servers,
        tree_config=_default_tree_config(),
        balancer=BalancerPolicy(
            max_shard_items=max_shard_items,
            imbalance_ratio=1.3,
            min_migrate_items=200,
            scan_period=0.5,
        ),
        seed=seed,
    )
    return VOLAPCluster(schema, cfg)


def _drive_stream(
    cluster: VOLAPCluster,
    ops: list[Operation],
    sessions: int = 4,
    concurrency: int = 24,
    batch_size: int = 1,
) -> tuple[float, float]:
    """Run ``ops`` split across sessions on alternating servers.

    ``batch_size > 1`` turns on client-side wire batching (inserts
    coalesce into ``client_insert_batch`` messages).  Returns (virtual
    start, virtual end) of the measurement window."""
    start = cluster.clock.now
    chunks = [ops[i::sessions] for i in range(sessions)]
    for i, chunk in enumerate(chunks):
        sess = cluster.session(
            i, concurrency=concurrency, batch_size=batch_size
        )
        sess.run_stream(chunk)
    cluster.run_until_clients_done()
    return start, cluster.clock.now


# ---------------------------------------------------------------------------
# Figures 6 + 7: elastic scale-up (one experiment, two views)
# ---------------------------------------------------------------------------


@dataclass
class ScaleUpPhase:
    workers: int
    total_items: int
    insert_throughput: float
    insert_latency: float
    query_throughput: dict[str, float] = field(default_factory=dict)
    query_latency: dict[str, float] = field(default_factory=dict)


@dataclass
class ScaleUpResult:
    phases: list[ScaleUpPhase]
    #: Fig 6 series: (virtual time, min worker items, max worker items,
    #: cumulative migrations)
    balance_series: list[tuple[float, int, int, int]]
    splits: int
    migrations: int


def run_fig6_fig7(
    start_workers: int = 4,
    end_workers: int = 12,
    step: int = 2,
    items_per_worker: int = 6000,
    bench_inserts: int = 400,
    bench_queries_per_bin: int = 60,
    seed: int = 1,
) -> ScaleUpResult:
    """The paper's scale-up experiment: alternate load phases (adding two
    empty workers each time, letting the balancer redistribute) with
    insert/query benchmark phases, from ``start_workers`` to
    ``end_workers`` with N ~ p x items_per_worker."""
    schema = tpcds_schema()
    gen = TPCDSGenerator(schema, seed=seed)
    cluster = _make_cluster(
        schema,
        start_workers,
        max_shard_items=int(items_per_worker * 0.9),
        seed=seed,
    )
    initial = gen.batch(start_workers * items_per_worker)
    cluster.bootstrap(initial, shards_per_worker=3)
    reference = initial  # coverage reference grows with the database
    phases: list[ScaleUpPhase] = []

    workers = start_workers
    while True:
        # -- benchmark phase at current size --------------------------------
        qg = QueryGenerator(schema, reference, seed=seed + workers)
        bins = qg.generate_bins(per_bin=max(8, bench_queries_per_bin // 4))
        phase = ScaleUpPhase(
            workers=workers,
            total_items=cluster.total_items(),
            insert_throughput=0.0,
            insert_latency=0.0,
        )
        # inserts
        ext = gen.batch(bench_inserts)
        ops = [
            Operation("insert", coords=ext.coords[i], measure=float(ext.measures[i]))
            for i in range(bench_inserts)
        ]
        t0, t1 = _drive_stream(cluster, ops)
        recs = cluster.stats.select(kind="insert", since=t0)
        phase.insert_throughput = cluster.stats.throughput(recs)
        phase.insert_latency = cluster.stats.latency_stats(recs)["mean"]
        # queries per coverage band
        for name, band in zip(PAPER_BIN_NAMES, PAPER_BINS):
            sg = StreamGenerator(
                gen, bins, insert_fraction=0.0, coverage_mix=[name], seed=seed
            )
            ops = list(sg.operations(bench_queries_per_bin))
            t0, t1 = _drive_stream(cluster, ops)
            recs = cluster.stats.select(kind="query", since=t0)
            phase.query_throughput[name] = cluster.stats.throughput(recs)
            phase.query_latency[name] = cluster.stats.latency_stats(recs)["mean"]
        phases.append(phase)

        if workers >= end_workers:
            break
        # -- load phase: add workers, rebalance, grow the database ----------
        cluster.add_workers(step)
        workers += step
        cluster.run_for(20.0)  # let migrations fill the new workers
        grow = gen.batch(step * items_per_worker)
        cluster.bulk_load(grow)
        cluster.run_for(10.0)
        from ..olap.records import concat_batches

        reference = concat_batches([reference, grow], schema.num_dims)

    return ScaleUpResult(
        phases=phases,
        balance_series=cluster.stats.balance_series(),
        splits=cluster.stats.splits,
        migrations=cluster.stats.migrations,
    )


# ---------------------------------------------------------------------------
# Balancer policy comparison (Fig 6 scenario, three policies)
# ---------------------------------------------------------------------------


@dataclass
class PolicyComparisonRow:
    """How one balancer policy handled the Fig 6 scale-up scenario."""

    policy: str
    #: widest min/max items-per-worker gap observed (right after the
    #: empty workers joined)
    peak_gap: int
    #: gap after the settle window -- how well the policy closed the band
    final_gap: int
    splits: int
    migrations: int

    @property
    def moves(self) -> int:
        """Total maintenance ops spent (splits + migrations)."""
        return self.splits + self.migrations


def run_policy_comparison(
    workers: int = 4,
    new_workers: int = 2,
    items_per_worker: int = 4000,
    settle: float = 25.0,
    seed: int = 5,
) -> list[PolicyComparisonRow]:
    """Run the Fig 6 elastic scale-up moment under each balancer policy.

    Same scenario for all three: ``workers`` loaded workers, then
    ``new_workers`` empty ones join and the policy gets ``settle``
    virtual seconds to react.  Rows report the worker-size band (peak
    and final min/max gap) and the cumulative maintenance ops spent
    closing it -- threshold chases the tightest band, memory-pressure
    only acts on capacity hazards, cost-driven spends a bounded budget
    per scan."""
    schema = tpcds_schema()
    shared = dict(
        max_shard_items=int(items_per_worker * 0.9),
        imbalance_ratio=1.3,
        min_migrate_items=200,
        scan_period=0.5,
    )
    policies = [
        ("threshold", ThresholdPolicy(**shared)),
        (
            "memory_pressure",
            # capacity pegged to the loaded phase so the stayers sit
            # above the high watermark once the cluster has grown
            MemoryPressurePolicy(
                worker_capacity_items=items_per_worker, **shared
            ),
        ),
        ("cost_driven", CostDrivenPolicy(**shared)),
    ]
    rows: list[PolicyComparisonRow] = []
    for name, policy in policies:
        gen = TPCDSGenerator(schema, seed=seed)
        cfg = ClusterConfig(
            num_workers=workers,
            num_servers=1,
            tree_config=_default_tree_config(),
            balancer=policy,
            seed=seed,
        )
        cluster = VOLAPCluster(schema, cfg)
        cluster.bootstrap(
            gen.batch(workers * items_per_worker), shards_per_worker=3
        )
        cluster.run_for(2.0)  # settle the bootstrap before the event
        cluster.add_workers(new_workers)
        cluster.run_for(settle)
        series = cluster.stats.balance_series()
        gaps = [hi - lo for _, lo, hi, _ in series]
        rows.append(
            PolicyComparisonRow(
                policy=name,
                peak_gap=max(gaps) if gaps else 0,
                final_gap=gaps[-1] if gaps else 0,
                splits=cluster.stats.splits,
                migrations=cluster.stats.migrations,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 8: workload mix x query coverage at fixed size
# ---------------------------------------------------------------------------


@dataclass
class MixCell:
    insert_pct: int
    coverage: str
    total_throughput: float
    query_throughput: float
    query_latency: float
    insert_throughput: float
    insert_latency: float


def run_fig8(
    workers: int = 8,
    items_per_worker: int = 6000,
    mixes: Sequence[int] = (0, 25, 50, 75, 100),
    ops_per_cell: int = 400,
    seed: int = 2,
) -> list[MixCell]:
    """Throughput and latency across workload mixes and coverage bands."""
    schema = tpcds_schema()
    gen = TPCDSGenerator(schema, seed=seed)
    batch = gen.batch(workers * items_per_worker)
    cluster = _make_cluster(schema, workers, seed=seed)
    cluster.bootstrap(batch, shards_per_worker=3)
    qg = QueryGenerator(schema, batch, seed=seed + 1)
    bins = qg.generate_bins(per_bin=20)
    cells: list[MixCell] = []
    for mix in mixes:
        for name in PAPER_BIN_NAMES:
            if mix == 100:
                # a pure-insert stream has no per-coverage distinction;
                # emit one row (under the first band label) and skip rest
                if name != PAPER_BIN_NAMES[0]:
                    continue
            sg = StreamGenerator(
                gen,
                bins,
                insert_fraction=mix / 100.0,
                coverage_mix=None if mix == 100 else [name],
                seed=seed + mix,
            )
            ops = list(sg.operations(ops_per_cell))
            t0, t1 = _drive_stream(cluster, ops)
            q = cluster.stats.select(kind="query", since=t0)
            i = cluster.stats.select(kind="insert", since=t0)
            lat_q = cluster.stats.latency_stats(q)
            lat_i = cluster.stats.latency_stats(i)
            cells.append(
                MixCell(
                    insert_pct=mix,
                    coverage=name,
                    total_throughput=cluster.stats.throughput(q + i),
                    query_throughput=cluster.stats.throughput(q) if q else 0.0,
                    query_latency=lat_q["mean"],
                    insert_throughput=cluster.stats.throughput(i) if i else 0.0,
                    insert_latency=lat_i["mean"],
                )
            )
    return cells


# ---------------------------------------------------------------------------
# Figure 9: per-query time and shards searched vs coverage
# ---------------------------------------------------------------------------


@dataclass
class CoveragePoint:
    coverage: float
    latency: float
    shards_searched: int


def run_fig9(
    workers: int = 8,
    items_per_worker: int = 6000,
    n_queries: int = 300,
    seed: int = 3,
) -> tuple[list[CoveragePoint], int]:
    """Scatter of query latency and shards searched against coverage.

    Returns (points, total shards in the cluster)."""
    schema = tpcds_schema()
    gen = TPCDSGenerator(schema, seed=seed)
    batch = gen.batch(workers * items_per_worker)
    cluster = _make_cluster(schema, workers, seed=seed)
    cluster.bootstrap(batch, shards_per_worker=4)
    qg = QueryGenerator(schema, batch, seed=seed + 1)
    # span the whole coverage spectrum roughly uniformly
    queries = []
    for lo in np.linspace(0.0, 0.9, 10):
        queries.extend(
            qg.queries_for_coverage((lo, lo + 0.1), max(1, n_queries // 10))
        )
    rng = np.random.default_rng(seed)
    rng.shuffle(queries)
    ops = [Operation("query", query=q) for q in queries[:n_queries]]
    t0, _ = _drive_stream(cluster, ops)
    recs = cluster.stats.select(kind="query", since=t0)
    points = [
        CoveragePoint(r.coverage, r.latency, r.shards_searched) for r in recs
    ]
    return points, cluster.shard_count()


# ---------------------------------------------------------------------------
# Headline throughput (paper Sections I / IV-C)
# ---------------------------------------------------------------------------


@dataclass
class HeadlineResult:
    workers: int
    total_items: int
    bulk_rate: float  # items/s, virtual
    point_insert_rate: float
    #: same online-insert stream with client-side wire batching on
    batched_insert_rate: float
    mixed_insert_rate: float
    mixed_query_rate: float
    #: registry reads (cluster.metrics.snapshot()); with observe=True
    #: the snapshot also carries volap_messages_total / volap_tree_*
    p95_insert_latency: float = 0.0
    p95_query_latency: float = 0.0
    metrics: dict = field(default_factory=dict)
    #: spans recorded (0 unless observe=True)
    spans: int = 0


def run_headline(
    workers: int = 20,
    items_per_worker: int = 5000,
    bulk_items: int = 20_000,
    point_inserts: int = 1500,
    mixed_ops: int = 3000,
    seed: int = 4,
    observe: bool = False,
    trace_path=None,
) -> HeadlineResult:
    """Bulk vs point ingestion and the mixed-stream rates at p=20.

    ``observe=True`` switches on the observability subsystem for the
    whole run (spans + message metrics + tree profiling);
    ``trace_path`` additionally dumps the JSON-lines event trace there.
    Virtual-time rates must not depend on either knob -- the
    instrumentation charges no service time (asserted by
    ``benchmarks/bench_obs_overhead.py``)."""
    schema = tpcds_schema()
    gen = TPCDSGenerator(schema, seed=seed)
    batch = gen.batch(workers * items_per_worker)
    cluster = _make_cluster(schema, workers, seed=seed)
    if observe:
        cluster.observe()
    cluster.bootstrap(batch, shards_per_worker=3)

    bulk = gen.batch(bulk_items)
    bulk_dt = cluster.bulk_load(bulk)
    bulk_rate = bulk_items / bulk_dt

    ext = gen.batch(point_inserts)
    ops = [
        Operation("insert", coords=ext.coords[i], measure=1.0)
        for i in range(point_inserts)
    ]
    t0, t1 = _drive_stream(cluster, ops, sessions=8, concurrency=48)
    recs = cluster.stats.select(kind="insert", since=t0)
    point_rate = cluster.stats.throughput(recs)

    ext2 = gen.batch(point_inserts)
    ops = [
        Operation("insert", coords=ext2.coords[i], measure=1.0)
        for i in range(point_inserts)
    ]
    t0, t1 = _drive_stream(
        cluster, ops, sessions=8, concurrency=96, batch_size=32
    )
    recs = cluster.stats.select(kind="insert", since=t0)
    batched_rate = cluster.stats.throughput(recs)

    qg = QueryGenerator(schema, batch, seed=seed + 1)
    bins = qg.generate_bins(per_bin=15)
    sg = StreamGenerator(gen, bins, insert_fraction=0.7, seed=seed + 2)
    ops = list(sg.operations(mixed_ops))
    t0, t1 = _drive_stream(cluster, ops, sessions=8, concurrency=48)
    ins = cluster.stats.select(kind="insert", since=t0)
    qs = cluster.stats.select(kind="query", since=t0)
    span = t1 - t0
    snap = cluster.metrics.snapshot()
    lat = snap["histograms"]["volap_op_latency_seconds"]["series"]
    p95 = {s["labels"]["kind"]: s["p95"] for s in lat}
    if observe and trace_path is not None:
        cluster.obs.dump_events_jsonl(trace_path)
    return HeadlineResult(
        workers=workers,
        total_items=cluster.total_items(),
        bulk_rate=bulk_rate,
        point_insert_rate=point_rate,
        batched_insert_rate=batched_rate,
        mixed_insert_rate=len(ins) / span,
        mixed_query_rate=len(qs) / span,
        p95_insert_latency=p95.get("insert", 0.0),
        p95_query_latency=p95.get("query", 0.0),
        metrics=snap,
        spans=len(cluster.obs.tracer.spans) if cluster.obs is not None else 0,
    )


# ---------------------------------------------------------------------------
# Ablation: MBR vs MDS shard bounding keys in the system image
# ---------------------------------------------------------------------------


def run_image_key_ablation(
    workers: int = 4,
    items_per_worker: int = 4000,
    n_queries: int = 120,
    seed: int = 6,
) -> dict[str, dict[str, float]]:
    """Paper III-A allows shard bounding keys to be MBRs (one box) or
    MDSs (multiple boxes).  Runs the same query stream against clusters
    whose images use each kind and reports routing precision (average
    shards searched) and the total result count (must be identical --
    the key kind may only affect routing effort, never answers)."""
    schema = tpcds_schema()
    gen = TPCDSGenerator(schema, seed=seed)
    batch = gen.batch(workers * items_per_worker)
    qg = QueryGenerator(schema, batch, seed=seed + 1)
    queries = [qg.random_query() for _ in range(n_queries)]
    out: dict[str, dict[str, float]] = {}
    for kind in ("mbr", "mds"):
        cfg = ClusterConfig(
            num_workers=workers,
            num_servers=1,
            tree_config=TreeConfig(
                key_kind="mds", leaf_capacity=64, fanout=16
            ),
            image_key_kind=kind,
            seed=seed,
        )
        cluster = VOLAPCluster(schema, cfg)
        cluster.bootstrap(batch, shards_per_worker=4)
        sess = cluster.session(0, concurrency=8)
        sess.run_stream([Operation("query", query=q) for q in queries])
        cluster.run_until_clients_done()
        recs = cluster.stats.select(kind="query")
        out[kind] = {
            "avg_shards_searched": float(
                np.mean([r.shards_searched for r in recs])
            ),
            "total_results": float(sum(r.result_count for r in recs)),
        }
    return out

"""Command-line figure regeneration: ``python -m repro.bench <target>``.

Targets: fig4 fig5 fig6 fig7 fig8 fig9 fig10 headline ablations all.
Each prints the corresponding paper figure as rows/series.  The pytest
targets under ``benchmarks/`` run the same drivers *and* assert the
result shapes; this CLI is the quick interactive path.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    render_series,
    render_table,
    run_cached_aggregates_ablation,
    run_fig10,
    run_fig4,
    run_fig5,
    run_fig6_fig7,
    run_fig8,
    run_fig9,
    run_headline,
    run_id_expansion_ablation,
    run_insert_policy_ablation,
    run_split_ablation,
    run_sync_period_ablation,
)


def _fig4(quick: bool) -> None:
    sizes = (5_000, 10_000) if quick else (10_000, 20_000, 40_000)
    result = run_fig4(sizes=sizes)
    series = {
        name: [(n, round(t * 1000, 3)) for n, t in pts]
        for name, pts in result.series.items()
    }
    print(render_series("Fig 4: query time (ms) vs size", series))


def _fig5(quick: bool) -> None:
    dims = (4, 16, 32) if quick else (4, 8, 16, 32, 64)
    rows = run_fig5(dims=dims, n_items=2000 if quick else 4000)
    print(
        render_table(
            "Fig 5: tree variants vs dimensionality",
            ["tree", "dims", "insert_us", "query_ms", "nodes/q", "scanned/q"],
            [
                (
                    r.tree,
                    r.dims,
                    round(r.insert_latency * 1e6, 1),
                    round(r.query_latency * 1e3, 2),
                    round(r.query_nodes, 1),
                    round(r.query_scanned, 1),
                )
                for r in rows
            ],
        )
    )


def _fig67(quick: bool) -> None:
    result = run_fig6_fig7(
        start_workers=4,
        end_workers=8 if quick else 12,
        items_per_worker=3000 if quick else 5000,
        bench_inserts=200 if quick else 300,
        bench_queries_per_bin=30 if quick else 45,
    )
    print(
        render_series(
            "Fig 6: (t, min/worker, max/worker, migrations)",
            {"balance": result.balance_series[:: 4]},
        )
    )
    print()
    print(
        render_table(
            "Fig 7: throughput/latency vs system size",
            ["p", "N", "ins/s", "q_low/s", "q_med/s", "q_high/s"],
            [
                (
                    ph.workers,
                    ph.total_items,
                    round(ph.insert_throughput),
                    round(ph.query_throughput["low"]),
                    round(ph.query_throughput["medium"]),
                    round(ph.query_throughput["high"]),
                )
                for ph in result.phases
            ],
        )
    )


def _fig8(quick: bool) -> None:
    cells = run_fig8(
        workers=4 if quick else 8,
        items_per_worker=3000 if quick else 5000,
        ops_per_cell=200 if quick else 400,
    )
    print(
        render_table(
            "Fig 8: workload mix x coverage",
            ["mix%", "coverage", "total/s", "query/s", "q_lat_ms"],
            [
                (
                    c.insert_pct,
                    c.coverage,
                    round(c.total_throughput),
                    round(c.query_throughput),
                    round(c.query_latency * 1000, 2)
                    if c.query_throughput
                    else "-",
                )
                for c in cells
            ],
        )
    )


def _fig9(quick: bool) -> None:
    import numpy as np

    points, shards = run_fig9(
        workers=4 if quick else 8,
        items_per_worker=3000 if quick else 5000,
        n_queries=100 if quick else 300,
    )
    rows = []
    for lo in np.arange(0.0, 1.0, 0.2):
        sel = [p for p in points if lo <= p.coverage < lo + 0.2]
        if sel:
            rows.append(
                (
                    f"{lo:.0%}-{lo + 0.2:.0%}",
                    len(sel),
                    round(float(np.median([p.latency for p in sel]) * 1e3), 2),
                    round(float(np.mean([p.shards_searched for p in sel])), 1),
                )
            )
    print(
        render_table(
            f"Fig 9: coverage vs latency & shards searched ({shards} shards)",
            ["coverage", "n", "med_ms", "avg_shards"],
            rows,
        )
    )


def _fig10(quick: bool) -> None:
    result = run_fig10(trials=60 if quick else 120)
    series = {
        f"coverage {cov:.0%}": [
            (float(e), round(float(m), 2))
            for e, m in zip(res.elapsed, res.mean_missed)
        ]
        for cov, res in sorted(result.curves.items())
    }
    print(render_series("Fig 10a: missed inserts vs elapsed time", series))


def _headline(quick: bool) -> None:
    res = run_headline(
        workers=8 if quick else 20,
        items_per_worker=3000 if quick else 5000,
    )
    print(
        render_table(
            "Headline throughput",
            ["metric", "value"],
            [
                ("bulk items/s", round(res.bulk_rate)),
                ("point inserts/s", round(res.point_insert_rate)),
                ("batched inserts/s", round(res.batched_insert_rate)),
                ("mixed inserts/s", round(res.mixed_insert_rate)),
                ("mixed queries/s", round(res.mixed_query_rate)),
                ("p95 insert ms", round(res.p95_insert_latency * 1e3, 2)),
                ("p95 query ms", round(res.p95_query_latency * 1e3, 2)),
            ],
        )
    )


def _ablations(quick: bool) -> None:
    print(
        render_table(
            "Insert policy ablation (items scanned / query)",
            ["policy", "scanned"],
            [(k, round(v, 1)) for k, v in run_insert_policy_ablation().items()],
        )
    )
    print()
    print(
        render_table(
            "ID expansion ablation",
            ["mapping", "scanned"],
            [(k, round(v, 1)) for k, v in run_id_expansion_ablation().items()],
        )
    )
    print()
    print(
        render_table(
            "Split policy ablation",
            ["split", "scanned"],
            [(k, round(v, 1)) for k, v in run_split_ablation().items()],
        )
    )
    print()
    out = run_cached_aggregates_ablation()
    print(
        render_table(
            "Cached aggregates ablation",
            ["mode", "nodes", "scanned", "agg_hits"],
            [(k, *[round(x, 1) for x in v.values()]) for k, v in out.items()],
        )
    )
    print()
    print(
        render_table(
            "Sync period ablation",
            ["period_s", "time_to_fresh_s"],
            [(p, round(t, 2)) for p, t in sorted(run_sync_period_ablation().items())],
        )
    )


TARGETS = {
    "fig4": _fig4,
    "fig5": _fig5,
    "fig6": _fig67,
    "fig7": _fig67,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "headline": _headline,
    "ablations": _ablations,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures as text tables.",
    )
    parser.add_argument(
        "target", choices=sorted(TARGETS) + ["all"], help="figure to regenerate"
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller sizes, faster run"
    )
    args = parser.parse_args(argv)
    targets = sorted(set(TARGETS)) if args.target == "all" else [args.target]
    done = set()
    for t in targets:
        fn = TARGETS[t]
        if fn in done:
            continue
        done.add(fn)
        t0 = time.perf_counter()
        fn(args.quick)
        print(f"\n[{t} finished in {time.perf_counter() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Freshness experiment drivers: paper Figure 10 plus the sync-period
ablation (DESIGN.md section 5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..freshness.pbs import LatencyDistribution, PBSResult, PBSSimulator

__all__ = ["Fig10Result", "run_fig10", "run_sync_period_ablation"]


@dataclass
class Fig10Result:
    #: coverage -> PBSResult (Fig 10a curves)
    curves: dict[float, PBSResult]
    #: (coverage, elapsed) -> P(missed == k) for k = 1..4 (Fig 10b bars)
    pmfs: dict[tuple[float, float], np.ndarray]


def run_fig10(
    insert_rate: float = 50_000.0,
    coverages: Sequence[float] = (0.25, 0.50, 0.75, 1.00),
    elapsed_grid: Optional[Sequence[float]] = None,
    pmf_elapsed: Sequence[float] = (0.25, 1.0, 2.0),
    latency_samples: Optional[Sequence[float]] = None,
    trials: int = 120,
    seed: int = 0,
) -> Fig10Result:
    """Missed-insert curves and probabilities, as in paper Fig 10.

    ``latency_samples`` lets callers feed the insert latencies measured
    on a simulated cluster run (the paper used the distributions
    "observed for VOLAP in these experiments"); the default is a
    calibrated lognormal.
    """
    if elapsed_grid is None:
        elapsed_grid = [0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
    dist = (
        LatencyDistribution(samples=latency_samples)
        if latency_samples is not None
        else None
    )
    curves = {}
    pmfs = {}
    for cov in coverages:
        sim = PBSSimulator(
            insert_rate=insert_rate, insert_latency=dist, seed=seed
        )
        curves[cov] = sim.missed_curve(elapsed_grid, coverage=cov, trials=trials)
        for e in pmf_elapsed:
            pmfs[(cov, e)] = sim.missed_pmf(
                e, coverage=cov, trials=trials * 10
            )
    return Fig10Result(curves=curves, pmfs=pmfs)


def run_sync_period_ablation(
    sync_periods: Sequence[float] = (0.5, 1.0, 3.0, 10.0),
    insert_rate: float = 50_000.0,
    expansion_miss_prob: float = 1e-4,
    trials: int = 150,
    seed: int = 1,
) -> dict[float, float]:
    """Freshness cost of the configurable sync period.

    Uses an exaggerated expansion-miss probability so the sync tail is
    measurable, and reports for each period the smallest elapsed time at
    which expected missed inserts fall below 0.5 -- longer sync periods
    keep queries stale for proportionally longer."""
    out = {}
    for period in sync_periods:
        sim = PBSSimulator(
            insert_rate=insert_rate,
            sync_period=period,
            expansion_miss_prob=expansion_miss_prob,
            seed=seed,
        )
        grid = np.linspace(0.0, period + 0.5, 30)
        res = sim.missed_curve(grid, coverage=1.0, trials=trials)
        out[period] = res.time_to_fresh(threshold=0.5)
    return out

"""High-velocity sensor stream workload (append-heavy, time-skewed).

Models the Colmenares-style sensor-network feed the VOLAP paper cites
as a motivating high-velocity source: many stations emitting readings
at a steady cadence, so the stream is *append-heavy* (every batch
carries current timestamps -- the time dimension advances monotonically
with the row counter) and *spatially skewed* (a few busy stations
produce most readings, Zipf over the station hierarchy).

This shape is deliberately adversarial for a memory-budgeted cluster:
old time ranges go cold while their shards keep answering historical
roll-ups, which is exactly what the residency tier's spill/rehydrate
path (``benchmarks/bench_spill.py``) needs to exercise.

Measures are **fixed-point**: readings are quantized to 1/256 (a dyadic
step), so float64 sums of any realistic row count are exact and
independent of summation order.  Differential tests can therefore
require bit-identical aggregates between an all-hot run and a
spill/rehydrate run without fighting ULP drift.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..olap.hierarchy import Dimension, Hierarchy, Level
from ..olap.records import RecordBatch
from ..olap.schema import Schema
from .tpcds import _zipf_weights

__all__ = ["sensor_schema", "SensorStreamGenerator"]

#: quantization step for sensor readings; dyadic so float64 sums of
#: < 2**45 rows are exact regardless of summation order
QUANTUM = 1.0 / 256.0


def sensor_schema() -> Schema:
    """Sensor-network schema: where, what, and when.

    ==========  ==========================================
    ``station``  region > site > station
    ``sensor``   kind > channel
    ``time``     day > hour > minute
    ==========  ==========================================
    """

    def dim(name: str, levels: list[tuple[str, int]]) -> Dimension:
        return Dimension(
            name, Hierarchy(name, [Level(n, f) for n, f in levels])
        )

    return Schema(
        [
            dim("station", [("region", 12), ("site", 24), ("station", 48)]),
            dim("sensor", [("kind", 8), ("channel", 16)]),
            dim("time", [("day", 64), ("hour", 24), ("minute", 60)]),
        ]
    )


class SensorStreamGenerator:
    """Append-heavy, time-skewed sensor readings over any schema with a
    ``time`` dimension.

    * Non-time dimensions draw per-level ids from Zipf-skewed
      categoricals (``skew``), so a handful of stations/channels carry
      most of the stream.
    * The ``time`` dimension is derived from a row counter: every
      ``rows_per_minute`` readings advance one minute, minutes roll
      into hours, hours into days.  Batches therefore always append at
      the current edge of the time range -- the paper's high-velocity
      pattern -- and earlier days never receive new rows (they go cold).
    * Measures are Gamma-shaped readings quantized to :data:`QUANTUM`.

    The only protocol :class:`~repro.workloads.streams.StreamGenerator`
    needs is ``batch(n)``, which this class provides alongside the same
    ``stream(total, chunk)`` helper as :class:`TPCDSGenerator`.
    """

    def __init__(
        self,
        schema: Optional[Schema] = None,
        seed: int = 0,
        skew: float = 0.9,
        rows_per_minute: int = 256,
    ):
        self.schema = schema if schema is not None else sensor_schema()
        self.rng = np.random.default_rng(seed)
        self.skew = skew
        self.rows_per_minute = max(1, rows_per_minute)
        self._clock = 0  # rows generated so far; the stream's only clock
        self._time_dim = next(
            (
                i
                for i, d in enumerate(self.schema.dimensions)
                if d.name == "time"
            ),
            None,
        )
        self._weights: list[list[np.ndarray]] = []
        for i, d in enumerate(self.schema.dimensions):
            if i == self._time_dim:
                self._weights.append([])
                continue
            self._weights.append(
                [
                    _zipf_weights(lvl.fanout, self.skew, self.rng)
                    for lvl in d.hierarchy.levels
                ]
            )

    def batch(self, n: int) -> RecordBatch:
        """Generate the next ``n`` readings at the stream's time edge."""
        coords = np.zeros((n, self.schema.num_dims), dtype=np.int64)
        for d, dim in enumerate(self.schema.dimensions):
            if d == self._time_dim:
                coords[:, d] = self._time_coords(n)
                continue
            h = dim.hierarchy
            value = np.zeros(n, dtype=np.int64)
            for lev, lvl in enumerate(h.levels):
                ids = self.rng.choice(
                    lvl.fanout, size=n, p=self._weights[d][lev]
                )
                value = (value << lvl.bits) | ids
            coords[:, d] = value
        self._clock += n
        raw = self.rng.gamma(2.0, 12.5, size=n)
        measures = np.round(raw / QUANTUM) * QUANTUM  # fixed-point
        return RecordBatch(coords, measures)

    def _time_coords(self, n: int) -> np.ndarray:
        """Row counter -> packed (day, hour, minute) ids; monotone."""
        levels = self.schema.dimensions[self._time_dim].hierarchy.levels
        minutes = (self._clock + np.arange(n)) // self.rows_per_minute
        value = np.zeros(n, dtype=np.int64)
        ids = []
        # split the absolute minute counter over the levels, finest last
        rest = minutes
        for lvl in reversed(levels):
            ids.append(rest % lvl.fanout)
            rest = rest // lvl.fanout
        for lvl, lvl_ids in zip(levels, reversed(ids)):
            value = (value << lvl.bits) | lvl_ids.astype(np.int64)
        return value

    def stream(self, total: int, chunk: int = 1000):
        """Yield successive batches until ``total`` rows are produced."""
        remaining = total
        while remaining > 0:
            k = min(chunk, remaining)
            yield self.batch(k)
            remaining -= k

"""Workloads: TPC-DS-like data, coverage-binned queries, mixed streams."""

from .querygen import PAPER_BINS, CoverageBins, QueryGenerator
from .sensors import SensorStreamGenerator, sensor_schema
from .streams import Operation, StreamGenerator
from .tpcds import TPCDSGenerator, synthetic_schema, tpcds_schema

__all__ = [
    "PAPER_BINS",
    "CoverageBins",
    "Operation",
    "QueryGenerator",
    "SensorStreamGenerator",
    "StreamGenerator",
    "TPCDSGenerator",
    "sensor_schema",
    "synthetic_schema",
    "tpcds_schema",
]

"""Workloads: TPC-DS-like data, coverage-binned queries, mixed streams."""

from .querygen import PAPER_BINS, CoverageBins, QueryGenerator
from .streams import Operation, StreamGenerator
from .tpcds import TPCDSGenerator, synthetic_schema, tpcds_schema

__all__ = [
    "PAPER_BINS",
    "CoverageBins",
    "Operation",
    "QueryGenerator",
    "StreamGenerator",
    "TPCDSGenerator",
    "synthetic_schema",
    "tpcds_schema",
]

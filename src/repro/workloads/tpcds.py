"""TPC-DS-like schema and data generator (paper Fig. 1).

The paper evaluates VOLAP on TPC-DS fact data with ``d = 8``
hierarchical dimensions.  We reproduce the hierarchy *shapes* of
Figure 1 -- the level structure and realistic fan-outs -- and generate
synthetic fact rows with Zipf-skewed, optionally time-correlated draws.
The index only ever sees hierarchical IDs, so matching the hierarchy
shapes (levels, branching, unequal per-level widths) preserves the
behaviour the experiments measure.

Dimensions (coarsest level first):

====================  =========================================
``store``             country > state > city > store
``customer``          country > state > city   (address chain)
``customer_birth``    byear > bmonth > bday
``item``              category > class > brand
``date``              year > month > day
``time``              hour > minute
``household``         income_band > vehicle_count
``promotion``         promo_name (flat)
====================  =========================================
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..olap.hierarchy import Dimension, Hierarchy, Level
from ..olap.records import RecordBatch
from ..olap.schema import Schema

__all__ = ["tpcds_schema", "TPCDSGenerator", "synthetic_schema"]


def tpcds_schema() -> Schema:
    """The 8-dimension hierarchical schema of paper Fig. 1."""

    def dim(name: str, levels: list[tuple[str, int]]) -> Dimension:
        return Dimension(name, Hierarchy(name, [Level(n, f) for n, f in levels]))

    return Schema(
        [
            dim(
                "store",
                [("country", 20), ("state", 30), ("city", 40), ("store", 10)],
            ),
            dim("customer", [("country", 20), ("state", 30), ("city", 40)]),
            dim("customer_birth", [("byear", 100), ("bmonth", 12), ("bday", 31)]),
            dim("item", [("category", 10), ("class", 20), ("brand", 50)]),
            dim("date", [("year", 10), ("month", 12), ("day", 31)]),
            dim("time", [("hour", 24), ("minute", 60)]),
            dim("household", [("income_band", 20), ("vehicle_count", 5)]),
            dim("promotion", [("promo_name", 300)]),
        ]
    )


def synthetic_schema(num_dims: int, levels: int = 3, fanout: int = 8) -> Schema:
    """Uniform synthetic schema for the dimension sweep (paper Fig. 5)."""
    dims = []
    for i in range(num_dims):
        name = f"dim{i}"
        dims.append(
            Dimension(
                name,
                Hierarchy(
                    name, [Level(f"{name}_l{j}", fanout) for j in range(levels)]
                ),
            )
        )
    return Schema(dims)


def _zipf_weights(n: int, s: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf-like categorical weights over ``n`` values, randomly permuted."""
    w = 1.0 / np.arange(1, n + 1) ** s
    rng.shuffle(w)
    return w / w.sum()


class TPCDSGenerator:
    """Synthetic fact-row generator over any hierarchical schema.

    Per-level categorical distributions are Zipf-skewed (``skew``), so
    data clusters under popular hierarchy prefixes the way retail fact
    data does.  With ``time_correlated=True`` the ``date``/``time``
    dimensions advance with row index, emulating the high-velocity
    append pattern the paper targets (new facts carry recent
    timestamps, which drives shard bounding-box expansion).
    """

    def __init__(
        self,
        schema: Optional[Schema] = None,
        seed: int = 0,
        skew: float = 0.7,
        time_correlated: bool = False,
    ):
        self.schema = schema if schema is not None else tpcds_schema()
        self.rng = np.random.default_rng(seed)
        self.skew = skew
        self.time_correlated = time_correlated
        self._clock = 0  # rows generated so far, drives time correlation
        # one weight vector per (dimension, level); levels reuse a single
        # distribution for all parents, which preserves skew but keeps
        # generation vectorised.
        self._weights: list[list[np.ndarray]] = []
        for dim in self.schema.dimensions:
            per_level = [
                _zipf_weights(lvl.fanout, self.skew, self.rng)
                for lvl in dim.hierarchy.levels
            ]
            self._weights.append(per_level)
        self._time_dims = [
            i
            for i, d in enumerate(self.schema.dimensions)
            if d.name in ("date", "time")
        ]

    def batch(self, n: int) -> RecordBatch:
        """Generate ``n`` fact rows."""
        coords = np.zeros((n, self.schema.num_dims), dtype=np.int64)
        for d, dim in enumerate(self.schema.dimensions):
            h = dim.hierarchy
            value = np.zeros(n, dtype=np.int64)
            for l, lvl in enumerate(h.levels):
                ids = self.rng.choice(
                    lvl.fanout, size=n, p=self._weights[d][l]
                )
                value = (value << lvl.bits) | ids
            coords[:, d] = value
        if self.time_correlated and self._time_dims:
            self._apply_time_correlation(coords, n)
        self._clock += n
        measures = self.rng.gamma(2.0, 50.0, size=n)  # sales-amount-like
        return RecordBatch(coords, measures)

    def _apply_time_correlation(self, coords: np.ndarray, n: int) -> None:
        """Make the top level of date/time advance with the row counter."""
        for d in self._time_dims:
            h = self.schema.dimensions[d].hierarchy
            top = h.levels[0]
            below = h.suffix_bits(1)
            # map the global row counter onto the top-level id range
            phase = (self._clock + np.arange(n)) // max(1, 50_000 // top.fanout)
            top_ids = np.minimum(phase % (top.fanout * 4), top.fanout - 1)
            rest = coords[:, d] & ((1 << below) - 1)
            coords[:, d] = (top_ids.astype(np.int64) << below) | rest

    def stream(self, total: int, chunk: int = 1000):
        """Yield successive batches until ``total`` rows are produced."""
        remaining = total
        while remaining > 0:
            k = min(chunk, remaining)
            yield self.batch(k)
            remaining -= k

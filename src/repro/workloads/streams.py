"""Mixed insert/query operation streams (paper "workload mix").

The paper benchmarks streams of interspersed insertions and aggregate
queries; "workload mix 25% is 25% inserts and 75% aggregate queries"
(Section IV).  :class:`StreamGenerator` produces such streams with a
chosen insert fraction and a chosen coverage-band mixture for the query
side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from ..olap.query import Query
from ..olap.records import RecordBatch
from .querygen import CoverageBins
from .tpcds import TPCDSGenerator

__all__ = ["Operation", "StreamGenerator"]


@dataclass
class Operation:
    """One element of an operation stream."""

    kind: str  # "insert" | "query"
    coords: Optional[np.ndarray] = None
    measure: float = 0.0
    query: Optional[Query] = None

    @property
    def is_insert(self) -> bool:
        return self.kind == "insert"


class StreamGenerator:
    """Interleaved insert/query streams with a fixed workload mix."""

    def __init__(
        self,
        generator: TPCDSGenerator,
        bins: CoverageBins,
        insert_fraction: float,
        coverage_mix: Optional[Sequence[str]] = None,
        seed: int = 0,
    ):
        """``coverage_mix`` lists the bins to draw queries from
        (uniformly); defaults to every non-empty bin."""
        if not 0.0 <= insert_fraction <= 1.0:
            raise ValueError("insert_fraction must be in [0, 1]")
        self.generator = generator
        self.bins = bins
        self.insert_fraction = insert_fraction
        self.rng = np.random.default_rng(seed)
        if coverage_mix is None:
            coverage_mix = [n for n in bins.names if bins.queries[n]]
        if not coverage_mix:
            raise ValueError("no query bins available")
        for name in coverage_mix:
            if not bins.queries[name]:
                raise ValueError(f"coverage bin {name!r} is empty")
        self.coverage_mix = list(coverage_mix)

    def operations(self, n: int, insert_chunk: int = 256) -> Iterator[Operation]:
        """Yield ``n`` operations with the configured mix.

        Inserts draw rows from the TPC-DS generator (pre-generated in
        chunks to keep the draw vectorised); queries are sampled
        uniformly from the configured coverage bins.
        """
        pending: Optional[RecordBatch] = None
        used = 0
        emitted = 0
        while emitted < n:
            if self.rng.random() < self.insert_fraction:
                if pending is None or used == len(pending):
                    pending = self.generator.batch(insert_chunk)
                    used = 0
                yield Operation(
                    "insert",
                    coords=pending.coords[used],
                    measure=float(pending.measures[used]),
                )
                used += 1
            else:
                name = self.coverage_mix[
                    int(self.rng.integers(0, len(self.coverage_mix)))
                ]
                yield Operation("query", query=self.bins.sample(name, self.rng))
            emitted += 1

    def insert_batches(
        self, total: int, batch_size: int = 256
    ) -> Iterator[RecordBatch]:
        """Pure-insert stream as ready-made :class:`RecordBatch` chunks.

        This is the shape the batched ingestion paths consume directly
        (``ShardStore.insert_batch``, the ``client_insert_batch`` wire
        message): ``total`` rows from the TPC-DS generator in chunks of
        ``batch_size`` (the last chunk may be short)."""
        done = 0
        while done < total:
            k = min(batch_size, total - done)
            yield self.generator.batch(k)
            done += k

    def batch_plan(self, n: int) -> tuple[int, int]:
        """Expected (inserts, queries) for a stream of length ``n``."""
        ins = round(n * self.insert_fraction)
        return ins, n - ins

"""Coverage-binned query generation (paper Section IV).

"Queries are randomly generated to span a wide range of coverages, and
specify values at various levels in all dimensions.  Generated queries
are tested against the database and binned according to their true
coverage.  During benchmarking, queries are chosen uniformly at random
from the appropriate bin."

We reproduce that procedure exactly: random per-dimension constraints
(a contiguous run of values at a random hierarchy level -- e.g. "years
3..7", "category 2"), true coverage measured against a reference sample
of the database, binning, and uniform draws per bin.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.array_store import ArrayStore
from ..olap.keys import Box
from ..olap.query import Query
from ..olap.records import RecordBatch
from ..olap.schema import Schema

__all__ = ["QueryGenerator", "CoverageBins", "PAPER_BINS"]

#: The paper's coverage bands: low < 33%, medium 33-66%, high > 66%.
PAPER_BINS: tuple[tuple[float, float], ...] = (
    (0.0, 1.0 / 3.0),
    (1.0 / 3.0, 2.0 / 3.0),
    (2.0 / 3.0, 1.0),
)

PAPER_BIN_NAMES = ("low", "medium", "high")


class CoverageBins:
    """Queries grouped by measured coverage band."""

    def __init__(self, edges: Sequence[tuple[float, float]], names: Sequence[str]):
        if len(edges) != len(names):
            raise ValueError("edges and names must align")
        self.edges = tuple(edges)
        self.names = tuple(names)
        self.queries: dict[str, list[Query]] = {n: [] for n in names}

    def add(self, query: Query) -> bool:
        """File a measured query into its band; False if out of range."""
        for (lo, hi), name in zip(self.edges, self.names):
            if lo <= query.coverage <= hi:
                self.queries[name].append(query)
                return True
        return False

    def counts(self) -> dict[str, int]:
        return {n: len(qs) for n, qs in self.queries.items()}

    def sample(self, name: str, rng: np.random.Generator) -> Query:
        qs = self.queries[name]
        if not qs:
            raise ValueError(f"bin {name!r} is empty")
        return qs[int(rng.integers(0, len(qs)))]


class QueryGenerator:
    """Random hierarchical queries with measured true coverage."""

    def __init__(
        self,
        schema: Schema,
        reference: RecordBatch,
        seed: int = 0,
        constrain_prob: float = 0.5,
    ):
        """``reference`` is a sample of the database used to measure the
        true coverage of each generated query (the paper tests generated
        queries "against the database")."""
        if len(reference) == 0:
            raise ValueError("reference sample must be non-empty")
        self.schema = schema
        self.rng = np.random.default_rng(seed)
        self.constrain_prob = constrain_prob
        self._ref = ArrayStore.from_batch(schema, reference)
        self._ref_n = len(reference)

    # -- single query ----------------------------------------------------

    def random_query(self) -> Query:
        """One random query; constraints at random levels, random runs."""
        lo = np.zeros(self.schema.num_dims, dtype=np.int64)
        hi = self.schema.leaf_limits.copy()
        for d, dim in enumerate(self.schema.dimensions):
            if self.rng.random() >= self.constrain_prob:
                continue
            h = dim.hierarchy
            depth = int(self.rng.integers(1, h.num_levels + 1))
            # a contiguous run of values at `depth`: [start, start+run-1].
            # Half the draws use short runs (selective queries), half use
            # uniform widths so wide, high-coverage constraints also occur.
            prefix_space = 1
            for lvl in h.levels[:depth]:
                prefix_space <<= lvl.bits
            if self.rng.random() < 0.5:
                run = 1 + int(self.rng.geometric(0.3))
            else:
                run = 1 + int(self.rng.integers(0, prefix_space))
            start = int(self.rng.integers(0, prefix_space))
            end = min(start + run - 1, prefix_space - 1)
            below = h.suffix_bits(depth)
            lo[d] = start << below
            hi[d] = ((end + 1) << below) - 1
        q = Query(Box(lo, hi, copy=False))
        q.coverage = self.measure_coverage(q)
        return q

    def measure_coverage(self, query: Query) -> float:
        """True coverage of ``query`` against the reference sample."""
        return self._ref.count_in(query.box) / self._ref_n

    # -- binned generation -------------------------------------------------

    def generate_bins(
        self,
        per_bin: int,
        edges: Sequence[tuple[float, float]] = PAPER_BINS,
        names: Sequence[str] = PAPER_BIN_NAMES,
        max_attempts: Optional[int] = None,
    ) -> CoverageBins:
        """Generate until every bin holds ``per_bin`` queries.

        High-coverage queries are rare under uniform generation, so when
        a bin starves the generator falls back to *targeted* queries:
        boxes spanning a random corner-anchored fraction of the id
        space, which yield a continuum of coverages.
        """
        bins = CoverageBins(edges, names)
        attempts = 0
        limit = max_attempts if max_attempts is not None else per_bin * 300
        while (
            any(len(bins.queries[n]) < per_bin for n in names)
            and attempts < limit
        ):
            attempts += 1
            q = self.random_query()
            name = self._bin_name(q.coverage, edges, names)
            if name is not None and len(bins.queries[name]) < per_bin:
                bins.queries[name].append(q)
            elif attempts % 3 == 0:
                # help starving bins along with a targeted query
                starving = [n for n in names if len(bins.queries[n]) < per_bin]
                if starving:
                    tq = self._targeted_query(
                        edges[names.index(starving[0])]
                    )
                    tname = self._bin_name(tq.coverage, edges, names)
                    if tname is not None and len(bins.queries[tname]) < per_bin:
                        bins.queries[tname].append(tq)
        for n in names:
            if not bins.queries[n]:
                raise RuntimeError(
                    f"could not generate any query in bin {n!r}; "
                    "reference sample may be too small"
                )
        return bins

    @staticmethod
    def _bin_name(coverage, edges, names):
        for (lo, hi), name in zip(edges, names):
            if lo <= coverage <= hi:
                return name
        return None

    def _targeted_query(self, band: tuple[float, float]) -> Query:
        """A box aimed at a coverage band.

        Shrinks one or two random dimensions to a fraction of their
        range; repeated draws explore the band.
        """
        target = self.rng.uniform(*band)
        lo = np.zeros(self.schema.num_dims, dtype=np.int64)
        hi = self.schema.leaf_limits.copy()
        k = int(self.rng.integers(1, 3))
        dims = self.rng.choice(self.schema.num_dims, size=k, replace=False)
        frac = max(target, 1e-6) ** (1.0 / k)
        for d in dims:
            width = int(self._ref_width(d) * frac)
            width = max(width, 1)
            span = int(self.schema.leaf_limits[d]) + 1
            start = int(self.rng.integers(0, max(1, span - width)))
            lo[d] = start
            hi[d] = min(start + width - 1, span - 1)
        q = Query(Box(lo, hi, copy=False))
        q.coverage = self.measure_coverage(q)
        return q

    def _ref_width(self, d: int) -> int:
        return int(self.schema.leaf_limits[d]) + 1

    # -- convenience ---------------------------------------------------------

    def queries_for_coverage(
        self, band: tuple[float, float], n: int, max_attempts: int = 5000
    ) -> list[Query]:
        """``n`` queries whose measured coverage falls within ``band``."""
        out: list[Query] = []
        attempts = 0
        while len(out) < n and attempts < max_attempts:
            attempts += 1
            q = self._targeted_query(band) if attempts % 2 else self.random_query()
            if band[0] <= q.coverage <= band[1]:
                out.append(q)
        if not out:
            raise RuntimeError(f"no queries found in coverage band {band}")
        return out

"""High-dimensional workloads for the dimension sweep (paper Fig. 5).

Real OLAP fact data with many dimensions is strongly *correlated* --
store, customer, item, promotion attributes all co-vary with a latent
segment (region, season, product line).  The dimension-scaling
experiment therefore uses latent-cluster data: a hidden cluster id
picks a level-1 value in every dimension, and the remaining hierarchy
levels are drawn at random.  On such data, indexes that exploit
hierarchy levels can keep pruning as ``d`` grows, while flat-geometry
indexes degrade -- the contrast Fig. 5 measures.
"""

from __future__ import annotations

import numpy as np

from ..olap.hierarchy import Dimension, Hierarchy, Level
from ..olap.keys import Box
from ..olap.records import RecordBatch
from ..olap.schema import Schema

__all__ = [
    "heterogeneous_schema",
    "latent_cluster_batch",
    "level_constrained_queries",
]


def heterogeneous_schema(num_dims: int, seed: int = 0) -> Schema:
    """A ``num_dims``-dimension schema with *unequal* per-level widths.

    Alternates wide and narrow fan-outs across dimensions, which is what
    makes the Fig. 3 ID expansion matter: without expansion, wide
    dimensions dominate the top Hilbert-curve bits and narrow
    dimensions' level-1 values lose locality.
    """
    rng = np.random.default_rng(seed)
    shapes = [(16, 4), (4, 16), (8, 8), (32, 2), (2, 32)]
    dims = []
    for i in range(num_dims):
        f1, f2 = shapes[i % len(shapes)]
        name = f"dim{i}"
        dims.append(
            Dimension(
                name,
                Hierarchy(
                    name, [Level(f"{name}_l0", f1), Level(f"{name}_l1", f2)]
                ),
            )
        )
    return Schema(dims)


def latent_cluster_batch(
    schema: Schema,
    n: int,
    clusters: int = 12,
    seed: int = 0,
) -> tuple[RecordBatch, np.ndarray]:
    """Fact rows whose level-1 value in every dimension follows a latent
    cluster id.  Returns (batch, centers) where ``centers[c, d]`` is the
    level-1 id cluster ``c`` uses in dimension ``d``."""
    rng = np.random.default_rng(seed)
    d = schema.num_dims
    centers = np.zeros((clusters, d), dtype=np.int64)
    for j, dim in enumerate(schema.dimensions):
        centers[:, j] = rng.integers(
            0, dim.hierarchy.levels[0].fanout, size=clusters
        )
    which = rng.integers(0, clusters, size=n)
    coords = np.zeros((n, d), dtype=np.int64)
    for j, dim in enumerate(schema.dimensions):
        h = dim.hierarchy
        below = h.suffix_bits(1)
        rest = rng.integers(0, 1 << below, size=n) if below else np.zeros(n, dtype=np.int64)
        coords[:, j] = (centers[which, j] << below) | rest
    return RecordBatch(coords, rng.random(n)), centers


def level_constrained_queries(
    schema: Schema,
    centers: np.ndarray,
    n_queries: int,
    constrained_dims: int = 3,
    seed: int = 0,
) -> list[Box]:
    """Queries constraining a few random dimensions to the level-1 value
    of a random cluster (the paper's "values at various levels in all
    dimensions", aimed where the data lives)."""
    rng = np.random.default_rng(seed)
    d = schema.num_dims
    out = []
    for _ in range(n_queries):
        c = centers[rng.integers(0, len(centers))]
        lo = np.zeros(d, dtype=np.int64)
        hi = schema.leaf_limits.copy()
        k = min(constrained_dims, d)
        for j in rng.choice(d, size=k, replace=False):
            h = schema.dimensions[j].hierarchy
            below = h.suffix_bits(1)
            v = int(c[j])
            lo[j] = v << below
            hi[j] = ((v + 1) << below) - 1
        out.append(Box(lo, hi))
    return out

"""The system image index: a modified PDC tree over shard bounding keys.

Paper Section III-C.  Each server's *local image* finds the shards
relevant to an insertion or query.  It is a PDC-tree-like structure
whose **leaves are fixed**: exactly one leaf per shard.  Insertions
never split leaves -- reaching a leaf expands its bounding key and
returns that shard.  The child chosen during descent is the one whose
expansion "results in the least overlap, since the high global cost of
overlap dominates the cost of performing overlap calculations in the
index".

Shard bounding keys are "either a Minimum Bounding Rectangle (MBR, one
box) or Minimum Describing Subset (MDS, multiple boxes)" (Section
III-A); the image supports both through the shared key-policy layer
(``key_kind`` parameter) and *adopts* whatever kind the workers publish
into its own.

Synchronisation needs two structural operations the query path never
uses: *adding a shard* (a new leaf, with directory splits), and
*bottom-up expansion* -- when Zookeeper reports a bounding key grew, the
leaf is located through a shard-id -> leaf pointer table (searching by
key would be ambiguous under overlap) and the expansion propagates
toward the root.  The paper notes this transiently violates the
containment invariant without affecting correctness; the same holds
here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from ..core.keypolicy import KeyPolicy, make_policy
from ..olap.keys import Box
from .wire import BoundingKey, key_from_wire, key_to_wire

__all__ = ["ShardInfo", "LocalImage"]


@dataclass
class ShardInfo:
    """What the image knows about one shard."""

    shard_id: int
    key: BoundingKey
    worker_id: int
    size: int = 0
    #: residency tier at the owning worker: ``"hot"`` (columns in
    #: memory) or ``"warm"`` (spilled; only the blob + this bounding key
    #: remain).  Routing treats both identically -- a WARM shard is
    #: still searchable through its bounding key and rehydrates on
    #: first touch -- the field exists so operators and policies can
    #: see the tier.
    residency: str = "hot"

    @property
    def box(self) -> Box:
        """Single-box view of the bounding key (MBR of an MDS key)."""
        if isinstance(self.key, Box):
            return self.key
        return self.key.mbr()

    @property
    def primary_worker(self) -> int:
        """Alias making the replication semantics explicit: the image's
        ``worker_id`` always names the shard's *primary*; replicas are
        advertised separately (watermarks under ``/replicas/``) and
        never appear in the system image."""
        return self.worker_id

    def to_wire(self) -> tuple:
        """Serialisable snapshot for the Zookeeper system image."""
        return (
            self.shard_id,
            key_to_wire(self.key),
            self.worker_id,
            self.size,
            self.residency,
        )

    @staticmethod
    def from_wire(t: tuple) -> "ShardInfo":
        # tolerate pre-residency 4-tuples (rolling upgrade / old tests)
        residency = t[4] if len(t) > 4 else "hot"
        return ShardInfo(t[0], key_from_wire(t[1]), t[2], t[3], residency)


class _ImageNode:
    __slots__ = ("key", "parent", "children", "shard")

    def __init__(
        self,
        key: BoundingKey,
        parent: Optional["_ImageNode"] = None,
        shard: Optional[ShardInfo] = None,
    ):
        self.key = key
        self.parent = parent
        self.children: Optional[list["_ImageNode"]] = None if shard else []
        self.shard = shard

    @property
    def is_leaf(self) -> bool:
        return self.shard is not None


class LocalImage:
    """A server's in-memory index over the global shard set."""

    def __init__(
        self,
        num_dims: int,
        fanout: int = 8,
        key_kind: str = "mbr",
        mds_max_intervals: int = 4,
    ):
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.num_dims = num_dims
        self.fanout = fanout
        self.policy: KeyPolicy = make_policy(key_kind, mds_max_intervals)
        self.root = _ImageNode(self.policy.empty(num_dims))
        self._leaves: dict[int, _ImageNode] = {}
        #: shards whose keys grew locally since the last Zookeeper sync
        self.dirty: set[int] = set()
        self.nodes_visited_last = 0

    # -- membership ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._leaves)

    def __contains__(self, shard_id: int) -> bool:
        return shard_id in self._leaves

    def shards(self) -> Iterator[ShardInfo]:
        for leaf in self._leaves.values():
            yield leaf.shard

    def get(self, shard_id: int) -> ShardInfo:
        return self._leaves[shard_id].shard

    # -- structural ops (synchronisation path) ------------------------------

    def add_shard(self, info: ShardInfo) -> None:
        """Insert a new leaf for ``info`` (R-tree-style, splits allowed)."""
        if info.shard_id in self._leaves:
            raise ValueError(f"shard {info.shard_id} already present")
        # Adopt the published key into this image's native kind; the
        # leaf's key *is* the shard's key thereafter, so path expansions
        # are visible through both.
        info.key = self.policy.adopt(info.key)
        leaf = _ImageNode(info.key, shard=info)
        self._leaves[info.shard_id] = leaf
        node = self.root
        while True:
            self.policy.expand(node.key, info.key)
            if not node.children or node.children[0].is_leaf:
                break
            node = node.children[self._least_overlap_child(node, info.key)]
        leaf.parent = node
        node.children.append(leaf)
        self._split_up(node)

    def remove_shard(self, shard_id: int) -> None:
        """Drop a shard's leaf (after a split replaced it, or migration)."""
        leaf = self._leaves.pop(shard_id)
        parent = leaf.parent
        parent.children.remove(leaf)
        # prune empty directory chains (keys are left loose; harmless)
        while parent is not self.root and not parent.children:
            gp = parent.parent
            gp.children.remove(parent)
            parent = gp
        self.dirty.discard(shard_id)

    def update_worker(self, shard_id: int, worker_id: int) -> None:
        self._leaves[shard_id].shard.worker_id = worker_id

    def update_size(self, shard_id: int, size: int) -> None:
        self._leaves[shard_id].shard.size = size

    def update_residency(self, shard_id: int, residency: str) -> None:
        self._leaves[shard_id].shard.residency = residency

    def expand_shard(self, shard_id: int, key: BoundingKey) -> bool:
        """Bottom-up expansion from the leaf pointer table (sync path)."""
        leaf = self._leaves[shard_id]
        grown = self.policy.adopt(key)
        if not self.policy.expand(leaf.key, grown):
            return False
        node = leaf.parent
        while node is not None:
            if not self.policy.expand(node.key, grown):
                break
            node = node.parent
        return True

    # -- operation routing ----------------------------------------------------

    def route_insert(self, coords: np.ndarray) -> ShardInfo:
        """Choose the shard for an insertion; expand keys on the path.

        Descends by least overlap.  Marks the shard dirty when its
        bounding key grows (the server will push the new key to
        Zookeeper at the next sync).
        """
        if not self._leaves:
            raise RuntimeError("image has no shards")
        visited = 1
        node = self.root
        self.policy.expand_point(node.key, coords)
        changed = False
        while not node.is_leaf:
            idx = self._route_child(node, coords)
            node = node.children[idx]
            changed = self.policy.expand_point(node.key, coords)
            visited += 1
        self.nodes_visited_last = visited
        info = node.shard  # node.key is info.key: path expansion included it
        if changed:
            self.dirty.add(info.shard_id)
        info.size += 1
        return info

    def search(self, box: Box) -> list[ShardInfo]:
        """All shards whose bounding key intersects ``box``."""
        out: list[ShardInfo] = []
        visited = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            visited += 1
            if node.is_leaf:
                out.append(node.shard)
                continue
            for c in node.children:
                if self.policy.intersects_box(c.key, box):
                    stack.append(c)
        self.nodes_visited_last = visited
        return out

    # -- internals ---------------------------------------------------------

    def _route_child(self, node: _ImageNode, coords: np.ndarray) -> int:
        children = node.children
        if len(children) == 1:
            return 0
        covering = [
            i
            for i, c in enumerate(children)
            if self.policy.covers_point(c.key, coords)
        ]
        if covering:
            return min(
                covering, key=lambda i: self.policy.log_volume(children[i].key)
            )
        return self._least_overlap_child(node, self.policy.from_point(coords))

    def _least_overlap_child(self, node: _ImageNode, key: BoundingKey) -> int:
        """Least overlap of the expanded child with its siblings' union."""
        children = node.children
        n = len(children)
        if n == 1:
            return 0
        prefix = [self.policy.empty(self.num_dims)]
        for c in children:
            acc = self.policy.copy(prefix[-1])
            self.policy.expand(acc, c.key)
            prefix.append(acc)
        suffix = [self.policy.empty(self.num_dims)]
        for c in reversed(children):
            acc = self.policy.copy(suffix[-1])
            self.policy.expand(acc, c.key)
            suffix.append(acc)
        suffix.reverse()
        best, best_key = 0, (float("inf"), float("inf"))
        for i, c in enumerate(children):
            expanded = self.policy.copy(c.key)
            self.policy.expand(expanded, key)
            others = self.policy.copy(prefix[i])
            self.policy.expand(others, suffix[i + 1])
            ov = self.policy.log_overlap(expanded, others)
            tie = self.policy.log_volume(expanded) - self.policy.log_volume(
                c.key
            )
            if (ov, tie) < best_key:
                best_key = (ov, tie)
                best = i
        return best

    def _split_up(self, node: _ImageNode) -> None:
        """Split directory nodes upward while over fanout."""
        while node is not None and len(node.children) > self.fanout:
            centers = np.array(
                [self.policy.mbr(c.key).center() for c in node.children]
            )
            spans = centers.max(axis=0) - centers.min(axis=0)
            dim = int(np.argmax(spans))
            order = np.argsort(centers[:, dim], kind="stable")
            mid = len(order) // 2
            groups = (
                [node.children[i] for i in order[:mid]],
                [node.children[i] for i in order[mid:]],
            )
            if node.parent is None:
                # root split: root becomes a directory of two new nodes
                new_kids = []
                for grp in groups:
                    sub = _ImageNode(self.policy.empty(self.num_dims), parent=node)
                    sub.children = grp
                    for g in grp:
                        g.parent = sub
                        self.policy.expand(sub.key, g.key)
                    new_kids.append(sub)
                node.children = new_kids
                return
            sibling = _ImageNode(
                self.policy.empty(self.num_dims), parent=node.parent
            )
            sibling.children = groups[1]
            for g in groups[1]:
                g.parent = sibling
                self.policy.expand(sibling.key, g.key)
            node.children = groups[0]
            node.key = self.policy.empty(self.num_dims)
            for g in groups[0]:
                g.parent = node
                self.policy.expand(node.key, g.key)
            node.parent.children.append(sibling)
            node = node.parent

    def validate(self) -> None:
        """Test hook: parent/child links and leaf table consistency."""
        seen: set[int] = set()

        def rec(node: _ImageNode) -> None:
            if node.is_leaf:
                assert self._leaves.get(node.shard.shard_id) is node
                seen.add(node.shard.shard_id)
                return
            for c in node.children:
                assert c.parent is node, "broken parent pointer"
                rec(c)

        rec(self.root)
        assert seen == set(self._leaves), "leaf table out of sync"

"""Cluster-level metrics: throughput, latency, balance, and balancing ops.

Collects exactly what the paper's figures report: per-operation
latencies split by kind and coverage band (Figs 7b, 8b, 9a), completed
operation counts over virtual time (throughput, Figs 7a, 8a), shards
searched per query (Fig 9b), per-worker data sizes over time (Fig 6),
and cumulative split/migration counts (Fig 6, right axis).

Every record also lands in a :class:`~repro.obs.metrics.MetricsRegistry`
(``volap_ops_total``, ``volap_op_latency_seconds``, ``volap_splits_total``,
...).  Each ``ClusterStats`` owns its registry unless one is passed in,
so two clusters in one process never share metric state -- there is
deliberately no module-level cache anywhere in this module (the
analysis helpers ``select()`` / ``degraded()`` recompute from
``self.ops`` on every call).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..obs.metrics import DEFAULT_COUNT_BUCKETS, MetricsRegistry

__all__ = ["OpRecord", "ClusterStats"]


@dataclass
class OpRecord:
    kind: str  # "insert" | "query"
    submit_time: float
    complete_time: float
    coverage: float = float("nan")
    shards_searched: int = 0
    result_count: int = 0
    #: False when the operation failed (retry exhaustion / insert_failed)
    ok: bool = True
    #: achieved coverage fraction: 1.0 for complete answers, < 1.0 when
    #: a query hit its per-worker deadline and returned a partial result
    achieved: float = 1.0
    #: client-side send attempts (1 = no retransmits)
    attempts: int = 1
    #: achieved read staleness (seconds): 0.0 for primary-served
    #: queries, the worst estimated replica lag among the shards a
    #: bounded-staleness query read from a replica
    staleness: float = 0.0
    #: which tier answered a query: "tree" (descent), "rollup"
    #: (server-resident cube slabs), or "hybrid" (cube + tree tail)
    source: str = "tree"

    @property
    def latency(self) -> float:
        return self.complete_time - self.submit_time


class ClusterStats:
    """Accumulates operation records and system snapshots."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        #: per-cluster metrics registry (``cluster.metrics``); always
        #: live, created here unless the caller shares one in
        self.registry = registry if registry is not None else MetricsRegistry()
        self.ops: list[OpRecord] = []
        self.splits = 0
        self.migrations = 0
        #: (time, {worker_id: item_count}) snapshots for Fig 6
        self.worker_sizes: list[tuple[float, dict[int, int]]] = []
        #: (time, kind) of balancing operations
        self.balance_events: list[tuple[float, str]] = []
        #: operations that gave up (insert_failed / retry exhaustion)
        self.failures = 0
        #: (time, worker_id, shards_restored) per declared worker failure
        self.failovers: list[tuple[float, int, int]] = []
        #: (time, shard_id, new_primary_worker) per replica promotion
        self.promotions: list[tuple[float, int, int]] = []

    # -- recording -----------------------------------------------------------

    def record_op(self, rec: OpRecord) -> None:
        self.ops.append(rec)
        if not rec.ok:
            self.failures += 1
        r = self.registry
        r.counter(
            "volap_ops_total", kind=rec.kind, ok=rec.ok
        ).inc()
        r.histogram(
            "volap_op_latency_seconds", kind=rec.kind
        ).observe(rec.latency)
        if rec.attempts > 1:
            r.counter("volap_op_retransmits_total", kind=rec.kind).inc(
                rec.attempts - 1
            )
        if rec.kind == "query":
            if rec.ok and rec.achieved < 1.0:
                r.counter("volap_degraded_queries_total").inc()
            r.histogram(
                "volap_query_shards_searched",
                buckets=DEFAULT_COUNT_BUCKETS,
            ).observe(rec.shards_searched)
            if rec.staleness > 0.0:
                # registered lazily so replication-free runs export the
                # exact metric families they always did
                r.histogram(
                    "volap_read_staleness_seconds",
                    help="achieved staleness of replica-served reads",
                ).observe(rec.staleness)

    def record_failover(self, time: float, worker_id: int, shards: int) -> None:
        self.failovers.append((time, worker_id, shards))
        self.registry.counter("volap_failovers_total").inc()
        self.registry.counter("volap_shards_lost_total").inc(shards)

    def record_promotion(self, time: float, shard_id: int, worker_id: int) -> None:
        """A replica was promoted to primary (metadata-flip failover)."""
        self.promotions.append((time, shard_id, worker_id))
        self.registry.counter("volap_promotions_total").inc()

    def record_split(self, time: float) -> None:
        self.splits += 1
        self.balance_events.append((time, "split"))
        self.registry.counter("volap_splits_total").inc()

    def record_migration(self, time: float) -> None:
        self.migrations += 1
        self.balance_events.append((time, "migration"))
        self.registry.counter("volap_migrations_total").inc()

    def snapshot_workers(self, time: float, sizes: dict[int, int]) -> None:
        self.worker_sizes.append((time, dict(sizes)))
        for wid, items in sizes.items():
            self.registry.gauge("volap_worker_items", worker=wid).set(items)

    # -- analysis -----------------------------------------------------------

    def select(
        self,
        kind: Optional[str] = None,
        coverage_band: Optional[tuple[float, float]] = None,
        since: float = 0.0,
        until: float = float("inf"),
    ) -> list[OpRecord]:
        out = []
        for r in self.ops:
            if kind is not None and r.kind != kind:
                continue
            if coverage_band is not None and not (
                coverage_band[0] <= r.coverage <= coverage_band[1]
            ):
                continue
            if not (since <= r.submit_time <= until):
                continue
            out.append(r)
        return out

    def degraded(
        self, since: float = 0.0, until: float = float("inf")
    ) -> list[OpRecord]:
        """Queries that completed with partial (deadline-bounded) coverage."""
        return [
            r
            for r in self.select(kind="query", since=since, until=until)
            if r.ok and r.achieved < 1.0
        ]

    def throughput(self, records: list[OpRecord]) -> float:
        """Completed operations per virtual second."""
        if not records:
            return 0.0
        t0 = min(r.submit_time for r in records)
        t1 = max(r.complete_time for r in records)
        span = t1 - t0
        return len(records) / span if span > 0 else float("inf")

    def latency_stats(self, records: list[OpRecord]) -> dict[str, float]:
        if not records:
            return {
                "mean": float("nan"),
                "p50": float("nan"),
                "p95": float("nan"),
                "max": float("nan"),
            }
        lat = np.array([r.latency for r in records])
        return {
            "mean": float(lat.mean()),
            "p50": float(np.percentile(lat, 50)),
            "p95": float(np.percentile(lat, 95)),
            "max": float(lat.max()),
        }

    def balance_series(self) -> list[tuple[float, int, int, int]]:
        """(time, min_size, max_size, migrations_so_far) rows for Fig 6."""
        out = []
        mig = 0
        events = sorted(self.balance_events)
        ei = 0
        for t, sizes in self.worker_sizes:
            while ei < len(events) and events[ei][0] <= t:
                if events[ei][1] == "migration":
                    mig += 1
                ei += 1
            if sizes:
                out.append((t, min(sizes.values()), max(sizes.values()), mig))
        return out

"""Zookeeper stand-in: a versioned znode store with watches.

VOLAP keeps the *system image* -- worker/server membership, per-shard
size, bounding box and owning worker -- in Zookeeper, and servers rely
on its watch facility to learn about changes "without wasteful polling"
(paper Section III-B).  This in-process model reproduces the parts the
experiments depend on:

* hierarchical paths with versioned data,
* atomic read/write with simulated request latency,
* one-shot-free persistent watches that notify subscribers after a
  notification delay (watch events are what bounds cross-server
  staleness, so their timing matters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .simclock import SimClock

__all__ = ["ZNode", "Zookeeper"]


@dataclass
class ZNode:
    data: Any = None
    version: int = 0
    children: dict[str, "ZNode"] = field(default_factory=dict)
    #: virtual-time expiry for ephemeral-style nodes (None = persistent)
    expires: Optional[float] = None


class Zookeeper:
    """In-process coordination service with simulated latencies."""

    #: entity name for fault-rule matching (``FaultPlan.isolate("worker-1")``
    #: must also cut that worker's heartbeat writes, which are direct
    #: calls rather than transport messages)
    name = "zookeeper"

    def __init__(
        self,
        clock: SimClock,
        request_latency: float = 500e-6,
        notify_latency: float = 1e-3,
    ):
        self.clock = clock
        self.request_latency = request_latency
        self.notify_latency = notify_latency
        self.root = ZNode()
        # watch registrations: path prefix -> list of callbacks(path, data)
        self._watches: dict[str, list[Callable[[str, Any], None]]] = {}
        self.writes = 0
        self.reads = 0
        self.notifications = 0
        self.expirations = 0

    # -- path helpers -----------------------------------------------------

    @staticmethod
    def _parts(path: str) -> list[str]:
        if not path.startswith("/"):
            raise ValueError(f"path must be absolute: {path!r}")
        return [p for p in path.split("/") if p]

    def _find(self, path: str, create: bool = False) -> Optional[ZNode]:
        node = self.root
        for part in self._parts(path):
            if part not in node.children:
                if not create:
                    return None
                node.children[part] = ZNode()
            node = node.children[part]
        return node

    # -- synchronous core (no latency; used internally and in tests) --------

    def set(self, path: str, data: Any) -> int:
        """Write ``data`` at ``path`` (creating it); returns new version."""
        node = self._find(path, create=True)
        node.data = data
        node.version += 1
        node.expires = None  # a plain write makes the node persistent
        self.writes += 1
        self._fire_watches(path, data)
        return node.version

    def set_ephemeral(self, path: str, data: Any, ttl: float) -> int:
        """Write an ephemeral-style znode that auto-deletes ``ttl``
        seconds from now unless refreshed by another write.

        Models the session-bound ephemeral znodes VOLAP workers use for
        liveness: a crashed worker stops refreshing, the node expires,
        and watchers see a delete event.
        """
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        node = self._find(path, create=True)
        node.data = data
        node.version += 1
        node.expires = self.clock.now + ttl
        self.writes += 1
        version = node.version
        self._fire_watches(path, data)
        self.clock.after(ttl, lambda: self._maybe_expire(path, version))
        return version

    def _maybe_expire(self, path: str, version: int) -> None:
        node = self._find(path)
        if node is None or node.version != version or node.expires is None:
            return  # refreshed, rewritten, or already gone
        if node.expires <= self.clock.now + 1e-12:
            self.expirations += 1
            self.delete(path)

    def get(self, path: str) -> Any:
        self.reads += 1
        node = self._find(path)
        return None if node is None else node.data

    def exists(self, path: str) -> bool:
        return self._find(path) is not None

    def version(self, path: str) -> int:
        node = self._find(path)
        return 0 if node is None else node.version

    def ls(self, path: str) -> list[str]:
        node = self._find(path)
        return sorted(node.children) if node is not None else []

    def delete(self, path: str) -> bool:
        parts = self._parts(path)
        node = self.root
        for part in parts[:-1]:
            node = node.children.get(part)
            if node is None:
                return False
        existed = parts[-1] in node.children
        node.children.pop(parts[-1], None)
        if existed:
            self._fire_watches(path, None)
        return existed

    # -- watches ---------------------------------------------------------

    def watch(self, prefix: str, callback: Callable[[str, Any], None]) -> None:
        """Subscribe to changes under ``prefix`` (persistent watch).

        Callbacks fire ``notify_latency`` after the change, mirroring the
        asynchronous delivery of Zookeeper watch events.
        """
        self._watches.setdefault(prefix, []).append(callback)

    def _fire_watches(self, path: str, data: Any) -> None:
        for prefix, callbacks in self._watches.items():
            if path.startswith(prefix):
                for cb in callbacks:
                    self.notifications += 1
                    self.clock.after(
                        self.notify_latency, lambda cb=cb: cb(path, data)
                    )

    # -- asynchronous API (simulated request latency) -----------------------

    def aset(self, path: str, data: Any, done: Optional[Callable[[int], None]] = None) -> None:
        """Write after the request latency; ``done`` gets the new version."""

        def apply() -> None:
            v = self.set(path, data)
            if done is not None:
                done(v)

        self.clock.after(self.request_latency, apply)

    def aget(self, path: str, done: Callable[[Any], None]) -> None:
        self.clock.after(
            self.request_latency, lambda: done(self.get(path))
        )

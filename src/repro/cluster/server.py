"""Server nodes: request routing, local images, and freshness sync.

Paper Sections III-B/III-C.  Servers own client sessions.  Each keeps a
*local image* (:class:`~repro.cluster.image.LocalImage`) as an
in-memory cache of the Zookeeper system image:

* an **insert** routes through the image to exactly one shard, is
  forwarded to that shard's worker, and the ack flows back to the
  client.  If routing grew a shard's bounding box, the shard is marked
  dirty and the new box is pushed to Zookeeper at the next sync tick
  (every ``sync_period`` seconds -- 3 s in the paper's experiments);
* a **query** collects every shard whose box intersects the query box,
  fans out one message per owning worker, merges the partial
  aggregates, and replies to the client;
* Zookeeper watch events deliver other servers' box expansions
  (applied bottom-up through the leaf-pointer table), new shards from
  splits, shard removals, and migration re-assignments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..core.aggregates import Aggregate
from ..olap.schema import Schema
from .cost import CostModel
from .faults import RetryPolicy
from .image import LocalImage, ShardInfo
from .router import QueryRouter, RollupConfig
from .simclock import SimClock
from .transport import Entity, Message, Transport
from .wire import key_from_wire, key_to_wire
from .zookeeper import Zookeeper

__all__ = ["Server"]


@dataclass
class _PendingQuery:
    token: int
    op_id: int
    reply_to: Entity
    submit_time: float
    agg: Aggregate
    shards_searched: int
    coverage: float
    #: worker_id -> number of shards requested from it, removed as
    #: results arrive; what remains at the deadline is uncovered
    per_worker: dict
    shards_total: int
    #: requested shards a worker answered for but no longer holds
    unresolved: int = 0
    span: object = None  # server.route_query obs span, None when off
    #: worst estimated replica lag among the shards this query read
    #: from a replica; 0.0 when every shard was served by its primary
    staleness: float = 0.0
    #: which tier answered: "tree", "rollup", or "hybrid"
    source: str = "tree"


@dataclass
class _PendingInsert:
    token: int
    op_id: int
    reply_to: Entity
    submit_time: float
    coords: np.ndarray
    measure: float
    retries: int = 0
    span: object = None  # server.route_insert obs span, None when off


class Server(Entity):
    """One server node of the VOLAP cluster."""

    def __init__(
        self,
        server_id: int,
        clock: SimClock,
        transport: Transport,
        zk: Zookeeper,
        schema: Schema,
        workers: dict[int, Entity],
        threads: int = 16,
        sync_period: float = 3.0,
        cost: Optional[CostModel] = None,
        image_fanout: int = 8,
        image_key_kind: str = "mbr",
        retry: Optional[RetryPolicy] = None,
        max_staleness: Optional[float] = None,
        rollup: Optional[RollupConfig] = None,
    ):
        self.server_id = server_id
        self.name = f"server-{server_id}"
        self.clock = clock
        self.transport = transport
        self.zk = zk
        self.schema = schema
        self.workers = workers  # worker_id -> Worker entity
        self.pool = clock.make_pool(threads)
        self.cost = cost if cost is not None else CostModel()
        self.sync_period = sync_period
        self.image = LocalImage(
            schema.num_dims, fanout=image_fanout, key_kind=image_key_kind
        )
        self.retry = retry if retry is not None else RetryPolicy()
        #: cluster-default bounded-staleness budget applied to queries
        #: that do not carry their own ``max_staleness``; ``None``
        #: keeps every read on the primaries
        self.max_staleness = max_staleness
        self.replica_reads = 0
        self._rng = np.random.default_rng(10_000 + server_id)
        self._pending_queries: dict[int, _PendingQuery] = {}
        self._pending_inserts: dict[int, _PendingInsert] = {}
        self._token = 0
        self.inserts_routed = 0
        self.queries_routed = 0
        self.syncs = 0
        self.insert_failures = 0
        self.insert_timeouts = 0
        self.insert_retries = 0
        self.degraded_queries = 0
        #: rollup cache tier + adaptive routing; ``None`` (the default)
        #: keeps the classic tree-only read path with zero added state
        self.router = (
            QueryRouter(self, rollup) if rollup is not None else None
        )
        # subscribe to system image changes
        zk.watch("/shards/", self._on_shard_event)
        zk.watch("/boxes/", self._on_box_event)
        clock.every(sync_period, self.sync_to_zookeeper)

    # -- bootstrap ------------------------------------------------------------

    def load_image(self) -> None:
        """Populate the local image from the current Zookeeper state."""
        for sid in self.zk.ls("/shards"):
            wire = self.zk.get(f"/shards/{sid}")
            if wire is None:
                continue
            info = ShardInfo.from_wire(wire)
            if info.shard_id in self.image:
                self.image.update_worker(info.shard_id, info.worker_id)
                self.image.expand_shard(info.shard_id, info.key)
                self.image.update_residency(info.shard_id, info.residency)
            else:
                self.image.add_shard(info)

    # -- client API (messages) ----------------------------------------------

    def receive(self, msg: Message) -> None:
        handler = getattr(self, f"_on_{msg.kind}", None)
        if handler is None:
            raise ValueError(f"{self.name}: unknown message {msg.kind!r}")
        handler(msg)

    def _next_token(self) -> int:
        self._token += 1
        return (self.server_id << 32) | self._token

    def _finish_span(self, span, **tags) -> None:
        if span is not None and self.transport.obs is not None:
            self.transport.obs.finish_span(span, **tags)

    def _on_client_insert(self, msg: Message) -> None:
        op_id, coords, measure, reply_to = msg.payload
        token = self._next_token()
        span = None
        if self.transport.obs is not None:
            span = self.transport.obs.start_span(
                "server.route_insert", self.name, parent=msg.ctx, op_id=op_id
            )
        self._pending_inserts[token] = _PendingInsert(
            token, op_id, reply_to, self.clock.now, coords, measure, span=span
        )
        self._route_insert(token)
        self._arm_insert_timer(token, self.retry.insert_timeout)

    def _on_client_insert_batch(self, msg: Message) -> None:
        """Batched ingest: one pending insert (with its own token and
        timer) per row, but routing and forwarding are grouped -- rows
        bound for the same worker travel in one ``insert_batch``
        message.  Retries of individual rows fall back to the singleton
        path, so batching never weakens the delivery guarantees."""
        rows, reply_to = msg.payload
        now = self.clock.now
        obs = self.transport.obs
        nodes = 0
        by_worker: dict[int, list[tuple]] = {}
        for op_id, coords, measure, ctx in rows:
            token = self._next_token()
            span = None
            if obs is not None:
                span = obs.start_span(
                    "server.route_insert", self.name, parent=ctx, op_id=op_id
                )
            self._pending_inserts[token] = _PendingInsert(
                token, op_id, reply_to, now, coords, measure, span=span
            )
            info = self.image.route_insert(coords)
            nodes += self.image.nodes_visited_last
            self.inserts_routed += 1
            by_worker.setdefault(info.worker_id, []).append(
                (
                    info.shard_id,
                    coords,
                    measure,
                    token,
                    op_id,
                    span.ctx if span is not None else None,
                )
            )
            self._arm_insert_timer(token, self.retry.insert_timeout)
        service = self.cost.route_time(nodes)

        def forward() -> None:
            for worker_id, entries in by_worker.items():
                self.transport.send(
                    self.workers[worker_id],
                    Message(
                        "insert_batch",
                        (entries, self),
                        sender=self,
                    ),
                )

        self.pool.submit(service, forward)

    def _on_insert_batch_ack(self, msg: Message) -> None:
        """Per-op acks from a batched apply: complete the acked tokens
        (one ``insert_done_batch`` per client), re-route the nacked."""
        tokens, _worker_id, nacked = msg.payload
        done: dict[Entity, list[int]] = {}
        for token in tokens:
            pending = self._pending_inserts.pop(token, None)
            if pending is None:
                continue
            self._finish_span(pending.span, ok=True)
            done.setdefault(pending.reply_to, []).append(pending.op_id)
        for reply_to, op_ids in done.items():
            self.transport.send(
                reply_to,
                Message(
                    "insert_done_batch",
                    (op_ids,),
                    sender=self,
                ),
            )
        for token, _shard_id in nacked:
            self._retry_insert(token, refresh=True)

    def _route_insert(self, token: int) -> None:
        pending = self._pending_inserts.get(token)
        if pending is None:
            return
        info = self.image.route_insert(pending.coords)
        self.inserts_routed += 1
        service = self.cost.route_time(self.image.nodes_visited_last)
        worker = self.workers[info.worker_id]

        ctx = pending.span.ctx if pending.span is not None else None

        def forward() -> None:
            self.transport.send(
                worker,
                Message(
                    "insert",
                    (
                        info.shard_id,
                        pending.coords,
                        pending.measure,
                        token,
                        pending.op_id,
                        self,
                    ),
                    sender=self,
                    ctx=ctx,
                ),
            )

        self.pool.submit(service, forward)

    def _arm_insert_timer(self, token: int, delay: float) -> None:
        pending = self._pending_inserts.get(token)
        if pending is None:
            return
        attempt = pending.retries

        def fire() -> None:
            cur = self._pending_inserts.get(token)
            if cur is None or cur.retries != attempt:
                return  # completed, failed, or already retried
            self.insert_timeouts += 1
            self._retry_insert(token, refresh=False)

        self.clock.after(delay, fire)

    def _retry_insert(self, token: int, refresh: bool) -> None:
        """Shared retry path for nacks (stale route) and timeouts
        (lost message / dead worker): bounded attempts with exponential
        backoff + jitter, then an explicit ``insert_failed``."""
        pending = self._pending_inserts.get(token)
        if pending is None:
            return
        pending.retries += 1
        self.insert_retries += 1
        if pending.retries > self.retry.max_insert_retries:
            self._fail_insert(token)
            return
        delay = self.retry.backoff(pending.retries, self._rng)
        if refresh:
            self.load_image()

        def resend() -> None:
            # the image may have converged during the backoff; re-read
            self.load_image()
            self._route_insert(token)

        self.clock.after(delay, resend)
        self._arm_insert_timer(token, delay + self.retry.insert_timeout)

    def _fail_insert(self, token: int) -> None:
        pending = self._pending_inserts.pop(token, None)
        if pending is None:
            return
        self._finish_span(pending.span, ok=False)
        self.insert_failures += 1
        self.transport.send(
            pending.reply_to,
            Message(
                "insert_failed",
                (pending.op_id, pending.submit_time),
                sender=self,
            ),
        )

    def _on_insert_ack(self, msg: Message) -> None:
        token, _worker_id = msg.payload
        pending = self._pending_inserts.pop(token, None)
        if pending is None:
            return
        self._finish_span(pending.span, ok=True)
        self.transport.send(
            pending.reply_to,
            Message(
                "insert_done", (pending.op_id, pending.submit_time), sender=self
            ),
        )

    def _on_insert_nack(self, msg: Message) -> None:
        """Stale route: refresh from Zookeeper and retry (bounded)."""
        token, _shard_id = msg.payload
        self._retry_insert(token, refresh=True)

    # -- bounded-staleness read routing (replication) --------------------------

    def _replica_lag(
        self, sid: int, wid: int, cur_epoch: int, head, now: float
    ) -> Optional[float]:
        """Estimated staleness of worker ``wid``'s replica of ``sid``,
        or ``None`` when the copy is unusable (stale epoch, dead
        holder, or no watermark yet).

        The watermark ``(epoch, frontier, wm_time, beat_time)`` is what
        the replica piggybacked on its last heartbeat; ``head`` is the
        primary's ``(epoch, head_seq, beat_time)``.  A replica whose
        frontier has caught the head is as fresh as the head beat;
        otherwise it is as stale as its newest applied batch.
        """
        wm = self.zk.get(f"/replicas/{sid}/{wid}")
        if wm is None or wm[0] != cur_epoch:
            return None
        if self.zk.get(f"/heartbeats/{wid}") is None:
            return None
        if head is not None and head[0] == cur_epoch and wm[1] >= head[1]:
            return max(0.0, now - head[2])
        return max(0.0, now - wm[2])

    def _pick_target(
        self, info: ShardInfo, budget: float, now: float
    ) -> tuple[int, float]:
        """Choose which worker serves a shard's read under a staleness
        budget.  The budget is an explicit opt-in to stale reads, so any
        replica whose estimated lag fits takes the read unless the
        primary is strictly less loaded; a dead primary is covered by
        the freshest fitting replica.  Returns ``(worker_id,
        staleness)``."""
        sid = info.shard_id
        primary = info.primary_worker
        cur_epoch = self.zk.get(f"/epochs/{sid}") or 0
        head = self.zk.get(f"/repl/heads/{sid}")
        fitting = []
        for name in self.zk.ls(f"/replicas/{sid}"):
            wid = int(name)
            lag = self._replica_lag(sid, wid, cur_epoch, head, now)
            if lag is None or lag > budget:
                continue
            stats = self.zk.get(f"/stats/workers/{wid}")
            backlog = stats.get("backlog", 0) if stats is not None else 0
            fitting.append((lag, backlog, wid))
        if not fitting:
            return primary, 0.0
        primary_stats = self.zk.get(f"/stats/workers/{primary}")
        if (
            self.zk.get(f"/heartbeats/{primary}") is None
            or primary_stats is None
        ):
            lag, _, wid = min(fitting)  # freshest replica
            return wid, lag
        least = min(fitting, key=lambda t: (t[1], t[0], t[2]))
        if least[1] <= primary_stats.get("backlog", 0):
            return least[2], least[0]
        return primary, 0.0

    def _route_shards(
        self, infos: list[ShardInfo], budget: Optional[float]
    ) -> tuple[dict[int, list[int]], float]:
        """Group a query's shards by serving worker, optionally routing
        through replicas under a staleness ``budget``; returns the
        fan-out map and the worst staleness taken on."""
        by_worker: dict[int, list[int]] = {}
        staleness = 0.0
        now = self.clock.now
        for info in infos:
            if budget is not None:
                wid, lag = self._pick_target(info, budget, now)
                if wid != info.primary_worker:
                    self.replica_reads += 1
                    staleness = max(staleness, lag)
            else:
                wid = info.worker_id
            by_worker.setdefault(wid, []).append(info.shard_id)
        return by_worker, staleness

    def _on_client_query(self, msg: Message) -> None:
        op_id, query, reply_to = msg.payload
        token = self._next_token()
        span = None
        if self.transport.obs is not None:
            span = self.transport.obs.start_span(
                "server.route_query", self.name, parent=msg.ctx, op_id=op_id
            )
        infos = self.image.search(query.box)
        self.queries_routed += 1
        service = self.cost.route_time(self.image.nodes_visited_last)
        if not infos:
            pending = _PendingQuery(
                token, op_id, reply_to, self.clock.now, Aggregate.empty(),
                0, query.coverage, {}, 0, span=span,
            )
            self.pool.submit(
                service, lambda: self._finish_query(pending)
            )
            return
        budget = getattr(query, "max_staleness", None)
        if budget is None:
            budget = self.max_staleness
        plan = (
            self.router.plan(query, infos, self.clock.now)
            if self.router is not None
            else None
        )
        if plan is not None and not plan.stale_infos:
            # pure rollup hit: answered from server-resident cube
            # slabs, no worker fan-out at all -- so no fan-out planning
            # cost either, just the image probe plus the hit itself
            # (``rollup_hit_base`` covers dispatch + cube match +
            # freshness scan)
            pending = _PendingQuery(
                token, op_id, reply_to, self.clock.now, plan.agg,
                plan.cube_served, query.coverage, {}, len(infos),
                span=span, staleness=plan.staleness, source="rollup",
            )
            self.pool.submit(
                self.cost.route_node * self.image.nodes_visited_last
                + self.cost.rollup_hit_time(plan.cells),
                lambda: self._finish_query(pending),
            )
            return
        shards_total = len(infos)
        if plan is not None:
            # hybrid: cube slabs cover the fresh shards; only the
            # stale/unsynced tail goes down the tree path
            infos = plan.stale_infos
            service += self.cost.rollup_hit_time(plan.cells)
        by_worker, staleness = self._route_shards(infos, budget)
        pending = _PendingQuery(
            token,
            op_id,
            reply_to,
            self.clock.now,
            plan.agg if plan is not None else Aggregate.empty(),
            plan.cube_served if plan is not None else 0,
            query.coverage,
            {wid: len(sids) for wid, sids in by_worker.items()},
            shards_total,
            span=span,
            staleness=max(
                staleness, plan.staleness if plan is not None else 0.0
            ),
            source="hybrid" if plan is not None else "tree",
        )
        self._pending_queries[token] = pending
        box_t = query.box.to_tuple()
        ctx = span.ctx if span is not None else None

        def fan_out() -> None:
            for worker_id, shard_ids in by_worker.items():
                self.transport.send(
                    self.workers[worker_id],
                    Message(
                        "query",
                        (token, shard_ids, box_t, self),
                        sender=self,
                        ctx=ctx,
                    ),
                )

        self.pool.submit(service, fan_out)
        self.clock.after(
            self.retry.query_deadline, lambda: self._query_deadline(token)
        )

    def _on_client_query_batch(self, msg: Message) -> None:
        """Batched queries: one pending query (with its own token,
        deadline, and degraded-coverage accounting) per row, but the
        fan-out is grouped -- all (box, shard-list) pairs bound for the
        same worker travel in one ``query_batch`` message.  Replies are
        per-op ``query_done`` messages, so ``ClusterStats`` records
        each logical query exactly as on the singleton path."""
        rows, reply_to = msg.payload
        now = self.clock.now
        obs = self.transport.obs
        nodes = 0
        routed_rows = 0  # rows that reached the fan-out planner
        hit_service = 0.0
        finishes: list[_PendingQuery] = []
        by_worker: dict[int, list[tuple]] = {}
        for op_id, query, ctx in rows:
            token = self._next_token()
            span = None
            if obs is not None:
                span = obs.start_span(
                    "server.route_query",
                    self.name,
                    parent=ctx,
                    op_id=op_id,
                    batched=True,
                )
            infos = self.image.search(query.box)
            visited = self.image.nodes_visited_last
            self.queries_routed += 1
            if not infos:
                nodes += visited
                routed_rows += 1
                finishes.append(
                    _PendingQuery(
                        token, op_id, reply_to, now, Aggregate.empty(),
                        0, query.coverage, {}, 0, span=span,
                    )
                )
                continue
            budget = getattr(query, "max_staleness", None)
            if budget is None:
                budget = self.max_staleness
            plan = (
                self.router.plan(query, infos, now)
                if self.router is not None
                else None
            )
            if plan is not None and not plan.stale_infos:
                # pure hit: no fan-out planning, just the image probe
                # and the slab slice
                hit_service += (
                    self.cost.route_node * visited
                    + self.cost.rollup_hit_time(plan.cells)
                )
                finishes.append(
                    _PendingQuery(
                        token, op_id, reply_to, now, plan.agg,
                        plan.cube_served, query.coverage, {}, len(infos),
                        span=span, staleness=plan.staleness,
                        source="rollup",
                    )
                )
                continue
            nodes += visited
            routed_rows += 1
            shards_total = len(infos)
            if plan is not None:
                infos = plan.stale_infos
                hit_service += self.cost.rollup_hit_time(plan.cells)
            grouped, staleness = self._route_shards(infos, budget)
            pending = _PendingQuery(
                token,
                op_id,
                reply_to,
                now,
                plan.agg if plan is not None else Aggregate.empty(),
                plan.cube_served if plan is not None else 0,
                query.coverage,
                {wid: len(sids) for wid, sids in grouped.items()},
                shards_total,
                span=span,
                staleness=max(
                    staleness, plan.staleness if plan is not None else 0.0
                ),
                source="hybrid" if plan is not None else "tree",
            )
            self._pending_queries[token] = pending
            box_t = query.box.to_tuple()
            sctx = span.ctx if span is not None else None
            for worker_id, shard_ids in grouped.items():
                by_worker.setdefault(worker_id, []).append(
                    (token, shard_ids, box_t, sctx)
                )
            self.clock.after(
                self.retry.query_deadline,
                lambda token=token: self._query_deadline(token),
            )
        service = (
            self.cost.route_time(nodes) if routed_rows else 0.0
        ) + hit_service

        def fan_out() -> None:
            for worker_id, entries in by_worker.items():
                self.transport.send(
                    self.workers[worker_id],
                    Message(
                        "query_batch",
                        (entries, self),
                        sender=self,
                    ),
                )
            for pending in finishes:
                self._finish_query(pending)

        self.pool.submit(service, fan_out)

    def _on_query_result(self, msg: Message) -> None:
        token, agg_t, searched, worker_id, unresolved = msg.payload
        self._apply_query_result(token, agg_t, searched, worker_id, unresolved)

    def _on_query_result_batch(self, msg: Message) -> None:
        """Per-op partial results from a batched worker execution."""
        replies, worker_id = msg.payload
        for token, agg_t, searched, missing in replies:
            self._apply_query_result(token, agg_t, searched, worker_id, missing)

    def _apply_query_result(
        self,
        token: int,
        agg_t: tuple,
        searched: int,
        worker_id: int,
        unresolved: int,
    ) -> None:
        pending = self._pending_queries.get(token)
        if pending is None:
            return  # finished, or deadline already returned a partial
        if pending.per_worker.pop(worker_id, None) is None:
            return  # duplicated result: this worker already counted
        pending.agg.merge(Aggregate(*agg_t))
        pending.shards_searched += searched
        pending.unresolved += unresolved
        if not pending.per_worker:
            del self._pending_queries[token]
            service = self.cost.merge_time(pending.shards_searched)
            achieved = self._achieved(pending)
            if achieved < 1.0:
                self.degraded_queries += 1
            self.pool.submit(
                service, lambda: self._finish_query(pending, achieved)
            )

    def _achieved(self, pending: _PendingQuery, at_deadline: bool = False) -> float:
        missing = pending.unresolved
        if at_deadline:
            missing += sum(pending.per_worker.values())
        if not pending.shards_total or missing <= 0:
            return 1.0
        return max(0.0, 1.0 - missing / pending.shards_total)

    def _query_deadline(self, token: int) -> None:
        """Per-request deadline: answer with whatever arrived rather
        than hang on a slow, partitioned, or dead worker."""
        pending = self._pending_queries.pop(token, None)
        if pending is None:
            return
        self.degraded_queries += 1
        achieved = self._achieved(pending, at_deadline=True)
        service = self.cost.merge_time(max(1, pending.shards_searched))
        self.pool.submit(
            service, lambda: self._finish_query(pending, achieved)
        )

    def _finish_query(self, pending: _PendingQuery, achieved: float = 1.0) -> None:
        self._finish_span(
            pending.span,
            achieved=achieved,
            shards_searched=pending.shards_searched,
        )
        self.transport.send(
            pending.reply_to,
            Message(
                "query_done",
                (
                    pending.op_id,
                    pending.submit_time,
                    pending.agg,
                    pending.shards_searched,
                    pending.coverage,
                    achieved,
                    pending.staleness,
                    pending.source,
                ),
                sender=self,
            ),
        )

    # -- rollup tier stream plumbing ------------------------------------------

    def _on_replica_batch(self, msg: Message) -> None:
        """Insert-stream batch for the rollup tier (the server is a
        stream subscriber exactly like a replica)."""
        if self.router is not None:
            self.router.on_replica_batch(msg)
            return
        # no tier: tell the primary to stop streaming at us
        primary = msg.payload[5]
        self.transport.send(
            primary,
            Message(
                "replica_remove",
                (msg.payload[0], -(self.server_id + 1)),
                sender=self,
            ),
        )

    def _on_rollup_cells(self, msg: Message) -> None:
        if self.router is not None:
            self.router.on_rollup_cells(msg)

    def _on_rollup_sync_failed(self, msg: Message) -> None:
        if self.router is not None:
            self.router.on_rollup_sync_failed(msg)

    # -- synchronisation (paper III-B / IV-F) ---------------------------------

    def sync_to_zookeeper(self) -> None:
        """Push dirty bounding boxes to the global image."""
        if not self.image.dirty:
            return
        self.syncs += 1
        dirty = list(self.image.dirty)
        self.image.dirty.clear()
        for sid in dirty:
            if sid in self.image:
                self.zk.aset(
                    f"/boxes/{sid}", key_to_wire(self.image.get(sid).key)
                )

    def _on_box_event(self, path: str, data: Any) -> None:
        if data is None:
            return
        sid = int(path.rsplit("/", 1)[1])
        if sid in self.image:
            self.image.expand_shard(sid, key_from_wire(data))

    def _on_shard_event(self, path: str, data: Any) -> None:
        sid = int(path.rsplit("/", 1)[1])
        if data is None:
            if sid in self.image:
                self.image.remove_shard(sid)
            if self.router is not None:
                self.router.on_shard_event(sid, None)
            return
        info = ShardInfo.from_wire(data)
        if self.router is not None:
            self.router.on_shard_event(sid, info)
        if sid in self.image:
            self.image.update_worker(sid, info.worker_id)
            self.image.update_size(sid, info.size)
            self.image.expand_shard(sid, info.key)
            self.image.update_residency(sid, info.residency)
        else:
            self.image.add_shard(info)

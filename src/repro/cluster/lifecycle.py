"""Shard-operation lifecycle: one state machine for every reorganisation.

The paper's load balancer (Section III-E) keeps the system serving
inserts and queries *while* shards split, migrate, and restore.  Doing
that safely means a lot of bookkeeping -- which shard is busy, which op
owns it, when to give up, what to unwind -- and before this module that
bookkeeping was spread over parallel dicts and ad-hoc timer closures in
the manager.  Here it is one explicit machine:

::

    PLANNED --> TRANSFERRING --> INSTALLING --> CUTOVER --> DONE
        \\            |               |             |
         \\           v               v             v
          +------> ABORTED  /  TIMED_OUT  (terminal failures)

* ``PLANNED``: the op was admitted (shard not busy, in-flight budget
  available), its give-up timer is armed and its ``manager.<kind>``
  obs span is open.
* ``TRANSFERRING``: the request message left the manager; the owning
  worker is splitting / serializing / streaming the shard while its
  insertion queue absorbs new items.
* ``INSTALLING`` / ``CUTOVER``: worker-side phases (deserialize at the
  destination; mapping-table / Zookeeper update and queue hand-off) --
  tracked by :class:`~repro.cluster.worker.ShardTransfer` and surfaced
  here so both sides speak the same state names.
* ``DONE`` / ``ABORTED`` / ``TIMED_OUT``: terminal.  ``ABORTED`` covers
  explicit failure acks (``split_failed`` / ``migrate_failed``);
  ``TIMED_OUT`` is the give-up timer, which also triggers the unwind
  side effects (``migrate_abort`` to the frozen source, restore
  re-issue) through the machine's ``on_timeout`` hook.

The machine owns epochs, timeouts, kind-matched completion (a stale
``split_done`` can never release a shard that is busy with a restore),
three separate in-flight budgets (``max_inflight`` for
splits+migrations, ``max_inflight_restores`` for failover restores and
replica promotions, ``max_inflight_replications`` for replica
placement), span open/close, and
per-transition counters (``volap_lifecycle_transitions_total``).
Everything is deterministic and driven by the simulation clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = [
    "PLANNED",
    "TRANSFERRING",
    "INSTALLING",
    "CUTOVER",
    "DONE",
    "ABORTED",
    "TIMED_OUT",
    "TERMINAL_STATES",
    "ShardOp",
    "ShardOpMachine",
]

#: lifecycle states (module constants, not an Enum, so they compare and
#: serialize as plain strings on the wire and in metrics labels)
PLANNED = "planned"
TRANSFERRING = "transferring"
INSTALLING = "installing"
CUTOVER = "cutover"
DONE = "done"
ABORTED = "aborted"
TIMED_OUT = "timed_out"

TERMINAL_STATES = frozenset({DONE, ABORTED, TIMED_OUT})

#: legal transitions (documented in docs/protocols.md); anything else
#: is a programming error and raises
_TRANSITIONS = {
    PLANNED: {TRANSFERRING, ABORTED, TIMED_OUT},
    TRANSFERRING: {INSTALLING, CUTOVER, DONE, ABORTED, TIMED_OUT},
    INSTALLING: {CUTOVER, DONE, ABORTED, TIMED_OUT},
    CUTOVER: {DONE, ABORTED, TIMED_OUT},
}

#: which budget each op kind draws from.  Replica placement
#: ("replicate") has its own pool so seeding K replicas per shard never
#: starves splits or failover restores; promotion ("promote") shares the
#: restore pool because both are the failover path -- a mass failure
#: must not run more heal operations at once than the restore budget
#: allows, whichever mechanism each shard uses.
_BUDGET = {
    "split": "balance",
    "migrate": "balance",
    "restore": "restore",
    "replicate": "replica",
    "promote": "restore",
    # residency ops (spill / rehydrate) get their own pool: memory
    # pressure relief must never be starved by -- or starve -- balance
    # migrations or failover restores
    "spill": "residency",
    "rehydrate": "residency",
}


@dataclass
class ShardOp:
    """One in-flight shard reorganisation (split / migrate / restore)."""

    kind: str
    shard_id: int
    epoch: int
    started_at: float
    state: str = PLANNED
    #: source worker id (migrations: where the frozen shard lives)
    src: Optional[int] = None
    #: destination worker id (migrations / restores)
    dst: Optional[int] = None
    #: open ``manager.<kind>`` obs span, or ``None`` when tracing is off
    span: object = None
    #: (virtual time, state) rows, ``PLANNED`` first
    history: list = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


class ShardOpMachine:
    """Owns every in-flight shard op for one manager.

    The manager *decides* (policy) and *speaks the protocol* (messages);
    this machine tracks everything in between: admission against the
    per-kind budgets, the one-op-per-shard busy invariant, the give-up
    timer, kind-matched release, and obs span lifecycles.
    """

    def __init__(
        self,
        clock,
        transport,
        registry=None,
        entity_name: str = "manager",
    ):
        self.clock = clock
        self.transport = transport
        #: MetricsRegistry fed ``volap_lifecycle_transitions_total``
        #: rows; ``None`` disables the counters
        self.registry = registry
        self.entity_name = entity_name
        #: shard id -> its single active op (the busy map)
        self.ops: dict[int, ShardOp] = {}
        #: in-flight budgets, set by the owner (manager) from its policy
        self.max_inflight = 4
        self.max_inflight_restores = 8
        self.max_inflight_replications = 8
        self.max_inflight_residency = 8
        #: give-up timer duration (virtual seconds)
        self.op_timeout = 10.0
        #: called with the op after a timeout is recorded, for protocol
        #: side effects (abort message, restore re-issue)
        self.on_timeout: Optional[Callable[[ShardOp], None]] = None
        self._epoch = 0
        self._inflight = {
            "balance": 0, "restore": 0, "replica": 0, "residency": 0,
        }
        self.started = {
            "split": 0, "migrate": 0, "restore": 0,
            "replicate": 0, "promote": 0,
            "spill": 0, "rehydrate": 0,
        }
        self.timed_out = 0
        #: every op ever admitted, in admission order (terminal ops
        #: stay here for the invariant tests; the busy map does not)
        self.log: list[ShardOp] = []

    # -- introspection -----------------------------------------------------

    def busy(self, shard_id: int) -> bool:
        return shard_id in self.ops

    def active(self, shard_id: int) -> Optional[ShardOp]:
        return self.ops.get(shard_id)

    def busy_shards(self) -> frozenset:
        return frozenset(self.ops)

    @property
    def balance_inflight(self) -> int:
        """Splits + migrations currently in flight."""
        return self._inflight["balance"]

    @property
    def restore_inflight(self) -> int:
        return self._inflight["restore"]

    @property
    def replica_inflight(self) -> int:
        return self._inflight["replica"]

    @property
    def residency_inflight(self) -> int:
        """Spills + rehydrates currently in flight."""
        return self._inflight["residency"]

    def quiescent(self) -> bool:
        return not self.ops

    # -- admission ---------------------------------------------------------

    def admit(
        self,
        kind: str,
        shard_id: int,
        src: Optional[int] = None,
        dst: Optional[int] = None,
    ) -> Optional[ShardOp]:
        """Open an op: busy check, budget check, timer, span.

        Returns ``None`` (and changes nothing) when the shard already
        has an active op or the kind's in-flight budget is exhausted.
        The caller sends the protocol message and should then call
        :meth:`dispatched`.
        """
        if shard_id in self.ops:
            return None
        pool = _BUDGET[kind]
        limit = {
            "balance": self.max_inflight,
            "restore": self.max_inflight_restores,
            "replica": self.max_inflight_replications,
            "residency": self.max_inflight_residency,
        }[pool]
        if self._inflight[pool] >= limit:
            return None
        self._epoch += 1
        op = ShardOp(
            kind=kind,
            shard_id=shard_id,
            epoch=self._epoch,
            started_at=self.clock.now,
            src=src,
            dst=dst,
        )
        self.ops[shard_id] = op
        self._record(op, PLANNED)
        # the give-up timer is armed before any message is sent, exactly
        # as the old inline closures did (scheduling order matters for
        # deterministic replays)
        self.clock.after(self.op_timeout, lambda: self._fire_timeout(op))
        self._inflight[pool] += 1
        self.started[kind] += 1
        if self.transport.obs is not None:
            op.span = self.transport.obs.start_span(
                f"manager.{kind}", self.entity_name, shard=shard_id
            )
        return op

    def dispatched(self, shard_id: int) -> None:
        """The request message left the manager -> ``TRANSFERRING``."""
        op = self.ops.get(shard_id)
        if op is not None and op.state == PLANNED:
            self._transition(op, TRANSFERRING)

    def advance(self, shard_id: int, state: str) -> None:
        """Record a worker-reported intermediate phase (``INSTALLING``
        or ``CUTOVER``) on the active op; no-op if none is active."""
        op = self.ops.get(shard_id)
        if op is not None and state in _TRANSITIONS.get(op.state, ()):
            self._transition(op, state)

    # -- completion --------------------------------------------------------

    def complete(
        self, shard_id: int, kind: str, ok: bool = True, **span_tags
    ) -> bool:
        """Kind-matched release of the shard's active op.

        Returns ``True`` iff an op of exactly ``kind`` was active: a
        stale or duplicated ``*_done`` whose op already timed out -- or
        whose shard is now busy with a *different* kind of op -- is
        ignored, releasing nothing and closing no span.
        """
        op = self.ops.get(shard_id)
        if op is None or op.kind != kind:
            return False
        del self.ops[shard_id]
        self._inflight[_BUDGET[kind]] -= 1
        self._transition(op, DONE if ok else ABORTED)
        if op.span is not None and self.transport.obs is not None:
            self.transport.obs.finish_span(op.span, ok=ok, **span_tags)
        return True

    def _fire_timeout(self, op: ShardOp) -> None:
        if self.ops.get(op.shard_id) is not op:
            return  # completed (or superseded) in time
        del self.ops[op.shard_id]
        self._transition(op, TIMED_OUT)
        if op.span is not None and self.transport.obs is not None:
            self.transport.obs.finish_span(op.span, ok=False, timeout=True)
        self.timed_out += 1
        self._inflight[_BUDGET[op.kind]] -= 1
        if self.on_timeout is not None:
            self.on_timeout(op)

    # -- transition recording ----------------------------------------------

    def _record(self, op: ShardOp, state: str) -> None:
        op.state = state
        op.history.append((self.clock.now, state))
        if state == PLANNED:
            self.log.append(op)
        if self.registry is not None:
            self.registry.counter(
                "volap_lifecycle_transitions_total", kind=op.kind, state=state
            ).inc()

    def _transition(self, op: ShardOp, state: str) -> None:
        allowed = _TRANSITIONS.get(op.state, frozenset())
        if state not in allowed:
            raise ValueError(
                f"illegal lifecycle transition {op.state!r} -> {state!r} "
                f"for {op.kind} of shard {op.shard_id}"
            )
        self._record(op, state)

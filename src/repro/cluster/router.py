"""QueryRouter: the server-side rollup tier and adaptive read routing.

Each server owns one router (when ``ClusterConfig.rollup`` is set; the
default ``None`` keeps every query on the classic tree path with zero
added state or events).  The router maintains a
:class:`~repro.olap.rollup_store.RollupStore` of materialized cubes and
answers eligible queries straight from server memory -- no worker
fan-out at all -- falling back per *shard* to the tree when a shard's
cube data is missing or too stale for the query's budget ("hybrid").

Freshness reuses the PR 6 replication machinery wholesale.  The router
subscribes to a shard's acknowledged insert stream by registering as a
peer on the primary's ``_repl`` state (its subscriber id is
``-(server_id + 1)``, a namespace real workers never use, and it writes
no ``/replicas`` znodes, so manager pruning and replica read routing
never see it).  The primary's existing seq-numbered ``replica_batch``
messages, cumulative ``replica_ack`` trimming, 0.1 s retransmits, and
``/repl/heads`` beacons all apply unchanged; per-shard staleness is
computed exactly like a replica's (``now - wm_time``, or ``now -
head beat`` once the frontier has caught the head), and epochs fence
streams across promote/restore just as they fence replicas.

Seeding a cube is a ``rollup_sync`` round trip: the worker registers
the subscriber at its current stream head, folds the shard's rows into
one dense slab per requested cube key, and replies ``rollup_cells``
carrying ``(epoch, head, slabs)``.  Batches that arrive while a sync is
in flight are retained in a bounded tail and replayed over the
freshly installed slab, so the slab lands exactly contiguous with the
live stream -- a torn join (tail overflow, stale epoch) just drops the
slab and re-requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.aggregates import Aggregate
from ..olap.keys import Box
from ..olap.rollup import CubeKey, accumulate_cells, cube_candidate
from ..olap.rollup_store import RollupStore
from .transport import Message

__all__ = ["RollupConfig", "QueryResult", "RoutePlan", "QueryRouter"]


@dataclass(frozen=True)
class RollupConfig:
    """Tuning of the per-server rollup tier."""

    #: resident-bytes envelope for all cube slabs on one server
    budget_bytes: int = 32 << 20
    #: refuse cubes with more cells than this (a cube approaching the
    #: raw data size stops being a summary)
    max_cells: int = 1 << 16
    #: decayed misses for one candidate key before it is materialized
    admit_after: int = 2
    #: materialize cubes on demand; off = only explicit materialize()
    auto_admit: bool = True
    #: demand/hit decay rate (per virtual second, halving exponent)
    decay: float = 0.1
    #: re-request a rollup_sync that got no reply after this long
    sync_timeout: float = 0.5
    #: period of the reconcile tick (sync scheduling, stream teardown)
    reconcile_period: float = 0.25
    #: max stream batches retained for replay while a sync is in
    #: flight; overflow tears the join and the sync is re-requested
    tail_limit: int = 512


@dataclass
class QueryResult:
    """What ``cluster.execute`` returns per query."""

    value: Aggregate
    #: achieved coverage fraction (1.0 = complete answer)
    coverage: float
    #: achieved read staleness (seconds; 0.0 = primary-fresh)
    staleness: float
    #: which tier answered: "tree", "rollup", or "hybrid"
    source: str
    shards_searched: int
    op_id: int = -1


@dataclass
class RoutePlan:
    """A routing decision: the cube-served part of a query's answer
    plus the shards that still need the tree path."""

    source: str  # "rollup" (all shards cube-served) | "hybrid"
    agg: Aggregate
    staleness: float
    #: total cube cells sliced (drives the hit's service time)
    cells: int
    #: shards whose cube data is missing/too stale: tree fan-out
    stale_infos: list = field(default_factory=list)
    #: shards answered from cube slabs
    cube_served: int = 0


def _rows_to_arrays(rows: list) -> tuple[np.ndarray, np.ndarray]:
    coords = np.stack([r[0] for r in rows]).astype(np.int64, copy=False)
    measures = np.asarray([r[1] for r in rows], dtype=np.float64)
    return coords, measures


class QueryRouter:
    """Rollup tier of one server: cube store, stream state, routing."""

    def __init__(self, server, config: RollupConfig):
        self.server = server
        self.cfg = config
        self.store = RollupStore(
            server.schema,
            budget_bytes=config.budget_bytes,
            max_cells=config.max_cells,
            admit_after=config.admit_after,
            decay=config.decay,
        )
        #: stream-peer id on the primaries; negative so it can never
        #: collide with a real worker id
        self.sub_id = -(server.server_id + 1)
        #: shard id -> stream state, mirroring the worker replica side:
        #: {"epoch" (None until seeded), "frontier", "applied",
        #:  "pending_t", "wm_time", "owner", "tail"}
        self._streams: dict[int, dict] = {}
        #: shard id -> {"keys": set[CubeKey], "sent": float} syncs in
        #: flight (their presence switches on tail retention)
        self._pending_sync: dict[int, dict] = {}
        #: cluster metrics registry, shared in by the cluster wiring;
        #: None (standalone servers) keeps counters local-only
        self.registry = None
        self.hits = {"rollup": 0, "hybrid": 0}
        self.misses = {"no_cube": 0, "stale": 0}
        self.sync_failures = 0
        self.rows_applied = 0
        self.batches_applied = 0
        self._evictions_seen = 0
        lo = np.zeros(server.schema.num_dims, dtype=np.int64)
        self._full_box = Box(lo, server.schema.leaf_limits.copy(), copy=False)
        server.clock.every(config.reconcile_period, self.reconcile)

    # -- metrics ------------------------------------------------------------

    def _count(self, name: str, **labels) -> None:
        if self.registry is not None:
            self.registry.counter(
                name, server=self.server.server_id, **labels
            ).inc()

    def _flush_evictions(self) -> None:
        new = self.store.evictions - self._evictions_seen
        self._evictions_seen = self.store.evictions
        for _ in range(new):
            self._count("volap_rollup_evictions_total")

    # -- staleness ----------------------------------------------------------

    def shard_lag(self, cube, info, now: float) -> Optional[float]:
        """Estimated staleness of the cube's view of one shard, or
        ``None`` when it cannot be cube-served at all (no slab, torn or
        unseeded stream, owner moved, epoch fenced)."""
        sid = info.shard_id
        if sid not in cube.slabs:
            return None
        st = self._streams.get(sid)
        if st is None or st["epoch"] is None:
            return None
        if st["owner"] is not None and st["owner"] != info.worker_id:
            return None
        zk = self.server.zk
        cur_epoch = zk.get(f"/epochs/{sid}") or 0
        if st["epoch"] != cur_epoch:
            return None
        head = zk.get(f"/repl/heads/{sid}")
        if (
            head is not None
            and head[0] == cur_epoch
            and st["frontier"] >= head[1]
        ):
            return max(0.0, now - head[2])
        return max(0.0, now - st["wm_time"])

    def max_lag(self, now: float) -> float:
        """Worst current stream lag (the staleness-lag gauge)."""
        worst = 0.0
        for sid, st in self._streams.items():
            if st["epoch"] is None:
                continue
            head = self.server.zk.get(f"/repl/heads/{sid}")
            if (
                head is not None
                and head[0] == st["epoch"]
                and st["frontier"] >= head[1]
            ):
                worst = max(worst, now - head[2])
            else:
                worst = max(worst, now - st["wm_time"])
        return max(0.0, worst)

    # -- routing ------------------------------------------------------------

    def plan(self, query, infos: list, now: float) -> Optional[RoutePlan]:
        """Decide how to serve ``query`` over ``infos``.

        ``None`` means the classic tree path.  Budget-less queries
        (no per-query ``max_staleness``, no server default) are *never*
        routed through cubes unless ``routing="rollup"`` forces it:
        with no staleness budget the caller asked for primary-fresh
        data, and the tree path is the only source that guarantees it.
        """
        routing = getattr(query, "routing", "auto") or "auto"
        if routing == "tree":
            return None
        budget = getattr(query, "max_staleness", None)
        if budget is None:
            budget = self.server.max_staleness
        if routing == "rollup":
            budget = float("inf")  # forced: serve from cubes regardless
        elif budget is None:
            return None
        m = self.store.match(query.box)
        if m is None:
            self.misses["no_cube"] += 1
            self._count("volap_rollup_misses_total", reason="no_cube")
            if self.cfg.auto_admit:
                self._note_demand(query.box, now, len(infos))
            return None
        cube, ranges = m
        fresh: list[int] = []
        stale_infos: list = []
        staleness = 0.0
        for info in infos:
            lag = self.shard_lag(cube, info, now)
            if lag is None or lag > budget:
                stale_infos.append(info)
            else:
                fresh.append(info.shard_id)
                staleness = max(staleness, lag)
        if not fresh:
            self.misses["stale"] += 1
            self._count("volap_rollup_misses_total", reason="stale")
            return None
        agg, missing = self.store.cube_answer(cube, ranges, fresh)
        if missing:  # pragma: no cover - shard_lag already requires slabs
            by_sid = {i.shard_id: i for i in infos}
            stale_infos.extend(by_sid[s] for s in missing)
        cells = 1
        for lo, hi in ranges:
            cells *= hi - lo + 1
        self.store.touch(cube.key, now)
        source = "hybrid" if stale_infos else "rollup"
        self.hits[source] += 1
        self._count("volap_rollup_hits_total", source=source)
        return RoutePlan(
            source,
            agg,
            staleness,
            cells * len(fresh),
            stale_infos,
            len(fresh),
        )

    def _note_demand(self, box: Box, now: float, shard_count: int) -> None:
        key = cube_candidate(self.server.schema, box)
        if not self.store.admissible(key):
            return
        if self.store.note_miss(key, now):
            self.materialize(key, shard_count=shard_count)

    def materialize(self, key: CubeKey, shard_count: int = 0) -> bool:
        """Admit ``key`` (evicting as needed) and kick off its shard
        syncs; also the test/bench hook for explicit pinning."""
        now = self.server.clock.now
        if shard_count <= 0:
            shard_count = max(1, len(self.server.image.search(self._full_box)))
        cube = self.store.admit(key, now, shard_count=shard_count)
        self._flush_evictions()
        if cube is None:
            return False
        self.reconcile()
        return True

    # -- stream plumbing ----------------------------------------------------

    def _stream_stub(self, now: float) -> dict:
        return {
            "epoch": None,
            "frontier": 0,
            "applied": set(),
            "pending_t": {},
            "wm_time": now,
            "owner": None,
            "tail": {},
        }

    def _reset_stream(self, sid: int) -> None:
        """Tear a shard's stream down to the unseeded stub and drop its
        slabs: the next reconcile re-syncs from the current owner."""
        self._streams[sid] = self._stream_stub(self.server.clock.now)
        self._pending_sync.pop(sid, None)
        self.store.drop_shard(sid)

    def _drop_shard(self, sid: int) -> None:
        st = self._streams.pop(sid, None)
        self._pending_sync.pop(sid, None)
        self.store.drop_shard(sid)
        if st is not None and st["owner"] is not None:
            worker = self.server.workers.get(st["owner"])
            if worker is not None:
                self.server.transport.send(
                    worker,
                    Message(
                        "replica_remove",
                        (sid, self.sub_id),
                        sender=self.server,
                    ),
                )

    def on_shard_event(self, sid: int, info) -> None:
        """Image watch hook (called by the server's ``/shards`` watch):
        a removed shard drops its stream and slabs immediately; a new
        or re-homed shard is left to the reconcile tick."""
        if info is None:
            if sid in self._streams or sid in self.store.shard_ids():
                self._drop_shard(sid)
            return
        st = self._streams.get(sid)
        if (
            st is not None
            and st["owner"] is not None
            and st["owner"] != info.worker_id
        ):
            # migrated or promoted away: the old stream is dead and the
            # new owner's store may include rows it never carried
            self._reset_stream(sid)

    def reconcile(self) -> None:
        """Periodic truth-sync: request slabs every cube is missing,
        re-request timed-out syncs, fence moved epochs, and tear down
        streams for shards (or cubes) that no longer exist."""
        now = self.server.clock.now
        zk = self.server.zk
        if not self.store.cubes:
            for sid in list(self._streams):
                self._drop_shard(sid)
            return
        infos = {
            i.shard_id: i for i in self.server.image.search(self._full_box)
        }
        for sid in list(self._streams):
            if sid not in infos:
                self._drop_shard(sid)
        for sid, info in infos.items():
            st = self._streams.get(sid)
            if st is not None and st["epoch"] is not None:
                if st["owner"] != info.worker_id:
                    self._reset_stream(sid)
                    st = self._streams[sid]
                elif st["epoch"] != (zk.get(f"/epochs/{sid}") or 0):
                    self._reset_stream(sid)
                    st = self._streams[sid]
            pending = self._pending_sync.get(sid)
            if pending is not None and now - pending["sent"] < self.cfg.sync_timeout:
                continue
            needed = {
                key
                for key, cube in self.store.cubes.items()
                if sid not in cube.slabs
            }
            if pending is not None:
                needed |= pending["keys"]
            if not needed:
                continue
            self._send_sync(sid, info, needed, now)

    def _send_sync(
        self, sid: int, info, keys: set, now: float
    ) -> None:
        worker = self.server.workers.get(info.worker_id)
        if worker is None:
            return
        if sid not in self._streams:
            self._streams[sid] = self._stream_stub(now)
        self._pending_sync[sid] = {"keys": set(keys), "sent": now}
        self.server.transport.send(
            worker,
            Message(
                "rollup_sync",
                (sid, self.sub_id, [k.to_wire() for k in sorted(
                    keys, key=lambda k: k.to_wire()
                )], self.server),
                sender=self.server,
            ),
        )

    # -- stream message handlers --------------------------------------------

    def on_replica_batch(self, msg: Message) -> None:
        sid, epoch, seq, rows, t_created, primary = msg.payload
        st = self._streams.get(sid)
        if st is None:
            # not subscribed (anymore): stop the primary's retransmits
            self.server.transport.send(
                primary,
                Message(
                    "replica_remove", (sid, self.sub_id), sender=self.server
                ),
            )
            return
        if st["epoch"] is None:
            # pre-seed: retain for post-install replay, ack nothing.
            # The tail is epoch-tagged so a fenced stream can never
            # replay a dead primary's lineage over a fresh slab.
            if sid in self._pending_sync:
                if st.get("tail_epoch") != epoch:
                    st["tail"].clear()
                    st["tail_epoch"] = epoch
                self._retain(st, seq, rows, t_created)
            return
        if epoch < st["epoch"]:
            self.server.transport.send(
                primary,
                Message(
                    "replica_remove", (sid, self.sub_id), sender=self.server
                ),
            )
            return
        if epoch > st["epoch"]:
            self._reset_stream(sid)  # fenced: reconcile re-syncs
            return
        self._apply_batch(sid, st, seq, rows, t_created)
        service = self.server.cost.rollup_apply_time(len(rows))

        def ack() -> None:
            cur = self._streams.get(sid)
            if cur is None or cur["epoch"] != epoch:
                return
            self.server.transport.send(
                primary,
                Message(
                    "replica_ack",
                    (sid, epoch, cur["frontier"], self.sub_id),
                    sender=self.server,
                ),
            )

        self.server.pool.submit(service, ack)

    def _retain(self, st: dict, seq: int, rows, t_created: float) -> None:
        if isinstance(rows, tuple):
            coords, measures = rows
        else:
            coords, measures = _rows_to_arrays(rows)
        st["tail"][seq] = (coords, measures, t_created)
        if len(st["tail"]) > self.cfg.tail_limit:
            st["tail"].clear()
            st["torn"] = True

    def _apply_batch(
        self, sid: int, st: dict, seq: int, rows, t_created: float
    ) -> bool:
        """Fold one stream batch into every installed slab of the shard
        and advance the contiguous frontier/watermark (duplicates from
        retransmits are no-ops)."""
        if seq <= st["frontier"] or seq in st["applied"]:
            return False
        if isinstance(rows, tuple):
            coords, measures = rows
        else:
            coords, measures = _rows_to_arrays(rows)
        for cube in self.store.cubes.values():
            slab = cube.slabs.get(sid)
            if slab is not None:
                accumulate_cells(
                    self.server.schema, cube.key, coords, measures, into=slab
                )
        if sid in self._pending_sync:
            self._retain(st, seq, (coords, measures), t_created)
        st["applied"].add(seq)
        st["pending_t"][seq] = t_created
        while st["frontier"] + 1 in st["applied"]:
            st["frontier"] += 1
            st["applied"].discard(st["frontier"])
            st["wm_time"] = st["pending_t"].pop(st["frontier"])
        self.rows_applied += len(measures)
        self.batches_applied += 1
        return True

    def on_rollup_cells(self, msg: Message) -> None:
        """A worker's sync reply: install the slabs and splice them
        onto the live stream (replaying retained tail batches past the
        reply's head, or tearing the join if the tail cannot cover the
        gap)."""
        sid, epoch, head, pairs, wid = msg.payload
        st = self._streams.get(sid)
        pending = self._pending_sync.get(sid)
        if st is None or pending is None:
            return  # shard dropped, or a duplicate of a finished sync
        if st["epoch"] is not None and epoch < st["epoch"]:
            return  # stale reply from before a fence; retry will re-ask
        if st["epoch"] is not None and epoch > st["epoch"]:
            self._reset_stream(sid)
            st = self._streams[sid]
        now = self.server.clock.now
        keys = [CubeKey.from_wire(kw) for kw, _ in pairs]
        if st["epoch"] is None:
            st["epoch"] = epoch
            st["frontier"] = head
            st["applied"].clear()
            st["pending_t"].clear()
            st["wm_time"] = now
            st["owner"] = wid
            self._install(sid, pairs)
            self._finish_sync(sid, pending, keys)
            # replay everything retained past the snapshot head (only
            # if it was retained from this same epoch's stream)
            tail = dict(st["tail"])
            if st.pop("tail_epoch", epoch) != epoch or st.pop("torn", False):
                tail = {}
                st["tail"].clear()
            for seq in sorted(tail):
                coords, measures, t = tail[seq]
                self._apply_batch(sid, st, seq, (coords, measures), t)
            if sid not in self._pending_sync:
                st["tail"].clear()
                st.pop("torn", None)
            self._ack_frontier(sid, st)
            return
        # same-epoch late join: the slab snapshot covers seqs <= head;
        # everything this stream already applied past head must come
        # from the retained tail, else the join is torn
        needed = [
            s
            for s in range(head + 1, st["frontier"] + 1)
        ] + sorted(st["applied"])
        if st.pop("torn", False) or any(s not in st["tail"] for s in needed):
            pending["sent"] = -1e18  # force an immediate re-request
            return
        self._install(sid, pairs)
        for s in needed:
            coords, measures, _t = st["tail"][s]
            for key in keys:
                cube = self.store.cubes.get(key)
                if cube is None or sid not in cube.slabs:
                    continue
                accumulate_cells(
                    self.server.schema,
                    key,
                    coords,
                    measures,
                    into=cube.slabs[sid],
                )
        self._finish_sync(sid, pending, keys)
        if sid not in self._pending_sync:
            st["tail"].clear()

    def _install(self, sid: int, pairs) -> None:
        for kw, cells in pairs:
            cube = self.store.cubes.get(CubeKey.from_wire(kw))
            if cube is not None:
                cube.slabs[sid] = cells

    def _finish_sync(self, sid: int, pending: dict, keys) -> None:
        pending["keys"] -= set(keys)
        if not pending["keys"]:
            self._pending_sync.pop(sid, None)

    def _ack_frontier(self, sid: int, st: dict) -> None:
        owner = st["owner"]
        worker = self.server.workers.get(owner) if owner is not None else None
        if worker is None:
            return
        self.server.transport.send(
            worker,
            Message(
                "replica_ack",
                (sid, st["epoch"], st["frontier"], self.sub_id),
                sender=self.server,
            ),
        )

    def on_rollup_sync_failed(self, msg: Message) -> None:
        """The worker couldn't seed (shard frozen or moved): leave the
        sync pending; the timeout re-requests from the current owner."""
        self.sync_failures += 1

"""The VOLAP cluster facade: wiring, bootstrap, elasticity, bulk load.

Assembles the full system of paper Fig. 2 -- ``m`` servers, ``p``
workers, a Zookeeper and a manager over a shared simulated transport --
and exposes the operations the experiments need: bootstrap loading,
client sessions, elastic worker addition, bulk ingestion, and virtual
time control.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field, replace
from typing import Optional, Union

import numpy as np

from ..core.aggregates import Aggregate
from ..core.config import TreeConfig
from ..core.hilbert_trees import HilbertPDCTree
from ..hilbert.id_expansion import HilbertKeyMapper
from ..obs import MetricsRegistry, Observability
from ..olap.query import ROUTING_MODES, Query
from ..olap.records import RecordBatch
from ..olap.schema import Schema
from ..runtime import make_runtime
from .balancer import BalancerPolicy, ThresholdPolicy
from .client import ClientSession
from .cost import CostModel
from .faults import CheckpointStore, FaultInjector, FaultPlan, RetryPolicy
from .manager import Manager
from .router import QueryResult, RollupConfig
from .server import Server
from .simclock import SimClock
from .stats import ClusterStats, OpRecord
from .transport import Entity, LatencyModel, Message
from .worker import Worker
from .zookeeper import Zookeeper

__all__ = ["ClusterConfig", "VOLAPCluster", "QueryResult", "RollupConfig"]

#: aliases already warned about (one warning per process, clearable in tests)
_warned_batch_aliases: set[str] = set()


def _warn_alias(old: str, new: str, scope: str = "ClusterConfig") -> None:
    if old in _warned_batch_aliases:
        return
    _warned_batch_aliases.add(old)
    warnings.warn(
        f"{scope}.{old} is deprecated; use {scope}.{new}",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class ClusterConfig:
    """Static configuration of a simulated VOLAP deployment."""

    num_workers: int = 4
    num_servers: int = 2
    worker_threads: int = 8  # c3.4xlarge-ish
    server_threads: int = 16  # c3.8xlarge-ish
    sync_period: float = 3.0  # paper default (Section IV-F)
    stats_period: float = 0.5
    tree_config: TreeConfig = field(
        default_factory=lambda: TreeConfig(leaf_capacity=64, fanout=16)
    )
    cost: CostModel = field(default_factory=CostModel)
    latency: LatencyModel = field(default_factory=LatencyModel)
    #: load-balancing strategy (see repro.cluster.balancer): the default
    #: ThresholdPolicy keeps the classic greedy behaviour; pass
    #: MemoryPressurePolicy(...) or CostDrivenPolicy(...) to swap it
    balancer: BalancerPolicy = field(default_factory=ThresholdPolicy)
    image_fanout: int = 8
    #: key kind of server local images and shard bounding keys in the
    #: system image: "mbr" (one box) or "mds" (multiple boxes)
    image_key_kind: str = "mbr"
    #: shard data structure (paper III-D lists five; Hilbert PDC tree is
    #: "best for most applications")
    store_cls: type = HilbertPDCTree
    client_concurrency: int = 16
    #: client-side wire batching: coalesce up to this many inserts into
    #: one ``client_insert_batch`` message; 1 keeps the classic
    #: one-message-per-insert path byte-identical.  Same spelling as
    #: ``ClientSession(batch_size=...)`` / ``session(batch_size=...)``.
    batch_size: int = 1
    #: how long a partially filled client batch waits before flushing
    batch_linger: float = 2e-3
    #: deprecated aliases of ``batch_size`` / ``batch_linger`` -- kept
    #: one release for old callers; a one-time DeprecationWarning fires
    #: and the value forwards to the new field
    client_batch_size: Optional[int] = field(default=None, repr=False)
    client_batch_linger: Optional[float] = field(default=None, repr=False)
    seed: int = 0
    #: request timeouts / retries / backoff (clients and servers)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: worker liveness beacons; 0 disables heartbeats and failover
    heartbeat_period: float = 0.5
    #: missed beats before the ephemeral heartbeat znode expires
    heartbeat_miss_k: int = 4
    #: periodic shard checkpointing for failover restores; 0 disables
    checkpoint_period: float = 5.0
    #: per-worker hot-tier budget (bytes of resident shard columns);
    #: over budget, workers autonomously spill least-recently-touched
    #: shards to WARM (blob only), rehydrating lazily on access.
    #: ``None`` (the default) disables the residency tier entirely --
    #: every shard stays HOT and the classic paths are untouched
    hot_budget_bytes: Optional[int] = None
    #: asynchronous replicas per shard, fed by the live insert stream;
    #: 0 disables replication entirely (the classic single-copy paths
    #: stay byte-identical)
    replication_factor: int = 0
    #: cluster-default bounded-staleness read budget (virtual seconds)
    #: for queries that do not set ``Query.max_staleness`` themselves;
    #: ``None`` keeps every read on shard primaries
    max_staleness: Optional[float] = None
    #: per-server rollup cache tier (materialized cubes + adaptive
    #: query routing); ``None`` disables the tier entirely -- no cube
    #: state, no stream subscriptions, classic tree-only reads
    rollup: Optional[RollupConfig] = None
    #: execution backend: ``"sim"`` (discrete-event, the default),
    #: ``"asyncio"`` (wall clock, one process) or ``"mp"`` (one process
    #: per worker, column frames on the worker pipes).  Defaults from
    #: ``$VOLAP_RUNTIME`` so CI can matrix the whole suite over a
    #: backend without touching test code.
    runtime: str = field(
        default_factory=lambda: os.environ.get("VOLAP_RUNTIME", "sim")
    )
    #: model-to-real seconds ratio on the wall-clock backends (0.05
    #: runs modeled periods 20x compressed); the sim ignores it.
    #: Defaults from ``$VOLAP_TIME_SCALE``.
    time_scale: float = field(
        default_factory=lambda: float(os.environ.get("VOLAP_TIME_SCALE", "1.0"))
    )
    #: backend-specific switches forwarded to ``make_runtime`` (e.g.
    #: ``{"streams": True}`` to carry the asyncio data plane over
    #: loopback TCP)
    runtime_options: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.client_batch_size is not None:
            _warn_alias("client_batch_size", "batch_size")
            object.__setattr__(self, "batch_size", self.client_batch_size)
        if self.client_batch_linger is not None:
            _warn_alias("client_batch_linger", "batch_linger")
            object.__setattr__(self, "batch_linger", self.client_batch_linger)
        # old readers of the legacy names keep seeing the resolved values
        object.__setattr__(self, "client_batch_size", self.batch_size)
        object.__setattr__(self, "client_batch_linger", self.batch_linger)


class VOLAPCluster:
    """A fully wired simulated VOLAP system."""

    def __init__(self, schema: Schema, config: Optional[ClusterConfig] = None):
        self.schema = schema
        self.config = config if config is not None else ClusterConfig()
        self.runtime = make_runtime(
            self.config.runtime,
            latency=self.config.latency,
            seed=self.config.seed,
            time_scale=self.config.time_scale,
            options=self.config.runtime_options,
        )
        self.clock = self.runtime.clock
        self.transport = self.runtime.transport
        self.zk = Zookeeper(self.clock)
        self.runtime.register(self.zk)
        self.stats = ClusterStats()
        self.checkpoints = CheckpointStore()
        self.workers: dict[int, Worker] = {}
        for wid in range(self.config.num_workers):
            self._make_worker(wid)
        self.servers: list[Server] = [
            Server(
                sid,
                self.clock,
                self.transport,
                self.zk,
                schema,
                self.workers,
                threads=self.config.server_threads,
                sync_period=self.config.sync_period,
                cost=self.config.cost,
                image_fanout=self.config.image_fanout,
                image_key_kind=self.config.image_key_kind,
                retry=self.config.retry,
                max_staleness=self.config.max_staleness,
                rollup=self.config.rollup,
            )
            for sid in range(self.config.num_servers)
        ]
        for s in self.servers:
            self.runtime.register(s)
            if s.router is not None:
                # share the cluster registry so the tier's hit/miss/
                # eviction counters land in cluster.metrics
                s.router.registry = self.stats.registry
        self.manager = Manager(
            self.clock,
            self.transport,
            self.zk,
            self.workers,
            policy=self.config.balancer,
            stats=self.stats,
            checkpoints=self.checkpoints,
            heartbeat_period=(
                self.config.heartbeat_period
                if self.config.heartbeat_period > 0
                else None
            ),
            heartbeat_miss_k=self.config.heartbeat_miss_k,
            replication_factor=self.config.replication_factor,
        )
        self.runtime.register(self.manager)
        if self.runtime.kind == "mp":
            # mp v1 serves ingest and queries from child processes; the
            # balancing/failover control loops (splits, migrations,
            # replica placement) stay sim-only for now
            self.manager.enabled = False
        self._clients: list[ClientSession] = []
        self._mapper = HilbertKeyMapper(schema)
        self.stats.registry.register_collector(self._collect_entity_gauges)
        self.clock.every(self.config.stats_period, self._periodic_stats)

    # -- observability ---------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """The cluster's metrics registry -- always live; snapshot with
        ``cluster.metrics.snapshot()`` (schema in docs/observability.md)."""
        return self.stats.registry

    @property
    def obs(self) -> Optional[Observability]:
        """The installed :class:`Observability` facade, or ``None``."""
        return self.transport.obs

    def observe(
        self,
        spans: bool = True,
        profile_trees: bool = True,
        message_metrics: bool = True,
    ) -> Observability:
        """Switch on end-to-end instrumentation (op spans, per-kind
        message counters, tree profiling) and return the facade.

        This is the single sanctioned instrumentation path: the facade
        lands on ``transport.obs``, every entity picks it up from there,
        and it shares the cluster's metrics registry.  Idempotent --
        calling again returns the already-installed facade."""
        if self.transport.obs is None:
            self.transport.obs = Observability(
                self.clock,
                registry=self.stats.registry,
                spans=spans,
                profile_trees=profile_trees,
                message_metrics=message_metrics,
            )
        return self.transport.obs

    def unobserve(self) -> None:
        """Detach instrumentation; the send/apply paths go back to the
        zero-overhead disabled mode."""
        self.transport.obs = None

    def _collect_entity_gauges(self) -> None:
        """Snapshot-time collector: pull live per-entity state into
        gauges (runs only when ``metrics.snapshot()`` is taken)."""
        r = self.stats.registry
        for wid, w in self.workers.items():
            r.gauge("volap_worker_items", worker=wid).set(w.total_items())
            r.gauge("volap_worker_shards", worker=wid).set(len(w.shards))
            r.gauge("volap_worker_backlog", worker=wid).set(w.pool.backlog)
            r.gauge("volap_worker_dedup_hits", worker=wid).set(w.dedup_hits)
        for s in self.servers:
            sid = s.server_id
            r.gauge("volap_server_inserts_routed", server=sid).set(
                s.inserts_routed
            )
            r.gauge("volap_server_queries_routed", server=sid).set(
                s.queries_routed
            )
            r.gauge("volap_server_insert_retries", server=sid).set(
                s.insert_retries
            )
            r.gauge("volap_server_degraded_queries", server=sid).set(
                s.degraded_queries
            )
        if self.config.rollup is not None:
            # rollup-tier gauges exist only when the tier is enabled,
            # keeping tier-less runs on their classic metric families
            now = self.clock.now
            for s in self.servers:
                router = s.router
                if router is None:
                    continue
                sid = s.server_id
                r.gauge("volap_rollup_cubes", server=sid).set(
                    len(router.store)
                )
                r.gauge("volap_rollup_resident_bytes", server=sid).set(
                    router.store.resident_bytes()
                )
                r.gauge("volap_rollup_staleness_seconds", server=sid).set(
                    router.max_lag(now)
                )
        residency_active = self.config.hot_budget_bytes is not None or any(
            hasattr(w, "storage") and (w.storage.cold or w.storage.spills)
            for w in self.workers.values()
        )
        if residency_active:
            # residency gauges exist only when the tier is in play, so
            # budget-less runs keep their classic metric families
            for wid, w in self.workers.items():
                if not hasattr(w, "storage"):
                    continue  # mp proxy workers have no local storage
                st = w.storage
                r.gauge("volap_residency_spills_total", worker=wid).set(
                    st.spills
                )
                r.gauge("volap_residency_rehydrates_total", worker=wid).set(
                    st.rehydrates
                )
                r.gauge("volap_residency_warm_shards", worker=wid).set(
                    len(st.cold)
                )
                r.gauge("volap_residency_resident_bytes", worker=wid).set(
                    w.resident_bytes()
                )
                if w.hot_budget_bytes is not None:
                    r.gauge(
                        "volap_residency_hot_budget_bytes", worker=wid
                    ).set(w.hot_budget_bytes)
        r.gauge("volap_transport_messages_sent").set(
            self.transport.messages_sent
        )
        r.gauge("volap_transport_bytes_sent").set(self.transport.bytes_sent)
        if self.config.replication_factor > 0:
            # replica gauges exist only when replication is on, so
            # replication-free runs export their classic metric families
            now = self.clock.now
            for sid, holders in sorted(self.manager.replica_sets.items()):
                for wid in sorted(holders):
                    wm = self.zk.get(f"/replicas/{sid}/{wid}")
                    if wm is None:
                        continue
                    r.gauge("volap_replica_lag", shard=sid, worker=wid).set(
                        max(0.0, now - wm[2])
                    )
            for wid, w in self.workers.items():
                r.gauge("volap_worker_replicas", worker=wid).set(
                    len(w.replicas)
                )
                r.gauge("volap_worker_replica_queries", worker=wid).set(
                    w.replica_queries
                )

    # -- wiring helpers --------------------------------------------------------

    def _make_worker(self, wid: int) -> Worker:
        if self.runtime.kind == "mp":
            w = self.runtime.spawn_worker(
                wid,
                self.zk,
                self.schema,
                self.config.tree_config,
                self.config.worker_threads,
                self.config.cost,
                self.config.store_cls,
            )
            self.workers[wid] = w
            w.peers = self.workers
            w.publish_stats()
            return w
        w = Worker(
            wid,
            self.clock,
            self.transport,
            self.zk,
            self.schema,
            tree_config=self.config.tree_config,
            threads=self.config.worker_threads,
            cost=self.config.cost,
            store_cls=self.config.store_cls,
        )
        self.workers[wid] = w
        self.runtime.register(w)
        # the shared directory lets a demoted primary address its
        # handoff to whichever worker took over (includes late joiners)
        w.peers = self.workers
        w.hot_budget_bytes = self.config.hot_budget_bytes
        w.publish_stats()
        if self.config.heartbeat_period > 0:
            w.start_heartbeat(
                self.config.heartbeat_period,
                ttl=self.config.heartbeat_miss_k * self.config.heartbeat_period,
            )
        if self.config.checkpoint_period > 0:
            w.start_checkpoints(self.config.checkpoint_period, self.checkpoints)
        return w

    def add_workers(self, count: int) -> list[int]:
        """Elastic scale-up: attach new (empty) workers (paper Fig. 6)."""
        new_ids = []
        base = max(self.workers) + 1 if self.workers else 0
        for i in range(count):
            w = self._make_worker(base + i)
            new_ids.append(w.worker_id)
        return new_ids

    def _periodic_stats(self) -> None:
        sizes = {wid: w.total_items() for wid, w in self.workers.items()}
        self.stats.snapshot_workers(self.clock.now, sizes)
        for w in self.workers.values():
            w.publish_stats()

    # -- bootstrap ------------------------------------------------------------

    def bootstrap(self, batch: RecordBatch, shards_per_worker: int = 4) -> None:
        """Initial load: Hilbert-sort the batch, carve it into equal
        shards, place them round-robin, and build every server's image."""
        n = len(batch)
        worker_ids = sorted(self.workers)
        total_shards = max(1, shards_per_worker * len(worker_ids))
        if n > 0:
            keys = self._mapper.keys(batch.coords)
            order = np.array(sorted(range(n), key=keys.__getitem__))
            bounds = np.linspace(0, n, total_shards + 1).astype(int)
        else:
            order = np.array([], dtype=int)
            bounds = np.zeros(total_shards + 1, dtype=int)
        shard_id = 0
        for i in range(total_shards):
            rows = order[bounds[i] : bounds[i + 1]]
            sub = batch.take(rows) if len(rows) else RecordBatch.empty(
                self.schema.num_dims
            )
            store = self.config.store_cls.from_batch(
                self.schema, sub, self.config.tree_config
            )
            wid = worker_ids[i % len(worker_ids)]
            self.workers[wid].install_shard(shard_id, store)
            shard_id += 1
        self.manager.reserve_shard_ids(shard_id + 1000)
        for s in self.servers:
            s.load_image()
        self._periodic_stats()

    # -- client sessions --------------------------------------------------------

    def session(
        self,
        server_index: int = 0,
        concurrency: Optional[int] = None,
        batch_size: Optional[int] = None,
        batch_linger: Optional[float] = None,
    ) -> ClientSession:
        c = ClientSession(
            len(self._clients),
            self.transport,
            self.servers[server_index % len(self.servers)],
            self.stats,
            concurrency=(
                concurrency
                if concurrency is not None
                else self.config.client_concurrency
            ),
            retry=self.config.retry,
            seed=self.config.seed * 7919 + len(self._clients),
            batch_size=(
                batch_size if batch_size is not None else self.config.batch_size
            ),
            batch_linger=(
                batch_linger
                if batch_linger is not None
                else self.config.batch_linger
            ),
        )
        self._clients.append(c)
        self.runtime.register(c)
        return c

    # -- fault injection / chaos controls ------------------------------------

    def inject_faults(self, plan: FaultPlan, seed: Optional[int] = None) -> FaultInjector:
        """Install a fault plan on the shared transport; returns the
        injector (for its drop/duplicate/delay counters)."""
        injector = FaultInjector(
            plan, self.clock, seed=self.config.seed if seed is None else seed
        )
        self.transport.faults = injector
        return injector

    def clear_faults(self) -> None:
        self.transport.faults = None

    def crash_worker(self, wid: int) -> None:
        """Fail-stop worker ``wid``: state lost, messages black-holed.
        The manager detects the expired heartbeat and re-homes the
        worker's shards onto survivors -- promoting the freshest live
        replica where one exists (a metadata flip), deserializing the
        latest checkpoint otherwise."""
        self.workers[wid].crash()

    def restart_worker(self, wid: int) -> None:
        self.workers[wid].restart()

    # -- bulk ingestion -------------------------------------------------------

    def bulk_load(self, batch: RecordBatch, chunk: int = 2048) -> float:
        """Bulk-ingest ``batch`` through server 0's image; returns the
        virtual completion time.  This is the high-rate path of paper
        Section IV-C (>400k items/s vs ~50k/s point insertion): rows are
        routed in batches and workers merge whole chunks per shard."""
        server = self.servers[0]
        start = self.clock.now
        acked = [0]
        expected = [0]
        sink = _BulkSink(acked)
        self.runtime.register(sink)
        for lo in range(0, len(batch), chunk):
            sub = batch.slice(lo, min(lo + chunk, len(batch)))
            groups: dict[int, list[int]] = {}
            owner: dict[int, int] = {}
            for i in range(len(sub)):
                info = server.image.route_insert(sub.coords[i])
                groups.setdefault(info.shard_id, []).append(i)
                owner[info.shard_id] = info.worker_id
            for sid, rows in groups.items():
                expected[0] += 1
                # dedup tokens live in a reserved integer space (they
                # must survive the int64 wire columns)
                token = (0xBBB << 32) | expected[0]
                self.transport.send(
                    self.workers[owner[sid]],
                    Message(
                        "bulk_insert",
                        (sid, sub.take(np.array(rows)), token, sink),
                    ),
                )
        # run until every chunk is acknowledged
        self.runtime.drive(
            lambda: acked[0] >= expected[0], desc="bulk load"
        )
        server.sync_to_zookeeper()
        return self.clock.now - start

    # -- unified query API ----------------------------------------------------

    def execute(
        self,
        query_or_queries: Union[Query, list],
        *,
        max_staleness: Optional[float] = None,
        routing: str = "auto",
        server_index: int = 0,
    ) -> Union[QueryResult, list[QueryResult]]:
        """The one query entry point: run one query (returns a
        :class:`QueryResult`) or a list (returns a list, in submission
        order, batched into one wire round trip).

        ``max_staleness`` is the read budget for queries that do not
        carry their own ``Query.max_staleness`` (per-query values win);
        ``routing`` selects the serving tier -- ``"auto"`` answers from
        materialized rollup cubes when a cube matches and its staleness
        fits the budget (per shard, falling back to tree descent for
        the stale tail), ``"tree"`` pins the classic descent, and
        ``"rollup"`` prefers cubes regardless of budget.  **With no
        budget from either source, ``"auto"`` never touches a cube**:
        the result stays byte-identical to tree descent.

        Each result carries the merged aggregate, achieved coverage,
        achieved staleness, and the serving ``source``.  Each query
        keeps its own op id, server token, deadline, and
        :class:`OpRecord`, exactly as on the session path.
        """
        if routing not in ROUTING_MODES:
            raise ValueError(
                f"routing must be one of {ROUTING_MODES}, got {routing!r}"
            )
        single = isinstance(query_or_queries, Query)
        queries = (
            [query_or_queries] if single else list(query_or_queries)
        )
        if not queries:
            return []
        effective = [
            replace(
                q,
                max_staleness=(
                    q.max_staleness
                    if q.max_staleness is not None
                    else max_staleness
                ),
                routing=(
                    q.routing
                    if getattr(q, "routing", "auto") != "auto"
                    else routing
                ),
            )
            for q in queries
        ]
        server = self.servers[server_index % len(self.servers)]
        results: dict[int, QueryResult] = {}
        sink = _QuerySink(results, self.stats, self.clock)
        self.runtime.register(sink)
        # op ids live in a reserved pseudo-client space; replies route
        # by entity, so they never collide with real sessions
        rows = [
            ((0xFFF << 24) | (i + 1), q, None)
            for i, q in enumerate(effective)
        ]
        self.transport.send(
            server, Message("client_query_batch", (rows, sink))
        )
        self.runtime.drive(
            lambda: len(results) >= len(queries), desc="execute"
        )
        out = [results[op_id] for op_id, _, _ in rows]
        return out[0] if single else out

    # -- deprecated query surface (one release of shims) -----------------------

    def query_batch(
        self, queries, server_index: int = 0
    ) -> list[tuple[Aggregate, float]]:
        """Deprecated alias of :meth:`execute` returning the old
        ``(aggregate, achieved)`` tuples; use ``execute`` for
        :class:`QueryResult` objects with staleness and source."""
        _warn_alias("query_batch", "execute", scope="VOLAPCluster")
        results = self.execute(list(queries), server_index=server_index)
        return [(r.value, r.coverage) for r in results]

    def query(self, query: Query, server_index: int = 0):
        """Deprecated singleton alias of :meth:`execute`."""
        _warn_alias("query", "execute", scope="VOLAPCluster")
        r = self.execute(query, server_index=server_index)
        return r.value, r.coverage

    # -- execution ------------------------------------------------------------

    def run_until(self, t: float) -> None:
        self.runtime.run_until(t)

    def run_for(self, dt: float) -> None:
        self.runtime.run_for(dt)

    def run_until_clients_done(self, max_virtual: float = 3600.0) -> None:
        """Advance until every session drains (or the horizon passes)."""
        horizon = self.clock.now + max_virtual
        self.runtime.drive(
            lambda: all(c.done for c in self._clients),
            horizon=horizon,
            desc="clients",
        )

    def barrier(self) -> None:
        """Wait for remote workers to drain (a no-op on sim/asyncio)."""
        self.runtime.barrier()

    def close(self) -> None:
        """Release backend resources (worker processes, sockets, the
        event loop); a no-op on the sim backend and when called twice."""
        self.runtime.close()

    def __enter__(self) -> "VOLAPCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection -----------------------------------------------------------

    def total_items(self) -> int:
        return sum(w.total_items() for w in self.workers.values())

    def shard_count(self) -> int:
        return sum(len(w.shards) for w in self.workers.values())

    def worker_sizes(self) -> dict[int, int]:
        return {wid: w.total_items() for wid, w in self.workers.items()}


class _QuerySink(Entity):
    """Collects ``query_done`` replies for :meth:`VOLAPCluster.execute`,
    recording one ``OpRecord`` per logical query like a session would."""

    name = "query-sink"

    def __init__(
        self,
        results: dict[int, QueryResult],
        stats: ClusterStats,
        clock: SimClock,
    ):
        self._results = results
        self._stats = stats
        self._clock = clock

    def receive(self, msg: Message) -> None:
        if msg.kind != "query_done":
            return
        (
            op_id, submit_time, agg, searched, coverage,
            achieved, staleness, source,
        ) = msg.payload
        if op_id in self._results:
            return  # duplicate reply (e.g. a late deadline partial)
        self._results[op_id] = QueryResult(
            value=agg,
            coverage=achieved,
            staleness=staleness,
            source=source,
            shards_searched=searched,
            op_id=op_id,
        )
        self._stats.record_op(
            OpRecord(
                "query",
                submit_time,
                self._clock.now,
                coverage=coverage,
                shards_searched=searched,
                result_count=agg.count,
                achieved=achieved,
                staleness=staleness,
                source=source,
            )
        )


class _BulkSink(Entity):
    """Counts bulk acks during :meth:`VOLAPCluster.bulk_load`."""

    name = "bulk-sink"

    def __init__(self, counter: list[int]):
        self._counter = counter

    def receive(self, msg: Message) -> None:
        if msg.kind == "bulk_ack":
            self._counter[0] += 1

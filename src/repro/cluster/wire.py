"""Wire encoding of shard bounding keys (MBR boxes or MDS interval sets).

The system image in Zookeeper stores, per shard, its bounding key --
"represented by either a Minimum Bounding Rectangle (MBR, one box) or
Minimum Describing Subset (MDS, multiple boxes)" (paper Section III-A).
Both kinds serialise to plain tuples so they survive the Zookeeper
stand-in and message payloads.

Bulk record payloads (shard blobs, handed-off insertion queues) travel
as columnar frames (:mod:`repro.olap.colframe`); :func:`batch_to_wire`
and :func:`batch_from_wire` are the cluster layer's entry points so
every bulk transfer is charged its true bytes-on-the-wire size.
"""

from __future__ import annotations

from typing import Union

from ..olap.colframe import decode_batch, encode_batch
from ..olap.keys import Box
from ..olap.mds import MDS
from ..olap.records import RecordBatch

__all__ = [
    "key_to_wire",
    "key_from_wire",
    "batch_to_wire",
    "batch_from_wire",
    "shard_to_wire",
    "shard_from_wire",
    "BoundingKey",
    "QUERY_ROW_WIRE_BYTES",
    "REPLICA_ROW_WIRE_BYTES",
]

BoundingKey = Union[Box, MDS]

#: estimated wire size of one batched-query row -- a (token, shard ids,
#: box bounds) tuple on the request side, or a (token, aggregate,
#: searched, missing) tuple on the result side.  Shared by client,
#: server, and worker so every query-batch message charges the same
#: per-row transfer cost.
QUERY_ROW_WIRE_BYTES = 48

#: estimated wire size of one replication-stream row -- (coords,
#: measure, op id), the same shape as a wire-batch insert row (PR 2's
#: format, which the replica stream reuses) plus the idempotency token
#: the replica must retain for exactly-once promotion.
REPLICA_ROW_WIRE_BYTES = 72


def batch_to_wire(batch: RecordBatch, *, compress: bool = True) -> bytes:
    """Encode a record batch as column-frame wire bytes.

    ``len()`` of the result is the message size to charge the transport
    -- unlike the old tuple payloads there is no estimated per-row
    constant; the frame *is* the wire format.
    """
    return encode_batch(batch, compress=compress)


def batch_from_wire(blob: bytes) -> RecordBatch:
    """Decode wire bytes back into a record batch (v2 frame or legacy v1)."""
    return decode_batch(blob)


def shard_to_wire(store) -> bytes:
    """Encode a whole shard store as one colframe blob.

    This is the *single* shard blob format: checkpoints, failover
    restores, migration transfers, replica seeds, and residency spills
    all pass through here (via :class:`repro.cluster.storage.ShardStorage`),
    so a blob written by any path can be read by every other.
    """
    return store.serialize()


def shard_from_wire(store_cls, schema, blob: bytes, config) -> object:
    """Decode a shard blob produced by :func:`shard_to_wire` back into a
    live shard store of ``store_cls``."""
    return store_cls.deserialize(schema, blob, config)


def key_to_wire(key: BoundingKey) -> tuple:
    """Encode a bounding key with a kind tag."""
    if isinstance(key, Box):
        return ("mbr", key.to_tuple())
    if isinstance(key, MDS):
        return ("mds", key.to_tuple(), key.max_intervals)
    raise TypeError(f"not a bounding key: {type(key)!r}")


def key_from_wire(wire: tuple) -> BoundingKey:
    """Decode a bounding key produced by :func:`key_to_wire`."""
    kind = wire[0]
    if kind == "mbr":
        return Box.from_tuple(wire[1])
    if kind == "mds":
        return MDS([list(ivs) for ivs in wire[1]], max_intervals=wire[2])
    raise ValueError(f"unknown key kind {kind!r}")

"""Asynchronous message transport (the ZeroMQ stand-in).

Models what matters to the experiments: delivery latency (base network
round-trip contribution plus bandwidth-proportional cost for large
payloads such as serialised shards) with optional jitter.  Delivery
order between a pair of entities follows scheduled delivery times, as
with ZeroMQ over TCP when messages are comparably sized.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from .simclock import SimClock

__all__ = ["LatencyModel", "Message", "Transport", "Entity"]


@dataclass(frozen=True)
class LatencyModel:
    """Per-message delay: ``base + size/bandwidth + U(0, jitter)``.

    Defaults approximate same-AZ EC2: ~200 microseconds one-way, 10
    Gbit/s effective bandwidth.
    """

    base: float = 200e-6
    bandwidth: float = 1.25e9  # bytes/second (10 Gbit/s)
    jitter: float = 50e-6

    def delay(self, size: int, rng: np.random.Generator) -> float:
        d = self.base + size / self.bandwidth
        if self.jitter > 0:
            d += float(rng.uniform(0.0, self.jitter))
        return d


@dataclass
class Message:
    """An envelope routed between entities."""

    kind: str
    payload: Any = None
    sender: Optional["Entity"] = None
    #: wire size in bytes.  ``None`` (the default) means "compute the
    #: actual serialized frame length at send time" (see
    #: :func:`repro.runtime.frames.wire_size`); pass an explicit value
    #: only when the payload already is wire bytes (e.g. shard blobs).
    size: Optional[int] = None
    #: optional SpanContext (see obs/spans.py) so the receiver can
    #: parent its span under the sender's; ``None`` when tracing is off
    ctx: Any = None

    def clone(self) -> "Message":
        """A defensive copy for fault-duplicated deliveries.

        The payload is deep-copied so a receiver mutating the first
        delivery cannot corrupt the duplicate, while :class:`Entity`
        references inside the payload (reply-to handles, sinks) pass
        through by identity -- a duplicate must still route its reply
        to the *same* entity, not a ghost copy of it.
        """
        return Message(
            self.kind,
            copy.deepcopy(self.payload),
            sender=self.sender,
            size=self.size,
            ctx=self.ctx,
        )


class Entity:
    """Anything that can receive messages in the simulation."""

    name: str = "entity"

    def receive(self, msg: Message) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def __deepcopy__(self, memo: dict) -> "Entity":
        # entities are identities, not values: deep-copying a message
        # payload must never fork a live worker/server/client
        return self


def _wire_size(msg: Message, dst: Entity) -> int:
    """Actual serialized frame length of ``msg`` (lazy import: the
    frames codec sits above this module in the layering)."""
    from ..runtime import frames

    return frames.wire_size(
        msg.kind, msg.payload, getattr(dst, "name", "") or ""
    )


class Transport:
    """Delivers messages between entities with simulated latency."""

    def __init__(
        self,
        clock: SimClock,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
    ):
        self.clock = clock
        self.latency = latency if latency is not None else LatencyModel()
        self.rng = np.random.default_rng(seed)
        self.messages_sent = 0
        self.bytes_sent = 0
        #: optional FaultInjector (see faults.py); ``None`` keeps the
        #: delivery path byte-identical to the fault-free transport
        self.faults = None
        #: optional Observability facade (see obs/); ``None`` keeps the
        #: send path byte-identical to the uninstrumented transport
        self.obs = None

    def send(self, dst: Entity, msg: Message) -> None:
        """Schedule delivery of ``msg`` to ``dst``."""
        if msg.size is None:
            msg.size = _wire_size(msg, dst)
        self.messages_sent += 1
        self.bytes_sent += msg.size
        if self.obs is not None:
            self.obs.on_message(msg)
        delay = self.latency.delay(msg.size, self.rng)
        if self.faults is not None:
            for i, extra in enumerate(self.faults.plan_delivery(msg, dst)):
                # the first copy delivers the original; every duplicate
                # gets a defensive clone so a receiver mutating one
                # delivery cannot corrupt the others
                delivered = msg if i == 0 else msg.clone()
                self.deliver(dst, delivered, delay + extra)
            return
        self.deliver(dst, msg, delay)

    def send_local(self, dst: Entity, msg: Message) -> None:
        """Same-process delivery (inter-thread ZeroMQ): negligible delay."""
        if msg.size is None:
            msg.size = _wire_size(msg, dst)
        self.messages_sent += 1
        self.bytes_sent += msg.size
        if self.obs is not None:
            self.obs.on_message(msg)
        self.deliver(dst, msg, 1e-6)

    def deliver(self, dst: Entity, msg: Message, delay: float) -> None:
        """Hand ``msg`` to ``dst`` after ``delay``.  The single seam a
        runtime backend overrides: the sim schedules a clock callback;
        wall-clock runtimes enqueue into the destination's inbox (and
        may put the bytes on a real pipe or socket first)."""
        self.clock.after(delay, lambda: dst.receive(msg))

"""Asynchronous message transport (the ZeroMQ stand-in).

Models what matters to the experiments: delivery latency (base network
round-trip contribution plus bandwidth-proportional cost for large
payloads such as serialised shards) with optional jitter.  Delivery
order between a pair of entities follows scheduled delivery times, as
with ZeroMQ over TCP when messages are comparably sized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from .simclock import SimClock

__all__ = ["LatencyModel", "Message", "Transport", "Entity"]


@dataclass(frozen=True)
class LatencyModel:
    """Per-message delay: ``base + size/bandwidth + U(0, jitter)``.

    Defaults approximate same-AZ EC2: ~200 microseconds one-way, 10
    Gbit/s effective bandwidth.
    """

    base: float = 200e-6
    bandwidth: float = 1.25e9  # bytes/second (10 Gbit/s)
    jitter: float = 50e-6

    def delay(self, size: int, rng: np.random.Generator) -> float:
        d = self.base + size / self.bandwidth
        if self.jitter > 0:
            d += float(rng.uniform(0.0, self.jitter))
        return d


@dataclass
class Message:
    """An envelope routed between entities."""

    kind: str
    payload: Any = None
    sender: Optional["Entity"] = None
    size: int = 128  # wire size estimate in bytes
    #: optional SpanContext (see obs/spans.py) so the receiver can
    #: parent its span under the sender's; ``None`` when tracing is off
    ctx: Any = None


class Entity:
    """Anything that can receive messages in the simulation."""

    name: str = "entity"

    def receive(self, msg: Message) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class Transport:
    """Delivers messages between entities with simulated latency."""

    def __init__(
        self,
        clock: SimClock,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
    ):
        self.clock = clock
        self.latency = latency if latency is not None else LatencyModel()
        self.rng = np.random.default_rng(seed)
        self.messages_sent = 0
        self.bytes_sent = 0
        #: optional FaultInjector (see faults.py); ``None`` keeps the
        #: delivery path byte-identical to the fault-free transport
        self.faults = None
        #: optional Observability facade (see obs/); ``None`` keeps the
        #: send path byte-identical to the uninstrumented transport
        self.obs = None

    def send(self, dst: Entity, msg: Message) -> None:
        """Schedule delivery of ``msg`` to ``dst``."""
        self.messages_sent += 1
        self.bytes_sent += msg.size
        if self.obs is not None:
            self.obs.on_message(msg)
        delay = self.latency.delay(msg.size, self.rng)
        if self.faults is not None:
            for extra in self.faults.plan_delivery(msg, dst):
                self.clock.after(delay + extra, lambda: dst.receive(msg))
            return
        self.clock.after(delay, lambda: dst.receive(msg))

    def send_local(self, dst: Entity, msg: Message) -> None:
        """Same-process delivery (inter-thread ZeroMQ): negligible delay."""
        self.messages_sent += 1
        self.bytes_sent += msg.size
        if self.obs is not None:
            self.obs.on_message(msg)
        self.clock.after(1e-6, lambda: dst.receive(msg))

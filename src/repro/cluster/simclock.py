"""Discrete-event simulation kernel: virtual clock, events, service pools.

The paper's evaluation runs on 20+ EC2 nodes with multi-threaded C++
workers.  This reproduction executes the *same data-structure and
protocol code* inside a discrete-event simulation: every entity
(server, worker, Zookeeper, manager, client) handles events in virtual
time, real index operations run at their virtual timestamps (event
order == causal order), and their measured work counters are converted
into virtual service times.  See DESIGN.md section 2 for why this
substitution preserves the experiments' shapes.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

__all__ = ["Timer", "SimClock", "ServicePool"]


class Timer:
    """A cancellable handle for a scheduled callback.

    Every clock implementation (sim or wall-clock, see
    :mod:`repro.runtime`) returns one of these from ``at``/``after``/
    ``every``; ``cancel()`` prevents any future firing.  Cancelled
    entries are skipped in place, so cancellation never perturbs the
    ordering of the remaining events.
    """

    __slots__ = ("when", "fn", "cancelled")

    def __init__(self, when: float, fn: Callable[[], None]):
        self.when = when
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
        self.fn = None  # drop references early


class SimClock:
    """A virtual clock with a heap of scheduled callbacks."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Timer]] = []
        self._seq = itertools.count()
        self._events_processed = 0

    def at(self, when: float, fn: Callable[[], None]) -> Timer:
        """Schedule ``fn`` to run at absolute virtual time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past ({when} < {self.now})")
        timer = Timer(when, fn)
        heapq.heappush(self._heap, (when, next(self._seq), timer))
        return timer

    def after(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("negative delay")
        return self.at(self.now + delay, fn)

    def every(
        self,
        period: float,
        fn: Callable[[], None],
        *,
        start: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Timer:
        """Run ``fn`` periodically (first firing at ``start`` or now+period)."""
        if period <= 0:
            raise ValueError("period must be positive")
        first = start if start is not None else self.now + period
        handle = Timer(first, None)

        def tick() -> None:
            if handle.cancelled:
                return
            if until is not None and self.now > until:
                return
            fn()
            handle.when = self.now + period
            self.at(handle.when, tick)

        handle.fn = tick
        self.at(max(first, self.now), tick)
        return handle

    def make_pool(self, threads: int) -> "ServicePool":
        """Build the service-station model matching this clock kind."""
        return ServicePool(self, threads)

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def step(self) -> bool:
        """Process one event; False when nothing is scheduled."""
        while self._heap:
            when, _, timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue  # skipped in place: does not advance time
            self.now = when
            self._events_processed += 1
            timer.fn()
            return True
        return False

    def run_until(self, t: float, max_events: Optional[int] = None) -> None:
        """Process events up to virtual time ``t`` (inclusive)."""
        n = 0
        while self._heap:
            if self._heap[0][2].cancelled:
                heapq.heappop(self._heap)
                continue
            if self._heap[0][0] > t:
                break
            self.step()
            n += 1
            if max_events is not None and n >= max_events:
                raise RuntimeError(
                    f"exceeded {max_events} events before reaching t={t}"
                )
        self.now = max(self.now, t)

    def run(self, max_events: int = 50_000_000) -> None:
        """Drain every scheduled event."""
        n = 0
        while self.step():
            n += 1
            if n >= max_events:
                raise RuntimeError(f"exceeded {max_events} events")


class ServicePool:
    """Models ``k`` worker threads executing jobs with given durations.

    Jobs submitted at virtual time ``t`` start on the thread that frees
    up earliest (``max(t, earliest_free)``) and complete after their
    service time -- an M/G/k service station.  This is how a multi-core
    node's thread pool is represented (paper Section III-A: workers and
    servers execute up to ``k`` parallel threads).
    """

    def __init__(self, clock: SimClock, threads: int):
        if threads < 1:
            raise ValueError("need at least one thread")
        self.clock = clock
        self.threads = threads
        self._free: list[float] = [0.0] * threads
        heapq.heapify(self._free)
        self.busy_time = 0.0
        self.jobs = 0

    def submit(
        self, service_time: float, done: Callable[[], None]
    ) -> float:
        """Enqueue a job; ``done`` fires at completion.  Returns finish time."""
        if service_time < 0:
            raise ValueError("negative service time")
        earliest = heapq.heappop(self._free)
        start = max(self.clock.now, earliest)
        finish = start + service_time
        heapq.heappush(self._free, finish)
        self.busy_time += service_time
        self.jobs += 1
        self.clock.at(finish, done)
        return finish

    def utilization(self, horizon: float) -> float:
        """Fraction of thread-time spent busy over ``horizon`` seconds."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / (horizon * self.threads))

    @property
    def backlog(self) -> float:
        """Seconds until the most loaded thread frees up."""
        return max(0.0, max(self._free) - self.clock.now)

"""Unified shard blob storage and the HOT/WARM residency tier.

Every path that turns a shard into bytes -- periodic checkpoints,
failover restore, migration transfer, replica seeding, and the residency
spill added here -- goes through one :class:`ShardStorage` per worker.
All five speak the same colframe blob (:func:`repro.cluster.wire.shard_to_wire`),
so a blob written by any path can be read by every other: a spill *is* a
checkpoint write, and a failover restore of a WARM shard is just a
decode of the blob the spill left behind.

Residency state machine (one shard, one owning worker)::

              spill (policy / budget)
        HOT ──────────────────────────▶ WARM
         ▲                               │
         └───────────────────────────────┘
              rehydrate (lazy on read/insert, or policy)

``HOT``  -- the live tree is in ``worker.shards``; full column arrays
resident.  ``WARM`` -- the tree has been released; only a
:class:`ColdEntry` (layer-map-style index record: bounding key, item
count, blob) remains, so routing and directory pruning keep working
and a query whose box misses the bounding key never touches the blob.
There is no third state: a rehydrate re-installs the decoded tree and
deletes the cold entry atomically (sim handlers are atomic), and a
crash drops both tiers -- WARM shards then restore from the checkpoint
blob the spill already wrote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..olap.keys import Box
from .wire import BoundingKey, shard_from_wire, shard_to_wire

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.base import ShardStore

__all__ = ["HOT", "WARM", "ColdEntry", "ShardStorage"]

#: residency tier names as published in the system image
HOT = "hot"
WARM = "warm"


@dataclass
class ColdEntry:
    """Layer-map index record for one spilled (WARM) shard.

    Keeps exactly what routing and planning need without the columns:
    the bounding key frozen at spill time (keys only grow on insert,
    and an insert rehydrates first, so the frozen key stays exact), the
    item count for stats/balancing, the pre-spill ``resident_bytes()``
    so policies can project how much memory a rehydrate will re-admit,
    and the encoded blob standing in for the on-disk frame.
    """

    shard_id: int
    key: BoundingKey
    items: int
    blob: bytes
    resident_estimate: int
    spilled_at: float

    @property
    def blob_bytes(self) -> int:
        return len(self.blob)

    @property
    def box(self) -> Box:
        """Single-box view of the bounding key (MBR of an MDS key)."""
        if isinstance(self.key, Box):
            return self.key
        return self.key.mbr()

    def intersects(self, box: Box) -> bool:
        """Directory pruning for WARM shards: does ``box`` touch this
        shard's data at all?  A miss means the shard contributes the
        empty aggregate and the blob is never read."""
        return self.box.intersects(box)


class ShardStorage:
    """One worker's blob codec plus its cold (WARM) shard index.

    The codec half (:meth:`encode` / :meth:`decode`) is the single
    funnel for all shard blobs -- checkpoint, restore, migrate,
    replica seed, spill, rehydrate.  The tier half (:meth:`spill` /
    :meth:`rehydrate`) moves shards between ``worker.shards`` (HOT)
    and :attr:`cold` (WARM), keeping the published system image in
    sync so servers keep routing to spilled shards.
    """

    def __init__(self, worker) -> None:
        self.worker = worker
        #: shard id -> :class:`ColdEntry` for every WARM shard
        self.cold: dict[int, ColdEntry] = {}
        # residency counters (exported as volap_residency_* gauges)
        self.spills = 0
        self.rehydrates = 0
        self.spilled_bytes = 0
        self.rehydrated_bytes = 0
        # codec counters: every blob any path produced/consumed
        self.blobs_encoded = 0
        self.blobs_decoded = 0

    # -- the unified blob codec ----------------------------------------

    def encode(self, store: "ShardStore") -> bytes:
        """Shard -> colframe blob (checkpoint/migrate/replica/spill)."""
        blob = shard_to_wire(store)
        self.blobs_encoded += 1
        return blob

    def decode(self, blob: bytes) -> "ShardStore":
        """Colframe blob -> live shard (restore/migrate-in/replica
        install/rehydrate)."""
        w = self.worker
        self.blobs_decoded += 1
        return shard_from_wire(w.store_cls, w.schema, blob, w.tree_config)

    # -- residency tier -------------------------------------------------

    def residency(self, shard_id: int) -> Optional[str]:
        if shard_id in self.worker.shards:
            return HOT
        if shard_id in self.cold:
            return WARM
        return None

    def warm_items(self) -> int:
        return sum(e.items for e in self.cold.values())

    def spill(self, shard_id: int) -> ColdEntry:
        """HOT -> WARM: encode the shard, release the columns.

        The blob doubles as the shard's checkpoint (written through to
        the checkpoint store when one is configured), which is why the
        periodic checkpoint pass skips WARM shards -- their blob on
        disk *is* the checkpoint.  Frozen shards (mid-migration) never
        spill; the transfer owns them.
        """
        w = self.worker
        store = w.shards.get(shard_id)
        if store is None:
            raise ValueError(f"shard {shard_id} is not HOT on worker {w.worker_id}")
        if shard_id in w.frozen:
            raise ValueError(f"shard {shard_id} is frozen; cannot spill")
        blob = self.encode(store)
        entry = ColdEntry(
            shard_id=shard_id,
            key=store.bounding_key(),
            items=len(store),
            blob=blob,
            resident_estimate=store.resident_bytes(),
            spilled_at=w.clock.now,
        )
        self.cold[shard_id] = entry
        del w.shards[shard_id]
        if w.checkpoints is not None:
            w.checkpoints.put(shard_id, blob, w.worker_id, w.clock.now)
        self.spills += 1
        self.spilled_bytes += len(blob)
        w._publish_shard(shard_id)
        return entry

    def rehydrate(self, shard_id: int) -> Optional["ShardStore"]:
        """WARM -> HOT: decode the blob, re-install the live tree.

        Idempotent: an already-HOT shard is returned as-is; an unknown
        shard returns ``None`` (it was dropped or migrated away between
        plan and dispatch).  Restores served by a rehydrate do *not*
        count as checkpoint deserializations -- the blob never left the
        worker.
        """
        w = self.worker
        entry = self.cold.pop(shard_id, None)
        if entry is None:
            return w.shards.get(shard_id)
        store = self.decode(entry.blob)
        w.shards[shard_id] = store
        self.rehydrates += 1
        self.rehydrated_bytes += entry.blob_bytes
        w._last_access[shard_id] = w.clock.now
        w._publish_shard(shard_id)
        return store

    def drop(self, shard_id: int) -> bool:
        """Forget a WARM shard's cold entry (ownership moved away)."""
        return self.cold.pop(shard_id, None) is not None

    def clear(self) -> None:
        """Crash: both tiers are lost (WARM blobs survive only in the
        checkpoint store, exactly like HOT shards' periodic blobs)."""
        self.cold.clear()

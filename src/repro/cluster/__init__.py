"""The distributed VOLAP system (simulated substrate; see DESIGN.md)."""

from ..obs import MetricsRegistry, Observability
from .client import ClientSession
from .cluster import ClusterConfig, VOLAPCluster
from .cost import CostModel
from .faults import (
    CheckpointStore,
    FaultInjector,
    FaultPlan,
    FaultRule,
    RetryPolicy,
)
from .image import LocalImage, ShardInfo
from .manager import BalancerPolicy, Manager
from .server import Server
from .simclock import ServicePool, SimClock
from .stats import ClusterStats, OpRecord
from .transport import Entity, LatencyModel, Message, Transport
from .wire import key_from_wire, key_to_wire
from .worker import Worker
from .zookeeper import Zookeeper

__all__ = [
    "BalancerPolicy",
    "CheckpointStore",
    "ClientSession",
    "ClusterConfig",
    "ClusterStats",
    "CostModel",
    "Entity",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "LatencyModel",
    "LocalImage",
    "Manager",
    "Message",
    "MetricsRegistry",
    "Observability",
    "OpRecord",
    "Server",
    "ServicePool",
    "ShardInfo",
    "SimClock",
    "Transport",
    "VOLAPCluster",
    "Worker",
    "key_from_wire",
    "key_to_wire",
    "Zookeeper",
]

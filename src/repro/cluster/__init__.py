"""The distributed VOLAP system (simulated substrate; see DESIGN.md)."""

from ..obs import MetricsRegistry, Observability
from .balancer import (
    BalancerPolicy,
    CostDrivenPolicy,
    MemoryPressurePolicy,
    MigrateAction,
    PlanAction,
    RehydrateAction,
    SpillAction,
    SplitAction,
    ThresholdPolicy,
    WorkerView,
)
from .client import ClientSession
from .cluster import ClusterConfig, VOLAPCluster
from .router import QueryResult, QueryRouter, RollupConfig
from .cost import CostModel
from .faults import (
    CheckpointStore,
    FaultInjector,
    FaultPlan,
    FaultRule,
    RetryPolicy,
)
from .image import LocalImage, ShardInfo
from .lifecycle import ShardOp, ShardOpMachine
from .manager import Manager
from .server import Server
from .simclock import ServicePool, SimClock
from .stats import ClusterStats, OpRecord
from .storage import HOT, WARM, ColdEntry, ShardStorage
from .transport import Entity, LatencyModel, Message, Transport
from .wire import key_from_wire, key_to_wire
from .worker import ShardTransfer, Worker
from .zookeeper import Zookeeper

__all__ = [
    "BalancerPolicy",
    "QueryResult",
    "QueryRouter",
    "RollupConfig",
    "CheckpointStore",
    "CostDrivenPolicy",
    "MemoryPressurePolicy",
    "MigrateAction",
    "PlanAction",
    "RehydrateAction",
    "SpillAction",
    "ShardOp",
    "ShardOpMachine",
    "ShardStorage",
    "ShardTransfer",
    "SplitAction",
    "ColdEntry",
    "HOT",
    "WARM",
    "ThresholdPolicy",
    "WorkerView",
    "ClientSession",
    "ClusterConfig",
    "ClusterStats",
    "CostModel",
    "Entity",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "LatencyModel",
    "LocalImage",
    "Manager",
    "Message",
    "MetricsRegistry",
    "Observability",
    "OpRecord",
    "Server",
    "ServicePool",
    "ShardInfo",
    "SimClock",
    "Transport",
    "VOLAPCluster",
    "Worker",
    "key_from_wire",
    "key_to_wire",
    "Zookeeper",
]

"""Fault injection and failure-handling primitives.

The paper's deployment (Sections III-B, IV) runs on EC2, where message
loss, latency spikes, and instance failure are routine.  This module
turns the simulated cluster into a testbed for those failure modes:

* :class:`FaultPlan` / :class:`FaultInjector` -- a seeded, declarative
  description of network faults (drop, duplicate, delay-spike,
  partition) scoped to entity-name patterns, message kinds, and
  virtual-time windows.  Installed on a :class:`~.transport.Transport`
  via ``transport.faults``; when absent the transport's behaviour is
  byte-identical to the fault-free code path.
* :class:`RetryPolicy` -- timeouts, bounded retries, and exponential
  backoff with jitter shared by client sessions and servers.
* :class:`CheckpointStore` -- a durable blob store (EBS/S3 stand-in)
  holding periodic shard checkpoints that the manager replays onto
  surviving workers after a failure.

Everything is deterministic: injectors and retry jitter draw from their
own seeded generators, so a chaos run replays exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Optional

import numpy as np

__all__ = ["FaultRule", "FaultPlan", "FaultInjector", "RetryPolicy", "CheckpointStore"]


def _match(pattern: Optional[str], name: Optional[str]) -> bool:
    """Entity-name match; ``None`` pattern matches anything, but a
    concrete pattern never matches an unnamed sender."""
    if pattern is None:
        return True
    if name is None:
        return False
    return fnmatch(name, pattern)


@dataclass(frozen=True)
class FaultRule:
    """One injected fault, scoped by endpoints, kinds, and a window."""

    action: str  # "drop" | "duplicate" | "delay" | "partition"
    prob: float = 1.0
    src: Optional[str] = None  # fnmatch pattern on sender name
    dst: Optional[str] = None  # fnmatch pattern on destination name
    kinds: Optional[frozenset] = None
    start: float = 0.0
    end: float = float("inf")
    extra_delay: float = 0.0  # for "delay" rules

    def matches(
        self,
        now: float,
        src_name: Optional[str],
        dst_name: Optional[str],
        kind: str,
    ) -> bool:
        if not (self.start <= now < self.end):
            return False
        if self.kinds is not None and kind not in self.kinds:
            return False
        if self.action == "partition":
            # bidirectional: either orientation of the (src, dst) pair
            return (
                _match(self.src, src_name) and _match(self.dst, dst_name)
            ) or (_match(self.src, dst_name) and _match(self.dst, src_name))
        return _match(self.src, src_name) and _match(self.dst, dst_name)


class FaultPlan:
    """A declarative, ordered list of fault rules (builder style)."""

    def __init__(self) -> None:
        self.rules: list[FaultRule] = []

    def _add(self, rule: FaultRule) -> "FaultPlan":
        self.rules.append(rule)
        return self

    def drop(
        self,
        prob: float,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        kinds: Optional[set] = None,
        start: float = 0.0,
        end: float = float("inf"),
    ) -> "FaultPlan":
        """Drop matching messages with probability ``prob``."""
        return self._add(
            FaultRule(
                "drop", prob, src, dst,
                frozenset(kinds) if kinds else None, start, end,
            )
        )

    def duplicate(
        self,
        prob: float,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        kinds: Optional[set] = None,
        start: float = 0.0,
        end: float = float("inf"),
    ) -> "FaultPlan":
        """Deliver a second copy of matching messages with ``prob``."""
        return self._add(
            FaultRule(
                "duplicate", prob, src, dst,
                frozenset(kinds) if kinds else None, start, end,
            )
        )

    def delay(
        self,
        prob: float,
        extra: float,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        kinds: Optional[set] = None,
        start: float = 0.0,
        end: float = float("inf"),
    ) -> "FaultPlan":
        """Add a latency spike of ``extra`` seconds with ``prob``;
        spiked messages are reordered past later traffic."""
        return self._add(
            FaultRule(
                "delay", prob, src, dst,
                frozenset(kinds) if kinds else None, start, end,
                extra_delay=extra,
            )
        )

    def partition(
        self,
        a: str,
        b: str,
        start: float = 0.0,
        end: float = float("inf"),
    ) -> "FaultPlan":
        """Drop all traffic between name patterns ``a`` and ``b`` (both
        directions) during ``[start, end)``."""
        return self._add(FaultRule("partition", 1.0, a, b, None, start, end))

    def isolate(
        self, name: str, start: float = 0.0, end: float = float("inf")
    ) -> "FaultPlan":
        """Cut one entity off from everything during ``[start, end)``."""
        return self._add(FaultRule("partition", 1.0, name, None, None, start, end))


class FaultInjector:
    """Applies a :class:`FaultPlan` to a transport's deliveries.

    ``plan_delivery`` returns the list of extra delays for each copy of
    a message to deliver: ``[]`` means dropped, ``[0.0]`` is a normal
    delivery, ``[0.0, 0.0]`` a duplicate, and non-zero entries are
    latency spikes.  Decisions draw from a dedicated seeded generator,
    independent of the transport's latency jitter stream.
    """

    def __init__(self, plan: FaultPlan, clock, seed: int = 0):
        self.plan = plan
        self.clock = clock
        self.rng = np.random.default_rng(seed)
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def plan_delivery(self, msg, dst) -> list:
        now = self.clock.now
        src_name = msg.sender.name if msg.sender is not None else None
        dst_name = getattr(dst, "name", None)
        copies = [0.0]
        for rule in self.plan.rules:
            if not rule.matches(now, src_name, dst_name, msg.kind):
                continue
            if rule.prob < 1.0 and self.rng.random() >= rule.prob:
                continue
            if rule.action in ("drop", "partition"):
                self.dropped += 1
                return []
            if rule.action == "duplicate":
                self.duplicated += 1
                copies.append(0.0)
            elif rule.action == "delay":
                self.delayed += 1
                copies = [c + rule.extra_delay for c in copies]
        return copies

    def blocked(self, src_name: str, dst_name: str, kind: str = "") -> bool:
        """Would a message between these endpoints be partitioned away?

        Checks only deterministic (``prob == 1``) partition rules and
        draws nothing from the generator, so probing it never perturbs
        the fault stream.  Used to gate side channels that bypass the
        transport -- most importantly the workers' synchronous Zookeeper
        heartbeat writes, which must stop when the worker is partitioned
        from the coordination service.
        """
        now = self.clock.now
        for rule in self.plan.rules:
            if (
                rule.action == "partition"
                and rule.prob >= 1.0
                and rule.matches(now, src_name, dst_name, kind)
            ):
                return True
        return False


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout / retry / backoff parameters for the request path.

    Defaults are deliberately generous relative to simulated latencies
    (microseconds to milliseconds) so the healthy path never trips a
    timer; chaos tests override them with tight values.
    """

    #: client: per-operation timeout before a retransmit
    timeout: float = 60.0
    #: client: total attempts (first send included) before giving up
    max_attempts: int = 4
    #: server: per-insert timeout before re-routing
    insert_timeout: float = 30.0
    #: server: re-routes (nack- or timeout-triggered) before insert_failed
    max_insert_retries: int = 5
    #: server: per-query worker deadline before a degraded reply
    query_deadline: float = 30.0
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.02

    def backoff(self, attempt: int, rng: np.random.Generator) -> float:
        """Exponential backoff with jitter for retry ``attempt`` (1-based)."""
        d = self.backoff_base * self.backoff_factor ** max(0, attempt - 1)
        if self.backoff_jitter > 0:
            d += float(rng.uniform(0.0, self.backoff_jitter))
        return d


class CheckpointStore:
    """Durable shard checkpoints (stand-in for EBS/S3 blobs).

    Workers overwrite their shards' blobs on a periodic tick; after a
    worker failure the manager replays the latest blob of each lost
    shard onto a surviving worker.  Data inserted after the last
    checkpoint is lost -- exactly the recovery-point semantics of
    periodic snapshots.
    """

    def __init__(self) -> None:
        #: shard_id -> (blob, worker_id, checkpoint_time)
        self._blobs: dict[int, tuple[bytes, int, float]] = {}
        self.puts = 0

    def put(self, shard_id: int, blob: bytes, worker_id: int, time: float) -> None:
        self._blobs[shard_id] = (blob, worker_id, time)
        self.puts += 1

    def get(self, shard_id: int) -> Optional[tuple[bytes, int, float]]:
        return self._blobs.get(shard_id)

    def drop(self, shard_id: int) -> None:
        self._blobs.pop(shard_id, None)

    def __len__(self) -> int:
        return len(self._blobs)

    def shard_ids(self) -> list[int]:
        return sorted(self._blobs)

"""Worker nodes: shard storage and the split/migration protocol.

Paper Sections III-A and III-E.  A worker stores several shards (each a
Hilbert PDC tree by default), executes insert and aggregate-query
operations against them on a simulated ``k``-thread pool, and supports
the load balancer's operations:

* ``split_shard`` -- SplitQuery to find a balancing hyperplane, Split to
  partition the shard, a *mapping table* entry so in-flight operations
  addressed to the old shard reach its children, and an *insertion
  queue* absorbing new items while the split runs (queried alongside
  the shard, so query processing is never interrupted);
* ``migrate_shard`` -- SerializeShard, network transfer (latency paid by
  blob size), DeserializeShard at the destination, queue hand-off, and
  a Zookeeper update that re-points servers at the new owner.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.aggregates import Aggregate
from ..core.base import Hyperplane, ShardStore
from ..core.config import OpStats, TreeConfig
from ..core.hilbert_trees import HilbertPDCTree
from ..olap.keys import Box
from ..olap.records import RecordBatch, concat_batches
from ..olap.schema import Schema
from .cost import CostModel
from .simclock import ServicePool, SimClock
from .wire import key_to_wire
from .transport import Entity, Message, Transport
from .zookeeper import Zookeeper

__all__ = ["Worker"]


class Worker(Entity):
    """One worker node of the VOLAP cluster."""

    def __init__(
        self,
        worker_id: int,
        clock: SimClock,
        transport: Transport,
        zk: Zookeeper,
        schema: Schema,
        tree_config: Optional[TreeConfig] = None,
        threads: int = 8,
        cost: Optional[CostModel] = None,
        store_cls: type[ShardStore] = HilbertPDCTree,
    ):
        self.worker_id = worker_id
        self.name = f"worker-{worker_id}"
        self.clock = clock
        self.transport = transport
        self.zk = zk
        self.schema = schema
        self.tree_config = tree_config if tree_config is not None else TreeConfig()
        self.pool = ServicePool(clock, threads)
        self.cost = cost if cost is not None else CostModel()
        self.store_cls = store_cls
        self.shards: dict[int, ShardStore] = {}
        #: per-shard insertion queues, live while a split/migration runs
        self.queues: dict[int, ShardStore] = {}
        #: mapping table: old shard id -> (hyperplane, low id, high id)
        self.mapping: dict[int, tuple[Hyperplane, int, int]] = {}
        self.frozen: set[int] = set()
        self.inserts_done = 0
        self.queries_done = 0

    # -- sizes ------------------------------------------------------------

    def total_items(self) -> int:
        return sum(len(s) for s in self.shards.values()) + sum(
            len(q) for q in self.queues.values()
        )

    def publish_stats(self) -> None:
        """Push per-shard and total sizes to Zookeeper (paper III-B)."""
        self.zk.set(
            f"/stats/workers/{self.worker_id}",
            {
                "items": self.total_items(),
                "shards": {sid: len(s) for sid, s in self.shards.items()},
                "backlog": self.pool.backlog,
            },
        )

    # -- shard id resolution through the mapping table -----------------------

    def _resolve_insert(self, shard_id: int, coords: np.ndarray) -> int:
        while shard_id in self.mapping:
            plane, low, high = self.mapping[shard_id]
            shard_id = low if coords[plane.dim] <= plane.value else high
        return shard_id

    def _resolve_query(self, shard_id: int) -> list[int]:
        if shard_id in self.mapping:
            _, low, high = self.mapping[shard_id]
            return self._resolve_query(low) + self._resolve_query(high)
        return [shard_id]

    # -- message handling ----------------------------------------------------

    def receive(self, msg: Message) -> None:
        handler = getattr(self, f"_on_{msg.kind}", None)
        if handler is None:
            raise ValueError(f"{self.name}: unknown message {msg.kind!r}")
        handler(msg)

    # insert ------------------------------------------------------------

    def _on_insert(self, msg: Message) -> None:
        shard_id, coords, measure, token, reply_to = msg.payload
        sid = self._resolve_insert(shard_id, coords)
        if sid in self.frozen:
            stats = self.queues[sid].insert(coords, measure)
        elif sid in self.shards:
            stats = self.shards[sid].insert(coords, measure)
        else:
            # Shard moved away entirely; a stale route. Reject so the
            # server can retry against its refreshed image.
            self.transport.send(
                reply_to, Message("insert_nack", (token, shard_id))
            )
            return
        self.inserts_done += 1
        service = self.cost.insert_time(stats)
        self.pool.submit(
            service,
            lambda: self.transport.send(
                reply_to, Message("insert_ack", (token, self.worker_id))
            ),
        )

    def _on_bulk_insert(self, msg: Message) -> None:
        shard_id, batch, token, reply_to = msg.payload
        # split rows among mapped children if necessary
        groups: dict[int, list[int]] = {}
        for i in range(len(batch)):
            sid = self._resolve_insert(shard_id, batch.coords[i])
            groups.setdefault(sid, []).append(i)
        for sid, rows in groups.items():
            sub = batch.take(np.array(rows))
            target = (
                self.queues[sid]
                if sid in self.frozen
                else self.shards.get(sid)
            )
            if target is None:
                continue
            self._bulk_into(sid, target, sub, frozen=sid in self.frozen)
        self.inserts_done += len(batch)
        service = self.cost.bulk_time(len(batch))
        self.pool.submit(
            service,
            lambda: self.transport.send(
                reply_to, Message("bulk_ack", (token, self.worker_id))
            ),
        )

    def _bulk_into(
        self, sid: int, store: ShardStore, batch: RecordBatch, frozen: bool
    ) -> None:
        """Vectorised merge for big batches, point inserts for small ones."""
        if len(batch) > max(64, len(store) // 4) and not frozen:
            merged = concat_batches(
                [store.items(), batch], self.schema.num_dims
            )
            self.shards[sid] = self.store_cls.from_batch(
                self.schema, merged, self.tree_config
            )
        else:
            for coords, m in batch.iter_rows():
                store.insert(coords, m)

    # query ---------------------------------------------------------------

    def _on_query(self, msg: Message) -> None:
        token, shard_ids, box_t, reply_to = msg.payload
        box = Box.from_tuple(box_t)
        agg = Aggregate.empty()
        total_stats = OpStats()
        searched = 0
        for requested in shard_ids:
            for sid in self._resolve_query(requested):
                store = self.shards.get(sid)
                if store is not None:
                    sub, stats = store.query(box)
                    agg.merge(sub)
                    total_stats.merge(stats)
                    searched += 1
                queue = self.queues.get(sid)
                if queue is not None and len(queue):
                    sub, stats = queue.query(box)
                    agg.merge(sub)
                    total_stats.merge(stats)
        self.queries_done += 1
        service = self.cost.query_time(total_stats)
        self.pool.submit(
            service,
            lambda: self.transport.send(
                reply_to,
                Message(
                    "query_result",
                    (token, agg.to_tuple(), searched, self.worker_id),
                ),
            ),
        )

    # split (manager-initiated) ------------------------------------------

    def _on_split_shard(self, msg: Message) -> None:
        shard_id, new_low, new_high, reply_to = msg.payload
        store = self.shards.get(shard_id)
        if store is None or shard_id in self.frozen or len(store) < 2:
            self.transport.send(
                reply_to, Message("split_failed", (shard_id, self.worker_id))
            )
            return
        # Freeze: new inserts go to the insertion queue; queries keep
        # hitting the shard plus the queue.
        self.frozen.add(shard_id)
        self.queues[shard_id] = self.store_cls(self.schema, self.tree_config)
        try:
            plane = store.split_query()
        except ValueError:
            self.frozen.discard(shard_id)
            self._drain_queue_into(shard_id, store)
            del self.queues[shard_id]
            self.transport.send(
                reply_to, Message("split_failed", (shard_id, self.worker_id))
            )
            return
        service = self.cost.split_time(len(store))

        def finish() -> None:
            low, high = store.split(plane)
            self.shards[new_low] = low
            self.shards[new_high] = high
            self.mapping[shard_id] = (plane, new_low, new_high)
            del self.shards[shard_id]
            # drain the queue through the mapping (reaches the children)
            queue = self.queues.pop(shard_id)
            self.frozen.discard(shard_id)
            for coords, m in queue.items().iter_rows():
                sid = self._resolve_insert(shard_id, coords)
                self.shards[sid].insert(coords, m)
            self._publish_shard(new_low)
            self._publish_shard(new_high)
            self.zk.delete(f"/shards/{shard_id}")
            self.transport.send(
                reply_to,
                Message(
                    "split_done",
                    (shard_id, new_low, new_high, self.worker_id),
                ),
            )

        self.pool.submit(service, finish)

    def _drain_queue_into(self, shard_id: int, store: ShardStore) -> None:
        queue = self.queues.get(shard_id)
        if queue is None:
            return
        for coords, m in queue.items().iter_rows():
            store.insert(coords, m)

    # migration --------------------------------------------------------------

    def _on_migrate_shard(self, msg: Message) -> None:
        shard_id, dst, reply_to = msg.payload  # dst is a Worker entity
        store = self.shards.get(shard_id)
        if store is None or shard_id in self.frozen:
            self.transport.send(
                reply_to, Message("migrate_failed", (shard_id, self.worker_id))
            )
            return
        self.frozen.add(shard_id)
        self.queues[shard_id] = self.store_cls(self.schema, self.tree_config)
        blob = store.serialize()
        service = self.cost.serialize_time(len(store))

        def send_blob() -> None:
            self.transport.send(
                dst,
                Message(
                    "migrate_in",
                    (shard_id, blob, self, reply_to),
                    size=len(blob),
                ),
            )

        self.pool.submit(service, send_blob)

    def _on_migrate_in(self, msg: Message) -> None:
        shard_id, blob, src, reply_to = msg.payload
        store = self.store_cls.deserialize(self.schema, blob, self.tree_config)
        service = self.cost.deserialize_time(len(store))

        def ready() -> None:
            self.shards[shard_id] = store
            self.transport.send(
                src, Message("migrate_ready", (shard_id, self, reply_to))
            )

        self.pool.submit(service, ready)

    def _on_migrate_ready(self, msg: Message) -> None:
        shard_id, dst, reply_to = msg.payload
        # Hand off anything queued during the transfer, then cut over.
        queue = self.queues.pop(shard_id, None)
        self.frozen.discard(shard_id)
        old = self.shards.pop(shard_id, None)
        if queue is not None and len(queue):
            self.transport.send(
                dst,
                Message(
                    "queue_transfer",
                    (shard_id, queue.items(), dst),
                    size=len(queue) * 72,
                ),
            )
        info_key = (
            old.bounding_key()
            if old is not None
            else Box.empty(self.schema.num_dims)
        )
        self.zk.set(
            f"/shards/{shard_id}",
            (
                shard_id,
                key_to_wire(info_key),
                dst.worker_id,
                len(old) if old is not None else 0,
            ),
        )
        self.transport.send(
            reply_to,
            Message(
                "migrate_done", (shard_id, self.worker_id, dst.worker_id)
            ),
        )

    def _on_queue_transfer(self, msg: Message) -> None:
        shard_id, batch, _ = msg.payload
        store = self.shards.get(shard_id)
        if store is None:  # pragma: no cover - defensive
            return
        for coords, m in batch.iter_rows():
            store.insert(coords, m)

    # -- zookeeper helpers -----------------------------------------------------

    def _publish_shard(self, shard_id: int) -> None:
        store = self.shards[shard_id]
        self.zk.set(
            f"/shards/{shard_id}",
            (
                shard_id,
                key_to_wire(store.bounding_key()),
                self.worker_id,
                len(store),
            ),
        )

    def install_shard(self, shard_id: int, store: ShardStore) -> None:
        """Bootstrap helper: place a pre-built shard on this worker."""
        self.shards[shard_id] = store
        self._publish_shard(shard_id)

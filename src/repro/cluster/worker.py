"""Worker nodes: shard storage and the split/migration protocol.

Paper Sections III-A and III-E.  A worker stores several shards (each a
Hilbert PDC tree by default), executes insert and aggregate-query
operations against them on a simulated ``k``-thread pool, and supports
the load balancer's operations:

* ``split_shard`` -- SplitQuery to find a balancing hyperplane, Split to
  partition the shard, a *mapping table* entry so in-flight operations
  addressed to the old shard reach its children, and an *insertion
  queue* absorbing new items while the split runs (queried alongside
  the shard, so query processing is never interrupted);
* ``migrate_shard`` -- SerializeShard, network transfer (latency paid by
  blob size), DeserializeShard at the destination, queue hand-off, and
  a Zookeeper update that re-points servers at the new owner.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.aggregates import Aggregate
from ..core.base import Hyperplane, ShardStore
from ..core.config import OpStats, TreeConfig
from ..core.hilbert_trees import HilbertPDCTree
from ..obs.metrics import DEFAULT_COUNT_BUCKETS
from ..olap.keys import Box
from ..olap.records import RecordBatch, concat_batches
from ..olap.schema import Schema
from .cost import CostModel
from .faults import CheckpointStore
from .lifecycle import CUTOVER, INSTALLING, TRANSFERRING
from .simclock import ServicePool, SimClock
from .wire import QUERY_ROW_WIRE_BYTES, key_to_wire
from .transport import Entity, Message, Transport
from .zookeeper import Zookeeper

__all__ = ["ShardTransfer", "Worker"]


class ShardTransfer:
    """The shared mechanics of every shard reorganisation on a worker.

    Split, outbound/inbound migration, queue hand-off, abort and
    restore all reduce to the same few moves -- freeze a shard behind a
    fresh insertion queue, drain that queue somewhere, update the
    mapping table, install and publish stores, re-point the Zookeeper
    image -- and each protocol handler used to carry its own copy.
    The handlers on :class:`Worker` now only parse messages and send
    replies; the mechanics live here, once.

    Every move also announces its phase (the state names of
    :mod:`repro.cluster.lifecycle`) under ``/lifecycle/<shard>``:
    best-effort observability that the manager folds into its
    :class:`~repro.cluster.lifecycle.ShardOpMachine`.  Nothing watches
    the prefix, so announcing schedules no events and cannot perturb
    the simulation.
    """

    def __init__(self, worker: "Worker"):
        self.w = worker

    # -- phase announcements (observability only) --------------------------

    def announce(self, shard_id: int, state: str) -> None:
        self.w.zk.set(f"/lifecycle/{shard_id}", (state, self.w.worker_id))

    def finish(self, shard_id: int) -> None:
        self.w.zk.delete(f"/lifecycle/{shard_id}")

    # -- freeze / unwind ---------------------------------------------------

    def begin(self, shard_id: int, min_items: int = 0) -> Optional[ShardStore]:
        """Freeze ``shard_id`` behind a fresh insertion queue and return
        its store -- or ``None``, changing nothing, when the shard is
        absent, already frozen, or smaller than ``min_items``.  New
        inserts land in the queue; queries keep hitting the shard plus
        the queue, so query processing is never interrupted."""
        w = self.w
        store = w.shards.get(shard_id)
        if store is None or shard_id in w.frozen or len(store) < min_items:
            return None
        w.frozen.add(shard_id)
        w.queues[shard_id] = w.store_cls(w.schema, w.tree_config)
        self.announce(shard_id, TRANSFERRING)
        return store

    def cancel(self, shard_id: int) -> None:
        """Unwind a frozen shard: unfreeze it and fold its insertion
        queue back in (nothing was handed off, so nothing is lost)."""
        w = self.w
        store = w.shards.get(shard_id)
        w.frozen.discard(shard_id)
        if store is not None:
            self.drain_into(shard_id, store)
        w.queues.pop(shard_id, None)
        self.finish(shard_id)

    def drain_into(self, shard_id: int, store: ShardStore) -> None:
        """Fold ``shard_id``'s insertion queue into ``store``."""
        queue = self.w.queues.get(shard_id)
        if queue is None:
            return
        for coords, m in queue.items().iter_rows():
            store.insert(coords, m)

    def absorb(self, shard_id: int, batch: RecordBatch) -> None:
        """Fold a handed-off insertion queue into an installed shard."""
        store = self.w.shards.get(shard_id)
        if store is None:  # pragma: no cover - defensive
            return
        for coords, m in batch.iter_rows():
            store.insert(coords, m)

    # -- cut-over ----------------------------------------------------------

    def split_cutover(
        self,
        shard_id: int,
        store: ShardStore,
        plane: Hyperplane,
        low_id: int,
        high_id: int,
    ) -> None:
        """Split ``store``, install the children, record the
        mapping-table entry, drain the insertion queue through it (rows
        reach whichever child they belong to), and re-point the system
        image at the children."""
        w = self.w
        self.announce(shard_id, CUTOVER)
        low, high = store.split(plane)
        w.shards[low_id] = low
        w.shards[high_id] = high
        w.mapping[shard_id] = (plane, low_id, high_id)
        del w.shards[shard_id]
        queue = w.queues.pop(shard_id)
        w.frozen.discard(shard_id)
        for coords, m in queue.items().iter_rows():
            sid = w._resolve_insert(shard_id, coords)
            w.shards[sid].insert(coords, m)
        w._publish_shard(low_id)
        w._publish_shard(high_id)
        w.zk.delete(f"/shards/{shard_id}")
        if w.checkpoints is not None:
            w.checkpoints.drop(shard_id)  # parent id no longer exists
        self.finish(shard_id)

    def install(self, shard_id: int, store: ShardStore, publish: bool) -> None:
        """Install a deserialized shard.  Restores publish immediately;
        an inbound migration does not (the source still owns the image
        until its cut-over re-points it here)."""
        w = self.w
        w.shards[shard_id] = store
        if publish:
            w._publish_shard(shard_id)
            self.finish(shard_id)

    def cutover_out(self, shard_id: int, dst: "Worker") -> Optional[ShardStore]:
        """Source-side migration cut-over: hand the insertion queue off
        to ``dst``, release local ownership, and re-point the system
        image; returns the store that moved away."""
        w = self.w
        self.announce(shard_id, CUTOVER)
        queue = w.queues.pop(shard_id, None)
        w.frozen.discard(shard_id)
        old = w.shards.pop(shard_id, None)
        if queue is not None and len(queue):
            w.transport.send(
                dst,
                Message(
                    "queue_transfer",
                    (shard_id, queue.items(), dst),
                    size=len(queue) * 72,
                    sender=w,
                ),
            )
        info_key = (
            old.bounding_key()
            if old is not None
            else Box.empty(w.schema.num_dims)
        )
        w.zk.set(
            f"/shards/{shard_id}",
            (
                shard_id,
                key_to_wire(info_key),
                dst.worker_id,
                len(old) if old is not None else 0,
            ),
        )
        self.finish(shard_id)
        return old


class Worker(Entity):
    """One worker node of the VOLAP cluster."""

    def __init__(
        self,
        worker_id: int,
        clock: SimClock,
        transport: Transport,
        zk: Zookeeper,
        schema: Schema,
        tree_config: Optional[TreeConfig] = None,
        threads: int = 8,
        cost: Optional[CostModel] = None,
        store_cls: type[ShardStore] = HilbertPDCTree,
    ):
        self.worker_id = worker_id
        self.name = f"worker-{worker_id}"
        self.clock = clock
        self.transport = transport
        self.zk = zk
        self.schema = schema
        self.tree_config = tree_config if tree_config is not None else TreeConfig()
        self.pool = ServicePool(clock, threads)
        self.cost = cost if cost is not None else CostModel()
        self.store_cls = store_cls
        self.shards: dict[int, ShardStore] = {}
        #: the one implementation of the transfer mechanics every
        #: split/migrate/restore handler goes through
        self.transfer = ShardTransfer(self)
        #: per-shard insertion queues, live while a split/migration runs
        self.queues: dict[int, ShardStore] = {}
        #: mapping table: old shard id -> (hyperplane, low id, high id)
        self.mapping: dict[int, tuple[Hyperplane, int, int]] = {}
        self.frozen: set[int] = set()
        self.inserts_done = 0
        self.queries_done = 0
        # -- failure handling state --------------------------------------
        self.crashed = False
        #: bumped on crash/restart; pending pool callbacks from an older
        #: epoch are discarded (a dead process does not send acks)
        self._epoch = 0
        #: idempotency tokens of inserts already applied (dedup)
        self._seen_ops: set = set()
        self.dedup_hits = 0
        self.checkpoints: Optional[CheckpointStore] = None
        self.heartbeat_period: Optional[float] = None
        self.heartbeat_ttl: Optional[float] = None

    # -- crash / restart ---------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: lose all in-memory state and stop processing.

        Heartbeats cease (the ephemeral znode expires), pending service
        completions are discarded, and every incoming message is
        black-holed until :meth:`restart`.
        """
        self.crashed = True
        self._epoch += 1
        self.shards.clear()
        self.queues.clear()
        self.mapping.clear()
        self.frozen.clear()
        self._seen_ops.clear()

    def restart(self) -> None:
        """Rejoin empty; shards come back via manager-driven restores."""
        if not self.crashed:
            return
        self.crashed = False
        self._epoch += 1
        self.publish_stats()
        self._beat()

    def _submit(self, service: float, fn) -> None:
        """Pool submit whose completion is void if the worker crashed."""
        epoch = self._epoch
        self.pool.submit(
            service, lambda: fn() if self._epoch == epoch else None
        )

    # -- heartbeats / checkpoints -----------------------------------------

    def _beat(self) -> None:
        if self.crashed or self.heartbeat_period is None:
            return
        self.zk.set_ephemeral(
            f"/heartbeats/{self.worker_id}", self.clock.now, self.heartbeat_ttl
        )

    def start_heartbeat(self, period: float, ttl: Optional[float] = None) -> None:
        """Publish liveness as an ephemeral znode refreshed every
        ``period`` seconds; it expires ``ttl`` seconds after the last
        refresh (default: 3 missed beats)."""
        self.heartbeat_period = period
        self.heartbeat_ttl = ttl if ttl is not None else 3 * period
        self._beat()
        self.clock.every(period, self._beat)

    def start_checkpoints(self, period: float, store: CheckpointStore) -> None:
        """Serialize every settled shard to ``store`` each ``period``."""
        self.checkpoints = store

        def tick() -> None:
            if not self.crashed:
                self.checkpoint()

        self.clock.every(period, tick)

    def checkpoint(self) -> None:
        """Write the latest blob of each non-frozen shard."""
        if self.checkpoints is None:
            return
        total = 0
        for sid, store in list(self.shards.items()):
            if sid in self.frozen:
                continue
            self.checkpoints.put(
                sid, store.serialize(), self.worker_id, self.clock.now
            )
            total += len(store)
        if total:
            # background serialization occupies a thread but sends nothing
            self._submit(self.cost.serialize_time(total), lambda: None)

    # -- sizes ------------------------------------------------------------

    def total_items(self) -> int:
        return sum(len(s) for s in self.shards.values()) + sum(
            len(q) for q in self.queues.values()
        )

    def publish_stats(self) -> None:
        """Push per-shard and total sizes to Zookeeper (paper III-B)."""
        if self.crashed:
            return
        self.zk.set(
            f"/stats/workers/{self.worker_id}",
            {
                "items": self.total_items(),
                "shards": {sid: len(s) for sid, s in self.shards.items()},
                "backlog": self.pool.backlog,
            },
        )

    # -- shard id resolution through the mapping table -----------------------

    def _resolve_insert(self, shard_id: int, coords: np.ndarray) -> int:
        while shard_id in self.mapping:
            plane, low, high = self.mapping[shard_id]
            shard_id = low if coords[plane.dim] <= plane.value else high
        return shard_id

    def _resolve_query(self, shard_id: int) -> list[int]:
        # iterative (stack pushes high then low, so leaves come out
        # low-first, matching the old recursion): long split chains
        # must not hit Python's recursion limit
        out: list[int] = []
        stack = [shard_id]
        while stack:
            sid = stack.pop()
            entry = self.mapping.get(sid)
            if entry is None:
                out.append(sid)
            else:
                _, low, high = entry
                stack.append(high)
                stack.append(low)
        return out

    # -- message handling ----------------------------------------------------

    def receive(self, msg: Message) -> None:
        if self.crashed:
            return  # a dead process neither reads nor replies
        handler = getattr(self, f"_on_{msg.kind}", None)
        if handler is None:
            raise ValueError(f"{self.name}: unknown message {msg.kind!r}")
        handler(msg)

    # insert ------------------------------------------------------------

    def _on_insert(self, msg: Message) -> None:
        shard_id, coords, measure, token, op_id, reply_to = msg.payload
        obs = self.transport.obs
        if op_id and op_id in self._seen_ops:
            # duplicated or retransmitted insert: already applied, so
            # just re-ack (exactly-once effect under at-least-once sends)
            self.dedup_hits += 1
            self.transport.send(
                reply_to,
                Message("insert_ack", (token, self.worker_id), sender=self),
            )
            return
        span = None
        if obs is not None:
            span = obs.start_span(
                "worker.apply_insert", self.name, parent=msg.ctx, op_id=op_id
            )
        sid = self._resolve_insert(shard_id, coords)
        if sid in self.frozen:
            target = self.queues[sid]
        elif sid in self.shards:
            target = self.shards[sid]
        else:
            # Shard moved away entirely; a stale route. Reject so the
            # server can retry against its refreshed image.
            if obs is not None:
                obs.finish_span(span, ok=False, nack=True)
            self.transport.send(
                reply_to, Message("insert_nack", (token, shard_id), sender=self)
            )
            return
        tspan = None
        if obs is not None:
            tspan = obs.start_span(
                "tree.insert",
                self.name,
                parent=span.ctx if span is not None else None,
                shard=sid,
            )
        stats = target.insert(coords, measure)
        if op_id:
            self._seen_ops.add(op_id)
        self.inserts_done += 1
        service = self.cost.insert_time(stats)

        def ack() -> None:
            if obs is not None:
                obs.record_tree_op("insert", stats)
                obs.finish_span(tspan, nodes=stats.nodes_visited)
                obs.finish_span(span, ok=True)
            self.transport.send(
                reply_to,
                Message("insert_ack", (token, self.worker_id), sender=self),
            )

        self._submit(service, ack)

    def _on_insert_batch(self, msg: Message) -> None:
        """Apply a batched online insert (paper's high-velocity path).

        Each row keeps its own idempotency ``op_id``: rows already seen
        are re-acked without applying (a retransmitted or duplicated
        batch is harmless), rows whose shard moved away are nacked
        individually, and the rest are grouped per resolved shard and
        applied through :meth:`ShardStore.insert_batch` -- so the tree
        sees one Hilbert-sorted run sequence, not ``n`` point inserts.
        """
        entries, reply_to = msg.payload
        obs = self.transport.obs
        acked: list[int] = []
        nacked: list[tuple[int, int]] = []
        row_spans: list = []
        groups: dict[int, list[tuple[np.ndarray, float]]] = {}
        for shard_id, coords, measure, token, op_id, ctx in entries:
            if op_id and op_id in self._seen_ops:
                self.dedup_hits += 1
                acked.append(token)
                continue
            sid = self._resolve_insert(shard_id, coords)
            if sid not in self.frozen and sid not in self.shards:
                nacked.append((token, shard_id))
                continue
            if obs is not None:
                row_spans.append(
                    obs.start_span(
                        "worker.apply_insert",
                        self.name,
                        parent=ctx,
                        op_id=op_id,
                        batched=True,
                    )
                )
            groups.setdefault(sid, []).append((coords, measure))
            if op_id:
                self._seen_ops.add(op_id)
            acked.append(token)
        applied = 0
        stats = OpStats()
        for sid, rows in groups.items():
            batch = RecordBatch(
                np.array([c for c, _ in rows], dtype=np.int64),
                np.array([m for _, m in rows], dtype=np.float64),
            )
            target = (
                self.queues[sid] if sid in self.frozen else self.shards[sid]
            )
            stats.merge(target.insert_batch(batch))
            applied += len(rows)
        self.inserts_done += applied
        service = self.cost.insert_batch_time(applied, stats)

        def ack() -> None:
            if obs is not None:
                if applied:
                    obs.record_tree_op("insert_batch", stats, rows=applied)
                for s in row_spans:
                    obs.finish_span(s, ok=True)
            self.transport.send(
                reply_to,
                Message(
                    "insert_batch_ack",
                    (acked, self.worker_id, nacked),
                    sender=self,
                ),
            )

        self._submit(service, ack)

    def _on_bulk_insert(self, msg: Message) -> None:
        shard_id, batch, token, reply_to = msg.payload
        if token and token in self._seen_ops:
            self.dedup_hits += 1
            self.transport.send(
                reply_to,
                Message("bulk_ack", (token, self.worker_id), sender=self),
            )
            return
        if token:
            self._seen_ops.add(token)
        # split rows among mapped children if necessary
        groups: dict[int, list[int]] = {}
        for i in range(len(batch)):
            sid = self._resolve_insert(shard_id, batch.coords[i])
            groups.setdefault(sid, []).append(i)
        for sid, rows in groups.items():
            sub = batch.take(np.array(rows))
            target = (
                self.queues[sid]
                if sid in self.frozen
                else self.shards.get(sid)
            )
            if target is None:
                continue
            self._bulk_into(sid, target, sub, frozen=sid in self.frozen)
        self.inserts_done += len(batch)
        service = self.cost.bulk_time(len(batch))
        self._submit(
            service,
            lambda: self.transport.send(
                reply_to,
                Message("bulk_ack", (token, self.worker_id), sender=self),
            ),
        )

    def _bulk_into(
        self, sid: int, store: ShardStore, batch: RecordBatch, frozen: bool
    ) -> None:
        """Vectorised merge for big batches, point inserts for small ones."""
        if len(batch) > max(64, len(store) // 4) and not frozen:
            merged = concat_batches(
                [store.items(), batch], self.schema.num_dims
            )
            self.shards[sid] = self.store_cls.from_batch(
                self.schema, merged, self.tree_config
            )
        else:
            for coords, m in batch.iter_rows():
                store.insert(coords, m)

    # query ---------------------------------------------------------------

    def _on_query(self, msg: Message) -> None:
        token, shard_ids, box_t, reply_to = msg.payload
        obs = self.transport.obs
        span = None
        if obs is not None:
            span = obs.start_span("worker.query", self.name, parent=msg.ctx)
        box = Box.from_tuple(box_t)
        agg = Aggregate.empty()
        total_stats = OpStats()
        searched = 0
        missing = 0
        for requested in shard_ids:
            hit = False
            for sid in self._resolve_query(requested):
                store = self.shards.get(sid)
                if store is not None:
                    tspan = None
                    if obs is not None:
                        tspan = obs.start_span(
                            "tree.query",
                            self.name,
                            parent=span.ctx if span is not None else None,
                            shard=sid,
                        )
                    sub, stats = store.query(box)
                    agg.merge(sub)
                    total_stats.merge(stats)
                    searched += 1
                    hit = True
                    if obs is not None:
                        obs.record_tree_op("query", stats)
                        obs.finish_span(tspan, nodes=stats.nodes_visited)
                queue = self.queues.get(sid)
                if queue is not None and len(queue):
                    sub, stats = queue.query(box)
                    agg.merge(sub)
                    total_stats.merge(stats)
                    hit = True
                    if obs is not None:
                        obs.record_tree_op("query", stats)
            if not hit:
                # the system image still names this worker for a shard it
                # no longer holds (e.g. restarted after a crash, restore
                # pending): report the gap so coverage stays honest
                missing += 1
        self.queries_done += 1
        service = self.cost.query_time(total_stats)

        def reply() -> None:
            if obs is not None:
                obs.finish_span(span, searched=searched, missing=missing)
            self.transport.send(
                reply_to,
                Message(
                    "query_result",
                    (token, agg.to_tuple(), searched, self.worker_id, missing),
                    sender=self,
                ),
            )

        self._submit(service, reply)

    def _on_query_batch(self, msg: Message) -> None:
        """Execute a server's batched query fan-out.

        Each entry keeps its own token, requested shard list, box and
        span context, and is resolved and answered with exactly the
        singleton semantics (mapping-table resolution per shard, queue
        lookups, missing shards reported per entry) -- only the
        execution is grouped: every box addressed to one shard runs
        through :meth:`ShardStore.query_batch` in a single vectorized
        descent.  Per-entry merge order over its shards is preserved,
        so each aggregate is bit-identical to the singleton path.
        """
        entries, reply_to = msg.payload
        obs = self.transport.obs
        batch_span = None
        spans: list = []
        if obs is not None:
            batch_span = obs.start_span(
                "worker.query_batch", self.name, queries=len(entries)
            )
            obs.registry.histogram(
                "volap_query_batch_size",
                help="queries per query_batch message",
                buckets=DEFAULT_COUNT_BUCKETS,
            ).observe(len(entries))
        boxes: list[Box] = []
        slots: list[list[tuple[int, bool]]] = []
        searched = [0] * len(entries)
        missing = [0] * len(entries)
        # (shard id, is_queue) -> [(entry index, slot position)]
        groups: dict[tuple[int, bool], list[tuple[int, int]]] = {}
        for e, (token, shard_ids, box_t, ctx) in enumerate(entries):
            if obs is not None:
                spans.append(
                    obs.start_span(
                        "worker.query", self.name, parent=ctx, batched=True
                    )
                )
            boxes.append(Box.from_tuple(box_t))
            order: list[tuple[int, bool]] = []
            for requested in shard_ids:
                hit = False
                for sid in self._resolve_query(requested):
                    if sid in self.shards:
                        order.append((sid, False))
                        searched[e] += 1
                        hit = True
                    queue = self.queues.get(sid)
                    if queue is not None and len(queue):
                        order.append((sid, True))
                        hit = True
                if not hit:
                    missing[e] += 1
            slots.append(order)
            for pos, gkey in enumerate(order):
                groups.setdefault(gkey, []).append((e, pos))
        results: dict[tuple[int, int], Aggregate] = {}
        total_stats = OpStats()
        for (sid, is_queue), members in groups.items():
            store = self.queues[sid] if is_queue else self.shards[sid]
            group_stats = OpStats()
            res = store.query_batch([boxes[e] for e, _ in members])
            for (e, pos), (sub, stats) in zip(members, res):
                results[(e, pos)] = sub
                group_stats.merge(stats)
            total_stats.merge(group_stats)
            if obs is not None:
                obs.record_tree_op(
                    "query_batch", group_stats, rows=len(members)
                )
        replies: list[tuple] = []
        for e, (token, _sids, _box, _ctx) in enumerate(entries):
            agg = Aggregate.empty()
            for pos in range(len(slots[e])):
                agg.merge(results[(e, pos)])
            replies.append((token, agg.to_tuple(), searched[e], missing[e]))
        self.queries_done += len(entries)
        service = self.cost.query_batch_time(len(entries), total_stats)

        def reply() -> None:
            if obs is not None:
                for e, s in enumerate(spans):
                    obs.finish_span(s, searched=searched[e], missing=missing[e])
                obs.finish_span(batch_span)
            self.transport.send(
                reply_to,
                Message(
                    "query_result_batch",
                    (replies, self.worker_id),
                    size=QUERY_ROW_WIRE_BYTES * len(replies),
                    sender=self,
                ),
            )

        self._submit(service, reply)

    # split (manager-initiated) ------------------------------------------

    def _on_split_shard(self, msg: Message) -> None:
        shard_id, new_low, new_high, reply_to = msg.payload
        obs = self.transport.obs
        span = None
        if obs is not None:
            span = obs.start_span(
                "worker.split", self.name, parent=msg.ctx, shard=shard_id
            )
        store = self.transfer.begin(shard_id, min_items=2)
        if store is None:
            if obs is not None:
                obs.finish_span(span, ok=False)
            self.transport.send(
                reply_to,
                Message("split_failed", (shard_id, self.worker_id), sender=self),
            )
            return
        try:
            plane = store.split_query()
        except ValueError:
            self.transfer.cancel(shard_id)
            if obs is not None:
                obs.finish_span(span, ok=False)
            self.transport.send(
                reply_to,
                Message("split_failed", (shard_id, self.worker_id), sender=self),
            )
            return
        service = self.cost.split_time(len(store))

        def finish() -> None:
            self.transfer.split_cutover(
                shard_id, store, plane, new_low, new_high
            )
            if obs is not None:
                obs.finish_span(span, ok=True)
            self.transport.send(
                reply_to,
                Message(
                    "split_done",
                    (shard_id, new_low, new_high, self.worker_id),
                    sender=self,
                ),
            )

        self._submit(service, finish)

    # migration --------------------------------------------------------------

    def _on_migrate_shard(self, msg: Message) -> None:
        shard_id, dst, reply_to = msg.payload  # dst is a Worker entity
        store = self.transfer.begin(shard_id)
        if store is None:
            self.transport.send(
                reply_to,
                Message("migrate_failed", (shard_id, self.worker_id), sender=self),
            )
            return
        blob = store.serialize()
        service = self.cost.serialize_time(len(store))

        def send_blob() -> None:
            self.transport.send(
                dst,
                Message(
                    "migrate_in",
                    (shard_id, blob, self, reply_to),
                    size=len(blob),
                    sender=self,
                ),
            )

        self._submit(service, send_blob)

    def _on_migrate_abort(self, msg: Message) -> None:
        """Manager gave up on a wedged migration (e.g. the destination
        died mid-transfer): unfreeze and fold the queue back in."""
        shard_id = msg.payload[0]
        if shard_id not in self.frozen or shard_id not in self.shards:
            return
        self.transfer.cancel(shard_id)

    def _on_migrate_in(self, msg: Message) -> None:
        shard_id, blob, src, reply_to = msg.payload
        store = self.store_cls.deserialize(self.schema, blob, self.tree_config)
        self.transfer.announce(shard_id, INSTALLING)
        service = self.cost.deserialize_time(len(store))

        def ready() -> None:
            self.transfer.install(shard_id, store, publish=False)
            self.transport.send(
                src,
                Message("migrate_ready", (shard_id, self, reply_to), sender=self),
            )

        self._submit(service, ready)

    def _on_migrate_ready(self, msg: Message) -> None:
        shard_id, dst, reply_to = msg.payload
        if shard_id not in self.frozen:
            # the migration was aborted before the destination became
            # ready: keep ownership, tell the destination to discard
            self.transport.send(
                dst, Message("drop_shard", (shard_id,), sender=self)
            )
            self.transport.send(
                reply_to,
                Message("migrate_failed", (shard_id, self.worker_id), sender=self),
            )
            return
        # Hand off anything queued during the transfer, then cut over.
        self.transfer.cutover_out(shard_id, dst)
        self.transport.send(
            reply_to,
            Message(
                "migrate_done",
                (shard_id, self.worker_id, dst.worker_id),
                sender=self,
            ),
        )

    def _on_queue_transfer(self, msg: Message) -> None:
        shard_id, batch, _ = msg.payload
        self.transfer.absorb(shard_id, batch)

    def _on_drop_shard(self, msg: Message) -> None:
        """Discard an orphan copy left by an aborted migration."""
        shard_id = msg.payload[0]
        if shard_id not in self.frozen:
            self.shards.pop(shard_id, None)
            self.transfer.finish(shard_id)

    # -- failover restore ------------------------------------------------------

    def _on_restore_shard(self, msg: Message) -> None:
        """Install a checkpointed shard lost by a failed worker.

        ``blob`` is the latest checkpoint (``None`` when the shard was
        never checkpointed: ownership still converges, but its data is
        lost).  Publishing the znode re-points every server image.
        """
        shard_id, blob, reply_to = msg.payload
        if blob is None:
            store = self.store_cls(self.schema, self.tree_config)
        else:
            store = self.store_cls.deserialize(
                self.schema, blob, self.tree_config
            )
        self.transfer.announce(shard_id, INSTALLING)
        service = self.cost.deserialize_time(len(store))

        def ready() -> None:
            self.transfer.install(shard_id, store, publish=True)
            if self.checkpoints is not None and blob is not None:
                # re-own the blob so a second failure still recovers
                self.checkpoints.put(
                    shard_id, blob, self.worker_id, self.clock.now
                )
            self.transport.send(
                reply_to,
                Message(
                    "restore_done",
                    (shard_id, self.worker_id, len(store)),
                    sender=self,
                ),
            )

        self._submit(service, ready)

    # -- zookeeper helpers -----------------------------------------------------

    def _publish_shard(self, shard_id: int) -> None:
        store = self.shards[shard_id]
        self.zk.set(
            f"/shards/{shard_id}",
            (
                shard_id,
                key_to_wire(store.bounding_key()),
                self.worker_id,
                len(store),
            ),
        )

    def install_shard(self, shard_id: int, store: ShardStore) -> None:
        """Bootstrap helper: place a pre-built shard on this worker."""
        self.shards[shard_id] = store
        self._publish_shard(shard_id)

"""Worker nodes: shard storage and the split/migration protocol.

Paper Sections III-A and III-E.  A worker stores several shards (each a
Hilbert PDC tree by default), executes insert and aggregate-query
operations against them on a simulated ``k``-thread pool, and supports
the load balancer's operations:

* ``split_shard`` -- SplitQuery to find a balancing hyperplane, Split to
  partition the shard, a *mapping table* entry so in-flight operations
  addressed to the old shard reach its children, and an *insertion
  queue* absorbing new items while the split runs (queried alongside
  the shard, so query processing is never interrupted);
* ``migrate_shard`` -- SerializeShard, network transfer (latency paid by
  blob size), DeserializeShard at the destination, queue hand-off, and
  a Zookeeper update that re-points servers at the new owner.

Workers also run the asynchronous replication protocol: a primary tees
every applied insert row onto a per-shard, per-epoch sequence-numbered
stream feeding K replica workers (seeded by blob, kept current by the
stream, retransmitted until cumulatively acknowledged); replicas track
an applied-epoch watermark that is piggybacked on heartbeat writes so
servers can route bounded-staleness reads, and a replica can be
promoted to primary by a pure metadata flip when its primary dies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.aggregates import Aggregate
from ..core.base import Hyperplane, ShardStore
from ..core.config import OpStats, TreeConfig
from ..core.hilbert_trees import HilbertPDCTree
from ..obs.metrics import DEFAULT_COUNT_BUCKETS
from ..olap.keys import Box
from ..olap.records import RecordBatch, concat_batches
from ..olap.rollup import CubeKey, accumulate_cells
from ..olap.schema import Schema
from .cost import CostModel
from .faults import CheckpointStore
from .lifecycle import CUTOVER, INSTALLING, TRANSFERRING
from .simclock import SimClock
from .storage import HOT, WARM, ShardStorage
from .wire import (
    batch_from_wire,
    batch_to_wire,
    key_to_wire,
)
from .transport import Entity, Message, Transport
from .zookeeper import Zookeeper

__all__ = ["ShardTransfer", "Worker"]


class ShardTransfer:
    """The shared mechanics of every shard reorganisation on a worker.

    Split, outbound/inbound migration, queue hand-off, abort and
    restore all reduce to the same few moves -- freeze a shard behind a
    fresh insertion queue, drain that queue somewhere, update the
    mapping table, install and publish stores, re-point the Zookeeper
    image -- and each protocol handler used to carry its own copy.
    The handlers on :class:`Worker` now only parse messages and send
    replies; the mechanics live here, once.

    Every move also announces its phase (the state names of
    :mod:`repro.cluster.lifecycle`) under ``/lifecycle/<shard>``:
    best-effort observability that the manager folds into its
    :class:`~repro.cluster.lifecycle.ShardOpMachine`.  Nothing watches
    the prefix, so announcing schedules no events and cannot perturb
    the simulation.
    """

    def __init__(self, worker: "Worker"):
        self.w = worker

    # -- phase announcements (observability only) --------------------------

    def announce(self, shard_id: int, state: str) -> None:
        self.w.zk.set(f"/lifecycle/{shard_id}", (state, self.w.worker_id))

    def finish(self, shard_id: int) -> None:
        self.w.zk.delete(f"/lifecycle/{shard_id}")

    # -- freeze / unwind ---------------------------------------------------

    def begin(self, shard_id: int, min_items: int = 0) -> Optional[ShardStore]:
        """Freeze ``shard_id`` behind a fresh insertion queue and return
        its store -- or ``None``, changing nothing, when the shard is
        absent, already frozen, or smaller than ``min_items``.  New
        inserts land in the queue; queries keep hitting the shard plus
        the queue, so query processing is never interrupted."""
        w = self.w
        store = w.shards.get(shard_id)
        if store is None or shard_id in w.frozen or len(store) < min_items:
            return None
        w.frozen.add(shard_id)
        w.queues[shard_id] = w.store_cls(w.schema, w.tree_config)
        self.announce(shard_id, TRANSFERRING)
        return store

    def cancel(self, shard_id: int) -> None:
        """Unwind a frozen shard: unfreeze it and fold its insertion
        queue back in (nothing was handed off, so nothing is lost)."""
        w = self.w
        store = w.shards.get(shard_id)
        w.frozen.discard(shard_id)
        if store is not None:
            self.drain_into(shard_id, store)
        w.queues.pop(shard_id, None)
        self.finish(shard_id)

    def drain_into(self, shard_id: int, store: ShardStore) -> None:
        """Fold ``shard_id``'s insertion queue into ``store``."""
        queue = self.w.queues.get(shard_id)
        if queue is None:
            return
        for coords, m in queue.items().iter_rows():
            store.insert(coords, m)

    def absorb(self, shard_id: int, batch: RecordBatch) -> None:
        """Fold a handed-off insertion queue into an installed shard."""
        store = self.w.shards.get(shard_id)
        if store is None:  # pragma: no cover - defensive
            return
        for coords, m in batch.iter_rows():
            store.insert(coords, m)

    # -- cut-over ----------------------------------------------------------

    def split_cutover(
        self,
        shard_id: int,
        store: ShardStore,
        plane: Hyperplane,
        low_id: int,
        high_id: int,
    ) -> None:
        """Split ``store``, install the children, record the
        mapping-table entry, drain the insertion queue through it (rows
        reach whichever child they belong to), and re-point the system
        image at the children."""
        w = self.w
        self.announce(shard_id, CUTOVER)
        low, high = store.split(plane)
        w.shards[low_id] = low
        w.shards[high_id] = high
        w.mapping[shard_id] = (plane, low_id, high_id)
        del w.shards[shard_id]
        # the parent's replication stream dies with the parent id; the
        # manager re-seeds replicas for the children
        w._repl.pop(shard_id, None)
        queue = w.queues.pop(shard_id)
        w.frozen.discard(shard_id)
        for coords, m in queue.items().iter_rows():
            sid = w._resolve_insert(shard_id, coords)
            w.shards[sid].insert(coords, m)
        w._publish_shard(low_id)
        w._publish_shard(high_id)
        w.zk.delete(f"/shards/{shard_id}")
        if w.checkpoints is not None:
            w.checkpoints.drop(shard_id)  # parent id no longer exists
        self.finish(shard_id)

    def install(self, shard_id: int, store: ShardStore, publish: bool) -> None:
        """Install a deserialized shard.  Restores publish immediately;
        an inbound migration does not (the source still owns the image
        until its cut-over re-points it here)."""
        w = self.w
        w.shards[shard_id] = store
        w._touch(shard_id)
        if publish:
            w._publish_shard(shard_id)
            self.finish(shard_id)
        w._enforce_budget(protect={shard_id})

    def cutover_out(self, shard_id: int, dst: "Worker") -> Optional[ShardStore]:
        """Source-side migration cut-over: hand the insertion queue off
        to ``dst``, release local ownership, and re-point the system
        image; returns the store that moved away."""
        w = self.w
        self.announce(shard_id, CUTOVER)
        queue = w.queues.pop(shard_id, None)
        w.frozen.discard(shard_id)
        old = w.shards.pop(shard_id, None)
        # the stream does not follow a migration; the manager drops the
        # now-stale replicas and re-seeds them from the new owner
        w._repl.pop(shard_id, None)
        if queue is not None and len(queue):
            blob = batch_to_wire(queue.items())
            w.transport.send(
                dst,
                Message(
                    "queue_transfer",
                    (shard_id, blob, dst),
                    size=len(blob),
                    sender=w,
                ),
            )
        info_key = (
            old.bounding_key()
            if old is not None
            else Box.empty(w.schema.num_dims)
        )
        w.zk.set(
            f"/shards/{shard_id}",
            (
                shard_id,
                key_to_wire(info_key),
                dst.worker_id,
                len(old) if old is not None else 0,
                HOT,  # the destination installed it hot
            ),
        )
        self.finish(shard_id)
        return old


class Worker(Entity):
    """One worker node of the VOLAP cluster."""

    def __init__(
        self,
        worker_id: int,
        clock: SimClock,
        transport: Transport,
        zk: Zookeeper,
        schema: Schema,
        tree_config: Optional[TreeConfig] = None,
        threads: int = 8,
        cost: Optional[CostModel] = None,
        store_cls: type[ShardStore] = HilbertPDCTree,
    ):
        self.worker_id = worker_id
        self.name = f"worker-{worker_id}"
        self.clock = clock
        self.transport = transport
        self.zk = zk
        self.schema = schema
        self.tree_config = tree_config if tree_config is not None else TreeConfig()
        self.pool = clock.make_pool(threads)
        self.cost = cost if cost is not None else CostModel()
        self.store_cls = store_cls
        self.shards: dict[int, ShardStore] = {}
        #: the one implementation of the transfer mechanics every
        #: split/migrate/restore handler goes through
        self.transfer = ShardTransfer(self)
        #: unified blob codec plus the cold (WARM) shard index; every
        #: shard blob -- checkpoint, restore, migrate, replica seed,
        #: spill -- goes through it
        self.storage = ShardStorage(self)
        #: hot-memory budget in bytes; ``None`` disables the residency
        #: tier (classic all-hot behaviour)
        self.hot_budget_bytes: Optional[int] = None
        #: shard id -> virtual time of last access (LRU spill order)
        self._last_access: dict[int, float] = {}
        #: per-shard insertion queues, live while a split/migration runs
        self.queues: dict[int, ShardStore] = {}
        #: mapping table: old shard id -> (hyperplane, low id, high id)
        self.mapping: dict[int, tuple[Hyperplane, int, int]] = {}
        self.frozen: set[int] = set()
        self.inserts_done = 0
        self.queries_done = 0
        # -- failure handling state --------------------------------------
        self.crashed = False
        #: bumped on crash/restart; pending pool callbacks from an older
        #: epoch are discarded (a dead process does not send acks)
        self._epoch = 0
        #: idempotency tokens of inserts already applied (dedup)
        self._seen_ops: set = set()
        self.dedup_hits = 0
        self.checkpoints: Optional[CheckpointStore] = None
        self.heartbeat_period: Optional[float] = None
        self.heartbeat_ttl: Optional[float] = None
        # -- replication state --------------------------------------------
        #: shard id -> read-only replica store fed by the insert stream
        self.replicas: dict[int, ShardStore] = {}
        #: primary-side stream state per replicated shard:
        #: {"epoch", "head", "log": {seq: [rows, t_created, last_sent]},
        #:  "peers": {worker id: {"entity", "acked"}}}
        self._repl: dict[int, dict] = {}
        #: replica-side stream state per held replica: {"epoch",
        #: "frontier", "applied": set, "pending_t": {seq: t_created},
        #: "wm_time"} -- ``wm_time`` is the primary-side creation time
        #: of the newest contiguously applied batch (the watermark)
        self._rstate: dict[int, dict] = {}
        #: demoted-primary handoffs awaiting acknowledgement
        self._handoffs: dict[int, dict] = {}
        #: worker id -> entity directory, shared in by the cluster
        #: wiring; used to address handoffs after a demotion
        self.peers: dict[int, "Worker"] = {}
        #: replication-stream retransmit period (virtual seconds)
        self.repl_retry: float = 0.1
        self._repl_timer_on = False
        #: virtual time of the last successful heartbeat write; a gap
        #: larger than the ttl means this worker was plausibly declared
        #: dead and must reconcile its primariness (epoch fencing)
        self._last_beat_write: Optional[float] = None
        self.replica_queries = 0
        self.replica_seeds = 0
        self.promotions = 0
        self.demotions = 0
        #: checkpoint blobs deserialized by failover restores (the
        #: promotion path must keep this at zero when replicas exist)
        self.checkpoint_deserializations = 0
        self.repl_batches_sent = 0
        self.repl_rows_applied = 0
        self.repl_rows_teed = 0
        #: per-row tee-to-apply delay on this worker's replicas; what
        #: the PBS freshness model consumes as a staleness distribution
        self.repl_apply_lags: list[float] = []
        #: cube slabs seeded for server rollup tiers (``rollup_sync``)
        self.rollup_seeds = 0

    # -- crash / restart ---------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: lose all in-memory state and stop processing.

        Heartbeats cease (the ephemeral znode expires), pending service
        completions are discarded, and every incoming message is
        black-holed until :meth:`restart`.
        """
        self.crashed = True
        self._epoch += 1
        self.shards.clear()
        self.queues.clear()
        self.mapping.clear()
        self.frozen.clear()
        self._seen_ops.clear()
        self.replicas.clear()
        self._repl.clear()
        self._rstate.clear()
        self._handoffs.clear()
        # WARM shards are lost too; their spill-time blobs survive in
        # the checkpoint store, exactly like hot shards' periodic blobs
        self.storage.clear()
        self._last_access.clear()

    def restart(self) -> None:
        """Rejoin empty; shards come back via manager-driven restores."""
        if not self.crashed:
            return
        self.crashed = False
        self._epoch += 1
        self.publish_stats()
        self._beat()

    def _submit(self, service: float, fn) -> None:
        """Pool submit whose completion is void if the worker crashed."""
        epoch = self._epoch
        self.pool.submit(
            service, lambda: fn() if self._epoch == epoch else None
        )

    # -- heartbeats / checkpoints -----------------------------------------

    def _zk_reachable(self) -> bool:
        """Whether this worker can currently talk to Zookeeper.

        Heartbeats are direct calls, not transport messages, so a
        network partition must be checked explicitly -- otherwise an
        isolated worker would keep looking alive forever.  Only
        deterministic (``prob == 1``) partition rules apply; the check
        draws nothing from the fault generator.
        """
        f = self.transport.faults
        return f is None or not f.blocked(self.name, self.zk.name, "heartbeat")

    def _beat(self) -> None:
        if self.crashed or self.heartbeat_period is None:
            return
        if not self._zk_reachable():
            return  # partitioned away: the ephemeral znode will expire
        now = self.clock.now
        lapsed = (
            self._last_beat_write is not None
            and self.heartbeat_ttl is not None
            and now - self._last_beat_write > self.heartbeat_ttl
        )
        self._last_beat_write = now
        # the beat carries measured resident bytes so balancer policies
        # plan on real memory at heartbeat freshness (stats lag behind);
        # readers that only liveness-check the znode ignore the payload
        self.zk.set_ephemeral(
            f"/heartbeats/{self.worker_id}",
            (now, self.resident_bytes()),
            self.heartbeat_ttl,
        )
        # piggyback replication watermarks on the liveness beat: the
        # written prefixes are unwatched, so this schedules no events
        for sid in list(self._rstate):
            self._publish_watermark(sid)
        for sid, st in self._repl.items():
            if st["peers"]:
                self.zk.set(
                    f"/repl/heads/{sid}", (st["epoch"], st["head"], now)
                )
        if lapsed:
            # we were silent long enough to have been declared dead:
            # another worker may own our shards now (epoch fencing)
            self._reconcile()

    def start_heartbeat(self, period: float, ttl: Optional[float] = None) -> None:
        """Publish liveness as an ephemeral znode refreshed every
        ``period`` seconds; it expires ``ttl`` seconds after the last
        refresh (default: 3 missed beats)."""
        self.heartbeat_period = period
        self.heartbeat_ttl = ttl if ttl is not None else 3 * period
        self._beat()
        self.clock.every(period, self._beat)

    def start_checkpoints(self, period: float, store: CheckpointStore) -> None:
        """Serialize every settled shard to ``store`` each ``period``."""
        self.checkpoints = store

        def tick() -> None:
            if not self.crashed:
                self.checkpoint()

        self.clock.every(period, tick)

    def checkpoint(self) -> None:
        """Write the latest blob of each non-frozen HOT shard.

        WARM shards are skipped by construction -- iterating
        ``self.shards`` never sees them -- because the blob their spill
        wrote *is* the checkpoint: the shard cannot have changed since
        (any insert would have rehydrated it first).
        """
        if self.checkpoints is None:
            return
        total = 0
        for sid, store in list(self.shards.items()):
            if sid in self.frozen:
                continue
            self.checkpoints.put(
                sid, self.storage.encode(store), self.worker_id, self.clock.now
            )
            total += len(store)
        if total:
            # background serialization occupies a thread but sends nothing
            self._submit(self.cost.serialize_time(total), lambda: None)

    # -- sizes ------------------------------------------------------------

    def total_items(self) -> int:
        """Primary-owned items only: replicas are copies, so counting
        them would double-book the cluster's exactly-once totals."""
        return (
            sum(len(s) for s in self.shards.values())
            + sum(len(q) for q in self.queues.values())
            + self.storage.warm_items()
        )

    def publish_stats(self) -> None:
        """Push per-shard and total sizes to Zookeeper (paper III-B)."""
        if self.crashed:
            return
        stats = {
            "items": self.total_items(),
            "shards": {sid: len(s) for sid, s in self.shards.items()},
            "backlog": self.pool.backlog,
        }
        storage = self.storage
        if storage.cold:
            # WARM shards stay visible in "shards" (ownership and heal
            # checks key on it) at their spilled item counts
            for sid, entry in storage.cold.items():
                stats["shards"][sid] = entry.items
            stats["warm"] = {
                sid: (e.items, e.resident_estimate)
                for sid, e in storage.cold.items()
            }
        if self.hot_budget_bytes is not None or storage.cold or storage.spills:
            now = self.clock.now
            stats["resident_bytes"] = self.resident_bytes()
            stats["shard_bytes"] = {
                sid: s.resident_bytes() for sid, s in self.shards.items()
            }
            stats["idle"] = {
                sid: now - self._last_access.get(sid, now)
                for sid in self.shards
            }
        if self.replicas:
            stats["replica_items"] = sum(
                len(s) for s in self.replicas.values()
            )
        self.zk.set(f"/stats/workers/{self.worker_id}", stats)

    # -- residency tier ---------------------------------------------------

    def resident_bytes(self) -> int:
        """Measured bytes of hot column data on this worker: primary
        shards, live insertion queues, and replica copies.  WARM shards
        contribute nothing -- releasing their columns is the point of
        the tier."""
        return (
            sum(s.resident_bytes() for s in self.shards.values())
            + sum(q.resident_bytes() for q in self.queues.values())
            + sum(r.resident_bytes() for r in self.replicas.values())
        )

    def _touch(self, shard_id: int) -> None:
        """Record an access for LRU spill-victim ordering."""
        if shard_id in self.shards:
            self._last_access[shard_id] = self.clock.now

    def _rehydrate_for_access(
        self, shard_id: int, trigger: str = "query"
    ) -> tuple[Optional[ShardStore], float]:
        """Lazily pull a WARM shard back HOT because an op touched it.

        Returns ``(store, modeled seconds)``; the caller adds the
        seconds to the op's service time (rehydration is synchronous --
        the op waits for the blob decode).  Enforces the hot budget
        afterwards, protecting the shard just rehydrated (the ±1-shard
        hysteresis: an op never evicts its own working set mid-flight).
        """
        entry = self.storage.cold.get(shard_id)
        if entry is None:
            return self.shards.get(shard_id), 0.0
        obs = self.transport.obs
        span = None
        if obs is not None:
            span = obs.start_span(
                "worker.rehydrate", self.name, shard=shard_id, trigger=trigger
            )
        store = self.storage.rehydrate(shard_id)
        service = self.cost.rehydrate_time(entry.items)
        if obs is not None:
            obs.registry.histogram(
                "volap_residency_rehydrate_seconds",
                help="modeled latency of lazy shard rehydrates",
            ).observe(service)
            obs.finish_span(span, items=entry.items)
        self._enforce_budget(protect={shard_id})
        return store, service

    def _enforce_budget(self, protect: set = frozenset()) -> int:
        """Spill least-recently-used HOT shards until resident bytes
        fit :attr:`hot_budget_bytes`.  ``protect`` names shards the
        current op is touching -- they stay hot even while over budget.
        Frozen shards belong to the transfer protocol and never spill.
        """
        if self.hot_budget_bytes is None or self.crashed:
            return 0
        spilled = 0
        while self.resident_bytes() > self.hot_budget_bytes:
            candidates = [
                sid
                for sid in self.shards
                if sid not in self.frozen and sid not in protect
            ]
            if not candidates:
                break
            victim = min(
                candidates, key=lambda s: (self._last_access.get(s, -1.0), s)
            )
            self.storage.spill(victim)
            self._last_access.pop(victim, None)
            spilled += 1
        return spilled

    # -- shard id resolution through the mapping table -----------------------

    def _resolve_insert(self, shard_id: int, coords: np.ndarray) -> int:
        while shard_id in self.mapping:
            plane, low, high = self.mapping[shard_id]
            shard_id = low if coords[plane.dim] <= plane.value else high
        return shard_id

    def _resolve_query(self, shard_id: int) -> list[int]:
        # iterative (stack pushes high then low, so leaves come out
        # low-first, matching the old recursion): long split chains
        # must not hit Python's recursion limit
        out: list[int] = []
        stack = [shard_id]
        while stack:
            sid = stack.pop()
            entry = self.mapping.get(sid)
            if entry is None:
                out.append(sid)
            else:
                _, low, high = entry
                stack.append(high)
                stack.append(low)
        return out

    # -- message handling ----------------------------------------------------

    def receive(self, msg: Message) -> None:
        if self.crashed:
            return  # a dead process neither reads nor replies
        handler = getattr(self, f"_on_{msg.kind}", None)
        if handler is None:
            raise ValueError(f"{self.name}: unknown message {msg.kind!r}")
        handler(msg)

    # insert ------------------------------------------------------------

    def _on_insert(self, msg: Message) -> None:
        shard_id, coords, measure, token, op_id, reply_to = msg.payload
        obs = self.transport.obs
        if op_id and op_id in self._seen_ops:
            # duplicated or retransmitted insert: already applied, so
            # just re-ack (exactly-once effect under at-least-once sends)
            self.dedup_hits += 1
            self.transport.send(
                reply_to,
                Message("insert_ack", (token, self.worker_id), sender=self),
            )
            return
        span = None
        if obs is not None:
            span = obs.start_span(
                "worker.apply_insert", self.name, parent=msg.ctx, op_id=op_id
            )
        sid = self._resolve_insert(shard_id, coords)
        rehydrate_cost = 0.0
        if sid in self.frozen:
            target = self.queues[sid]
        elif sid in self.shards:
            target = self.shards[sid]
        elif sid in self.storage.cold:
            # WARM shard: inserts always rehydrate (the spilled blob
            # would go stale otherwise), charged to this op's service
            target, rehydrate_cost = self._rehydrate_for_access(
                sid, trigger="insert"
            )
        else:
            # Shard moved away entirely; a stale route. Reject so the
            # server can retry against its refreshed image.
            if obs is not None:
                obs.finish_span(span, ok=False, nack=True)
            self.transport.send(
                reply_to, Message("insert_nack", (token, shard_id), sender=self)
            )
            return
        tspan = None
        if obs is not None:
            tspan = obs.start_span(
                "tree.insert",
                self.name,
                parent=span.ctx if span is not None else None,
                shard=sid,
            )
        stats = target.insert(coords, measure)
        if op_id:
            self._seen_ops.add(op_id)
        if sid not in self.frozen:
            self._tee(sid, [(coords, measure, op_id)])
            self._touch(sid)
            self._enforce_budget(protect={sid})
        self.inserts_done += 1
        service = self.cost.insert_time(stats) + rehydrate_cost

        def ack() -> None:
            if obs is not None:
                obs.record_tree_op("insert", stats)
                obs.finish_span(tspan, nodes=stats.nodes_visited)
                obs.finish_span(span, ok=True)
            self.transport.send(
                reply_to,
                Message("insert_ack", (token, self.worker_id), sender=self),
            )

        self._submit(service, ack)

    def _on_insert_batch(self, msg: Message) -> None:
        """Apply a batched online insert (paper's high-velocity path).

        Each row keeps its own idempotency ``op_id``: rows already seen
        are re-acked without applying (a retransmitted or duplicated
        batch is harmless), rows whose shard moved away are nacked
        individually, and the rest are grouped per resolved shard and
        applied through :meth:`ShardStore.insert_batch` -- so the tree
        sees one Hilbert-sorted run sequence, not ``n`` point inserts.
        """
        entries, reply_to = msg.payload
        obs = self.transport.obs
        acked: list[int] = []
        nacked: list[tuple[int, int]] = []
        row_spans: list = []
        groups: dict[int, list[tuple[np.ndarray, float, object]]] = {}
        for shard_id, coords, measure, token, op_id, ctx in entries:
            if op_id and op_id in self._seen_ops:
                self.dedup_hits += 1
                acked.append(token)
                continue
            sid = self._resolve_insert(shard_id, coords)
            if (
                sid not in self.frozen
                and sid not in self.shards
                and sid not in self.storage.cold
            ):
                nacked.append((token, shard_id))
                continue
            if obs is not None:
                row_spans.append(
                    obs.start_span(
                        "worker.apply_insert",
                        self.name,
                        parent=ctx,
                        op_id=op_id,
                        batched=True,
                    )
                )
            groups.setdefault(sid, []).append((coords, measure, op_id))
            if op_id:
                self._seen_ops.add(op_id)
            acked.append(token)
        applied = 0
        stats = OpStats()
        rehydrate_cost = 0.0
        for sid, rows in groups.items():
            batch = RecordBatch(
                np.array([c for c, _, _ in rows], dtype=np.int64),
                np.array([m for _, m, _ in rows], dtype=np.float64),
            )
            if sid in self.frozen:
                target = self.queues[sid]
            else:
                # look up at apply time: an earlier group's budget
                # enforcement may have spilled this shard again
                target = self.shards.get(sid)
                if target is None:
                    target, c = self._rehydrate_for_access(
                        sid, trigger="insert"
                    )
                    rehydrate_cost += c
                if target is None:  # pragma: no cover - defensive
                    continue
            stats.merge(target.insert_batch(batch))
            if sid not in self.frozen:
                self._tee(sid, rows)
                self._touch(sid)
                self._enforce_budget(protect={sid})
            applied += len(rows)
        self.inserts_done += applied
        service = self.cost.insert_batch_time(applied, stats) + rehydrate_cost

        def ack() -> None:
            if obs is not None:
                if applied:
                    obs.record_tree_op("insert_batch", stats, rows=applied)
                for s in row_spans:
                    obs.finish_span(s, ok=True)
            self.transport.send(
                reply_to,
                Message(
                    "insert_batch_ack",
                    (acked, self.worker_id, nacked),
                    sender=self,
                ),
            )

        self._submit(service, ack)

    def _on_bulk_insert(self, msg: Message) -> None:
        shard_id, batch, token, reply_to = msg.payload
        if token and token in self._seen_ops:
            self.dedup_hits += 1
            self.transport.send(
                reply_to,
                Message("bulk_ack", (token, self.worker_id), sender=self),
            )
            return
        if token:
            self._seen_ops.add(token)
        # split rows among mapped children if necessary
        groups: dict[int, list[int]] = {}
        for i in range(len(batch)):
            sid = self._resolve_insert(shard_id, batch.coords[i])
            groups.setdefault(sid, []).append(i)
        rehydrate_cost = 0.0
        for sid, rows in groups.items():
            sub = batch.take(np.array(rows))
            target = (
                self.queues[sid]
                if sid in self.frozen
                else self.shards.get(sid)
            )
            if target is None and sid in self.storage.cold:
                target, c = self._rehydrate_for_access(sid, trigger="insert")
                rehydrate_cost += c
            if target is None:
                continue
            self._bulk_into(sid, target, sub, frozen=sid in self.frozen)
            st = self._repl.get(sid)
            if st is not None and st["peers"] and sid not in self.frozen:
                # bulk rows carry no idempotency token (the batch-level
                # token cannot dedup row-by-row on a promoted replica)
                self._tee(sid, [(c, m, None) for c, m in sub.iter_rows()])
            if sid not in self.frozen:
                self._touch(sid)
                self._enforce_budget(protect={sid})
        self.inserts_done += len(batch)
        service = self.cost.bulk_time(len(batch)) + rehydrate_cost
        self._submit(
            service,
            lambda: self.transport.send(
                reply_to,
                Message("bulk_ack", (token, self.worker_id), sender=self),
            ),
        )

    def _bulk_into(
        self, sid: int, store: ShardStore, batch: RecordBatch, frozen: bool
    ) -> None:
        """Vectorised merge for big batches, point inserts for small ones."""
        if len(batch) > max(64, len(store) // 4) and not frozen:
            merged = concat_batches(
                [store.items(), batch], self.schema.num_dims
            )
            self.shards[sid] = self.store_cls.from_batch(
                self.schema, merged, self.tree_config
            )
        else:
            for coords, m in batch.iter_rows():
                store.insert(coords, m)

    # query ---------------------------------------------------------------

    def _on_query(self, msg: Message) -> None:
        token, shard_ids, box_t, reply_to = msg.payload
        obs = self.transport.obs
        span = None
        if obs is not None:
            span = obs.start_span("worker.query", self.name, parent=msg.ctx)
        box = Box.from_tuple(box_t)
        agg = Aggregate.empty()
        total_stats = OpStats()
        searched = 0
        missing = 0
        rehydrate_cost = 0.0
        for requested in shard_ids:
            hit = False
            for sid in self._resolve_query(requested):
                store = self.shards.get(sid)
                if store is None:
                    entry = self.storage.cold.get(sid)
                    if entry is not None:
                        if entry.intersects(box):
                            store, c = self._rehydrate_for_access(
                                sid, trigger="query"
                            )
                            rehydrate_cost += c
                        else:
                            # layer-map pruning: the WARM shard's
                            # bounding key misses the box, so it
                            # contributes the empty aggregate without
                            # the blob ever being read
                            searched += 1
                            hit = True
                    else:
                        # bounded-staleness read routed here by the
                        # server: serve from the replica copy
                        store = self.replicas.get(sid)
                        if store is not None:
                            self.replica_queries += 1
                else:
                    self._touch(sid)
                if store is not None:
                    tspan = None
                    if obs is not None:
                        tspan = obs.start_span(
                            "tree.query",
                            self.name,
                            parent=span.ctx if span is not None else None,
                            shard=sid,
                        )
                    sub, stats = store.query(box)
                    agg.merge(sub)
                    total_stats.merge(stats)
                    searched += 1
                    hit = True
                    if obs is not None:
                        obs.record_tree_op("query", stats)
                        obs.finish_span(tspan, nodes=stats.nodes_visited)
                queue = self.queues.get(sid)
                if queue is not None and len(queue):
                    sub, stats = queue.query(box)
                    agg.merge(sub)
                    total_stats.merge(stats)
                    hit = True
                    if obs is not None:
                        obs.record_tree_op("query", stats)
            if not hit:
                # the system image still names this worker for a shard it
                # no longer holds (e.g. restarted after a crash, restore
                # pending): report the gap so coverage stays honest
                missing += 1
        self.queries_done += 1
        service = self.cost.query_time(total_stats) + rehydrate_cost

        def reply() -> None:
            if obs is not None:
                obs.finish_span(span, searched=searched, missing=missing)
            self.transport.send(
                reply_to,
                Message(
                    "query_result",
                    (token, agg.to_tuple(), searched, self.worker_id, missing),
                    sender=self,
                ),
            )

        self._submit(service, reply)

    def _on_query_batch(self, msg: Message) -> None:
        """Execute a server's batched query fan-out.

        Each entry keeps its own token, requested shard list, box and
        span context, and is resolved and answered with exactly the
        singleton semantics (mapping-table resolution per shard, queue
        lookups, missing shards reported per entry) -- only the
        execution is grouped: every box addressed to one shard runs
        through :meth:`ShardStore.query_batch` in a single vectorized
        descent.  Per-entry merge order over its shards is preserved,
        so each aggregate is bit-identical to the singleton path.
        """
        entries, reply_to = msg.payload
        obs = self.transport.obs
        batch_span = None
        spans: list = []
        if obs is not None:
            batch_span = obs.start_span(
                "worker.query_batch", self.name, queries=len(entries)
            )
            obs.registry.histogram(
                "volap_query_batch_size",
                help="queries per query_batch message",
                buckets=DEFAULT_COUNT_BUCKETS,
            ).observe(len(entries))
        boxes: list[Box] = []
        slots: list[list[tuple[int, int]]] = []
        searched = [0] * len(entries)
        missing = [0] * len(entries)
        # (shard id, source) -> [(entry index, slot position)] where
        # source is 0 = primary shard, 1 = insertion queue, 2 = replica
        groups: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for e, (token, shard_ids, box_t, ctx) in enumerate(entries):
            if obs is not None:
                spans.append(
                    obs.start_span(
                        "worker.query", self.name, parent=ctx, batched=True
                    )
                )
            boxes.append(Box.from_tuple(box_t))
            order: list[tuple[int, int]] = []
            for requested in shard_ids:
                hit = False
                for sid in self._resolve_query(requested):
                    if sid in self.shards:
                        order.append((sid, 0))
                        searched[e] += 1
                        hit = True
                    elif sid in self.storage.cold:
                        searched[e] += 1
                        hit = True
                        # layer-map pruning per entry: only boxes that
                        # touch the WARM shard's bounding key get a
                        # slot (a pruned entry's contribution is the
                        # empty aggregate -- the merge identity)
                        if self.storage.cold[sid].intersects(boxes[e]):
                            order.append((sid, 0))
                    elif sid in self.replicas:
                        order.append((sid, 2))
                        searched[e] += 1
                        hit = True
                        self.replica_queries += 1
                    queue = self.queues.get(sid)
                    if queue is not None and len(queue):
                        order.append((sid, 1))
                        hit = True
                if not hit:
                    missing[e] += 1
            slots.append(order)
            for pos, gkey in enumerate(order):
                groups.setdefault(gkey, []).append((e, pos))
        results: dict[tuple[int, int], Aggregate] = {}
        total_stats = OpStats()
        rehydrate_cost = 0.0
        for (sid, source), members in groups.items():
            if source == 0:
                # look up at execution time: an earlier group's budget
                # enforcement may have spilled this shard, and a WARM
                # shard with a slot needs rehydrating now
                store = self.shards.get(sid)
                if store is None:
                    store, c = self._rehydrate_for_access(
                        sid, trigger="query"
                    )
                    rehydrate_cost += c
                if store is None:  # pragma: no cover - defensive
                    for e, pos in members:
                        results[(e, pos)] = Aggregate.empty()
                    continue
                self._touch(sid)
            elif source == 1:
                store = self.queues[sid]
            else:
                store = self.replicas[sid]
            group_stats = OpStats()
            res = store.query_batch([boxes[e] for e, _ in members])
            for (e, pos), (sub, stats) in zip(members, res):
                results[(e, pos)] = sub
                group_stats.merge(stats)
            total_stats.merge(group_stats)
            if obs is not None:
                obs.record_tree_op(
                    "query_batch", group_stats, rows=len(members)
                )
        replies: list[tuple] = []
        for e, (token, _sids, _box, _ctx) in enumerate(entries):
            agg = Aggregate.empty()
            for pos in range(len(slots[e])):
                agg.merge(results[(e, pos)])
            replies.append((token, agg.to_tuple(), searched[e], missing[e]))
        self.queries_done += len(entries)
        service = (
            self.cost.query_batch_time(len(entries), total_stats)
            + rehydrate_cost
        )

        def reply() -> None:
            if obs is not None:
                for e, s in enumerate(spans):
                    obs.finish_span(s, searched=searched[e], missing=missing[e])
                obs.finish_span(batch_span)
            self.transport.send(
                reply_to,
                Message(
                    "query_result_batch",
                    (replies, self.worker_id),
                    sender=self,
                ),
            )

        self._submit(service, reply)

    # split (manager-initiated) ------------------------------------------

    def _on_split_shard(self, msg: Message) -> None:
        shard_id, new_low, new_high, reply_to = msg.payload
        obs = self.transport.obs
        span = None
        if obs is not None:
            span = obs.start_span(
                "worker.split", self.name, parent=msg.ctx, shard=shard_id
            )
        store = self.transfer.begin(shard_id, min_items=2)
        if store is None:
            if obs is not None:
                obs.finish_span(span, ok=False)
            self.transport.send(
                reply_to,
                Message("split_failed", (shard_id, self.worker_id), sender=self),
            )
            return
        try:
            plane = store.split_query()
        except ValueError:
            self.transfer.cancel(shard_id)
            if obs is not None:
                obs.finish_span(span, ok=False)
            self.transport.send(
                reply_to,
                Message("split_failed", (shard_id, self.worker_id), sender=self),
            )
            return
        service = self.cost.split_time(len(store))

        def finish() -> None:
            self.transfer.split_cutover(
                shard_id, store, plane, new_low, new_high
            )
            if obs is not None:
                obs.finish_span(span, ok=True)
            self.transport.send(
                reply_to,
                Message(
                    "split_done",
                    (shard_id, new_low, new_high, self.worker_id),
                    sender=self,
                ),
            )

        self._submit(service, finish)

    # migration --------------------------------------------------------------

    def _on_migrate_shard(self, msg: Message) -> None:
        shard_id, dst, reply_to = msg.payload  # dst is a Worker entity
        store = self.transfer.begin(shard_id)
        if store is None:
            self.transport.send(
                reply_to,
                Message("migrate_failed", (shard_id, self.worker_id), sender=self),
            )
            return
        blob = self.storage.encode(store)
        service = self.cost.serialize_time(len(store))

        def send_blob() -> None:
            self.transport.send(
                dst,
                Message(
                    "migrate_in",
                    (shard_id, blob, self, reply_to),
                    size=len(blob),
                    sender=self,
                ),
            )

        self._submit(service, send_blob)

    def _on_migrate_abort(self, msg: Message) -> None:
        """Manager gave up on a wedged migration (e.g. the destination
        died mid-transfer): unfreeze and fold the queue back in."""
        shard_id = msg.payload[0]
        if shard_id not in self.frozen or shard_id not in self.shards:
            return
        self.transfer.cancel(shard_id)

    def _on_migrate_in(self, msg: Message) -> None:
        shard_id, blob, src, reply_to = msg.payload
        store = self.storage.decode(blob)
        self.transfer.announce(shard_id, INSTALLING)
        service = self.cost.deserialize_time(len(store))

        def ready() -> None:
            self.transfer.install(shard_id, store, publish=False)
            self.transport.send(
                src,
                Message("migrate_ready", (shard_id, self, reply_to), sender=self),
            )

        self._submit(service, ready)

    def _on_migrate_ready(self, msg: Message) -> None:
        shard_id, dst, reply_to = msg.payload
        if shard_id not in self.frozen:
            # the migration was aborted before the destination became
            # ready: keep ownership, tell the destination to discard
            self.transport.send(
                dst, Message("drop_shard", (shard_id,), sender=self)
            )
            self.transport.send(
                reply_to,
                Message("migrate_failed", (shard_id, self.worker_id), sender=self),
            )
            return
        # Hand off anything queued during the transfer, then cut over.
        self.transfer.cutover_out(shard_id, dst)
        self.transport.send(
            reply_to,
            Message(
                "migrate_done",
                (shard_id, self.worker_id, dst.worker_id),
                sender=self,
            ),
        )

    def _on_queue_transfer(self, msg: Message) -> None:
        shard_id, blob, _ = msg.payload
        self.transfer.absorb(shard_id, batch_from_wire(blob))

    def _on_drop_shard(self, msg: Message) -> None:
        """Discard an orphan copy left by an aborted migration."""
        shard_id = msg.payload[0]
        if shard_id not in self.frozen:
            self.shards.pop(shard_id, None)
            self.storage.drop(shard_id)
            self.transfer.finish(shard_id)

    # -- failover restore ------------------------------------------------------

    def _on_restore_shard(self, msg: Message) -> None:
        """Install a checkpointed shard lost by a failed worker.

        ``blob`` is the latest checkpoint (``None`` when the shard was
        never checkpointed: ownership still converges, but its data is
        lost).  Publishing the znode re-points every server image.
        """
        shard_id, blob, reply_to = msg.payload
        if blob is None:
            store = self.store_cls(self.schema, self.tree_config)
        else:
            store = self.storage.decode(blob)
            self.checkpoint_deserializations += 1
        # a restore target never also holds a replica of the shard (the
        # manager prefers promotion then), but a stale copy from an
        # earlier epoch must not shadow the restored primary
        self._drop_replica_state(shard_id)
        self.transfer.announce(shard_id, INSTALLING)
        service = self.cost.deserialize_time(len(store))

        def ready() -> None:
            self.transfer.install(shard_id, store, publish=True)
            if self.checkpoints is not None and blob is not None:
                # re-own the blob so a second failure still recovers
                self.checkpoints.put(
                    shard_id, blob, self.worker_id, self.clock.now
                )
            self.transport.send(
                reply_to,
                Message(
                    "restore_done",
                    (shard_id, self.worker_id, len(store)),
                    sender=self,
                ),
            )

        self._submit(service, ready)

    # -- residency: manager-driven spill / rehydrate ---------------------------

    def _on_spill_shard(self, msg: Message) -> None:
        """Policy-driven spill: HOT -> WARM, releasing the columns.

        Idempotent: an already-WARM shard re-acks (a duplicated or
        retransmitted request changes nothing); absent or frozen shards
        fail so the manager retires the op and replans.
        """
        shard_id, reply_to = msg.payload
        if shard_id in self.storage.cold:
            self.transport.send(
                reply_to,
                Message("spill_done", (shard_id, self.worker_id), sender=self),
            )
            return
        store = self.shards.get(shard_id)
        if store is None or shard_id in self.frozen:
            self.transport.send(
                reply_to,
                Message("spill_failed", (shard_id, self.worker_id), sender=self),
            )
            return
        obs = self.transport.obs
        span = None
        if obs is not None:
            span = obs.start_span(
                "worker.spill", self.name, parent=msg.ctx, shard=shard_id
            )
        service = self.cost.spill_time(len(store))

        def finish() -> None:
            # re-check: a migration may have frozen the shard, or an op
            # may have moved it, while the encode was in flight
            if shard_id in self.shards and shard_id not in self.frozen:
                self.storage.spill(shard_id)
                self._last_access.pop(shard_id, None)
                ok = True
            else:
                ok = shard_id in self.storage.cold
            if obs is not None:
                obs.finish_span(span, ok=ok)
            kind = "spill_done" if ok else "spill_failed"
            self.transport.send(
                reply_to,
                Message(kind, (shard_id, self.worker_id), sender=self),
            )

        self._submit(service, finish)

    def _on_rehydrate_shard(self, msg: Message) -> None:
        """Policy-driven rehydrate: pull a WARM shard HOT ahead of
        demand (the balancer found headroom).  Idempotent like spill."""
        shard_id, reply_to = msg.payload
        if shard_id in self.shards:
            self.transport.send(
                reply_to,
                Message(
                    "rehydrate_done",
                    (shard_id, self.worker_id, len(self.shards[shard_id])),
                    sender=self,
                ),
            )
            return
        entry = self.storage.cold.get(shard_id)
        if entry is None:
            self.transport.send(
                reply_to,
                Message(
                    "rehydrate_failed", (shard_id, self.worker_id), sender=self
                ),
            )
            return
        _store, service = self._rehydrate_for_access(shard_id, trigger="policy")
        self._submit(
            service,
            lambda: self.transport.send(
                reply_to,
                Message(
                    "rehydrate_done",
                    (shard_id, self.worker_id, entry.items),
                    sender=self,
                ),
            ),
        )

    # -- replication: primary side ---------------------------------------------

    def _repl_state(self, shard_id: int, epoch: int) -> dict:
        """The primary-side stream state for ``shard_id`` at ``epoch``,
        created (or reset, when the epoch moved) on demand."""
        st = self._repl.get(shard_id)
        if st is None or st["epoch"] != epoch:
            st = {"epoch": epoch, "head": 0, "log": {}, "peers": {}}
            self._repl[shard_id] = st
            self._start_repl_timer()
        return st

    def _start_repl_timer(self) -> None:
        """Arm the retransmit tick, once, the first time this worker
        becomes a replicating primary.  Replication-free runs never
        reach this, so they schedule no extra events."""
        if self._repl_timer_on:
            return
        self._repl_timer_on = True
        self.clock.every(self.repl_retry, self._repl_tick)

    def _tee(self, shard_id: int, rows: list) -> None:
        """Append applied insert rows to the shard's replication stream.

        ``rows`` is ``[(coords, measure, op_id), ...]`` -- PR 2's
        wire-batch row shape plus the idempotency token, so a promoted
        replica can dedup client retries exactly like the primary did.
        Each call is one sequence-numbered batch, retained in the log
        until every peer cumulatively acknowledges it.
        """
        st = self._repl.get(shard_id)
        if st is None or not st["peers"]:
            return
        st["head"] += 1
        seq = st["head"]
        st["log"][seq] = [rows, self.clock.now, self.clock.now]
        for peer in st["peers"].values():
            self._send_repl(shard_id, st, seq, peer["entity"])
        self.repl_batches_sent += len(st["peers"])
        self.repl_rows_teed += len(rows)

    def _send_repl(self, shard_id: int, st: dict, seq: int, entity) -> None:
        rows, t_created, _ = st["log"][seq]
        self.transport.send(
            entity,
            Message(
                "replica_batch",
                (shard_id, st["epoch"], seq, rows, t_created, self),
                sender=self,
            ),
        )

    def _repl_tick(self) -> None:
        """Retransmit unacknowledged stream batches and handoffs; trim
        log entries every peer has acknowledged."""
        if self.crashed:
            return
        now = self.clock.now
        for sid, st in list(self._repl.items()):
            self._trim_log(st)
            peers = st["peers"].values()
            for seq in sorted(st["log"]):
                entry = st["log"][seq]
                if now - entry[2] < self.repl_retry - 1e-12:
                    continue
                targets = [p for p in peers if p["acked"] < seq]
                if not targets:
                    continue
                entry[2] = now
                for p in targets:
                    self._send_repl(sid, st, seq, p["entity"])
                self.repl_batches_sent += len(targets)
        for sid, h in list(self._handoffs.items()):
            if now - h["last_sent"] >= self.repl_retry - 1e-12:
                h["last_sent"] = now
                self._send_handoff(sid, h)

    @staticmethod
    def _trim_log(st: dict) -> None:
        peers = st["peers"]
        floor = (
            min(p["acked"] for p in peers.values()) if peers else st["head"]
        )
        for seq in [s for s in st["log"] if s <= floor]:
            del st["log"][seq]

    def _on_replicate_shard(self, msg: Message) -> None:
        """Manager asked this primary to seed a replica of ``shard_id``
        on ``dst``: register the peer (so the live stream starts
        immediately), serialize a snapshot, ship it."""
        shard_id, dst, dst_wid, reply_to = msg.payload
        store = self.shards.get(shard_id)
        if store is None or shard_id in self.frozen:
            self.transport.send(
                reply_to,
                Message(
                    "replicate_failed", (shard_id, self.worker_id), sender=self
                ),
            )
            return
        obs = self.transport.obs
        span = None
        if obs is not None:
            span = obs.start_span(
                "worker.replicate", self.name, parent=msg.ctx, shard=shard_id
            )
        epoch = self.zk.get(f"/epochs/{shard_id}") or 0
        st = self._repl_state(shard_id, epoch)
        head = st["head"]
        # the snapshot covers everything up to ``head``; rows applied
        # while it serializes stream (and retransmit) their way over
        st["peers"][dst_wid] = {"entity": dst, "acked": head}
        blob = self.storage.encode(store)
        service = self.cost.serialize_time(len(store))

        def send_blob() -> None:
            if obs is not None:
                obs.finish_span(span, items=len(store))
            self.transport.send(
                dst,
                Message(
                    "replica_install",
                    (shard_id, epoch, head, blob, self, reply_to),
                    size=len(blob),
                    sender=self,
                ),
            )

        self._submit(service, send_blob)

    def _on_replica_ack(self, msg: Message) -> None:
        """Cumulative acknowledgement from a replica: everything up to
        ``frontier`` arrived, so the log can shed it."""
        shard_id, epoch, frontier, wid = msg.payload
        st = self._repl.get(shard_id)
        if st is None or st["epoch"] != epoch:
            return
        peer = st["peers"].get(wid)
        if peer is None:
            return
        peer["acked"] = max(peer["acked"], frontier)
        self._trim_log(st)

    def _on_replica_remove(self, msg: Message) -> None:
        """Manager pruned a (dead or stale) replica -- or a server tore
        down a rollup-tier subscription: stop streaming to it."""
        shard_id, wid = msg.payload
        st = self._repl.get(shard_id)
        if st is not None:
            st["peers"].pop(wid, None)
            self._trim_log(st)

    def _on_rollup_sync(self, msg: Message) -> None:
        """Seed a server's rollup cubes from this primary's shard.

        Registers the server as a peer on the shard's replication
        stream (subscriber ids are negative, so they never collide with
        worker ids and never appear under ``/replicas``), snapshots the
        stream head, folds the shard's rows into one dense slab per
        requested cube key, and replies with ``(epoch, head, slabs)``.
        Rows applied after the head stream over as ordinary
        ``replica_batch`` messages, so slab + stream is exactly the
        shard -- the same contract a seeded replica gets.
        """
        shard_id, sub_id, keys_wire, reply_to = msg.payload
        store = self.shards.get(shard_id)
        if store is None or shard_id in self.frozen:
            self.transport.send(
                reply_to,
                Message(
                    "rollup_sync_failed",
                    (shard_id, self.worker_id),
                    sender=self,
                ),
            )
            return
        epoch = self.zk.get(f"/epochs/{shard_id}") or 0
        st = self._repl_state(shard_id, epoch)
        head = st["head"]
        st["peers"][sub_id] = {"entity": reply_to, "acked": head}
        batch = store.items()
        pairs = []
        size = 64
        for kw in keys_wire:
            key = CubeKey.from_wire(kw)
            cells = accumulate_cells(
                self.schema, key, batch.coords, batch.measures
            )
            pairs.append((key.to_wire(), cells))
            size += cells.resident_bytes()
        self.rollup_seeds += len(pairs)
        service = self.cost.rollup_seed_time(len(batch) * max(1, len(pairs)))

        def send_cells() -> None:
            self.transport.send(
                reply_to,
                Message(
                    "rollup_cells",
                    (shard_id, epoch, head, pairs, self.worker_id),
                    size=size,
                    sender=self,
                ),
            )

        self._submit(service, send_cells)

    # -- replication: replica side ---------------------------------------------

    def _on_replica_install(self, msg: Message) -> None:
        """Install a seeded replica snapshot and start acknowledging."""
        shard_id, epoch, head, blob, primary, reply_to = msg.payload
        cur = self._rstate.get(shard_id)
        if cur is not None and cur["epoch"] > epoch:
            return  # a stale (pre-promotion) seed arrived late
        if shard_id in self.shards:
            return  # we were promoted while the blob was in flight
        store = self.storage.decode(blob)
        self.replica_seeds += 1
        service = self.cost.deserialize_time(len(store))

        def ready() -> None:
            if shard_id in self.shards:
                return
            self.replicas[shard_id] = store
            self._rstate[shard_id] = {
                "epoch": epoch,
                "frontier": head,
                "applied": set(),
                "pending_t": {},
                "wm_time": self.clock.now,
            }
            if self._zk_reachable():
                self._publish_watermark(shard_id)
            self.transport.send(
                reply_to,
                Message(
                    "replicate_done", (shard_id, self.worker_id), sender=self
                ),
            )
            self.transport.send(
                primary,
                Message(
                    "replica_ack",
                    (shard_id, epoch, head, self.worker_id),
                    sender=self,
                ),
            )

        self._submit(service, ready)

    def _on_replica_batch(self, msg: Message) -> None:
        """Apply one sequence-numbered stream batch to a replica.

        Epoch fencing: batches from an older epoch (a demoted primary
        that does not know it yet) are dropped on the floor; duplicates
        within the epoch are re-acked without applying.
        """
        shard_id, epoch, seq, rows, t_created, primary = msg.payload
        if shard_id in self.shards:
            return  # we are the primary now; fencing demotes the sender
        st = self._rstate.get(shard_id)
        if st is None or epoch != st["epoch"]:
            return  # not seeded yet (retransmit returns) or fenced
        if seq <= st["frontier"] or seq in st["applied"]:
            self.transport.send(
                primary,
                Message(
                    "replica_ack",
                    (shard_id, epoch, st["frontier"], self.worker_id),
                    sender=self,
                ),
            )
            return
        store = self.replicas.get(shard_id)
        if store is None:  # pragma: no cover - defensive
            return
        batch = RecordBatch(
            np.array([c for c, _, _ in rows], dtype=np.int64),
            np.array([m for _, m, _ in rows], dtype=np.float64),
        )
        stats = store.insert_batch(batch)
        for _, _, op_id in rows:
            # remember the primary's idempotency tokens: a promoted
            # replica must re-ack (not re-apply) client retries of
            # inserts the dead primary already acknowledged
            if op_id:
                self._seen_ops.add(op_id)
        st["applied"].add(seq)
        st["pending_t"][seq] = t_created
        while st["frontier"] + 1 in st["applied"]:
            nxt = st["frontier"] + 1
            st["applied"].remove(nxt)
            st["frontier"] = nxt
            st["wm_time"] = st["pending_t"].pop(nxt)
        self.repl_rows_applied += len(rows)
        lag = self.clock.now - t_created
        self.repl_apply_lags.extend([lag] * len(rows))
        service = self.cost.replicate_apply_time(len(rows), stats)

        def ack() -> None:
            cur = self._rstate.get(shard_id)
            if cur is None or cur["epoch"] != epoch:
                return
            self.transport.send(
                primary,
                Message(
                    "replica_ack",
                    (shard_id, epoch, cur["frontier"], self.worker_id),
                    sender=self,
                ),
            )

        self._submit(service, ack)

    def _publish_watermark(self, shard_id: int) -> None:
        st = self._rstate.get(shard_id)
        if st is None:
            return
        self.zk.set(
            f"/replicas/{shard_id}/{self.worker_id}",
            (st["epoch"], st["frontier"], st["wm_time"], self.clock.now),
        )

    def _drop_replica_state(self, shard_id: int) -> None:
        had = self._rstate.pop(shard_id, None)
        self.replicas.pop(shard_id, None)
        if had is not None and self._zk_reachable():
            self.zk.delete(f"/replicas/{shard_id}/{self.worker_id}")

    def _on_drop_replica(self, msg: Message) -> None:
        """Manager invalidated this copy (epoch moved on): discard it."""
        self._drop_replica_state(msg.payload[0])

    # -- replication: promotion and fencing --------------------------------------

    def _on_promote_shard(self, msg: Message) -> None:
        """Promote the local replica to primary: a pure metadata flip.

        The store is re-tagged in memory, the system image re-pointed,
        and a fresh stream epoch opened -- no checkpoint blob is ever
        deserialized on this path.
        """
        shard_id, new_epoch, reply_to = msg.payload
        store = self.replicas.pop(shard_id, None)
        self._rstate.pop(shard_id, None)
        if store is None:
            if shard_id in self.shards:
                # duplicated promote: already flipped, just re-ack
                self.transport.send(
                    reply_to,
                    Message(
                        "promote_done",
                        (shard_id, self.worker_id, len(self.shards[shard_id])),
                        sender=self,
                    ),
                )
                return
            self.transport.send(
                reply_to,
                Message(
                    "promote_failed", (shard_id, self.worker_id), sender=self
                ),
            )
            return
        obs = self.transport.obs
        span = None
        if obs is not None:
            span = obs.start_span(
                "worker.promote", self.name, parent=msg.ctx, shard=shard_id
            )
        self.shards[shard_id] = store
        self._repl_state(shard_id, new_epoch)
        self.promotions += 1
        if self._zk_reachable():
            self.zk.delete(f"/replicas/{shard_id}/{self.worker_id}")
        service = self.cost.promote_time()

        def flip() -> None:
            if shard_id not in self.shards:
                return  # crashed (or lost it again) mid-promotion
            self._publish_shard(shard_id)
            self.publish_stats()
            if obs is not None:
                obs.finish_span(span, items=len(store))
            self.transport.send(
                reply_to,
                Message(
                    "promote_done",
                    (shard_id, self.worker_id, len(store)),
                    sender=self,
                ),
            )

        self._submit(service, flip)

    def _reconcile(self) -> None:
        """After a liveness lapse long enough to be declared dead, check
        every held shard against the system image and demote copies the
        cluster re-homed while this worker was away.  This is the other
        half of epoch fencing: a healed partition can never leave two
        workers both acting as a shard's primary.
        """
        for sid in sorted(self.shards):
            if sid in self.frozen:
                continue
            data = self.zk.get(f"/shards/{sid}")
            if data is None or data[2] == self.worker_id:
                continue
            self._demote(sid, data[2])
        for sid in sorted(self.storage.cold):
            # WARM copies re-homed while we were away: the cold entry
            # is stale (its data was restored elsewhere from the
            # checkpoint blob), so just forget it -- a spilled shard
            # has no unacknowledged stream suffix to hand off
            data = self.zk.get(f"/shards/{sid}")
            if data is None or data[2] == self.worker_id:
                continue
            self.storage.drop(sid)
            self._repl.pop(sid, None)

    def _demote(self, shard_id: int, new_owner: int) -> None:
        """Drop primariness of ``shard_id`` in favour of ``new_owner``,
        handing off any retained stream suffix the new owner has not
        acknowledged (op-id dedup there keeps the effect exactly-once).
        """
        store = self.shards.pop(shard_id, None)
        self.queues.pop(shard_id, None)
        self.frozen.discard(shard_id)
        st = self._repl.pop(shard_id, None)
        if store is None:
            return
        self.demotions += 1
        rows: list = []
        if st is not None:
            peer = st["peers"].get(new_owner)
            acked = peer["acked"] if peer is not None else 0
            for seq in sorted(st["log"]):
                if seq > acked:
                    rows.extend(st["log"][seq][0])
        if rows:
            h = {"rows": rows, "dst": new_owner, "last_sent": self.clock.now}
            self._handoffs[shard_id] = h
            self._send_handoff(shard_id, h)

    def _send_handoff(self, shard_id: int, h: dict) -> None:
        entity = self.peers.get(h["dst"])
        if entity is None or entity.crashed:
            self._handoffs.pop(shard_id, None)
            return
        self.transport.send(
            entity,
            Message(
                "primary_handoff",
                (shard_id, h["rows"], self),
                sender=self,
            ),
        )

    def _on_primary_handoff(self, msg: Message) -> None:
        """A demoted primary forwarded the stream suffix we never saw:
        apply the rows we do not already have (by op id) and ack."""
        shard_id, rows, src = msg.payload
        target = None
        if shard_id in self.frozen:
            target = self.queues.get(shard_id)
        elif shard_id in self.shards:
            target = self.shards[shard_id]
        if target is not None:
            applied = []
            for coords, measure, op_id in rows:
                if op_id and op_id in self._seen_ops:
                    self.dedup_hits += 1
                    continue
                target.insert(coords, measure)
                if op_id:
                    self._seen_ops.add(op_id)
                applied.append((coords, measure, op_id))
            if applied and shard_id not in self.frozen:
                self._tee(shard_id, applied)
        self.transport.send(
            src, Message("handoff_ack", (shard_id,), sender=self)
        )

    def _on_handoff_ack(self, msg: Message) -> None:
        self._handoffs.pop(msg.payload[0], None)

    # -- zookeeper helpers -----------------------------------------------------

    def _publish_shard(self, shard_id: int) -> None:
        entry = self.storage.cold.get(shard_id)
        if entry is not None:
            key, size, residency = entry.key, entry.items, WARM
        else:
            store = self.shards[shard_id]
            key, size, residency = store.bounding_key(), len(store), HOT
        self.zk.set(
            f"/shards/{shard_id}",
            (shard_id, key_to_wire(key), self.worker_id, size, residency),
        )

    def install_shard(self, shard_id: int, store: ShardStore) -> None:
        """Bootstrap helper: place a pre-built shard on this worker."""
        self.shards[shard_id] = store
        self._publish_shard(shard_id)
        self._touch(shard_id)
        self._enforce_budget(protect={shard_id})

"""Virtual service-time model.

Converts measured data-structure work (``OpStats``) into virtual
execution times.  Constants are calibrated so a simulated 20-worker /
2-server cluster lands in the paper's regime (about 50k point inserts/s
plus about 20k aggregate queries/s under a mixed load, bulk ingestion
several times faster than point insertion); experiment *shapes* come
from the real index and protocol code, the constants only set the
scale.  EXPERIMENTS.md records both the paper's and the simulated
absolute numbers for every figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import OpStats

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Service-time constants (seconds)."""

    # worker-side costs
    insert_base: float = 300e-6
    query_base: float = 400e-6
    work_unit: float = 3e-6  # per OpStats.work unit (node visit etc.)
    # per item during bulk ingestion; calibrated so a p=20 cluster bulk
    # ingests several hundred k items/s, ~an order of magnitude above
    # point insertion (the paper's 400k/s vs 50k/s gap)
    bulk_item: float = 15e-6
    #: per item in a batched *online* insert: pricier than offline bulk
    #: packing (the tree still does ordered-run descents and locked
    #: splices) but far below a full per-item dispatch
    batch_item: float = 30e-6
    #: per query in a batched query message: the shared vectorized
    #: descent amortizes dispatch and pruning, so each extra query
    #: costs well below a full ``query_base`` dispatch
    batch_query_item: float = 120e-6
    split_item: float = 4e-6  # per item when splitting a shard
    serialize_item: float = 1e-6
    deserialize_item: float = 2e-6

    # server-side costs
    route_base: float = 250e-6
    route_node: float = 2e-6  # per local-image node visited
    merge_shard: float = 20e-6  # per worker response merged

    # rollup-tier costs
    #: per row scanned when a worker seeds cube slabs from a shard
    rollup_seed_item: float = 0.5e-6
    #: per row folded into resident slabs from a stream batch
    rollup_apply_item: float = 1e-6
    #: per cube cell sliced when a query is answered from the tier
    rollup_cell: float = 0.05e-6
    #: base of a cube-served answer: dispatch, cube match, per-shard
    #: freshness scan, slab slice + merge -- all in server memory (a
    #: pure hit skips the fan-out planner, so it never pays route_base;
    #: compare merge_shard, the per-response merge on the tree path)
    rollup_hit_base: float = 30e-6

    # -- worker ----------------------------------------------------------

    def insert_time(self, stats: OpStats) -> float:
        return self.insert_base + self.work_unit * stats.work

    def query_time(self, stats: OpStats) -> float:
        return self.query_base + self.work_unit * stats.work

    def query_batch_time(self, queries: int, stats: OpStats) -> float:
        """Batched query execution: one base dispatch for the whole
        batch, a per-query floor, plus the measured structural work of
        the shared vectorized descent."""
        return (
            self.query_base
            + self.batch_query_item * queries
            + self.work_unit * stats.work
        )

    def bulk_time(self, items: int) -> float:
        return self.insert_base + self.bulk_item * items

    def insert_batch_time(self, items: int, stats: OpStats) -> float:
        """Batched online insert: one base dispatch for the whole batch,
        a per-item floor, plus the run-amortised structural work the
        tree actually measured."""
        return (
            self.insert_base
            + self.batch_item * items
            + self.work_unit * stats.work
        )

    def split_time(self, items: int) -> float:
        return self.insert_base + self.split_item * items

    def serialize_time(self, items: int) -> float:
        return self.insert_base + self.serialize_item * items

    def deserialize_time(self, items: int) -> float:
        return self.insert_base + self.deserialize_item * items

    def migrate_time(self, items: int) -> float:
        """End-to-end off-hot-path cost of relocating a shard: serialize
        at the source plus deserialize at the destination (wire time is
        charged separately by the transport's bandwidth model).  Used by
        the cost-driven balancer policy to budget maintenance work."""
        return self.serialize_time(items) + self.deserialize_time(items)

    def replicate_apply_time(self, items: int, stats: OpStats) -> float:
        """Applying a teed replication batch on a replica: the same
        batched-insert work as the primary paid, minus the per-row
        dedup/route dispatch (rows arrive pre-resolved)."""
        return self.batch_item * items + self.work_unit * stats.work

    def promote_time(self) -> float:
        """Replica promotion is a metadata flip -- re-tag the in-memory
        store and publish the znode -- so it costs one base dispatch,
        not a deserialization."""
        return self.insert_base

    def spill_time(self, items: int) -> float:
        """Spilling a HOT shard WARM: encode the colframe blob and
        release the columns.  Serialize-shaped -- spill *is* a
        checkpoint write, there is no second format."""
        return self.serialize_time(items)

    def rehydrate_time(self, items: int) -> float:
        """Pulling a WARM shard back HOT: decode the spilled blob and
        rebuild the tree.  Deserialize-shaped; charged to the op that
        touched the shard when rehydration is lazy (read/insert path)."""
        return self.deserialize_time(items)

    # -- server -----------------------------------------------------------

    def route_time(self, image_nodes: int) -> float:
        return self.route_base + self.route_node * image_nodes

    def merge_time(self, responses: int) -> float:
        return self.merge_shard * max(1, responses)

    # -- rollup tier -------------------------------------------------------

    def rollup_seed_time(self, rows: int) -> float:
        """Worker-side cube seeding: one vectorized columnar scan of
        the shard (much cheaper per row than a serialize)."""
        return self.insert_base + self.rollup_seed_item * rows

    def rollup_apply_time(self, rows: int) -> float:
        """Server-side fold of one stream batch into resident slabs."""
        return self.merge_shard + self.rollup_apply_item * max(1, rows)

    def rollup_hit_time(self, cells: int) -> float:
        """Answering a query from cube slabs: slice + merge, no worker
        round trip at all -- that absence is the tier's entire win."""
        return self.rollup_hit_base + self.rollup_cell * max(1, cells)

"""The manager: real-time load balancing (paper Section III-E).

A background process that periodically analyses the system state in
Zookeeper and initiates split and migration operations, coordinating
workers while the system continues to serve inserts and queries.  The
manager is deliberately *not* on the insert/query path -- it can reside
anywhere and is never a throughput bottleneck.

Policy (paper: "the manager may identify a worker that is overloaded
and about to run out of memory, then send messages to workers
instructing them to perform the appropriate splits and/or migrations"):

* any shard larger than ``max_shard_items`` is split in place;
* when the most loaded worker stores more than ``imbalance_ratio``
  times the least loaded one, shards migrate from the former to the
  latter until the projected sizes balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .simclock import SimClock
from .stats import ClusterStats
from .transport import Entity, Message, Transport
from .zookeeper import Zookeeper

__all__ = ["BalancerPolicy", "Manager"]


@dataclass(frozen=True)
class BalancerPolicy:
    """Thresholds steering the manager's decisions."""

    max_shard_items: int = 8000
    imbalance_ratio: float = 1.4
    min_migrate_items: int = 200
    scan_period: float = 1.0
    max_inflight: int = 4


class Manager(Entity):
    """The load-balancing coordinator."""

    def __init__(
        self,
        clock: SimClock,
        transport: Transport,
        zk: Zookeeper,
        workers: dict[int, Entity],
        policy: Optional[BalancerPolicy] = None,
        stats: Optional[ClusterStats] = None,
        first_shard_id: int = 1_000,
    ):
        self.name = "manager"
        self.clock = clock
        self.transport = transport
        self.zk = zk
        self.workers = workers
        self.policy = policy if policy is not None else BalancerPolicy()
        self.stats = stats if stats is not None else ClusterStats()
        self._next_shard_id = first_shard_id
        self._busy_shards: set[int] = set()
        self._inflight = 0
        self.splits_started = 0
        self.migrations_started = 0
        self.enabled = True
        clock.every(self.policy.scan_period, self.scan)

    def allocate_shard_id(self) -> int:
        self._next_shard_id += 1
        return self._next_shard_id

    # -- periodic decision loop -------------------------------------------

    def _worker_state(self) -> dict[int, dict]:
        state = {}
        for wid in self.workers:
            data = self.zk.get(f"/stats/workers/{wid}")
            if data is not None:
                state[wid] = data
        return state

    def scan(self) -> None:
        if not self.enabled or self._inflight >= self.policy.max_inflight:
            return
        state = self._worker_state()
        if len(state) < 1:
            return
        self._scan_splits(state)
        if self._inflight < self.policy.max_inflight:
            self._scan_migrations(state)

    def _scan_splits(self, state: dict[int, dict]) -> None:
        for wid, data in state.items():
            for sid, size in data.get("shards", {}).items():
                if (
                    size > self.policy.max_shard_items
                    and sid not in self._busy_shards
                    and self._inflight < self.policy.max_inflight
                ):
                    self._start_split(wid, sid)

    def _scan_migrations(self, state: dict[int, dict]) -> None:
        """Plan migrations using projected sizes until balance or the
        in-flight budget is reached (several moves per scan)."""
        if len(state) < 2:
            return
        sizes = {wid: data.get("items", 0) for wid, data in state.items()}
        shards = {
            wid: dict(data.get("shards", {})) for wid, data in state.items()
        }
        while self._inflight < self.policy.max_inflight:
            src = max(sizes, key=sizes.get)
            dst = min(sizes, key=sizes.get)
            if src == dst:
                return
            if sizes[src] <= self.policy.imbalance_ratio * max(
                sizes[dst], self.policy.min_migrate_items
            ):
                return
            # move the largest shard that keeps dst below src
            gap = (sizes[src] - sizes[dst]) / 2
            candidates = [
                (size, sid)
                for sid, size in shards[src].items()
                if sid not in self._busy_shards
                and self.policy.min_migrate_items <= size <= gap
            ]
            if not candidates:
                # Every movable shard is too big: split the largest one
                # so the next scan has migratable pieces (paper III-E:
                # "a shard can also be split if the load balancer
                # requires smaller shards for migration").
                splittable = [
                    (size, sid)
                    for sid, size in shards[src].items()
                    if sid not in self._busy_shards
                    and size >= 2 * self.policy.min_migrate_items
                ]
                if splittable:
                    _, sid = max(splittable)
                    self._start_split(src, sid)
                return
            size, sid = max(candidates)
            self._start_migration(src, dst, sid)
            # project the move so the next iteration plans with it applied
            sizes[src] -= size
            sizes[dst] += size
            del shards[src][sid]
            shards[dst][sid] = size

    # -- operations -----------------------------------------------------------

    def _start_split(self, worker_id: int, shard_id: int) -> None:
        self._busy_shards.add(shard_id)
        self._inflight += 1
        self.splits_started += 1
        low, high = self.allocate_shard_id(), self.allocate_shard_id()
        self.transport.send(
            self.workers[worker_id],
            Message("split_shard", (shard_id, low, high, self)),
        )

    def _start_migration(self, src: int, dst: int, shard_id: int) -> None:
        self._busy_shards.add(shard_id)
        self._inflight += 1
        self.migrations_started += 1
        self.transport.send(
            self.workers[src],
            Message("migrate_shard", (shard_id, self.workers[dst], self)),
        )

    # -- acknowledgements -----------------------------------------------------

    def receive(self, msg: Message) -> None:
        if msg.kind == "split_done":
            shard_id, _low, _high, _wid = msg.payload
            self._busy_shards.discard(shard_id)
            self._inflight -= 1
            self.stats.record_split(self.clock.now)
        elif msg.kind == "migrate_done":
            shard_id, _src, _dst = msg.payload
            self._busy_shards.discard(shard_id)
            self._inflight -= 1
            self.stats.record_migration(self.clock.now)
        elif msg.kind in ("split_failed", "migrate_failed"):
            shard_id = msg.payload[0]
            self._busy_shards.discard(shard_id)
            self._inflight -= 1
        else:
            raise ValueError(f"manager: unknown message {msg.kind!r}")

"""The manager: real-time load balancing (paper Section III-E).

A background process that periodically analyses the system state in
Zookeeper and initiates split and migration operations, coordinating
workers while the system continues to serve inserts and queries.  The
manager is deliberately *not* on the insert/query path -- it can reside
anywhere and is never a throughput bottleneck.

Policy (paper: "the manager may identify a worker that is overloaded
and about to run out of memory, then send messages to workers
instructing them to perform the appropriate splits and/or migrations"):

* any shard larger than ``max_shard_items`` is split in place;
* when the most loaded worker stores more than ``imbalance_ratio``
  times the least loaded one, shards migrate from the former to the
  latter until the projected sizes balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .faults import CheckpointStore
from .simclock import SimClock
from .stats import ClusterStats
from .transport import Entity, Message, Transport
from .zookeeper import Zookeeper

__all__ = ["BalancerPolicy", "Manager"]


@dataclass(frozen=True)
class BalancerPolicy:
    """Thresholds steering the manager's decisions."""

    max_shard_items: int = 8000
    imbalance_ratio: float = 1.4
    min_migrate_items: int = 200
    scan_period: float = 1.0
    max_inflight: int = 4
    #: give up on a split/migration that produced no reply (e.g. the
    #: destination died mid-transfer) after this many virtual seconds
    op_timeout: float = 10.0


class Manager(Entity):
    """The load-balancing coordinator."""

    def __init__(
        self,
        clock: SimClock,
        transport: Transport,
        zk: Zookeeper,
        workers: dict[int, Entity],
        policy: Optional[BalancerPolicy] = None,
        stats: Optional[ClusterStats] = None,
        first_shard_id: int = 1_000,
        checkpoints: Optional[CheckpointStore] = None,
        heartbeat_period: Optional[float] = None,
        heartbeat_miss_k: int = 4,
    ):
        self.name = "manager"
        self.clock = clock
        self.transport = transport
        self.zk = zk
        self.workers = workers
        self.policy = policy if policy is not None else BalancerPolicy()
        self.stats = stats if stats is not None else ClusterStats()
        self.checkpoints = checkpoints
        #: failure detection is active iff workers heartbeat
        self.heartbeat_period = heartbeat_period
        self.heartbeat_miss_k = heartbeat_miss_k
        self.dead_workers: set[int] = set()
        self._seen_beat: set[int] = set()
        #: shards awaiting a (re-)restore after their owner died
        self._pending_restores: set[int] = set()
        #: shard id -> worker that holds the accepted restored copy
        self._restored_to: dict[int, int] = {}
        self._restore_rr = 0
        self._next_shard_id = first_shard_id
        #: shard id -> (epoch, op kind) while a split/migration/restore runs
        self._busy_shards: dict[int, tuple[int, str]] = {}
        #: shard id -> open obs span of its in-flight balancing op
        self._op_spans: dict[int, object] = {}
        self._op_epoch = 0
        self._inflight = 0
        self.splits_started = 0
        self.migrations_started = 0
        self.failovers_handled = 0
        self.restores_done = 0
        self.ops_timed_out = 0
        self.enabled = True
        clock.every(self.policy.scan_period, self.scan)

    def allocate_shard_id(self) -> int:
        self._next_shard_id += 1
        return self._next_shard_id

    def reserve_shard_ids(self, upto: int) -> None:
        """Ensure future allocations start above ``upto`` (bootstrap
        claims low ids for the initial shards)."""
        self._next_shard_id = max(self._next_shard_id, upto)

    # -- periodic decision loop -------------------------------------------

    def _worker_state(self) -> dict[int, dict]:
        state = {}
        for wid in self.workers:
            data = self.zk.get(f"/stats/workers/{wid}")
            if data is not None:
                state[wid] = data
        return state

    def scan(self) -> None:
        if not self.enabled:
            return
        self._check_failures()
        # retry restores that stalled (target died mid-restore, or no
        # survivor existed when the owner was declared dead)
        for sid in sorted(self._pending_restores):
            if sid not in self._busy_shards:
                self._try_restore(sid)
        if self._inflight >= self.policy.max_inflight:
            return
        state = self._worker_state()
        state = {
            wid: d for wid, d in state.items() if wid not in self.dead_workers
        }
        if len(state) < 1:
            return
        self._scan_splits(state)
        if self._inflight < self.policy.max_inflight:
            self._scan_migrations(state)

    # -- failure detection / recovery (heartbeats + checkpoints) ----------

    def _check_failures(self) -> None:
        """Declare workers dead when their ephemeral heartbeat znode has
        expired (K missed beats), then restore their shards."""
        if self.heartbeat_period is None:
            return
        for wid in list(self.workers):
            beat = self.zk.get(f"/heartbeats/{wid}")
            if beat is not None:
                self._seen_beat.add(wid)
                if wid in self.dead_workers:
                    # the worker restarted and is heartbeating again
                    self.dead_workers.discard(wid)
                continue
            if wid in self._seen_beat and wid not in self.dead_workers:
                self._declare_dead(wid)

    def _declare_dead(self, wid: int) -> None:
        self.dead_workers.add(wid)
        self.failovers_handled += 1
        self.zk.delete(f"/stats/workers/{wid}")
        lost = []
        for name in self.zk.ls("/shards"):
            data = self.zk.get(f"/shards/{name}")
            if data is not None and data[2] == wid:
                lost.append(int(name))
        self.stats.record_failover(self.clock.now, wid, len(lost))
        for sid in sorted(lost):
            self._pending_restores.add(sid)
            self._restored_to.pop(sid, None)
            self._try_restore(sid)

    def _try_restore(self, sid: int) -> None:
        """Send the shard's checkpoint to an alive worker.  A no-op when
        no survivor exists; the periodic scan retries once one revives
        (or the crashed worker itself restarts)."""
        if sid in self._busy_shards:
            return
        targets = sorted(
            w for w in self.workers if w not in self.dead_workers
        )
        if not targets:
            return
        self._restore_rr += 1
        dst = self.workers[targets[self._restore_rr % len(targets)]]
        ck = self.checkpoints.get(sid) if self.checkpoints else None
        blob = ck[0] if ck is not None else None
        self._mark_busy(sid, "restore")
        span = self._start_op_span("restore", sid)
        self.transport.send(
            dst,
            Message(
                "restore_shard",
                (sid, blob, self),
                size=len(blob) if blob is not None else 64,
                sender=self,
                ctx=span.ctx if span is not None else None,
            ),
        )

    def _scan_splits(self, state: dict[int, dict]) -> None:
        for wid, data in state.items():
            for sid, size in data.get("shards", {}).items():
                if (
                    size > self.policy.max_shard_items
                    and sid not in self._busy_shards
                    and self._inflight < self.policy.max_inflight
                ):
                    self._start_split(wid, sid)

    def _scan_migrations(self, state: dict[int, dict]) -> None:
        """Plan migrations using projected sizes until balance or the
        in-flight budget is reached (several moves per scan)."""
        if len(state) < 2:
            return
        sizes = {wid: data.get("items", 0) for wid, data in state.items()}
        shards = {
            wid: dict(data.get("shards", {})) for wid, data in state.items()
        }
        while self._inflight < self.policy.max_inflight:
            src = max(sizes, key=sizes.get)
            dst = min(sizes, key=sizes.get)
            if src == dst:
                return
            if sizes[src] <= self.policy.imbalance_ratio * max(
                sizes[dst], self.policy.min_migrate_items
            ):
                return
            # move the largest shard that keeps dst below src
            gap = (sizes[src] - sizes[dst]) / 2
            candidates = [
                (size, sid)
                for sid, size in shards[src].items()
                if sid not in self._busy_shards
                and self.policy.min_migrate_items <= size <= gap
            ]
            if not candidates:
                # Every movable shard is too big: split the largest one
                # so the next scan has migratable pieces (paper III-E:
                # "a shard can also be split if the load balancer
                # requires smaller shards for migration").
                splittable = [
                    (size, sid)
                    for sid, size in shards[src].items()
                    if sid not in self._busy_shards
                    and size >= 2 * self.policy.min_migrate_items
                ]
                if splittable:
                    _, sid = max(splittable)
                    self._start_split(src, sid)
                return
            size, sid = max(candidates)
            self._start_migration(src, dst, sid)
            # project the move so the next iteration plans with it applied
            sizes[src] -= size
            sizes[dst] += size
            del shards[src][sid]
            shards[dst][sid] = size

    # -- operations -----------------------------------------------------------

    def _start_op_span(self, kind: str, shard_id: int):
        """Open the root span of a balancing op (``manager.split`` /
        ``manager.migrate`` / ``manager.restore``); ``None`` when off."""
        if self.transport.obs is None:
            return None
        span = self.transport.obs.start_span(
            f"manager.{kind}", self.name, shard=shard_id
        )
        if span is not None:
            self._op_spans[shard_id] = span
        return span

    def _finish_op_span(self, shard_id: int, **tags) -> None:
        span = self._op_spans.pop(shard_id, None)
        if span is not None and self.transport.obs is not None:
            self.transport.obs.finish_span(span, **tags)

    def _mark_busy(self, shard_id: int, kind: str, src: Optional[int] = None) -> None:
        """Track an in-flight op and arm a give-up timer so an op whose
        participant died cannot leak the shard's busy slot forever."""
        self._op_epoch += 1
        epoch = self._op_epoch
        self._busy_shards[shard_id] = (epoch, kind)

        def fire() -> None:
            if self._busy_shards.get(shard_id) != (epoch, kind):
                return  # completed (or superseded) in time
            del self._busy_shards[shard_id]
            self._finish_op_span(shard_id, ok=False, timeout=True)
            self.ops_timed_out += 1
            if kind in ("split", "migrate"):
                self._inflight -= 1
            if kind == "migrate" and src is not None:
                # unwedge the frozen source shard
                self.transport.send(
                    self.workers[src],
                    Message("migrate_abort", (shard_id,), sender=self),
                )
            if kind == "restore" and shard_id in self._pending_restores:
                self._try_restore(shard_id)  # pick another survivor

        self.clock.after(self.policy.op_timeout, fire)

    def _release(self, shard_id: int, expected_kind: str) -> bool:
        entry = self._busy_shards.pop(shard_id, None)
        if entry is None:
            return False  # already timed out
        if entry[1] in ("split", "migrate"):
            self._inflight -= 1
        return True

    def _start_split(self, worker_id: int, shard_id: int) -> None:
        self._mark_busy(shard_id, "split")
        span = self._start_op_span("split", shard_id)
        self._inflight += 1
        self.splits_started += 1
        low, high = self.allocate_shard_id(), self.allocate_shard_id()
        self.transport.send(
            self.workers[worker_id],
            Message(
                "split_shard",
                (shard_id, low, high, self),
                sender=self,
                ctx=span.ctx if span is not None else None,
            ),
        )

    def _start_migration(self, src: int, dst: int, shard_id: int) -> None:
        self._mark_busy(shard_id, "migrate", src=src)
        span = self._start_op_span("migrate", shard_id)
        self._inflight += 1
        self.migrations_started += 1
        self.transport.send(
            self.workers[src],
            Message(
                "migrate_shard",
                (shard_id, self.workers[dst], self),
                sender=self,
                ctx=span.ctx if span is not None else None,
            ),
        )

    # -- acknowledgements -----------------------------------------------------

    def receive(self, msg: Message) -> None:
        if msg.kind == "split_done":
            shard_id, _low, _high, _wid = msg.payload
            if self._release(shard_id, "split"):
                self.stats.record_split(self.clock.now)
            self._finish_op_span(shard_id, ok=True)
        elif msg.kind == "migrate_done":
            shard_id, _src, _dst = msg.payload
            if self._release(shard_id, "migrate"):
                self.stats.record_migration(self.clock.now)
            self._finish_op_span(shard_id, ok=True)
        elif msg.kind in ("split_failed", "migrate_failed"):
            shard_id = msg.payload[0]
            self._release(shard_id, msg.kind.split("_")[0])
            self._finish_op_span(shard_id, ok=False)
        elif msg.kind == "restore_done":
            shard_id, wid, _size = msg.payload
            self._busy_shards.pop(shard_id, None)
            self._finish_op_span(shard_id, ok=True)
            if shard_id in self._pending_restores:
                self._pending_restores.discard(shard_id)
                self.restores_done += 1
            # a timed-out attempt may have been re-issued and both copies
            # completed: keep the one the system image names, drop the other
            data = self.zk.get(f"/shards/{shard_id}")
            owner = data[2] if data is not None else wid
            if owner != wid:
                self._drop_copy(wid, shard_id)
            else:
                prev = self._restored_to.get(shard_id)
                if prev is not None and prev != wid:
                    self._drop_copy(prev, shard_id)
                self._restored_to[shard_id] = wid
        else:
            raise ValueError(f"manager: unknown message {msg.kind!r}")

    def _drop_copy(self, wid: int, shard_id: int) -> None:
        if wid in self.workers and wid not in self.dead_workers:
            self.transport.send(
                self.workers[wid],
                Message("drop_shard", (shard_id,), sender=self),
            )

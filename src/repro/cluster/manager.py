"""The manager: real-time load balancing (paper Section III-E).

A background process that periodically analyses the system state in
Zookeeper and initiates split and migration operations, coordinating
workers while the system continues to serve inserts and queries.  The
manager is deliberately *not* on the insert/query path -- it can reside
anywhere and is never a throughput bottleneck.

The manager itself is thin; the two interesting parts live next door:

* **deciding** is delegated to a pluggable
  :class:`~repro.cluster.balancer.BalancerPolicy` whose pure ``plan``
  turns a :class:`~repro.cluster.balancer.WorkerView` snapshot into
  split/migrate actions (threshold, memory-pressure, or cost-driven);
* **tracking** each started operation -- busy shards, per-kind in-flight
  budgets, give-up timers, obs spans -- is owned by the
  :class:`~repro.cluster.lifecycle.ShardOpMachine`, so the manager only
  speaks the wire protocol and applies the policy's decisions.
"""

from __future__ import annotations

from typing import Optional

from .balancer import (
    BalancerPolicy,
    MigrateAction,
    RehydrateAction,
    SpillAction,
    WorkerView,
)
from .faults import CheckpointStore
from .lifecycle import ShardOp, ShardOpMachine
from .simclock import SimClock
from .stats import ClusterStats
from .transport import Entity, Message, Transport
from .zookeeper import Zookeeper

__all__ = ["BalancerPolicy", "Manager"]


class Manager(Entity):
    """The load-balancing coordinator."""

    def __init__(
        self,
        clock: SimClock,
        transport: Transport,
        zk: Zookeeper,
        workers: dict[int, Entity],
        policy: Optional[BalancerPolicy] = None,
        stats: Optional[ClusterStats] = None,
        first_shard_id: int = 1_000,
        checkpoints: Optional[CheckpointStore] = None,
        heartbeat_period: Optional[float] = None,
        heartbeat_miss_k: int = 4,
        replication_factor: int = 0,
    ):
        self.name = "manager"
        self.clock = clock
        self.transport = transport
        self.zk = zk
        self.workers = workers
        self.policy = policy if policy is not None else BalancerPolicy()
        self.stats = stats if stats is not None else ClusterStats()
        self.checkpoints = checkpoints
        #: failure detection is active iff workers heartbeat
        self.heartbeat_period = heartbeat_period
        self.heartbeat_miss_k = heartbeat_miss_k
        self.dead_workers: set[int] = set()
        self._seen_beat: set[int] = set()
        #: revived workers serving out their probation: worker id ->
        #: time the first post-death beat was seen.  A worker that was
        #: declared dead but heartbeats again (restart, or a partition
        #: that healed) is not trusted with placements until it has
        #: beaten steadily for ``quarantine_period`` -- long enough for
        #: its own reconcile pass to demote any stale primaries.
        self.quarantine: dict[int, float] = {}
        self.quarantine_period = (
            2 * heartbeat_period if heartbeat_period else 0.0
        )
        self.rejoins = 0
        #: asynchronous replicas per shard (0 = replication off)
        self.replication_factor = replication_factor
        #: shard id -> worker ids holding (or being seeded with) its
        #: replicas; the manager's source of truth for placement
        self.replica_sets: dict[int, set[int]] = {}
        self._replica_rr = 0
        self.replications_started = 0
        self.promotions_started = 0
        self.promotions_done = 0
        #: shards awaiting a (re-)restore after their owner died
        self._pending_restores: set[int] = set()
        #: shard id -> worker that holds the accepted restored copy
        self._restored_to: dict[int, int] = {}
        self._restore_rr = 0
        self._next_shard_id = first_shard_id
        #: every in-flight op (busy tracking, budgets, timers, spans)
        self.lifecycle = ShardOpMachine(
            clock, transport, registry=self.stats.registry, entity_name=self.name
        )
        self.lifecycle.max_inflight = self.policy.max_inflight
        self.lifecycle.max_inflight_restores = self.policy.max_inflight_restores
        self.lifecycle.op_timeout = self.policy.op_timeout
        self.lifecycle.on_timeout = self._on_op_timeout
        self.splits_started = 0
        self.migrations_started = 0
        self.failovers_handled = 0
        self.restores_done = 0
        self.spills_started = 0
        self.spills_done = 0
        self.rehydrates_started = 0
        self.rehydrates_done = 0
        self.enabled = True
        clock.every(self.policy.scan_period, self.scan)

    @property
    def ops_timed_out(self) -> int:
        return self.lifecycle.timed_out

    def allocate_shard_id(self) -> int:
        self._next_shard_id += 1
        return self._next_shard_id

    def reserve_shard_ids(self, upto: int) -> None:
        """Ensure future allocations start above ``upto`` (bootstrap
        claims low ids for the initial shards)."""
        self._next_shard_id = max(self._next_shard_id, upto)

    # -- periodic decision loop -------------------------------------------

    def _worker_state(self) -> dict[int, dict]:
        state = {}
        for wid in self.workers:
            data = self.zk.get(f"/stats/workers/{wid}")
            if data is None:
                continue
            # overlay heartbeat-fresh resident bytes (beats run faster
            # than stats ticks); copy first -- the zk stand-in returns
            # the stored dict by reference
            beat = self.zk.get(f"/heartbeats/{wid}")
            if isinstance(beat, tuple) and len(beat) > 1:
                data = dict(data)
                data["resident_bytes"] = beat[1]
            state[wid] = data
        return state

    def scan(self) -> None:
        if not self.enabled:
            return
        self._check_failures()
        self._sync_worker_phases()
        # retry heals that stalled (promotion target or restore target
        # died mid-op, or no survivor existed at declaration time)
        for sid in sorted(self._pending_restores):
            if not self.lifecycle.busy(sid):
                self._heal_shard(sid)
        self._ensure_replication()
        if self.lifecycle.balance_inflight >= self.policy.max_inflight:
            return
        state = self._worker_state()
        state = {
            wid: d for wid, d in state.items() if wid not in self.dead_workers
        }
        if len(state) < 1:
            return
        view = WorkerView.from_stats(
            state,
            busy=self.lifecycle.busy_shards(),
            budget=self.policy.max_inflight - self.lifecycle.balance_inflight,
        )
        for action in self.policy.plan(view):
            if isinstance(action, MigrateAction):
                self._start_migration(action.src, action.dst, action.shard_id)
            elif isinstance(action, SpillAction):
                self._start_spill(action.worker_id, action.shard_id)
            elif isinstance(action, RehydrateAction):
                self._start_rehydrate(action.worker_id, action.shard_id)
            else:
                self._start_split(action.worker_id, action.shard_id)

    def _sync_worker_phases(self) -> None:
        """Fold worker-reported transfer phases (published best-effort
        under ``/lifecycle/``) into the active ops, so the machine's
        history shows the same ``INSTALLING``/``CUTOVER`` states the
        worker-side :class:`~repro.cluster.worker.ShardTransfer` went
        through.  Purely observational: reads schedule no events."""
        for sid in list(self.lifecycle.ops):
            data = self.zk.get(f"/lifecycle/{sid}")
            if data is not None:
                self.lifecycle.advance(sid, data[0])

    # -- failure detection / recovery (heartbeats + checkpoints) ----------

    def _beating(self, wid: int) -> bool:
        """Whether ``wid``'s ephemeral heartbeat znode is currently
        live.  Guards promote/restore targets against the scan-order
        race where two workers die in the same detection window: the
        first ``_declare_dead`` heals shards before the second corpse
        is declared, and would otherwise pick it as a destination (the
        op then only unwinds via its timeout).  With heartbeats
        disabled nobody is ever declared dead, so everyone counts."""
        if self.heartbeat_period is None:
            return True
        return self.zk.get(f"/heartbeats/{wid}") is not None

    def _check_failures(self) -> None:
        """Declare workers dead when their ephemeral heartbeat znode has
        expired (K missed beats), then restore their shards."""
        if self.heartbeat_period is None:
            return
        for wid in list(self.workers):
            beat = self.zk.get(f"/heartbeats/{wid}")
            if beat is not None:
                self._seen_beat.add(wid)
                if wid in self.dead_workers:
                    # the worker is heartbeating again: either it
                    # restarted empty, or it was alive all along behind
                    # a partition that healed.  Either way it rejoins
                    # only after its probation (see ``quarantine``).
                    if wid not in self.quarantine:
                        self.quarantine[wid] = self.clock.now
                    elif (
                        self.clock.now - self.quarantine[wid]
                        >= self.quarantine_period
                    ):
                        self.dead_workers.discard(wid)
                        del self.quarantine[wid]
                        self.rejoins += 1
                continue
            # its beat lapsed (again): probation, if any, starts over
            self.quarantine.pop(wid, None)
            if wid in self._seen_beat and wid not in self.dead_workers:
                self._declare_dead(wid)

    def _declare_dead(self, wid: int) -> None:
        self.dead_workers.add(wid)
        self.failovers_handled += 1
        self.zk.delete(f"/stats/workers/{wid}")
        # stop counting the dead worker as a replica holder, and detach
        # it from every live primary's stream (best effort)
        for sid, holders in self.replica_sets.items():
            if wid not in holders:
                continue
            holders.discard(wid)
            data = self.zk.get(f"/shards/{sid}")
            owner = data[2] if data is not None else None
            if (
                owner is not None
                and owner in self.workers
                and owner not in self.dead_workers
            ):
                self.transport.send(
                    self.workers[owner],
                    Message("replica_remove", (sid, wid), sender=self),
                )
        lost = []
        for name in self.zk.ls("/shards"):
            data = self.zk.get(f"/shards/{name}")
            if data is not None and data[2] == wid:
                lost.append(int(name))
        self.stats.record_failover(self.clock.now, wid, len(lost))
        for sid in sorted(lost):
            self._pending_restores.add(sid)
            self._restored_to.pop(sid, None)
            self._heal_shard(sid)

    def _heal_shard(self, sid: int) -> None:
        """Re-home a shard whose primary died: promote the freshest live
        replica (a metadata flip, no checkpoint deserialization), or
        fall back to a checkpoint restore when no live replica exists.
        A no-op when the shard is busy; the periodic scan retries."""
        if self.lifecycle.busy(sid):
            return
        data = self.zk.get(f"/shards/{sid}")
        if data is not None:
            owner = data[2]
            owner_stats = self.zk.get(f"/stats/workers/{owner}")
            if (
                owner not in self.dead_workers
                and self.zk.get(f"/heartbeats/{owner}") is not None
                and owner_stats is not None
                and sid in owner_stats.get("shards", {})
            ):
                # already healed (e.g. a promote_done was lost in
                # flight but the metadata flip itself landed): the
                # named owner is alive and really holds the shard -- a
                # restarted-empty owner would not list it
                self._pending_restores.discard(sid)
                return
        cands = [
            w
            for w in sorted(self.replica_sets.get(sid, ()))
            if w in self.workers
            and w not in self.dead_workers
            and w not in self.quarantine
            and self._beating(w)
        ]
        if not cands:
            self._try_restore(sid)
            return
        if (
            self.lifecycle.restore_inflight
            >= self.lifecycle.max_inflight_restores
        ):
            return  # promotion shares the failover budget

        def freshness(w: int) -> tuple:
            wm = self.zk.get(f"/replicas/{sid}/{w}")
            if wm is None:
                return (-1, -1.0, -w)
            return (wm[1], wm[2], -w)  # (frontier, watermark time)

        best = max(cands, key=freshness)
        op = self.lifecycle.admit("promote", sid, dst=best)
        if op is None:
            return
        # bump the shard's epoch *now*: it fences the dead primary's
        # other replicas (and the primary itself, should the partition
        # heal) even if this promotion attempt later times out
        new_epoch = (self.zk.get(f"/epochs/{sid}") or 0) + 1
        self.zk.set(f"/epochs/{sid}", new_epoch)
        self.replica_sets[sid].discard(best)
        self.promotions_started += 1
        self.transport.send(
            self.workers[best],
            Message(
                "promote_shard",
                (sid, new_epoch, self),
                sender=self,
                ctx=op.span.ctx if op.span is not None else None,
            ),
        )
        self.lifecycle.dispatched(sid)

    def _try_restore(self, sid: int) -> None:
        """Send the shard's checkpoint to an alive worker.  A no-op when
        no survivor exists or the restore budget is exhausted; the
        periodic scan retries once a slot (or survivor) appears."""
        if self.lifecycle.busy(sid):
            return
        if (
            self.lifecycle.restore_inflight
            >= self.lifecycle.max_inflight_restores
        ):
            return
        targets = sorted(
            w
            for w in self.workers
            if w not in self.dead_workers
            and w not in self.quarantine
            and self._beating(w)
        )
        if not targets:
            return
        self._restore_rr += 1
        dst_id = targets[self._restore_rr % len(targets)]
        ck = self.checkpoints.get(sid) if self.checkpoints else None
        blob = ck[0] if ck is not None else None
        op = self.lifecycle.admit("restore", sid, dst=dst_id)
        if op is None:  # pragma: no cover - guarded above
            return
        # fence any copy from the previous ownership epoch
        self.zk.set(f"/epochs/{sid}", (self.zk.get(f"/epochs/{sid}") or 0) + 1)
        self.transport.send(
            self.workers[dst_id],
            Message(
                "restore_shard",
                (sid, blob, self),
                size=len(blob) if blob is not None else None,
                sender=self,
                ctx=op.span.ctx if op.span is not None else None,
            ),
        )
        self.lifecycle.dispatched(sid)

    # -- replication ------------------------------------------------------

    def _ensure_replication(self) -> None:
        """Keep every settled shard at ``replication_factor`` replicas:
        prune holders that died, then seed missing copies round-robin
        over eligible workers (never the primary, never dead or
        quarantined workers).  One seeding op per shard at a time, all
        drawing from the dedicated ``replicate`` budget."""
        if self.replication_factor <= 0:
            return
        for name in self.zk.ls("/shards"):
            sid = int(name)
            if self.lifecycle.busy(sid):
                continue
            data = self.zk.get(f"/shards/{sid}")
            if data is None:
                continue
            owner = data[2]
            if (
                owner in self.dead_workers
                or owner in self.quarantine
                or owner not in self.workers
            ):
                continue
            holders = self.replica_sets.setdefault(sid, set())
            for w in list(holders):
                if (
                    w in self.dead_workers
                    or w not in self.workers
                    or w == owner
                ):
                    holders.discard(w)
            if len(holders) >= self.replication_factor:
                continue
            if (
                self.lifecycle.replica_inflight
                >= self.lifecycle.max_inflight_replications
            ):
                return
            cands = [
                w
                for w in sorted(self.workers)
                if w != owner
                and w not in holders
                and w not in self.dead_workers
                and w not in self.quarantine
            ]
            if not cands:
                continue
            self._replica_rr += 1
            dst = cands[self._replica_rr % len(cands)]
            op = self.lifecycle.admit("replicate", sid, src=owner, dst=dst)
            if op is None:
                return
            self.replications_started += 1
            self.transport.send(
                self.workers[owner],
                Message(
                    "replicate_shard",
                    (sid, self.workers[dst], dst, self),
                    sender=self,
                    ctx=op.span.ctx if op.span is not None else None,
                ),
            )
            self.lifecycle.dispatched(sid)

    def _reset_replicas(self, sid: int, keep: Optional[int] = None) -> None:
        """Invalidate a shard's replica set (the stream epoch moved on:
        promotion, migration, or split); survivors are told to discard
        their copies and the scan re-seeds from the new primary."""
        for w in self.replica_sets.pop(sid, set()):
            if w != keep and w in self.workers and w not in self.dead_workers:
                self.transport.send(
                    self.workers[w],
                    Message("drop_replica", (sid,), sender=self),
                )

    # -- operations -----------------------------------------------------------

    def _on_op_timeout(self, op: ShardOp) -> None:
        """Protocol unwind after the machine's give-up timer fired."""
        if op.kind == "migrate" and op.src is not None:
            # unwedge the frozen source shard
            self.transport.send(
                self.workers[op.src],
                Message("migrate_abort", (op.shard_id,), sender=self),
            )
        if op.kind == "restore" and op.shard_id in self._pending_restores:
            self._heal_shard(op.shard_id)  # pick another survivor
        if op.kind == "replicate" and op.dst is not None:
            # the seed may be half-landed: discard the copy and detach
            # the stream; the scan re-seeds from scratch
            holders = self.replica_sets.get(op.shard_id)
            if holders is not None:
                holders.discard(op.dst)
            if op.dst in self.workers and op.dst not in self.dead_workers:
                self.transport.send(
                    self.workers[op.dst],
                    Message("drop_replica", (op.shard_id,), sender=self),
                )
            if (
                op.src is not None
                and op.src in self.workers
                and op.src not in self.dead_workers
            ):
                self.transport.send(
                    self.workers[op.src],
                    Message("replica_remove", (op.shard_id, op.dst), sender=self),
                )
        if op.kind == "promote" and op.shard_id in self._pending_restores:
            # the chosen replica never flipped (crashed mid-promotion,
            # or the message was lost): try the next-freshest, or fall
            # back to a checkpoint restore
            self._heal_shard(op.shard_id)

    def _start_split(self, worker_id: int, shard_id: int) -> None:
        op = self.lifecycle.admit("split", shard_id, src=worker_id)
        if op is None:  # pragma: no cover - plan respects busy/budget
            return
        self.splits_started += 1
        low, high = self.allocate_shard_id(), self.allocate_shard_id()
        self.transport.send(
            self.workers[worker_id],
            Message(
                "split_shard",
                (shard_id, low, high, self),
                sender=self,
                ctx=op.span.ctx if op.span is not None else None,
            ),
        )
        self.lifecycle.dispatched(shard_id)

    def _start_migration(self, src: int, dst: int, shard_id: int) -> None:
        op = self.lifecycle.admit("migrate", shard_id, src=src, dst=dst)
        if op is None:  # pragma: no cover - plan respects busy/budget
            return
        self.migrations_started += 1
        self.transport.send(
            self.workers[src],
            Message(
                "migrate_shard",
                (shard_id, self.workers[dst], self),
                sender=self,
                ctx=op.span.ctx if op.span is not None else None,
            ),
        )
        self.lifecycle.dispatched(shard_id)

    def _start_spill(self, worker_id: int, shard_id: int) -> None:
        """Policy-driven spill (draws from the residency pool, so
        memory relief is never queued behind migrations)."""
        op = self.lifecycle.admit("spill", shard_id, src=worker_id)
        if op is None:
            return
        self.spills_started += 1
        self.transport.send(
            self.workers[worker_id],
            Message(
                "spill_shard",
                (shard_id, self),
                sender=self,
                ctx=op.span.ctx if op.span is not None else None,
            ),
        )
        self.lifecycle.dispatched(shard_id)

    def _start_rehydrate(self, worker_id: int, shard_id: int) -> None:
        op = self.lifecycle.admit("rehydrate", shard_id, src=worker_id)
        if op is None:
            return
        self.rehydrates_started += 1
        self.transport.send(
            self.workers[worker_id],
            Message(
                "rehydrate_shard",
                (shard_id, self),
                sender=self,
                ctx=op.span.ctx if op.span is not None else None,
            ),
        )
        self.lifecycle.dispatched(shard_id)

    # -- acknowledgements -----------------------------------------------------

    def receive(self, msg: Message) -> None:
        if msg.kind == "split_done":
            shard_id, _low, _high, _wid = msg.payload
            if self.lifecycle.complete(shard_id, "split", ok=True):
                self.stats.record_split(self.clock.now)
                # the children start unreplicated; the parent's replicas
                # hold a dead id
                self._reset_replicas(shard_id)
        elif msg.kind == "migrate_done":
            shard_id, _src, _dst = msg.payload
            if self.lifecycle.complete(shard_id, "migrate", ok=True):
                self.stats.record_migration(self.clock.now)
                # the stream did not follow the move: re-seed
                self._reset_replicas(shard_id)
        elif msg.kind in ("split_failed", "migrate_failed"):
            shard_id = msg.payload[0]
            self.lifecycle.complete(
                shard_id, msg.kind.split("_")[0], ok=False
            )
        elif msg.kind == "replicate_done":
            shard_id, wid = msg.payload
            if self.lifecycle.complete(shard_id, "replicate", ok=True):
                self.replica_sets.setdefault(shard_id, set()).add(wid)
        elif msg.kind == "replicate_failed":
            shard_id, _wid = msg.payload
            op = self.lifecycle.active(shard_id)
            dst = op.dst if op is not None and op.kind == "replicate" else None
            if self.lifecycle.complete(shard_id, "replicate", ok=False):
                if dst is not None:
                    self.replica_sets.get(shard_id, set()).discard(dst)
        elif msg.kind == "promote_done":
            shard_id, wid, _size = msg.payload
            if self.lifecycle.complete(shard_id, "promote", ok=True):
                self._pending_restores.discard(shard_id)
                self.promotions_done += 1
                self.stats.record_promotion(self.clock.now, shard_id, wid)
                # surviving replicas carry the dead epoch: re-seed them
                # from the new primary
                self._reset_replicas(shard_id, keep=wid)
        elif msg.kind == "promote_failed":
            shard_id, _wid = msg.payload
            if self.lifecycle.complete(shard_id, "promote", ok=False):
                if shard_id in self._pending_restores:
                    self._heal_shard(shard_id)
        elif msg.kind == "spill_done":
            shard_id, _wid = msg.payload
            if self.lifecycle.complete(shard_id, "spill", ok=True):
                self.spills_done += 1
        elif msg.kind == "spill_failed":
            shard_id, _wid = msg.payload
            self.lifecycle.complete(shard_id, "spill", ok=False)
        elif msg.kind == "rehydrate_done":
            shard_id, _wid, _size = msg.payload
            if self.lifecycle.complete(shard_id, "rehydrate", ok=True):
                self.rehydrates_done += 1
        elif msg.kind == "rehydrate_failed":
            shard_id, _wid = msg.payload
            self.lifecycle.complete(shard_id, "rehydrate", ok=False)
        elif msg.kind == "restore_done":
            shard_id, wid, _size = msg.payload
            self.lifecycle.complete(shard_id, "restore", ok=True)
            if shard_id in self._pending_restores:
                self._pending_restores.discard(shard_id)
                self.restores_done += 1
            # any replica that outlived the old primary is fenced by the
            # restore's epoch bump: drop and re-seed
            self._reset_replicas(shard_id)
            # a timed-out attempt may have been re-issued and both copies
            # completed: keep the one the system image names, drop the other
            data = self.zk.get(f"/shards/{shard_id}")
            owner = data[2] if data is not None else wid
            if owner != wid:
                self._drop_copy(wid, shard_id)
            else:
                prev = self._restored_to.get(shard_id)
                if prev is not None and prev != wid:
                    self._drop_copy(prev, shard_id)
                self._restored_to[shard_id] = wid
        else:
            raise ValueError(f"manager: unknown message {msg.kind!r}")

    def _drop_copy(self, wid: int, shard_id: int) -> None:
        if wid in self.workers and wid not in self.dead_workers:
            self.transport.send(
                self.workers[wid],
                Message("drop_shard", (shard_id,), sender=self),
            )

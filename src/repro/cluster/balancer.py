"""Pluggable load-balancing policies (paper Section III-E).

The manager's periodic scan separates *deciding* from *doing*: it
snapshots per-worker state out of Zookeeper into a :class:`WorkerView`,
asks its policy's :meth:`BalancerPolicy.plan` for a list of
:class:`PlanAction` rows, and executes them through the shard-op
lifecycle machine.  ``plan`` is a **pure function** of the view -- no
clock, no transport, no Zookeeper -- so every policy is unit-testable
without instantiating the simulator.

Three policies ship:

* :class:`ThresholdPolicy` (the default; ``BalancerPolicy`` itself
  keeps the same greedy behaviour for backward compatibility): split
  any shard above ``max_shard_items``; while the most loaded worker
  exceeds ``imbalance_ratio`` times the least loaded, migrate the
  largest shard that fits half the gap, splitting when nothing fits
  (paper III-E: "a shard can also be split if the load balancer
  requires smaller shards for migration").
* :class:`MemoryPressurePolicy`: the paper's framing -- "the manager
  may identify a worker that is overloaded and about to run out of
  memory".  Workers have an item capacity; any worker above the high
  watermark sheds shards to the least-pressured worker until it
  projects below the low watermark.
* :class:`CostDrivenPolicy`: threshold-shaped decisions, but each scan
  budgets the virtual seconds of off-hot-path work (serialize +
  deserialize, :meth:`~repro.cluster.cost.CostModel.migrate_time`) that
  migrations may consume, and picks the moves with the best
  items-moved-per-second ratio first -- bounded maintenance work, so
  reorganisation never starves ingestion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Optional, Union

from .cost import CostModel

__all__ = [
    "SplitAction",
    "MigrateAction",
    "SpillAction",
    "RehydrateAction",
    "PlanAction",
    "WorkerView",
    "BalancerPolicy",
    "ThresholdPolicy",
    "MemoryPressurePolicy",
    "CostDrivenPolicy",
]


@dataclass(frozen=True)
class SplitAction:
    """Split ``shard_id`` in place on ``worker_id``."""

    worker_id: int
    shard_id: int
    kind: ClassVar[str] = "split"


@dataclass(frozen=True)
class MigrateAction:
    """Move ``shard_id`` from worker ``src`` to worker ``dst``."""

    src: int
    dst: int
    shard_id: int
    kind: ClassVar[str] = "migrate"


@dataclass(frozen=True)
class SpillAction:
    """Spill ``shard_id`` on ``worker_id`` from HOT to WARM (release
    its columns; the blob on disk keeps serving through the cold
    index).  Draws from the lifecycle's residency pool, not the
    split/migrate budget -- memory-pressure relief is cheaper than a
    migration and must never be starved by one."""

    worker_id: int
    shard_id: int
    kind: ClassVar[str] = "spill"


@dataclass(frozen=True)
class RehydrateAction:
    """Pull WARM ``shard_id`` on ``worker_id`` back HOT ahead of demand
    (the worker has durable headroom below the low watermark)."""

    worker_id: int
    shard_id: int
    kind: ClassVar[str] = "rehydrate"


PlanAction = Union[SplitAction, MigrateAction, SpillAction, RehydrateAction]


@dataclass(frozen=True)
class WorkerView:
    """Pure snapshot of cluster state a policy plans against.

    Dict iteration order is meaningful (it is the manager's worker
    registration order) and ties in size comparisons resolve to the
    first worker in that order, exactly as the pre-refactor greedy
    scan did.
    """

    #: worker id -> total stored items (shards + insertion queues)
    sizes: dict
    #: worker id -> {shard id -> item count}
    shards: dict
    #: shard ids with an in-flight lifecycle op (never planned again)
    busy: frozenset = frozenset()
    #: remaining split+migration admission slots this scan
    budget: int = 1
    #: worker id -> measured hot resident bytes (heartbeat-fresh when
    #: available, stats-fresh otherwise); empty for pre-residency
    #: payloads, and item-count planning still works then (back-compat)
    resident_bytes: dict = field(default_factory=dict)
    #: worker id -> {hot shard id -> resident bytes}
    shard_bytes: dict = field(default_factory=dict)
    #: worker id -> {WARM shard id -> (items, pre-spill resident bytes)}
    warm: dict = field(default_factory=dict)
    #: worker id -> {hot shard id -> seconds since last access}
    idle: dict = field(default_factory=dict)

    @classmethod
    def from_stats(cls, state: dict, busy, budget: int) -> "WorkerView":
        """Build a view from the ``/stats/workers/*`` znode payloads."""
        return cls(
            sizes={wid: d.get("items", 0) for wid, d in state.items()},
            shards={wid: dict(d.get("shards", {})) for wid, d in state.items()},
            busy=frozenset(busy),
            budget=budget,
            resident_bytes={
                wid: d["resident_bytes"]
                for wid, d in state.items()
                if "resident_bytes" in d
            },
            shard_bytes={
                wid: dict(d.get("shard_bytes", {})) for wid, d in state.items()
            },
            warm={
                wid: {sid: tuple(v) for sid, v in d.get("warm", {}).items()}
                for wid, d in state.items()
            },
            idle={wid: dict(d.get("idle", {})) for wid, d in state.items()},
        )

    def hot_shards(self, worker_id: int) -> dict:
        """The worker's shard sizes minus WARM shards: split and
        migrate candidates must be HOT (a WARM shard is not frozen, so
        a transfer would find it absent and fail -- harmless but a
        wasted scan)."""
        warm = self.warm.get(worker_id, {})
        return {
            sid: size
            for sid, size in self.shards.get(worker_id, {}).items()
            if sid not in warm
        }


@dataclass(frozen=True)
class BalancerPolicy:
    """Strategy interface plus the knobs every policy shares.

    Subclasses override :meth:`plan`.  The base class implements the
    classic threshold-greedy behaviour so existing code constructing
    ``BalancerPolicy(...)`` directly keeps working bit-for-bit;
    :class:`ThresholdPolicy` is the explicit name for that default.
    """

    #: split any shard above this size
    max_shard_items: int = 8000
    #: migrate when max worker load exceeds this multiple of the min
    imbalance_ratio: float = 1.4
    #: never migrate shards smaller than this
    min_migrate_items: int = 200
    #: manager scan period (virtual seconds)
    scan_period: float = 1.0
    #: in-flight budget for splits + migrations
    max_inflight: int = 4
    #: in-flight budget for failover restores (separate pool, so a mass
    #: failover cannot stampede one survivor with deserialize work)
    max_inflight_restores: int = 8
    #: give up on a split/migration/restore that produced no reply
    #: (e.g. the destination died mid-transfer) after this many virtual
    #: seconds
    op_timeout: float = 10.0

    # -- strategy ---------------------------------------------------------

    def plan(self, view: WorkerView) -> list:
        """Return the actions to start this scan (pure, in order)."""
        return self._plan_threshold(view)

    # -- shared building blocks -------------------------------------------

    def _plan_oversize_splits(self, view, actions, busy, budget) -> int:
        """Split every non-busy HOT shard above ``max_shard_items``."""
        for wid in view.shards:
            for sid, size in view.hot_shards(wid).items():
                if size > self.max_shard_items and sid not in busy and budget > 0:
                    actions.append(SplitAction(wid, sid))
                    busy.add(sid)
                    budget -= 1
        return budget

    def _split_for_migration(self, shards_of_src, src, busy, actions) -> None:
        """No movable shard fits: split the largest splittable one so
        the next scan has migratable pieces (paper III-E)."""
        splittable = [
            (size, sid)
            for sid, size in shards_of_src.items()
            if sid not in busy and size >= 2 * self.min_migrate_items
        ]
        if splittable:
            _, sid = max(splittable)
            actions.append(SplitAction(src, sid))

    def _plan_threshold(self, view: WorkerView) -> list:
        actions: list = []
        budget = view.budget
        if budget <= 0 or not view.sizes:
            return actions
        busy = set(view.busy)
        budget = self._plan_oversize_splits(view, actions, busy, budget)
        if budget <= 0 or len(view.sizes) < 2:
            return actions
        # migrations, planned against projected sizes so several moves
        # per scan converge instead of overshooting
        sizes = dict(view.sizes)
        shards = {wid: view.hot_shards(wid) for wid in view.shards}
        while budget > 0:
            src = max(sizes, key=sizes.get)
            dst = min(sizes, key=sizes.get)
            if src == dst:
                break
            if sizes[src] <= self.imbalance_ratio * max(
                sizes[dst], self.min_migrate_items
            ):
                break
            # move the largest shard that keeps dst below src
            gap = (sizes[src] - sizes[dst]) / 2
            candidates = [
                (size, sid)
                for sid, size in shards[src].items()
                if sid not in busy
                and self.min_migrate_items <= size <= gap
            ]
            if not candidates:
                self._split_for_migration(shards[src], src, busy, actions)
                break
            size, sid = max(candidates)
            actions.append(MigrateAction(src, dst, sid))
            busy.add(sid)
            budget -= 1
            sizes[src] -= size
            sizes[dst] += size
            del shards[src][sid]
            shards[dst][sid] = size
        return actions


@dataclass(frozen=True)
class ThresholdPolicy(BalancerPolicy):
    """The default greedy policy (explicit name for the base behaviour):
    size-threshold splits plus imbalance-ratio-driven migrations."""


@dataclass(frozen=True)
class MemoryPressurePolicy(BalancerPolicy):
    """The paper's memory-pressure policy: act when a worker is
    "overloaded and about to run out of memory".

    Each worker has an item capacity.  A worker whose utilisation
    exceeds ``high_watermark`` sheds shards to the least-utilised
    worker until its projected utilisation is back below
    ``low_watermark`` (hysteresis, so one borderline worker does not
    oscillate).  Oversize shards still split (a shard larger than
    ``max_shard_items`` is itself a memory hazard).
    """

    #: items one worker can hold before it is "out of memory"
    worker_capacity_items: int = 20_000
    #: utilisation fraction above which a worker must shed load
    high_watermark: float = 0.85
    #: shed until the worker projects below this fraction
    low_watermark: float = 0.60
    #: per-worker hot-memory budget in *bytes*.  When set (and workers
    #: report measured ``resident_bytes``), the policy plans on real
    #: memory instead of item counts and prefers **spill before
    #: migrate**: releasing a cold shard's columns relieves pressure
    #: without moving a byte across the wire.  ``None`` keeps the
    #: classic item-count behaviour bit-for-bit.
    worker_budget_bytes: Optional[int] = None

    def plan(self, view: WorkerView) -> list:
        if self.worker_budget_bytes is not None and view.resident_bytes:
            return self._plan_bytes(view)
        actions: list = []
        budget = view.budget
        if budget <= 0 or not view.sizes:
            return actions
        busy = set(view.busy)
        budget = self._plan_oversize_splits(view, actions, busy, budget)
        if budget <= 0 or len(view.sizes) < 2:
            return actions
        cap = self.worker_capacity_items
        sizes = dict(view.sizes)
        shards = {wid: view.hot_shards(wid) for wid in view.shards}
        while budget > 0:
            src = max(sizes, key=sizes.get)
            if sizes[src] <= self.high_watermark * cap:
                break  # nobody is under pressure
            dst = min(sizes, key=sizes.get)
            if dst == src:
                break
            #: move enough to get src under the low watermark, but never
            #: push dst itself over the high watermark
            want = sizes[src] - self.low_watermark * cap
            headroom = self.high_watermark * cap - sizes[dst]
            limit = min(want, headroom)
            candidates = [
                (size, sid)
                for sid, size in shards[src].items()
                if sid not in busy
                and self.min_migrate_items <= size <= limit
            ]
            if not candidates:
                self._split_for_migration(shards[src], src, busy, actions)
                break
            size, sid = max(candidates)
            actions.append(MigrateAction(src, dst, sid))
            busy.add(sid)
            budget -= 1
            sizes[src] -= size
            sizes[dst] += size
            del shards[src][sid]
            shards[dst][sid] = size
        return actions

    def _plan_bytes(self, view: WorkerView) -> list:
        """Byte-mode plan: measured resident bytes against the worker
        budget, spill before migrate.

        Per over-watermark worker, the coldest HOT shards (most idle,
        then largest) are spilled until the projection drops below the
        low watermark; only when nothing spillable remains does the
        policy fall back to migrating a shard away.  WARM shards are
        rehydrated ahead of demand only on workers projecting below
        the low watermark *after* the rehydrate -- the hysteresis band
        between the watermarks keeps a borderline shard from
        ping-ponging between tiers."""
        actions: list = []
        busy = set(view.busy)
        budget = self._plan_oversize_splits(view, actions, busy, view.budget)
        cap = self.worker_budget_bytes
        used = dict(view.resident_bytes)
        for wid in list(used):
            if used[wid] <= self.high_watermark * cap:
                continue
            idle = view.idle.get(wid, {})
            candidates = sorted(
                (
                    (idle.get(sid, 0.0), sbytes, sid)
                    for sid, sbytes in view.shard_bytes.get(wid, {}).items()
                    if sid not in busy
                ),
                reverse=True,
            )
            for _idle_t, sbytes, sid in candidates:
                if used[wid] <= self.low_watermark * cap:
                    break
                # spills draw from the lifecycle's residency pool, not
                # the split/migrate budget
                actions.append(SpillAction(wid, sid))
                busy.add(sid)
                used[wid] -= sbytes
            if (
                used[wid] > self.high_watermark * cap
                and budget > 0
                and len(used) > 1
            ):
                # spill exhausted but still over the watermark: shed a
                # shard to the emptiest worker (migrate after spill)
                dst = min(
                    (w for w in used if w != wid), key=lambda w: used[w]
                )
                movable = [
                    (sbytes, sid)
                    for sid, sbytes in view.shard_bytes.get(wid, {}).items()
                    if sid not in busy
                    and view.shards.get(wid, {}).get(sid, 0)
                    >= self.min_migrate_items
                ]
                if movable and used[dst] < self.high_watermark * cap:
                    sbytes, sid = max(movable)
                    actions.append(MigrateAction(wid, dst, sid))
                    busy.add(sid)
                    budget -= 1
                    used[wid] -= sbytes
                    used[dst] += sbytes
        for wid, warm in view.warm.items():
            u = used.get(wid, 0)
            for sid in sorted(warm):
                if sid in busy:
                    continue
                _items, wbytes = warm[sid]
                if u + wbytes <= self.low_watermark * cap:
                    actions.append(RehydrateAction(wid, sid))
                    busy.add(sid)
                    u += wbytes
            used[wid] = u
        return actions


@dataclass(frozen=True)
class CostDrivenPolicy(BalancerPolicy):
    """Threshold-shaped balancing under an explicit maintenance budget.

    Colmenares et al. observe that sustained high-velocity ingestion
    depends on keeping reorganisation work off the hot path *and
    bounded*.  This policy prices every migration with the cost model
    (:meth:`~repro.cluster.cost.CostModel.migrate_time`: serialize at
    the source + deserialize at the destination) and spends at most
    ``migration_budget`` virtual seconds of that work per scan,
    best-value moves first (items rebalanced per second of maintenance
    work).  Imbalance beyond the budget waits for the next scan instead
    of monopolising worker threads.
    """

    #: virtual seconds of serialize+deserialize work allowed per scan
    migration_budget: float = 0.05
    #: prices migrations; share the cluster's model for honest budgets
    cost: CostModel = field(default_factory=CostModel)

    def plan(self, view: WorkerView) -> list:
        actions: list = []
        budget = view.budget
        if budget <= 0 or not view.sizes:
            return actions
        busy = set(view.busy)
        budget = self._plan_oversize_splits(view, actions, busy, budget)
        if budget <= 0 or len(view.sizes) < 2:
            return actions
        sizes = dict(view.sizes)
        shards = {wid: view.hot_shards(wid) for wid in view.shards}
        remaining = self.migration_budget
        while budget > 0 and remaining > 0:
            src = max(sizes, key=sizes.get)
            dst = min(sizes, key=sizes.get)
            if src == dst:
                break
            if sizes[src] <= self.imbalance_ratio * max(
                sizes[dst], self.min_migrate_items
            ):
                break
            gap = (sizes[src] - sizes[dst]) / 2
            candidates = [
                (size, sid)
                for sid, size in shards[src].items()
                if sid not in busy
                and self.min_migrate_items <= size <= gap
                and self.cost.migrate_time(size) <= remaining
            ]
            if not candidates:
                # nothing affordable fits; prepare smaller pieces only
                # if even the *cheapest* movable shard blew the budget
                self._split_for_migration(shards[src], src, busy, actions)
                break
            # best value: items rebalanced per second of maintenance
            # work (ties resolve to the larger shard, then higher id)
            size, sid = max(
                candidates,
                key=lambda t: (t[0] / self.cost.migrate_time(t[0]), t),
            )
            actions.append(MigrateAction(src, dst, sid))
            busy.add(sid)
            budget -= 1
            remaining -= self.cost.migrate_time(size)
            sizes[src] -= size
            sizes[dst] += size
            del shards[src][sid]
            shards[dst][sid] = size
        return actions

"""Closed-loop client sessions driving operation streams.

Each session is attached to one server (paper Section III: "each user
session is attached to one of the server nodes") and keeps a fixed
number of operations in flight; a completion immediately triggers the
next operation.  Per-operation latencies and completions land in
:class:`~repro.cluster.stats.ClusterStats`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..workloads.streams import Operation
from .stats import ClusterStats, OpRecord
from .transport import Entity, Message, Transport

__all__ = ["ClientSession"]


class ClientSession(Entity):
    """A client submitting a stream of operations to one server."""

    def __init__(
        self,
        client_id: int,
        transport: Transport,
        server: Entity,
        stats: ClusterStats,
        concurrency: int = 8,
    ):
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.name = f"client-{client_id}"
        self.transport = transport
        self.server = server
        self.stats = stats
        self.concurrency = concurrency
        self._ops: list[Operation] = []
        self._next = 0
        self._outstanding = 0
        self.completed = 0
        self.on_done: Optional[Callable[[], None]] = None
        #: called on each completed op (used by tests / oracles)
        self.on_complete: Optional[Callable[[OpRecord], None]] = None

    @property
    def done(self) -> bool:
        return self._next >= len(self._ops) and self._outstanding == 0

    def run_stream(self, ops: Iterable[Operation]) -> None:
        """Load a stream and start issuing operations."""
        self._ops.extend(ops)
        while self._outstanding < self.concurrency and self._next < len(self._ops):
            self._issue(self._ops[self._next])
            self._next += 1

    def _issue(self, op: Operation) -> None:
        self._outstanding += 1
        if op.is_insert:
            self.transport.send(
                self.server,
                Message("client_insert", (op.coords, op.measure, self)),
            )
        else:
            self.transport.send(
                self.server, Message("client_query", (op.query, self))
            )

    def receive(self, msg: Message) -> None:
        now = self.transport.clock.now
        if msg.kind == "insert_done":
            _token, submit_time = msg.payload
            rec = OpRecord("insert", submit_time, now)
        elif msg.kind == "query_done":
            _token, submit_time, agg, searched, coverage = msg.payload
            rec = OpRecord(
                "query",
                submit_time,
                now,
                coverage=coverage,
                shards_searched=searched,
                result_count=agg.count,
            )
        else:
            raise ValueError(f"client: unknown message {msg.kind!r}")
        self.stats.record_op(rec)
        if self.on_complete is not None:
            self.on_complete(rec)
        self.completed += 1
        self._outstanding -= 1
        if self._next < len(self._ops):
            self._issue(self._ops[self._next])
            self._next += 1
        elif self._outstanding == 0 and self.on_done is not None:
            self.on_done()

"""Closed-loop client sessions driving operation streams.

Each session is attached to one server (paper Section III: "each user
session is attached to one of the server nodes") and keeps a fixed
number of operations in flight; a completion immediately triggers the
next operation.  Per-operation latencies and completions land in
:class:`~repro.cluster.stats.ClusterStats`.

Requests are resilient: every operation carries a globally unique
idempotency token (``op_id``), is retransmitted with exponential
backoff + jitter when no reply arrives within the
:class:`~repro.cluster.faults.RetryPolicy` timeout, and is recorded as
a failed :class:`OpRecord` (``ok=False``) when attempts are exhausted
or the server reports ``insert_failed`` -- the concurrency slot is
always released.  Workers deduplicate ``op_id``s, so retransmitted or
fault-duplicated inserts apply exactly once.

With ``batch_size > 1`` the session coalesces pending inserts into one
``client_insert_batch`` message and pending queries into one
``client_query_batch`` message (each buffer flushed when it fills or
after ``batch_linger`` seconds, whichever is first).  Batching changes
only the wire framing: every operation keeps its own ``op_id``, timer,
and :class:`OpRecord`, and retransmits always go out as singleton
``client_insert`` / ``client_query`` messages, so the retry/dedup
machinery is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

import numpy as np

from ..workloads.streams import Operation
from .faults import RetryPolicy
from .stats import ClusterStats, OpRecord
from .transport import Entity, Message, Transport

__all__ = ["ClientSession"]


@dataclass
class _PendingOp:
    op: Operation
    op_id: int
    submit_time: float
    attempts: int = 1
    span: object = None  # root obs span, None when tracing is off


class ClientSession(Entity):
    """A client submitting a stream of operations to one server."""

    def __init__(
        self,
        client_id: int,
        transport: Transport,
        server: Entity,
        stats: ClusterStats,
        concurrency: int = 8,
        retry: Optional[RetryPolicy] = None,
        seed: Optional[int] = None,
        batch_size: int = 1,
        batch_linger: float = 2e-3,
    ):
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.client_id = client_id
        self.name = f"client-{client_id}"
        self.transport = transport
        self.server = server
        self.stats = stats
        self.concurrency = concurrency
        self.retry = retry if retry is not None else RetryPolicy()
        self._rng = np.random.default_rng(
            client_id if seed is None else seed
        )
        self._ops: list[Operation] = []
        self._next = 0
        self._outstanding = 0
        self._pending: dict[int, _PendingOp] = {}
        self._op_seq = 0
        self.batch_size = batch_size
        self.batch_linger = batch_linger
        self._buffer: list[_PendingOp] = []
        self._flush_gen = 0
        self.batches_sent = 0
        self._qbuffer: list[_PendingOp] = []
        self._qflush_gen = 0
        self.query_batches_sent = 0
        self.completed = 0
        self.retries = 0
        self.timeouts = 0
        self.on_done: Optional[Callable[[], None]] = None
        #: called on each completed op (used by tests / oracles)
        self.on_complete: Optional[Callable[[OpRecord], None]] = None

    @property
    def done(self) -> bool:
        return self._next >= len(self._ops) and self._outstanding == 0

    def run_stream(self, ops: Iterable[Operation]) -> None:
        """Load a stream and start issuing operations."""
        self._ops.extend(ops)
        while self._outstanding < self.concurrency and self._next < len(self._ops):
            self._issue(self._ops[self._next])
            self._next += 1

    # -- issuing ----------------------------------------------------------

    def _issue(self, op: Operation) -> None:
        self._outstanding += 1
        self._op_seq += 1
        op_id = (self.client_id << 24) | self._op_seq
        pending = _PendingOp(op, op_id, self.transport.clock.now)
        if self.transport.obs is not None:
            pending.span = self.transport.obs.start_span(
                "client.insert" if op.is_insert else "client.query",
                self.name,
                op_id=op_id,
            )
        self._pending[op_id] = pending
        if op.is_insert and self.batch_size > 1:
            self._buffer.append(pending)
            self._arm_timer(op_id, self.retry.timeout)
            if len(self._buffer) >= self.batch_size:
                self._flush()
            elif len(self._buffer) == 1:
                gen = self._flush_gen

                def linger_fire() -> None:
                    if self._flush_gen == gen and self._buffer:
                        self._flush()

                self.transport.clock.after(self.batch_linger, linger_fire)
            return
        if not op.is_insert and self.batch_size > 1:
            self._qbuffer.append(pending)
            self._arm_timer(op_id, self.retry.timeout)
            if len(self._qbuffer) >= self.batch_size:
                self._flush_queries()
            elif len(self._qbuffer) == 1:
                gen = self._qflush_gen

                def qlinger_fire() -> None:
                    if self._qflush_gen == gen and self._qbuffer:
                        self._flush_queries()

                self.transport.clock.after(self.batch_linger, qlinger_fire)
            return
        self._send(pending)
        self._arm_timer(op_id, self.retry.timeout)

    def _flush(self) -> None:
        """Ship the buffered inserts as one ``client_insert_batch``."""
        if not self._buffer:
            return
        self._flush_gen += 1
        rows = [
            (
                p.op_id,
                p.op.coords,
                p.op.measure,
                p.span.ctx if p.span is not None else None,
            )
            for p in self._buffer
        ]
        self._buffer.clear()
        self.batches_sent += 1
        self.transport.send(
            self.server,
            Message(
                "client_insert_batch",
                (rows, self),
                sender=self,
            ),
        )

    def _flush_queries(self) -> None:
        """Ship the buffered queries as one ``client_query_batch``."""
        if not self._qbuffer:
            return
        self._qflush_gen += 1
        rows = [
            (
                p.op_id,
                p.op.query,
                p.span.ctx if p.span is not None else None,
            )
            for p in self._qbuffer
        ]
        self._qbuffer.clear()
        self.query_batches_sent += 1
        self.transport.send(
            self.server,
            Message(
                "client_query_batch",
                (rows, self),
                sender=self,
            ),
        )

    def _send(self, pending: _PendingOp) -> None:
        op = pending.op
        buffer = self._buffer if op.is_insert else self._qbuffer
        for i, p in enumerate(buffer):
            # a retransmit raced the linger flush: this op now travels
            # alone, so it must not also go out with the batch
            if p is pending:
                del buffer[i]
                break
        ctx = pending.span.ctx if pending.span is not None else None
        if op.is_insert:
            self.transport.send(
                self.server,
                Message(
                    "client_insert",
                    (pending.op_id, op.coords, op.measure, self),
                    sender=self,
                    ctx=ctx,
                ),
            )
        else:
            self.transport.send(
                self.server,
                Message(
                    "client_query",
                    (pending.op_id, op.query, self),
                    sender=self,
                    ctx=ctx,
                ),
            )

    # -- timeouts / retries ------------------------------------------------

    def _arm_timer(self, op_id: int, delay: float) -> None:
        pending = self._pending.get(op_id)
        if pending is None:
            return
        attempt = pending.attempts

        def fire() -> None:
            cur = self._pending.get(op_id)
            if cur is None or cur.attempts != attempt:
                return  # completed or already retried
            self.timeouts += 1
            if cur.attempts >= self.retry.max_attempts:
                self._give_up(op_id)
                return
            cur.attempts += 1
            self.retries += 1
            backoff = self.retry.backoff(cur.attempts - 1, self._rng)
            self.transport.clock.after(
                backoff,
                lambda: self._send(cur) if op_id in self._pending else None,
            )
            self._arm_timer(op_id, backoff + self.retry.timeout)

        self.transport.clock.after(delay, fire)

    def _finish_span(self, pending: _PendingOp, ok: bool) -> None:
        if pending.span is not None and self.transport.obs is not None:
            self.transport.obs.finish_span(
                pending.span, ok=ok, attempts=pending.attempts
            )

    def _give_up(self, op_id: int) -> None:
        pending = self._pending.pop(op_id, None)
        if pending is None:
            return
        self._finish_span(pending, ok=False)
        op = pending.op
        rec = OpRecord(
            "insert" if op.is_insert else "query",
            pending.submit_time,
            self.transport.clock.now,
            coverage=(
                op.query.coverage if not op.is_insert else float("nan")
            ),
            ok=False,
            achieved=0.0,
            attempts=pending.attempts,
        )
        self._complete(rec)

    # -- completions -------------------------------------------------------

    def receive(self, msg: Message) -> None:
        now = self.transport.clock.now
        if msg.kind == "insert_done_batch":
            for op_id in msg.payload[0]:
                pending = self._pending.pop(op_id, None)
                if pending is None:
                    continue  # duplicated or post-timeout reply
                self._finish_span(pending, ok=True)
                self._complete(
                    OpRecord(
                        "insert",
                        pending.submit_time,
                        now,
                        attempts=pending.attempts,
                    )
                )
            return
        if msg.kind == "insert_done":
            op_id = msg.payload[0]
            pending = self._pending.pop(op_id, None)
            if pending is None:
                return  # duplicated or post-timeout reply
            self._finish_span(pending, ok=True)
            rec = OpRecord(
                "insert", pending.submit_time, now, attempts=pending.attempts
            )
        elif msg.kind == "insert_failed":
            op_id = msg.payload[0]
            pending = self._pending.pop(op_id, None)
            if pending is None:
                return
            self._finish_span(pending, ok=False)
            rec = OpRecord(
                "insert",
                pending.submit_time,
                now,
                ok=False,
                achieved=0.0,
                attempts=pending.attempts,
            )
        elif msg.kind == "query_done":
            (
                op_id, _t, agg, searched, coverage,
                achieved, staleness, source,
            ) = msg.payload
            pending = self._pending.pop(op_id, None)
            if pending is None:
                return
            self._finish_span(pending, ok=True)
            rec = OpRecord(
                "query",
                pending.submit_time,
                now,
                coverage=coverage,
                shards_searched=searched,
                result_count=agg.count,
                achieved=achieved,
                attempts=pending.attempts,
                staleness=staleness,
                source=source,
            )
        else:
            raise ValueError(f"client: unknown message {msg.kind!r}")
        self._complete(rec)

    def _complete(self, rec: OpRecord) -> None:
        self.stats.record_op(rec)
        if self.on_complete is not None:
            self.on_complete(rec)
        self.completed += 1
        self._outstanding -= 1
        if self._next < len(self._ops):
            self._issue(self._ops[self._next])
            self._next += 1
        elif self._outstanding == 0 and self.on_done is not None:
            self.on_done()

"""Compact Hilbert indices for domains with unequal side lengths.

Implements the algorithms of Hamilton & Rau-Chaplin, *Compact Hilbert
indices: Space-filling curves for domains with unequal side lengths*,
Information Processing Letters 105(5), 2008 -- the construction VOLAP
uses to order Hilbert PDC tree keys (paper Section III-D).

Two curves are provided:

* :class:`HilbertCurve` -- the classic Hilbert curve on ``n`` dimensions
  of ``m`` bits each (Hamilton's formulation of the Butz/Lawder
  algorithm using Gray codes, entry points and directions).
* :class:`CompactHilbertCurve` -- per-dimension bit widths
  ``m_0 .. m_{n-1}``; produces indices of exactly ``sum(m_i)`` bits
  whose order coincides with the order the full Hilbert curve (with all
  dimensions padded to ``max(m_i)`` bits) visits the valid sub-domain.

Indices are arbitrary-precision Python ints (total bit counts routinely
exceed 64 in OLAP schemas).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "HilbertCurve",
    "CompactHilbertCurve",
    "gray_code",
    "gray_code_inverse",
    "words_for_bits",
    "pack_key",
    "pack_key_ints",
    "key_from_words",
    "lexsort_words",
    "argmax_words",
    "words_gt",
]


# -- bit primitives ----------------------------------------------------------


def gray_code(i: int) -> int:
    """Binary-reflected Gray code of ``i``."""
    return i ^ (i >> 1)


def gray_code_inverse(g: int) -> int:
    """Inverse of :func:`gray_code`."""
    i = g
    shift = 1
    while (g >> shift) > 0:
        i ^= g >> shift
        shift += 1
    return i


def _rotate_right(x: int, k: int, n: int) -> int:
    """Rotate the low ``n`` bits of ``x`` right by ``k``."""
    k %= n
    if k == 0:
        return x & ((1 << n) - 1)
    x &= (1 << n) - 1
    return ((x >> k) | (x << (n - k))) & ((1 << n) - 1)


def _rotate_left(x: int, k: int, n: int) -> int:
    return _rotate_right(x, n - (k % n), n)


def _trailing_set_bits(i: int) -> int:
    """Number of trailing 1 bits of ``i``."""
    c = 0
    while i & 1:
        c += 1
        i >>= 1
    return c


def _entry_point(w: int) -> int:
    """Entry point e(w) of sub-hypercube ``w`` (Hamilton eq. 2.11)."""
    if w == 0:
        return 0
    return gray_code(2 * ((w - 1) // 2))


def _direction(w: int, n: int) -> int:
    """Intra sub-hypercube direction d(w) (Hamilton eq. 2.12)."""
    if w == 0:
        return 0
    if w % 2 == 0:
        return _trailing_set_bits(w - 1) % n
    return _trailing_set_bits(w) % n


def _transform(e: int, d: int, b: int, n: int) -> int:
    """T_{(e,d)}(b): map into the canonical sub-hypercube frame."""
    return _rotate_right(b ^ e, d + 1, n)


def _transform_inverse(e: int, d: int, b: int, n: int) -> int:
    return _rotate_left(b, d + 1, n) ^ e


def _gray_code_rank(mu: int, i: int, n: int) -> int:
    """Rank of ``i`` restricted to the free-bit mask ``mu``.

    Extracts the bits of ``i`` selected by ``mu``, high bit first
    (Hamilton Algorithm 3, GrayCodeRank).
    """
    r = 0
    for k in range(n - 1, -1, -1):
        if (mu >> k) & 1:
            r = (r << 1) | ((i >> k) & 1)
    return r


def _gray_code_rank_inverse(
    mu: int, pi: int, r: int, n: int, free_bits: int
) -> tuple[int, int]:
    """Reconstruct (i, g) from a gray code rank (Hamilton Algorithm 4).

    Given the free-bit mask ``mu``, the fixed-bit pattern ``pi`` and the
    rank ``r``, returns ``(i, g)`` where ``g = gray_code(i)``, ``i`` has
    its mu-bits set from ``r`` and its non-mu bits forced so that ``g``
    matches ``pi`` on the fixed bits.
    """
    i = 0
    g = 0
    j = free_bits - 1
    for k in range(n - 1, -1, -1):
        if (mu >> k) & 1:  # free bit: take from the rank
            bit_i = (r >> j) & 1
            j -= 1
            i |= bit_i << k
            bit_g = bit_i ^ ((i >> (k + 1)) & 1)
            g |= bit_g << k
        else:  # fixed bit: take from the pattern
            bit_g = (pi >> k) & 1
            g |= bit_g << k
            bit_i = bit_g ^ ((i >> (k + 1)) & 1)
            i |= bit_i << k
    return i, g


# -- vectorised bit primitives ------------------------------------------------


def _popcount_u64(x: np.ndarray) -> np.ndarray:
    """Per-element population count of a uint64 array."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(x).astype(np.uint64)
    x = x.copy()
    out = np.zeros_like(x)
    while x.any():
        out += x & np.uint64(1)
        x >>= np.uint64(1)
    return out


def _rotate_right_vec(x: np.ndarray, k: np.ndarray, n: int) -> np.ndarray:
    """Rotate the low ``n`` bits of each element right by ``k`` (k in [0, n))."""
    mask = np.uint64((1 << n) - 1)
    nn = np.uint64(n)
    x = x & mask
    return ((x >> k) | (x << (nn - k))) & mask


def _rotate_left_vec(x: np.ndarray, k: np.ndarray, n: int) -> np.ndarray:
    mask = np.uint64((1 << n) - 1)
    nn = np.uint64(n)
    x = x & mask
    return ((x << k) | (x >> (nn - k))) & mask


# -- packed multi-word key representation -------------------------------------
#
# Compact Hilbert indices routinely exceed 64 bits, so the columnar leaf
# storage keeps them as fixed-width rows of big-endian uint64 *words*:
# word 0 holds the most significant 64 bits.  Because the words are
# unsigned and big-endian, lexicographic row order equals numeric key
# order, which lets ``np.lexsort`` (stable, like ``sorted``) replace
# per-record arbitrary-precision comparisons.

_WORD_MASK = (1 << 64) - 1


def words_for_bits(bits: int) -> int:
    """Number of 64-bit words needed for a ``bits``-bit key (min 1)."""
    return max(1, (int(bits) + 63) // 64)


def pack_key(key: int, width: int) -> np.ndarray:
    """One key as a big-endian ``(width,)`` uint64 word row."""
    out = np.empty(width, dtype=np.uint64)
    k = int(key)
    for w in range(width - 1, -1, -1):
        out[w] = k & _WORD_MASK
        k >>= 64
    return out


def pack_key_ints(keys, width: int) -> np.ndarray:
    """Pack a sequence of Python ints into an ``(n, width)`` word array."""
    out = np.empty((len(keys), width), dtype=np.uint64)
    for i, key in enumerate(keys):
        k = int(key)
        for w in range(width - 1, -1, -1):
            out[i, w] = k & _WORD_MASK
            k >>= 64
    return out


def key_from_words(row: np.ndarray) -> int:
    """Fold one big-endian word row back into a Python int."""
    out = 0
    for w in row.tolist():
        out = (out << 64) | w
    return out


def lexsort_words(words: np.ndarray) -> np.ndarray:
    """Stable ascending sort order of big-endian word rows.

    Identical to ``sorted(range(n), key=ints.__getitem__)`` on the
    folded integers (both sorts are stable), without materialising any
    Python ints.
    """
    n, width = words.shape
    if width == 1:
        return np.argsort(words[:, 0], kind="stable")
    # np.lexsort treats its *last* key as primary: feed least
    # significant word first so word 0 dominates.
    return np.lexsort(tuple(words[:, w] for w in range(width - 1, -1, -1)))


def words_gt(a: np.ndarray, b: np.ndarray) -> bool:
    """True when word row ``a`` folds to a larger key than row ``b``."""
    for x, y in zip(a.tolist(), b.tolist()):
        if x != y:
            return x > y
    return False


def argmax_words(words: np.ndarray) -> int:
    """Row index of the lexicographically largest word row (first if tied)."""
    n, width = words.shape
    idx = np.arange(n)
    for w in range(width):
        col = words[idx, w]
        idx = idx[col == col.max()]
        if idx.size == 1:
            break
    return int(idx[0])


# -- classic Hilbert curve ---------------------------------------------------


class HilbertCurve:
    """Hilbert curve over ``n`` dimensions of ``m`` bits each."""

    def __init__(self, num_dims: int, bits: int):
        if num_dims < 1:
            raise ValueError("num_dims must be >= 1")
        if bits < 0:
            raise ValueError("bits must be >= 0")
        self.num_dims = num_dims
        self.bits = bits

    @property
    def total_bits(self) -> int:
        return self.num_dims * self.bits

    def index(self, point: Sequence[int]) -> int:
        """Hilbert index of a point (Hamilton Algorithm 1)."""
        n, m = self.num_dims, self.bits
        if len(point) != n:
            raise ValueError(f"point has {len(point)} dims, expected {n}")
        for j, p in enumerate(point):
            if not 0 <= p < (1 << m):
                raise ValueError(f"coordinate {p} out of range at dim {j}")
        h = 0
        e = 0
        d = 0
        for i in range(m - 1, -1, -1):
            l = 0
            for j in range(n):
                l |= ((point[j] >> i) & 1) << j
            l = _transform(e, d, l, n)
            w = gray_code_inverse(l)
            h = (h << n) | w
            e = e ^ _rotate_left(_entry_point(w), d + 1, n)
            d = (d + _direction(w, n) + 1) % n
        return h

    def point(self, h: int) -> tuple[int, ...]:
        """Inverse mapping: point on the curve at index ``h``."""
        n, m = self.num_dims, self.bits
        if not 0 <= h < (1 << (n * m)):
            raise ValueError(f"index {h} out of range")
        p = [0] * n
        e = 0
        d = 0
        for i in range(m - 1, -1, -1):
            w = (h >> (i * n)) & ((1 << n) - 1)
            l = gray_code(w)
            l = _transform_inverse(e, d, l, n)
            for j in range(n):
                p[j] |= ((l >> j) & 1) << i
            e = e ^ _rotate_left(_entry_point(w), d + 1, n)
            d = (d + _direction(w, n) + 1) % n
        return tuple(p)


# -- compact Hilbert curve ----------------------------------------------------


class CompactHilbertCurve:
    """Compact Hilbert curve with per-dimension bit widths.

    The compact index of a point equals the number of valid domain
    points that precede it on the padded Hilbert curve, so sorting by
    compact index is identical to sorting by the padded curve's index --
    but the compact index needs only ``sum(widths)`` bits.
    """

    def __init__(self, widths: Sequence[int]):
        widths = tuple(int(w) for w in widths)
        if not widths:
            raise ValueError("need at least one dimension")
        if any(w < 0 for w in widths):
            raise ValueError("widths must be non-negative")
        if max(widths) == 0:
            raise ValueError("at least one width must be positive")
        self.widths = widths
        self.num_dims = len(widths)
        self.max_bits = max(widths)
        self.total_bits = sum(widths)

    def _check_point(self, point: Sequence[int]) -> None:
        if len(point) != self.num_dims:
            raise ValueError(
                f"point has {len(point)} dims, expected {self.num_dims}"
            )
        for j, (p, w) in enumerate(zip(point, self.widths)):
            if not 0 <= p < (1 << w):
                raise ValueError(
                    f"coordinate {p} out of range [0, 2**{w}) at dim {j}"
                )

    def index(self, point: Sequence[int]) -> int:
        """Compact Hilbert index (Hamilton & Rau-Chaplin Algorithm 2)."""
        self._check_point(point)
        n = self.num_dims
        h = 0
        e = 0
        d = 0
        for i in range(self.max_bits - 1, -1, -1):
            # Mask of dimensions that still have a free bit at position i,
            # expressed in the rotated local frame.
            mu = 0
            for j in range(n):
                if self.widths[j] > i:
                    mu |= 1 << j
            mu = _rotate_right(mu, d + 1, n)
            free_bits = bin(mu).count("1")
            # Fixed-bit pattern: bits of the entry point on non-free axes.
            pi = _rotate_right(e, d + 1, n) & (~mu & ((1 << n) - 1))
            l = 0
            for j in range(n):
                l |= ((point[j] >> i) & 1) << j
            l = _transform(e, d, l, n)
            w = gray_code_inverse(l)
            r = _gray_code_rank(mu, w, n)
            e = e ^ _rotate_left(_entry_point(w), d + 1, n)
            d = (d + _direction(w, n) + 1) % n
            h = (h << free_bits) | r
        return h

    def point(self, h: int) -> tuple[int, ...]:
        """Inverse compact mapping (Hamilton & Rau-Chaplin Algorithm 5)."""
        if not 0 <= h < (1 << self.total_bits):
            raise ValueError(f"index {h} out of range")
        n = self.num_dims
        p = [0] * n
        e = 0
        d = 0
        remaining = self.total_bits
        for i in range(self.max_bits - 1, -1, -1):
            mu = 0
            for j in range(n):
                if self.widths[j] > i:
                    mu |= 1 << j
            mu = _rotate_right(mu, d + 1, n)
            free_bits = bin(mu).count("1")
            pi = _rotate_right(e, d + 1, n) & (~mu & ((1 << n) - 1))
            remaining -= free_bits
            r = (h >> remaining) & ((1 << free_bits) - 1)
            w, l = _gray_code_rank_inverse(mu, pi, r, n, free_bits)
            l = _transform_inverse(e, d, l, n)
            for j in range(n):
                p[j] |= ((l >> j) & 1) << i
            e = e ^ _rotate_left(_entry_point(w), d + 1, n)
            d = (d + _direction(w, n) + 1) % n
        return tuple(p)

    # -- vectorised batch kernel ------------------------------------------

    def index_batch(self, points: np.ndarray) -> np.ndarray:
        """Compact Hilbert indices of an ``(n, d)`` coordinate array.

        The per-record state of Hamilton's algorithm (entry point ``e``,
        direction ``d``) lives in uint64 arrays; each bit plane is one
        pass of numpy bitwise operations over all rows, so the cost is
        ``O(max_bits * num_dims)`` vector operations instead of a Python
        loop per record.  Because rotation preserves popcounts, the
        number of free bits per plane is record-independent, which lets
        the per-plane rank digits be packed into 63-bit words and folded
        into arbitrary-precision Python ints only once per word.

        Returns an object array of Python ints (total bit counts
        routinely exceed 64).  Falls back to the scalar path when a
        dimension is wider than 63 bits or there are more than 63
        dimensions.
        """
        pts = np.asarray(points)
        if pts.ndim != 2 or pts.shape[1] != self.num_dims:
            raise ValueError(
                f"points must be (n, {self.num_dims}), got {pts.shape}"
            )
        npts = pts.shape[0]
        if npts == 0:
            return np.empty(0, dtype=object)
        if self.max_bits > 63 or self.num_dims > 63:
            return np.array([self.index(p) for p in pts], dtype=object)
        planes = self._rank_planes(pts)

        # fold per-plane rank digits into Python ints, 63 bits at a time
        out = np.zeros(npts, dtype=object)
        word = np.zeros(npts, dtype=np.uint64)
        word_bits = 0
        for free_bits, r in planes:
            if word_bits + free_bits > 63:
                out = out * (1 << word_bits) + word.astype(object)
                word = np.zeros(npts, dtype=np.uint64)
                word_bits = 0
            word = (word << np.uint64(free_bits)) | r
            word_bits += free_bits
        if word_bits:
            out = out * (1 << word_bits) + word.astype(object)
        return out

    def index_batch_words(self, points: np.ndarray) -> np.ndarray:
        """Compact Hilbert indices packed as big-endian uint64 words.

        Returns an ``(n, words_for_bits(total_bits))`` uint64 array whose
        rows fold (:func:`key_from_words`) to exactly the Python ints
        :meth:`index_batch` produces; lexicographic row order equals
        numeric index order.  The per-plane rank digits are scattered
        straight into their word positions, so no arbitrary-precision
        arithmetic happens at all on the vectorized path.
        """
        pts = np.asarray(points)
        if pts.ndim != 2 or pts.shape[1] != self.num_dims:
            raise ValueError(
                f"points must be (n, {self.num_dims}), got {pts.shape}"
            )
        npts = pts.shape[0]
        width = words_for_bits(self.total_bits)
        if npts == 0:
            return np.empty((0, width), dtype=np.uint64)
        if self.max_bits > 63 or self.num_dims > 63:
            return pack_key_ints([self.index(p) for p in pts], width)
        planes = self._rank_planes(pts)
        out = np.zeros((npts, width), dtype=np.uint64)
        bit = self.total_bits  # bit position just above the next digit
        for free_bits, r in planes:
            if free_bits == 0:
                continue
            bit -= free_bits
            w_idx = width - 1 - (bit >> 6)
            sh = bit & 63
            out[:, w_idx] |= r << np.uint64(sh)
            if sh + free_bits > 64:  # digit straddles two words
                out[:, w_idx - 1] |= r >> np.uint64(64 - sh)
        return out

    def _rank_planes(self, pts: np.ndarray) -> list[tuple[int, np.ndarray]]:
        """Per-bit-plane rank digits for every row (shared batch kernel)."""
        npts = pts.shape[0]
        n = self.num_dims
        limits = np.array([(1 << w) - 1 for w in self.widths], dtype=np.int64)
        arr = pts.astype(np.int64, copy=False)
        if (arr < 0).any() or (arr > limits[None, :]).any():
            raise ValueError("coordinate out of range for curve widths")
        X = arr.astype(np.uint64)

        one = np.uint64(1)
        nn = np.uint64(n)
        mask = np.uint64((1 << n) - 1)
        weights = one << np.arange(n, dtype=np.uint64)
        e = np.zeros(npts, dtype=np.uint64)
        d = np.zeros(npts, dtype=np.uint64)
        planes: list[tuple[int, np.ndarray]] = []
        for i in range(self.max_bits - 1, -1, -1):
            mu_base = 0
            for j in range(n):
                if self.widths[j] > i:
                    mu_base |= 1 << j
            free_bits = bin(mu_base).count("1")
            rot = (d + one) % nn
            # bit plane i of every coordinate, packed into one word per row
            l = ((X >> np.uint64(i)) & one) @ weights
            t = _rotate_right_vec(l ^ e, rot, n)
            # inverse Gray code via doubling XOR-shifts
            w = t.copy()
            shift = 1
            while shift < n:
                w ^= w >> np.uint64(shift)
                shift <<= 1
            mu = _rotate_right_vec(np.full(npts, mu_base, dtype=np.uint64), rot, n)
            # Gray code rank: compact the mu-selected bits of w, high first
            r = np.zeros(npts, dtype=np.uint64)
            for k in range(n - 1, -1, -1):
                take = ((mu >> np.uint64(k)) & one).astype(bool)
                r[take] = (r[take] << one) | ((w[take] >> np.uint64(k)) & one)
            # entry point e(w) = gray_code(2*((w-1)//2)) = (w-1) & ~1, w > 0
            w_safe = np.where(w == 0, one, w)
            g = (w_safe - one) & ~one
            entry = np.where(w == 0, np.uint64(0), g ^ (g >> one))
            # direction d(w): trailing set bits of (w odd ? w : w - 1)
            tz_src = np.where(w & one == one, w, w_safe - one)
            tsb = _popcount_u64(tz_src ^ (tz_src + one)) - one
            dirw = np.where(w == 0, np.uint64(0), tsb % nn)
            e = e ^ _rotate_left_vec(entry, rot, n)
            d = (d + dirw + one) % nn
            planes.append((free_bits, r))
        return planes

    # -- reference implementations for testing ---------------------------

    def brute_force_rank(self, point: Sequence[int]) -> int:
        """Rank of ``point`` among all valid points in padded-curve order.

        Exponential in the domain size; only usable for tiny widths in
        tests, where it serves as the ground-truth definition of the
        compact index.
        """
        self._check_point(point)
        padded = HilbertCurve(self.num_dims, self.max_bits)
        target = padded.index(point)
        rank = 0
        for other in self._iter_domain():
            if padded.index(other) < target:
                rank += 1
        return rank

    def _iter_domain(self):
        from itertools import product

        ranges = [range(1 << w) for w in self.widths]
        yield from product(*ranges)

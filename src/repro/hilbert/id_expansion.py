"""Hierarchical-ID expansion for Hilbert mapping (paper Fig. 3).

The Hilbert PDC tree orders leaves by the Hilbert index of item keys.
Hierarchical IDs cannot be fed to the curve directly: the breadth of a
given level varies across dimensions, so keys compared at higher
hierarchy levels (as happens higher in the tree) would have poor
locality.  VOLAP therefore *expands* IDs before computing Hilbert
indices:

* for every hierarchy level ``l``, let ``B_l`` be the maximum bit width
  of that level across all dimensions;
* within each dimension, the level-``l`` id bits are shifted left by
  ``B_l - b_l`` so that every dimension's level-``l`` ids span (roughly)
  the same numeric range;
* the dimension tag at the front of each ID is dropped, so dimensions
  share one numeric range instead of occupying disjoint ones.

The expansion is applied only to the copy of the key used for Hilbert
index computation; tree keys used for query comparisons stay unmodified
(paper Section III-D).

Dimensions whose hierarchies have fewer levels than the deepest one
simply lack the missing levels; their expanded widths are smaller, which
is exactly the "unequal side lengths" case the compact Hilbert curve
handles.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..olap.schema import Schema
from .compact_hilbert import CompactHilbertCurve, pack_key_ints, words_for_bits

__all__ = ["IdExpansion", "HilbertKeyMapper"]


class IdExpansion:
    """Precomputed per-dimension, per-level shift amounts for a schema."""

    __slots__ = ("schema", "level_maxbits", "shifts", "expanded_widths")

    def __init__(self, schema: Schema):
        self.schema = schema
        depth = max(d.hierarchy.num_levels for d in schema.dimensions)
        # B_l: max bits at level l over all dimensions that have level l.
        level_maxbits = [0] * depth
        for dim in schema.dimensions:
            for l, lvl in enumerate(dim.hierarchy.levels):
                level_maxbits[l] = max(level_maxbits[l], lvl.bits)
        self.level_maxbits = tuple(level_maxbits)
        # Per-dimension: (level_shift_within_expanded, original_shift, mask)
        shifts: list[tuple[tuple[int, int, int], ...]] = []
        widths: list[int] = []
        for dim in schema.dimensions:
            h = dim.hierarchy
            nl = h.num_levels
            # expanded width of this dimension = sum of B_l for its levels
            exp_width = sum(level_maxbits[l] for l in range(nl))
            widths.append(exp_width)
            per_level = []
            exp_below = exp_width
            for l, lvl in enumerate(h.levels):
                exp_below -= level_maxbits[l]
                orig_below = h.suffix_bits(l + 1)
                mask = (1 << lvl.bits) - 1
                # Level bits are left-aligned within their expanded slot:
                # shift left by (B_l - b_l) inside the slot.
                slot_shift = exp_below + (level_maxbits[l] - lvl.bits)
                per_level.append((slot_shift, orig_below, mask))
            shifts.append(tuple(per_level))
        self.shifts = tuple(shifts)
        self.expanded_widths = tuple(widths)

    def expand_value(self, dim_index: int, value: int) -> int:
        """Expand one dimension's leaf id into its Hilbert-domain value."""
        out = 0
        for slot_shift, orig_below, mask in self.shifts[dim_index]:
            out |= ((value >> orig_below) & mask) << slot_shift
        return out

    def expand_point(self, coords: Sequence[int]) -> tuple[int, ...]:
        """Expand a full coordinate vector."""
        return tuple(
            self.expand_value(d, int(c)) for d, c in enumerate(coords)
        )

    def expand_batch(self, coords: np.ndarray) -> np.ndarray:
        """Expand an ``(n, d)`` coordinate array in one vectorized pass.

        Works per dimension: each hierarchy level's bits of the whole
        column are masked out and shifted into their expanded slot with
        uint64 arithmetic.  Falls back to the scalar path when an
        expanded width exceeds 63 bits.
        """
        arr = np.asarray(coords)
        if arr.ndim != 2 or arr.shape[1] != len(self.shifts):
            raise ValueError(
                f"coords must be (n, {len(self.shifts)}), got {arr.shape}"
            )
        if max(self.expanded_widths, default=0) > 63 or any(
            d.total_bits > 63 for d in self.schema.dimensions
        ):
            return np.array(
                [self.expand_point(row) for row in arr], dtype=object
            )
        cols = arr.astype(np.uint64)
        out = np.zeros_like(cols)
        for d, per_level in enumerate(self.shifts):
            col = cols[:, d]
            acc = out[:, d]
            for slot_shift, orig_below, mask in per_level:
                acc |= (
                    (col >> np.uint64(orig_below)) & np.uint64(mask)
                ) << np.uint64(slot_shift)
        return out


class HilbertKeyMapper:
    """Maps schema coordinates to compact Hilbert indices.

    With ``expand=True`` (the Hilbert PDC tree's configuration) the
    composition is ID expansion (Fig. 3) followed by the compact Hilbert
    curve over the expanded, unequal-width domain.  With ``expand=False``
    raw leaf ids are fed to the curve directly -- the paper's plain
    Hilbert R-tree behaviour, whose locality at higher hierarchy levels
    deteriorates when level widths differ across dimensions (the problem
    Fig. 3 exists to solve).
    """

    __slots__ = ("expansion", "curve", "expand")

    def __init__(self, schema: Schema, expand: bool = True):
        self.expand = expand
        if expand:
            self.expansion = IdExpansion(schema)
            self.curve = CompactHilbertCurve(self.expansion.expanded_widths)
        else:
            self.expansion = None
            self.curve = CompactHilbertCurve(
                tuple(d.total_bits for d in schema.dimensions)
            )

    @property
    def total_bits(self) -> int:
        return self.curve.total_bits

    @property
    def word_count(self) -> int:
        """uint64 words per packed key (see ``key_words``)."""
        return words_for_bits(self.curve.total_bits)

    def key(self, coords: Sequence[int]) -> int:
        """Compact Hilbert index of one coordinate vector."""
        if self.expand:
            return self.curve.index(self.expansion.expand_point(coords))
        return self.curve.index(tuple(int(c) for c in coords))

    def keys(self, coords: np.ndarray) -> list[int]:
        """Hilbert keys for an (n, d) coordinate array (python ints).

        Uses the vectorized expansion + batch curve kernel; equals
        ``[self.key(row) for row in coords]`` exactly (the differential
        suite asserts this) but without the per-record Python loop.
        """
        arr = np.asarray(coords)
        if arr.ndim != 2:
            raise ValueError(f"coords must be 2-D, got shape {arr.shape}")
        if arr.shape[0] == 0:
            return []
        if self.expand:
            expanded = self.expansion.expand_batch(arr)
        else:
            expanded = arr
        if expanded.dtype == object:
            return [self.curve.index(tuple(row)) for row in expanded]
        return self.curve.index_batch(expanded).tolist()

    def key_words(self, coords: np.ndarray) -> np.ndarray:
        """Hilbert keys packed as ``(n, word_count)`` big-endian uint64.

        Folding each row (:func:`~repro.hilbert.compact_hilbert.key_from_words`)
        yields exactly :meth:`keys`; lexicographic row order equals key
        order, which is what the columnar leaf storage sorts by.
        """
        arr = np.asarray(coords)
        if arr.ndim != 2:
            raise ValueError(f"coords must be 2-D, got shape {arr.shape}")
        if arr.shape[0] == 0:
            return np.empty((0, self.word_count), dtype=np.uint64)
        if self.expand:
            expanded = self.expansion.expand_batch(arr)
        else:
            expanded = arr
        if expanded.dtype == object:
            return pack_key_ints(
                [self.curve.index(tuple(row)) for row in expanded],
                self.word_count,
            )
        return self.curve.index_batch_words(expanded)

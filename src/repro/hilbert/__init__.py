"""Hilbert curves and hierarchical-ID expansion (paper Section III-D)."""

from .compact_hilbert import (
    CompactHilbertCurve,
    HilbertCurve,
    gray_code,
    gray_code_inverse,
)
from .id_expansion import HilbertKeyMapper, IdExpansion

__all__ = [
    "CompactHilbertCurve",
    "HilbertCurve",
    "HilbertKeyMapper",
    "IdExpansion",
    "gray_code",
    "gray_code_inverse",
]

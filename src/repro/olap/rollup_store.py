"""RollupStore: the resident set of materialized rollup cubes.

One store lives on each server (inside its
:class:`~repro.cluster.router.QueryRouter`).  A *cube* is identified by
a :class:`~repro.olap.rollup.CubeKey` and holds one dense
:class:`~repro.olap.rollup.CubeCells` slab per shard, so a cube answer
is a per-axis slice of each shard's slab merged across shards -- which
is also what lets single shards drop out (migrate, promote, resync)
without invalidating the rest of the cube.

The store is deliberately protocol-free: stream frontiers, epochs, and
sync scheduling live in the router.  What it owns is the *policy* --
which cubes exist:

* **demand**: every routable miss bumps an exponentially-decayed demand
  counter for the candidate key; crossing ``admit_after`` proposes the
  cube for materialization;
* **admission**: a candidate is admitted only if its cells fit
  ``max_cells`` and its estimated bytes fit the ``budget_bytes``
  envelope, evicting lower-scoring resident cubes to make room;
* **eviction**: score is hit-rate x cost saved per byte -- an
  exponentially-decayed hit counter times the cube's cell count (a
  proxy for the tree descent it replaces), divided by resident bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.aggregates import Aggregate
from .keys import Box
from .rollup import CubeCells, CubeKey, cube_ranges, cube_shape
from .schema import Schema

__all__ = ["Cube", "RollupStore"]

#: bytes per cube cell: four float64/int64 arrays (count, sum, min, max)
CELL_BYTES = 32


@dataclass
class Cube:
    """One resident cube: per-shard slabs plus scoring state."""

    key: CubeKey
    shape: tuple[int, ...]
    num_cells: int
    #: shard id -> dense slab; a shard with no slab yet (sync in
    #: flight) simply cannot be cube-served and falls back to the tree
    slabs: dict[int, CubeCells] = field(default_factory=dict)
    #: exponentially-decayed hit count (the admission/eviction signal)
    hits: float = 0.0
    last_touch: float = 0.0
    created: float = 0.0

    def resident_bytes(self) -> int:
        return sum(c.resident_bytes() for c in self.slabs.values())


class RollupStore:
    """Resident cubes plus the admission/eviction policy over them."""

    def __init__(
        self,
        schema: Schema,
        budget_bytes: int = 32 << 20,
        max_cells: int = 1 << 16,
        admit_after: int = 2,
        decay: float = 0.1,
    ):
        self.schema = schema
        self.budget_bytes = int(budget_bytes)
        self.max_cells = int(max_cells)
        self.admit_after = int(admit_after)
        #: demand/hit decay rate (per virtual second)
        self.decay = float(decay)
        self.cubes: dict[CubeKey, Cube] = {}
        self._demand: dict[CubeKey, tuple[float, float]] = {}  # ewma, t
        self.evictions = 0
        self.admissions = 0

    # -- introspection ------------------------------------------------------

    def resident_bytes(self) -> int:
        return sum(c.resident_bytes() for c in self.cubes.values())

    def __contains__(self, key: CubeKey) -> bool:
        return key in self.cubes

    def __len__(self) -> int:
        return len(self.cubes)

    # -- matching / answering ----------------------------------------------

    def match(
        self, box: Box
    ) -> Optional[tuple[Cube, list[tuple[int, int]]]]:
        """The cheapest resident cube able to answer ``box`` exactly
        (fewest selected cells), with its per-axis cell ranges."""
        best = None
        best_cost = None
        for cube in self.cubes.values():
            ranges = cube_ranges(self.schema, cube.key, box)
            if ranges is None:
                continue
            cost = 1
            for lo, hi in ranges:
                cost *= hi - lo + 1
            if best_cost is None or cost < best_cost:
                best, best_cost = (cube, ranges), cost
        return best

    def cube_answer(
        self,
        cube: Cube,
        ranges: list[tuple[int, int]],
        shard_ids: Iterable[int],
    ) -> tuple[Aggregate, list[int]]:
        """Merge the sliced per-shard slabs over ``shard_ids``; shards
        with no slab installed come back in the missing list (the
        router sends those down the tree path)."""
        agg = Aggregate.empty()
        missing: list[int] = []
        for sid in shard_ids:
            slab = cube.slabs.get(sid)
            if slab is None:
                missing.append(sid)
                continue
            agg.merge(slab.select(cube.shape, ranges))
        return agg, missing

    def touch(self, key: CubeKey, now: float) -> None:
        """Record a cube hit (decayed, for the eviction score)."""
        cube = self.cubes.get(key)
        if cube is None:
            return
        cube.hits = self._decayed(cube.hits, cube.last_touch, now) + 1.0
        cube.last_touch = now

    # -- policy -------------------------------------------------------------

    def _decayed(self, value: float, since: float, now: float) -> float:
        dt = max(0.0, now - since)
        return value * (2.0 ** (-self.decay * dt))

    def score(self, cube: Cube, now: float) -> float:
        """Hit-rate x cost-saved per resident byte.  The cell count a
        hit would otherwise descend for is the cost proxy; +1 bytes
        avoids a zero denominator for still-empty cubes."""
        hits = self._decayed(cube.hits, cube.last_touch, now)
        return hits * cube.num_cells / (cube.resident_bytes() + 1.0)

    def note_miss(self, key: CubeKey, now: float) -> bool:
        """Bump the decayed demand for a candidate key; True when it
        crossed ``admit_after`` (caller should try to admit)."""
        ewma, t = self._demand.get(key, (0.0, now))
        ewma = self._decayed(ewma, t, now) + 1.0
        self._demand[key] = (ewma, now)
        return ewma >= self.admit_after

    def admissible(self, key: CubeKey) -> bool:
        shape = cube_shape(self.schema, key)
        cells = 1
        for n in shape:
            cells *= n
        return cells <= self.max_cells

    def admit(
        self, key: CubeKey, now: float, shard_count: int = 1
    ) -> Optional[Cube]:
        """Materialize ``key``: make room under ``budget_bytes`` by
        evicting lower-scoring cubes, or refuse (returns ``None``) when
        the key is too big or everything resident outscores it."""
        if key in self.cubes:
            return self.cubes[key]
        if not self.admissible(key):
            return None
        shape = cube_shape(self.schema, key)
        cells = 1
        for n in shape:
            cells *= n
        est_bytes = cells * CELL_BYTES * max(1, shard_count)
        if est_bytes > self.budget_bytes:
            return None
        ewma, t = self._demand.get(key, (0.0, now))
        incoming_score = self._decayed(ewma, t, now) * cells / (est_bytes + 1.0)
        while self.resident_bytes() + est_bytes > self.budget_bytes:
            victim = min(
                self.cubes.values(), key=lambda c: self.score(c, now)
            )
            if self.score(victim, now) > incoming_score:
                return None  # everything resident is hotter: keep it
            self.drop(victim.key)
            self.evictions += 1
        cube = Cube(
            key, shape, cells, hits=0.0, last_touch=now, created=now
        )
        self.cubes[key] = cube
        self._demand.pop(key, None)
        self.admissions += 1
        return cube

    def drop(self, key: CubeKey) -> Optional[Cube]:
        return self.cubes.pop(key, None)

    def drop_shard(self, sid: int) -> None:
        """Forget one shard's slabs everywhere (migrate/promote/split:
        the stream restarts, so the slab must be rebuilt)."""
        for cube in self.cubes.values():
            cube.slabs.pop(sid, None)

    def shard_ids(self) -> set[int]:
        out: set[int] = set()
        for cube in self.cubes.values():
            out.update(cube.slabs)
        return out

"""Aggregate queries over hierarchical dimensions.

A VOLAP query specifies, for every dimension, either a value at some
hierarchy level (meaning "this value and all of its descendants") or the
whole dimension.  Each such constraint maps to a contiguous leaf-id
range, so a query is geometrically a :class:`~repro.olap.keys.Box`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Union

import numpy as np

from .keys import Box
from .schema import Schema

__all__ = ["Query", "query_from_levels", "full_query"]

#: a per-dimension constraint: hierarchy level (1-based depth or level
#: name, matching ``Level.name`` in the ``Schema``) plus the prefix path
Constraint = tuple[Union[int, str], Sequence[int]]


@dataclass
class Query:
    """An aggregate query: a box plus bookkeeping metadata.

    Attributes
    ----------
    box:
        The hierarchical region to aggregate.
    coverage:
        The measured fraction of database items covered (filled in by the
        workload generator when binning queries; ``nan`` until measured).
    max_staleness:
        Optional bounded-staleness budget (virtual seconds).  ``None``
        means the query must be served by shard primaries; a value
        allows the server to route a shard's read to an asynchronous
        replica whose estimated lag fits the budget (the achieved
        staleness comes back with the result).
    """

    box: Box
    coverage: float = float("nan")
    query_id: int = -1
    max_staleness: "float | None" = None

    @property
    def num_dims(self) -> int:
        return self.box.num_dims

    @classmethod
    def range(cls, schema: Schema, **constraints: Constraint) -> "Query":
        """Build a query from keyword constraints, one per dimension.

        Each keyword is a dimension name exactly as spelled in the
        ``Schema``; its value is ``(level, path)`` where ``level`` is
        either a hierarchy level *name* (``Level.name``) or a 1-based
        depth, and ``path`` gives one local id per level down to (and
        including) that level.  Unnamed dimensions are unconstrained.

        >>> Query.range(schema, date=("month", (3, 11)))  # doctest: +SKIP
        >>> Query.range(schema, date=(2, (3, 11)))        # equivalent
        """
        return query_from_levels(schema, constraints)


def _resolve_depth(h, level: Union[int, str], dim: str) -> int:
    """Map a level name (or pass through a 1-based depth) to a depth."""
    if isinstance(level, str):
        for i, lvl in enumerate(h.levels):
            if lvl.name == level:
                return i + 1
        raise ValueError(
            f"dimension {dim!r} has no level named {level!r}; "
            f"levels are {[lvl.name for lvl in h.levels]}"
        )
    return int(level)


def query_from_levels(
    schema: Schema,
    constraints: Mapping[str, Constraint],
) -> Query:
    """Build a query from per-dimension level constraints.

    ``constraints`` maps dimension name (as spelled in the ``Schema``)
    to ``(level, prefix_path)``: the value at hierarchy ``level`` --
    a level name or a 1-based depth, as in :meth:`Query.range` -- whose
    subtree should be aggregated.  Dimensions not present are
    unconstrained.

    >>> q = query_from_levels(schema, {"date": (2, (3, 11))})  # doctest: +SKIP
    >>> q = query_from_levels(schema, {"date": ("month", (3, 11))})  # same
    """
    lo = np.zeros(schema.num_dims, dtype=np.int64)
    hi = schema.leaf_limits.copy()
    for name, (level, path) in constraints.items():
        d = schema.index_of(name)
        h = schema.dimensions[d].hierarchy
        depth = _resolve_depth(h, level, name)
        if not 1 <= depth <= h.num_levels:
            raise ValueError(
                f"depth {depth} out of range for dimension {name!r}"
            )
        if len(path) != depth:
            raise ValueError(
                f"prefix path length {len(path)} != depth {depth} for {name!r}"
            )
        prefix = h.encode_prefix(path)
        lo[d], hi[d] = h.prefix_range(depth, prefix)
    return Query(Box(lo, hi, copy=False))


def full_query(schema: Schema) -> Query:
    """A query covering the entire leaf-id space (100% coverage)."""
    lo = np.zeros(schema.num_dims, dtype=np.int64)
    hi = schema.leaf_limits.copy()
    return Query(Box(lo, hi, copy=False), coverage=1.0)

"""Aggregate queries over hierarchical dimensions.

A VOLAP query specifies, for every dimension, either a value at some
hierarchy level (meaning "this value and all of its descendants") or the
whole dimension.  Each such constraint maps to a contiguous leaf-id
range, so a query is geometrically a :class:`~repro.olap.keys.Box`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .keys import Box
from .schema import Schema

__all__ = ["Query", "query_from_levels", "full_query"]


@dataclass
class Query:
    """An aggregate query: a box plus bookkeeping metadata.

    Attributes
    ----------
    box:
        The hierarchical region to aggregate.
    coverage:
        The measured fraction of database items covered (filled in by the
        workload generator when binning queries; ``nan`` until measured).
    """

    box: Box
    coverage: float = float("nan")
    query_id: int = -1

    @property
    def num_dims(self) -> int:
        return self.box.num_dims


def query_from_levels(
    schema: Schema,
    constraints: Mapping[str, tuple[int, Sequence[int]]],
) -> Query:
    """Build a query from per-dimension level constraints.

    ``constraints`` maps dimension name to ``(depth, prefix_path)``: the
    value at hierarchy depth ``depth`` (1 = coarsest level) whose subtree
    should be aggregated.  Dimensions not present are unconstrained.

    >>> q = query_from_levels(schema, {"date": (2, (3, 11))})  # doctest: +SKIP
    """
    lo = np.zeros(schema.num_dims, dtype=np.int64)
    hi = schema.leaf_limits.copy()
    for name, (depth, path) in constraints.items():
        d = schema.index_of(name)
        h = schema.dimensions[d].hierarchy
        if not 1 <= depth <= h.num_levels:
            raise ValueError(
                f"depth {depth} out of range for dimension {name!r}"
            )
        if len(path) != depth:
            raise ValueError(
                f"prefix path length {len(path)} != depth {depth} for {name!r}"
            )
        prefix = h.encode_prefix(path)
        lo[d], hi[d] = h.prefix_range(depth, prefix)
    return Query(Box(lo, hi, copy=False))


def full_query(schema: Schema) -> Query:
    """A query covering the entire leaf-id space (100% coverage)."""
    lo = np.zeros(schema.num_dims, dtype=np.int64)
    hi = schema.leaf_limits.copy()
    return Query(Box(lo, hi, copy=False), coverage=1.0)

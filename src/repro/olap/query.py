"""Aggregate queries over hierarchical dimensions.

A VOLAP query specifies, for every dimension, either a value at some
hierarchy level (meaning "this value and all of its descendants") or the
whole dimension.  Each such constraint maps to a contiguous leaf-id
range, so a query is geometrically a :class:`~repro.olap.keys.Box`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from .keys import Box
from .schema import Schema

__all__ = ["Query", "query_from_levels", "full_query"]

#: valid values of ``Query.routing`` / ``cluster.execute(routing=...)``
ROUTING_MODES = ("auto", "tree", "rollup")

#: a per-dimension constraint: hierarchy level (1-based depth or level
#: name, matching ``Level.name`` in the ``Schema``) plus the prefix path
Constraint = tuple[Union[int, str], Sequence[int]]


@dataclass
class Query:
    """An aggregate query: a box plus bookkeeping metadata.

    Attributes
    ----------
    box:
        The hierarchical region to aggregate.
    coverage:
        The measured fraction of database items covered (filled in by the
        workload generator when binning queries; ``nan`` until measured).
    max_staleness:
        Optional bounded-staleness budget (virtual seconds).  ``None``
        means the query must be served by shard primaries; a value
        allows the server to route a shard's read to an asynchronous
        replica -- or a materialized rollup cube -- whose estimated lag
        fits the budget (the achieved staleness comes back with the
        result).
    routing:
        Which tier may answer: ``"auto"`` (rollup cubes when valid,
        tree otherwise), ``"tree"`` (pin to tree descent), or
        ``"rollup"`` (prefer cubes regardless of budget, falling back
        to the tree only when no cube matches).
    group_levels:
        For rollup-built queries (:meth:`Query.rollup`): the
        ``(dim_name, depth)`` pairs this query groups by, letting the
        router match cubes without re-deriving them from the box.
    group_path:
        For rollup-built queries: the group member's per-dimension
        local-id paths, in ``group_levels`` order.
    """

    box: Box
    coverage: float = float("nan")
    query_id: int = -1
    max_staleness: "float | None" = None
    routing: str = "auto"
    group_levels: Optional[tuple[tuple[str, int], ...]] = None
    group_path: Optional[tuple[tuple[int, ...], ...]] = None

    @property
    def num_dims(self) -> int:
        return self.box.num_dims

    @classmethod
    def range(cls, schema: Schema, **constraints: Constraint) -> "Query":
        """Build a query from keyword constraints, one per dimension.

        Each keyword is a dimension name exactly as spelled in the
        ``Schema``; its value is ``(level, path)`` where ``level`` is
        either a hierarchy level *name* (``Level.name``) or a 1-based
        depth, and ``path`` gives one local id per level down to (and
        including) that level.  Unnamed dimensions are unconstrained.

        >>> Query.range(schema, date=("month", (3, 11)))  # doctest: +SKIP
        >>> Query.range(schema, date=(2, (3, 11)))        # equivalent
        """
        return query_from_levels(schema, constraints)

    @classmethod
    def rollup(
        cls,
        schema: Schema,
        group_by: Sequence[Union[str, tuple[str, Union[int, str]]]],
        where: Optional[Mapping[str, Constraint]] = None,
    ) -> list["Query"]:
        """Build the per-group queries of a grouped rollup, one per
        member of the cross product of the grouped levels.

        ``group_by`` items are ``"dim:level"`` strings or ``(dim,
        level)`` pairs (level name or 1-based depth); ``where``
        restricts the region with the same per-dimension constraints as
        :meth:`Query.range`.  Every returned query carries
        ``group_levels`` / ``group_path`` so results map back to group
        members and the rollup tier can match cubes level-first:

        >>> qs = Query.rollup(schema, group_by=("date:month",))  # doctest: +SKIP
        >>> {q.group_path: r.value for q, r in zip(qs, cluster.execute(qs))}  # doctest: +SKIP
        """
        from .rollup import group_boxes  # local: avoids a cycle

        items: list[tuple[str, int]] = []
        for spec in group_by:
            if isinstance(spec, str):
                if ":" not in spec:
                    raise ValueError(
                        f"group_by item {spec!r} must be 'dim:level'"
                    )
                name, level = spec.split(":", 1)
            else:
                name, level = spec
            h = schema.dimension(name).hierarchy
            items.append((name, _resolve_depth(h, level, name)))
        if len({n for n, _ in items}) != len(items):
            raise ValueError("group_by lists a dimension twice")
        base = query_from_levels(schema, dict(where) if where else {})
        levels = tuple(items)
        out: list[Query] = []

        def expand(i: int, box: Box, paths: tuple) -> None:
            if i == len(items):
                out.append(
                    cls(box, group_levels=levels, group_path=paths)
                )
                return
            name, depth = items[i]
            for path, sub in group_boxes(schema, name, depth, within=box):
                expand(i + 1, sub, paths + (tuple(path),))

        expand(0, base.box, ())
        return out


def _resolve_depth(h, level: Union[int, str], dim: str) -> int:
    """Map a level name (or pass through a 1-based depth) to a depth."""
    if isinstance(level, str):
        for i, lvl in enumerate(h.levels):
            if lvl.name == level:
                return i + 1
        if level.lstrip("-").isdigit():  # "dim:2" in a group_by string
            return int(level)
        raise ValueError(
            f"dimension {dim!r} has no level named {level!r}; "
            f"levels are {[lvl.name for lvl in h.levels]}"
        )
    return int(level)


def query_from_levels(
    schema: Schema,
    constraints: Mapping[str, Constraint],
) -> Query:
    """Build a query from per-dimension level constraints.

    ``constraints`` maps dimension name (as spelled in the ``Schema``)
    to ``(level, prefix_path)``: the value at hierarchy ``level`` --
    a level name or a 1-based depth, as in :meth:`Query.range` -- whose
    subtree should be aggregated.  Dimensions not present are
    unconstrained.

    >>> q = query_from_levels(schema, {"date": (2, (3, 11))})  # doctest: +SKIP
    >>> q = query_from_levels(schema, {"date": ("month", (3, 11))})  # same
    """
    lo = np.zeros(schema.num_dims, dtype=np.int64)
    hi = schema.leaf_limits.copy()
    for name, (level, path) in constraints.items():
        d = schema.index_of(name)
        h = schema.dimensions[d].hierarchy
        depth = _resolve_depth(h, level, name)
        if not 1 <= depth <= h.num_levels:
            raise ValueError(
                f"depth {depth} out of range for dimension {name!r}"
            )
        if len(path) != depth:
            raise ValueError(
                f"prefix path length {len(path)} != depth {depth} for {name!r}"
            )
        prefix = h.encode_prefix(path)
        lo[d], hi[d] = h.prefix_range(depth, prefix)
    return Query(Box(lo, hi, copy=False))


def full_query(schema: Schema) -> Query:
    """A query covering the entire leaf-id space (100% coverage)."""
    lo = np.zeros(schema.num_dims, dtype=np.int64)
    hi = schema.leaf_limits.copy()
    return Query(Box(lo, hi, copy=False), coverage=1.0)

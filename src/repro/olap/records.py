"""Record batches: numpy-backed bundles of coordinates and measures.

Throughout the library, a data item is a vector of per-dimension
leaf-level encoded ids (int64) together with one float64 measure.
Batches keep these in contiguous arrays so leaf scans, bulk loads, and
serialisation are vectorised.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .schema import Schema

__all__ = ["RecordBatch", "concat_batches"]


class RecordBatch:
    """A column bundle of ``(n, d)`` int64 coords and ``(n,)`` measures."""

    __slots__ = ("coords", "measures")

    def __init__(self, coords: np.ndarray, measures: np.ndarray, *, copy: bool = False):
        coords = np.array(coords, dtype=np.int64, copy=copy)
        measures = np.array(measures, dtype=np.float64, copy=copy)
        if coords.ndim != 2:
            raise ValueError("coords must be (n, d)")
        if measures.shape != (coords.shape[0],):
            raise ValueError(
                f"measures shape {measures.shape} != ({coords.shape[0]},)"
            )
        self.coords = coords
        self.measures = measures

    @staticmethod
    def empty(num_dims: int) -> "RecordBatch":
        return RecordBatch(
            np.empty((0, num_dims), dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )

    def __len__(self) -> int:
        return self.coords.shape[0]

    @property
    def num_dims(self) -> int:
        return self.coords.shape[1]

    def row(self, i: int) -> tuple[np.ndarray, float]:
        return self.coords[i], float(self.measures[i])

    def take(self, idx: np.ndarray) -> "RecordBatch":
        return RecordBatch(self.coords[idx], self.measures[idx])

    def slice(self, start: int, stop: int) -> "RecordBatch":
        return RecordBatch(self.coords[start:stop], self.measures[start:stop])

    def iter_rows(self) -> Iterator[tuple[np.ndarray, float]]:
        for i in range(len(self)):
            yield self.coords[i], float(self.measures[i])

    def validate(self, schema: Schema) -> None:
        if self.num_dims != schema.num_dims:
            raise ValueError(
                f"batch has {self.num_dims} dims, schema has {schema.num_dims}"
            )
        if len(self):
            schema.validate_coords(self.coords)

    # -- serialisation (used by shard migration) --------------------------

    def to_bytes(self) -> bytes:
        """Flat binary blob: header + coords + measures."""
        n, d = self.coords.shape
        header = np.array([n, d], dtype=np.int64).tobytes()
        return header + self.coords.tobytes() + self.measures.tobytes()

    @staticmethod
    def from_bytes(blob: bytes) -> "RecordBatch":
        n, d = np.frombuffer(blob[:16], dtype=np.int64)
        n, d = int(n), int(d)
        coords_end = 16 + n * d * 8
        coords = np.frombuffer(blob[16:coords_end], dtype=np.int64).reshape(n, d)
        measures = np.frombuffer(blob[coords_end : coords_end + n * 8], dtype=np.float64)
        return RecordBatch(coords.copy(), measures.copy())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecordBatch(n={len(self)}, d={self.num_dims})"


def concat_batches(batches: list[RecordBatch], num_dims: int) -> RecordBatch:
    """Concatenate batches (empty result if the list is empty)."""
    if not batches:
        return RecordBatch.empty(num_dims)
    return RecordBatch(
        np.concatenate([b.coords for b in batches], axis=0),
        np.concatenate([b.measures for b in batches]),
    )

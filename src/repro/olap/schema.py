"""Multi-dimensional schemas: an ordered set of hierarchical dimensions."""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from .hierarchy import Dimension


class Schema:
    """An ordered collection of :class:`~repro.olap.hierarchy.Dimension`.

    The schema fixes the coordinate layout used everywhere else: an item
    is a vector of ``num_dims`` leaf-level encoded ids (int64), plus a
    float64 measure.
    """

    __slots__ = ("dimensions", "_by_name", "_widths", "_limits")

    def __init__(self, dimensions: Sequence[Dimension]):
        if not dimensions:
            raise ValueError("schema needs at least one dimension")
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names in {names}")
        self.dimensions: tuple[Dimension, ...] = tuple(dimensions)
        self._by_name = {d.name: i for i, d in enumerate(self.dimensions)}
        self._widths = np.array([d.total_bits for d in self.dimensions], dtype=np.int64)
        self._limits = np.array(
            [(1 << d.total_bits) - 1 for d in self.dimensions], dtype=np.int64
        )

    @property
    def num_dims(self) -> int:
        return len(self.dimensions)

    @property
    def leaf_widths(self) -> np.ndarray:
        """Per-dimension leaf id bit widths (int64 array)."""
        return self._widths

    @property
    def leaf_limits(self) -> np.ndarray:
        """Per-dimension maximum leaf id (inclusive, int64 array)."""
        return self._limits

    def index_of(self, name: str) -> int:
        return self._by_name[name]

    def dimension(self, name: str) -> Dimension:
        return self.dimensions[self._by_name[name]]

    def encode_point(self, paths: Sequence[Sequence[int]]) -> np.ndarray:
        """Encode one full path per dimension into an int64 coordinate vector."""
        if len(paths) != self.num_dims:
            raise ValueError(
                f"expected {self.num_dims} paths, got {len(paths)}"
            )
        return np.array(
            [d.hierarchy.encode(p) for d, p in zip(self.dimensions, paths)],
            dtype=np.int64,
        )

    def decode_point(self, coords: Sequence[int]) -> tuple[tuple[int, ...], ...]:
        """Decode a coordinate vector back into per-dimension paths."""
        return tuple(
            d.hierarchy.decode(int(c)) for d, c in zip(self.dimensions, coords)
        )

    def validate_coords(self, coords: np.ndarray) -> None:
        """Raise if any coordinate falls outside its dimension's id space."""
        coords = np.asarray(coords)
        if coords.ndim == 1:
            coords = coords[None, :]
        if coords.shape[1] != self.num_dims:
            raise ValueError(
                f"coords have {coords.shape[1]} dims, schema has {self.num_dims}"
            )
        if (coords < 0).any() or (coords > self._limits[None, :]).any():
            raise ValueError("coordinates out of range for schema")

    def __iter__(self) -> Iterator[Dimension]:
        return iter(self.dimensions)

    def __len__(self) -> int:
        return self.num_dims

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.dimensions == other.dimensions

    def __hash__(self) -> int:
        return hash(self.dimensions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema({[d.name for d in self.dimensions]})"

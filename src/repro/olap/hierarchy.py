"""Dimension hierarchies and hierarchical value encoding.

VOLAP treats every dimension as a *hierarchy*: an ordered list of levels
from the coarsest (e.g. ``Country``) down to the finest (e.g. ``City``).
A concrete dimension value is a *path* through the hierarchy -- one local
id per level.  Paths are encoded into a single integer by concatenating
the per-level ids bitwise, most-significant level first.  This encoding
has the crucial property that every hierarchy prefix (a value expressed
at a coarser level) corresponds to a *contiguous range* of leaf-level
encoded ids, which is what lets interval-based keys (MBRs) and
interval-set keys (MDSs) represent hierarchical regions exactly.

Example
-------
>>> h = Hierarchy("date", [Level("year", 8), Level("month", 12), Level("day", 31)])
>>> v = h.encode((3, 11, 30))
>>> h.decode(v)
(3, 11, 30)
>>> lo, hi = h.prefix_range(1, h.encode_prefix((3,)))   # all of year 3
>>> lo <= v <= hi
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


def bits_for(fanout: int) -> int:
    """Number of bits needed to encode local ids in ``[0, fanout)``."""
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    return max(1, (fanout - 1).bit_length())


@dataclass(frozen=True)
class Level:
    """One level of a dimension hierarchy.

    Parameters
    ----------
    name:
        Human-readable level name (e.g. ``"month"``).
    fanout:
        Maximum number of distinct child values under a single parent
        value.  Local ids at this level are integers in ``[0, fanout)``.
    """

    name: str
    fanout: int

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ValueError(f"Level {self.name!r}: fanout must be >= 1")

    @property
    def bits(self) -> int:
        """Bits used to encode one local id at this level."""
        return bits_for(self.fanout)


class Hierarchy:
    """An ordered list of levels, coarsest first, with path encoding.

    The *leaf id space* of the hierarchy is ``[0, 2**total_bits)``; a full
    path (one id per level) maps to a single integer in this space.  A
    partial path (prefix) maps to a contiguous range.
    """

    __slots__ = (
        "name",
        "levels",
        "_suffix_bits",
        "_prefix_bits",
        "total_bits",
        "num_levels",
    )

    def __init__(self, name: str, levels: Sequence[Level]):
        if not levels:
            raise ValueError("hierarchy needs at least one level")
        self.name = name
        self.levels: tuple[Level, ...] = tuple(levels)
        self.num_levels = len(self.levels)
        # _suffix_bits[i] = bits below level i (levels i+1 .. end)
        suffix = [0] * (self.num_levels + 1)
        for i in range(self.num_levels - 1, -1, -1):
            suffix[i] = suffix[i + 1] + self.levels[i].bits
        self.total_bits = suffix[0]
        self._suffix_bits = tuple(suffix[1:] + [0])  # bits strictly below level i
        # _prefix_bits[k] = total bits of the first k levels
        pref = [0]
        for lvl in self.levels:
            pref.append(pref[-1] + lvl.bits)
        self._prefix_bits = tuple(pref)
        if self.total_bits > 62:
            raise ValueError(
                f"hierarchy {name!r} needs {self.total_bits} bits; "
                "int64-backed storage supports at most 62"
            )

    # -- encoding ---------------------------------------------------------

    def encode(self, path: Sequence[int]) -> int:
        """Encode a full path (one local id per level) to a leaf id."""
        if len(path) != self.num_levels:
            raise ValueError(
                f"path length {len(path)} != number of levels {self.num_levels}"
            )
        return self.encode_prefix(path)

    def encode_prefix(self, path: Sequence[int]) -> int:
        """Encode a partial path to a prefix integer (not shifted to leaf)."""
        v = 0
        for lvl, pid in zip(self.levels, path):
            if not 0 <= pid < lvl.fanout:
                raise ValueError(
                    f"id {pid} out of range [0, {lvl.fanout}) at level {lvl.name!r}"
                )
            v = (v << lvl.bits) | pid
        return v

    def decode(self, value: int) -> tuple[int, ...]:
        """Decode a leaf id back into a full path."""
        if not 0 <= value < (1 << self.total_bits):
            raise ValueError(f"leaf id {value} out of range")
        out = []
        for i, lvl in enumerate(self.levels):
            below = self._suffix_bits[i]
            out.append((value >> below) & ((1 << lvl.bits) - 1))
        return tuple(out)

    # -- ranges -----------------------------------------------------------

    def suffix_bits(self, depth: int) -> int:
        """Bits strictly below a prefix of ``depth`` levels."""
        if not 1 <= depth <= self.num_levels:
            raise ValueError(f"depth must be in [1, {self.num_levels}]")
        return self.total_bits - self._prefix_bits[depth]

    def prefix_range(self, depth: int, prefix: int) -> tuple[int, int]:
        """Leaf-id range ``[lo, hi]`` covered by a ``depth``-level prefix."""
        below = self.suffix_bits(depth)
        lo = prefix << below
        hi = lo + (1 << below) - 1
        return lo, hi

    def prefix_of(self, value: int, depth: int) -> int:
        """The ``depth``-level prefix of a leaf id."""
        return value >> self.suffix_bits(depth)

    def level_bits(self) -> tuple[int, ...]:
        """Per-level bit widths, coarsest first."""
        return tuple(lvl.bits for lvl in self.levels)

    def level_names(self) -> tuple[str, ...]:
        return tuple(lvl.name for lvl in self.levels)

    @property
    def leaf_cardinality(self) -> int:
        """Size of the leaf id space (``2**total_bits``)."""
        return 1 << self.total_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lv = ", ".join(f"{l.name}:{l.fanout}" for l in self.levels)
        return f"Hierarchy({self.name!r}, [{lv}], bits={self.total_bits})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Hierarchy)
            and self.name == other.name
            and self.levels == other.levels
        )

    def __hash__(self) -> int:
        return hash((self.name, self.levels))


@dataclass(frozen=True)
class Dimension:
    """A named dimension backed by a :class:`Hierarchy`."""

    name: str
    hierarchy: Hierarchy

    @property
    def total_bits(self) -> int:
        return self.hierarchy.total_bits

    @property
    def num_levels(self) -> int:
        return self.hierarchy.num_levels


def flat_dimension(name: str, cardinality: int) -> Dimension:
    """A dimension with a single level (no hierarchy structure)."""
    return Dimension(name, Hierarchy(name, [Level(name, cardinality)]))


def uniform_dimension(name: str, fanouts: Iterable[int]) -> Dimension:
    """A dimension whose levels have the given fanouts, coarsest first."""
    levels = [Level(f"{name}_l{i}", f) for i, f in enumerate(fanouts)]
    return Dimension(name, Hierarchy(name, levels))

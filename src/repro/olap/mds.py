"""Minimum Describing Subset (MDS) keys.

The DC-tree / PDC-tree family uses *Minimum Describing Subsets* instead
of Minimum Bounding Rectangles: a node's key is a small set of hierarchy
regions per dimension rather than one interval per dimension.  Because
hierarchy prefixes map to contiguous leaf-id ranges (see
:mod:`repro.olap.hierarchy`), we represent an MDS as, per dimension, a
sorted list of disjoint closed intervals, capped at ``max_intervals``
entries.  When the cap is exceeded the two intervals separated by the
smallest gap are coalesced, which mirrors the DC-tree's collapse of
sibling entries into their parent (a parent's range is exactly the
concatenation of its children's ranges, so gap-minimal coalescing
reproduces the same behaviour on hierarchy-clustered data).

Compared to a single-interval MBR, an MDS stays tight on data that is
clustered in several separate hierarchy regions -- the property that
makes PDC trees scale to many dimensions (paper Fig. 5).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence

import numpy as np

from .keys import Box, PackedKeys

__all__ = ["MDS", "DEFAULT_MAX_INTERVALS", "pack_mds", "mds_intersect_many"]

DEFAULT_MAX_INTERVALS = 4


def _coalesce_smallest_gap(ivs: list[list[int]]) -> None:
    """Merge the adjacent interval pair with the smallest gap, in place."""
    best = 0
    best_gap = None
    for i in range(len(ivs) - 1):
        gap = ivs[i + 1][0] - ivs[i][1]
        if best_gap is None or gap < best_gap:
            best_gap = gap
            best = i
    ivs[best][1] = ivs[best + 1][1]
    del ivs[best + 1]


def _insert_value(ivs: list[list[int]], lo: int, hi: int, cap: int) -> bool:
    """Insert interval [lo, hi] into a sorted disjoint interval list.

    Returns True if the list changed.  Merges overlapping/adjacent
    intervals and enforces the cap.
    """
    n = len(ivs)
    # Find insertion point by lower bound.
    idx = bisect_right(ivs, lo, key=lambda iv: iv[0])
    # Check the interval before: may already cover or touch [lo, hi].
    if idx > 0 and ivs[idx - 1][1] >= lo - 1:
        prev = ivs[idx - 1]
        if prev[1] >= hi:
            return False  # already covered
        prev[1] = hi
        idx -= 1
    else:
        ivs.insert(idx, [lo, hi])
    # Absorb following intervals that now overlap/touch.
    cur = ivs[idx]
    j = idx + 1
    while j < len(ivs) and ivs[j][0] <= cur[1] + 1:
        cur[1] = max(cur[1], ivs[j][1])
        del ivs[j]
    while len(ivs) > cap:
        _coalesce_smallest_gap(ivs)
    return True


class MDS:
    """A per-dimension set of disjoint intervals, capped in size."""

    __slots__ = ("intervals", "max_intervals")

    def __init__(
        self,
        intervals: Sequence[Sequence[Sequence[int]]],
        max_intervals: int = DEFAULT_MAX_INTERVALS,
    ):
        if max_intervals < 1:
            raise ValueError("max_intervals must be >= 1")
        self.max_intervals = max_intervals
        self.intervals: list[list[list[int]]] = [
            sorted([list(map(int, iv)) for iv in dim_ivs], key=lambda iv: iv[0])
            for dim_ivs in intervals
        ]
        for dim_ivs in self.intervals:
            for a, b in zip(dim_ivs, dim_ivs[1:]):
                if a[1] >= b[0]:
                    raise ValueError("intervals within a dimension must be disjoint")
            while len(dim_ivs) > max_intervals:
                _coalesce_smallest_gap(dim_ivs)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def empty(num_dims: int, max_intervals: int = DEFAULT_MAX_INTERVALS) -> "MDS":
        m = MDS.__new__(MDS)
        m.max_intervals = max_intervals
        m.intervals = [[] for _ in range(num_dims)]
        return m

    @staticmethod
    def from_point(
        coords: np.ndarray, max_intervals: int = DEFAULT_MAX_INTERVALS
    ) -> "MDS":
        m = MDS.empty(len(coords), max_intervals)
        m.expand_point_inplace(coords)
        return m

    @staticmethod
    def from_box(box: Box, max_intervals: int = DEFAULT_MAX_INTERVALS) -> "MDS":
        m = MDS.empty(box.num_dims, max_intervals)
        if not box.is_empty():
            for d in range(box.num_dims):
                m.intervals[d].append([int(box.lo[d]), int(box.hi[d])])
        return m

    # -- predicates ----------------------------------------------------------

    @property
    def num_dims(self) -> int:
        return len(self.intervals)

    def is_empty(self) -> bool:
        return any(len(ivs) == 0 for ivs in self.intervals)

    def covers_point(self, coords: Sequence[int]) -> bool:
        for d, c in enumerate(coords):
            c = int(c)
            ivs = self.intervals[d]
            idx = bisect_right(ivs, c, key=lambda iv: iv[0]) - 1
            if idx < 0 or ivs[idx][1] < c:
                return False
        return True

    def intersects_box(self, box: Box) -> bool:
        """True if the product set shares at least one point with ``box``."""
        if self.is_empty() or box.is_empty():
            return False
        for d in range(self.num_dims):
            qlo, qhi = int(box.lo[d]), int(box.hi[d])
            if not any(iv[0] <= qhi and qlo <= iv[1] for iv in self.intervals[d]):
                return False
        return True

    def covers(self, other: "MDS") -> bool:
        """True if every interval of ``other`` lies inside this MDS."""
        if other.is_empty():
            return True
        if self.is_empty():
            return False
        for d in range(self.num_dims):
            mine = self.intervals[d]
            for iv in other.intervals[d]:
                idx = bisect_right(mine, iv[0], key=lambda x: x[0]) - 1
                if idx < 0 or mine[idx][1] < iv[1]:
                    return False
        return True

    def within_box(self, box: Box) -> bool:
        """True if every interval in every dimension lies inside ``box``."""
        if self.is_empty():
            return True
        if box.is_empty():
            return False
        for d in range(self.num_dims):
            qlo, qhi = int(box.lo[d]), int(box.hi[d])
            ivs = self.intervals[d]
            if ivs[0][0] < qlo or ivs[-1][1] > qhi:
                return False
        return True

    # -- measures --------------------------------------------------------

    def side_lengths(self) -> np.ndarray:
        """Per-dimension covered length (sum of interval sizes)."""
        return np.array(
            [
                float(sum(iv[1] - iv[0] + 1 for iv in ivs))
                for ivs in self.intervals
            ]
        )

    def log_volume(self) -> float:
        if self.is_empty():
            return float("-inf")
        return float(np.sum(np.log2(self.side_lengths())))

    def overlap_lengths(self, other: "MDS") -> np.ndarray:
        """Per-dimension length of the intersection of interval unions."""
        out = np.zeros(self.num_dims)
        for d in range(self.num_dims):
            a = self.intervals[d]
            b = other.intervals[d]
            i = j = 0
            total = 0
            while i < len(a) and j < len(b):
                lo = max(a[i][0], b[j][0])
                hi = min(a[i][1], b[j][1])
                if lo <= hi:
                    total += hi - lo + 1
                if a[i][1] < b[j][1]:
                    i += 1
                else:
                    j += 1
            out[d] = float(total)
        return out

    def log_overlap_volume(self, other: "MDS") -> float:
        """log2 of the intersection volume with ``other``; -inf if disjoint."""
        lengths = self.overlap_lengths(other)
        if (lengths <= 0).any():
            return float("-inf")
        return float(np.sum(np.log2(lengths)))

    # -- combination -------------------------------------------------------

    def expand_point_inplace(self, coords: Sequence[int]) -> bool:
        changed = False
        for d, c in enumerate(coords):
            c = int(c)
            if _insert_value(self.intervals[d], c, c, self.max_intervals):
                changed = True
        return changed

    def expand_points_inplace(self, coords: np.ndarray) -> bool:
        """Grow to cover every row of an ``(n, d)`` array in one pass.

        Per dimension: unique values compress into runs of consecutive
        ids, the runs merge with the existing interval list in a single
        sweep, and the cap is enforced by keeping the ``cap - 1``
        *largest* gaps as separators -- merging one interval pair never
        changes any other gap, so this is the same endpoint set that
        repeated smallest-gap-first coalescing converges to (up to tie
        order; any coalescing is a valid cover).
        """
        c = np.asarray(coords, dtype=np.int64)
        n = c.shape[0]
        if n == 0:
            return False
        if n == 1:
            return self.expand_point_inplace(c[0])
        # cheapest fast path: one existing interval per dimension covers
        # the whole run span (true for almost every non-leaf node)
        lo_vec = c.min(axis=0)
        hi_vec = c.max(axis=0)
        for d in range(self.num_dims):
            lo = lo_vec[d]
            hi = hi_vec[d]
            for iv in self.intervals[d]:
                if iv[0] <= lo and hi <= iv[1]:
                    break
            else:
                break
        else:
            return False
        changed = False
        cap = self.max_intervals
        for d in range(self.num_dims):
            ivs = self.intervals[d]
            col = c[:, d]
            if ivs:
                # fast path: every value already covered -> no change
                starts = np.fromiter(
                    (iv[0] for iv in ivs), np.int64, len(ivs)
                )
                pos = np.searchsorted(starts, col, side="right") - 1
                if (pos >= 0).all():
                    ends = np.fromiter(
                        (iv[1] for iv in ivs), np.int64, len(ivs)
                    )
                    if (col <= ends[pos]).all():
                        continue
            if n > 64:
                vals = np.unique(col)
                brk = np.nonzero(np.diff(vals) > 1)[0]
                s_idx = np.concatenate(([0], brk + 1))
                e_idx = np.concatenate((brk, [len(vals) - 1]))
                new = [
                    [int(vals[s]), int(vals[e])]
                    for s, e in zip(s_idx, e_idx)
                ]
            else:
                svals = sorted(int(v) for v in col)
                new = []
                lo = hi = svals[0]
                for v in svals[1:]:
                    if v <= hi + 1:
                        hi = v if v > hi else hi
                    else:
                        new.append([lo, hi])
                        lo = hi = v
                new.append([lo, hi])
            pool = sorted(ivs + new) if ivs else new
            merged = [pool[0][:]]
            for lo, hi in pool[1:]:
                if lo <= merged[-1][1] + 1:
                    if hi > merged[-1][1]:
                        merged[-1][1] = hi
                else:
                    merged.append([lo, hi])
            if len(merged) > cap:
                gaps = np.array(
                    [
                        merged[i + 1][0] - merged[i][1]
                        for i in range(len(merged) - 1)
                    ]
                )
                keep = np.sort(np.argpartition(gaps, -(cap - 1))[-(cap - 1):])
                out = []
                start = merged[0][0]
                for g in keep:
                    out.append([start, merged[g][1]])
                    start = merged[g + 1][0]
                out.append([start, merged[-1][1]])
                merged = out
            if merged != ivs:
                ivs[:] = merged
                changed = True
        return changed

    def expand_inplace(self, other: "MDS") -> bool:
        changed = False
        for d in range(self.num_dims):
            for iv in other.intervals[d]:
                if _insert_value(
                    self.intervals[d], iv[0], iv[1], self.max_intervals
                ):
                    changed = True
        return changed

    def expand_box_inplace(self, box: Box) -> bool:
        if box.is_empty():
            return False
        changed = False
        for d in range(box.num_dims):
            if _insert_value(
                self.intervals[d],
                int(box.lo[d]),
                int(box.hi[d]),
                self.max_intervals,
            ):
                changed = True
        return changed

    def union(self, other: "MDS") -> "MDS":
        m = self.copy()
        m.expand_inplace(other)
        return m

    # -- conversions ---------------------------------------------------------

    def mbr(self) -> Box:
        """Single-interval bounding box of the MDS."""
        if self.is_empty():
            return Box.empty(self.num_dims)
        lo = np.array([ivs[0][0] for ivs in self.intervals], dtype=np.int64)
        hi = np.array([ivs[-1][1] for ivs in self.intervals], dtype=np.int64)
        return Box(lo, hi, copy=False)

    def copy(self) -> "MDS":
        m = MDS.__new__(MDS)
        m.max_intervals = self.max_intervals
        m.intervals = [[iv.copy() for iv in ivs] for ivs in self.intervals]
        return m

    def to_tuple(self) -> tuple:
        return tuple(
            tuple((iv[0], iv[1]) for iv in ivs) for ivs in self.intervals
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MDS):
            return NotImplemented
        return self.to_tuple() == other.to_tuple()

    def __hash__(self) -> int:
        return hash(self.to_tuple())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MDS({self.to_tuple()})"


def pack_mds(keys: Sequence[MDS], num_dims: int) -> PackedKeys:
    """Pack ``m`` MDS keys into a flattened interval-union snapshot.

    The MBR summary (lo/hi/empty) feeds the shared within test; the
    flattened ``ilo``/``ihi``/``dim_idx``/``offsets`` arrays drive the
    exact per-interval intersection test.  A ``(key, dim)`` segment with
    no intervals (only possible on empty keys) gets a dummy ``[0, -1]``
    interval so every ``reduceat`` segment is non-empty; the dummy can
    never match (lo > hi) and empty keys are masked out anyway.
    """
    m = len(keys)
    lo = np.full((m, num_dims), np.iinfo(np.int64).max // 2, dtype=np.int64)
    hi = np.full((m, num_dims), -1, dtype=np.int64)
    empty = np.zeros(m, dtype=bool)
    ilo: list[int] = []
    ihi: list[int] = []
    dim_idx: list[int] = []
    offsets = np.empty(m * num_dims + 1, dtype=np.int64)
    pos = 0
    for i, key in enumerate(keys):
        if key.is_empty():
            empty[i] = True
        for d in range(num_dims):
            offsets[i * num_dims + d] = pos
            ivs = key.intervals[d]
            if ivs:
                lo[i, d] = ivs[0][0]
                hi[i, d] = ivs[-1][1]
                for iv in ivs:
                    ilo.append(iv[0])
                    ihi.append(iv[1])
                    dim_idx.append(d)
                pos += len(ivs)
            else:
                ilo.append(0)
                ihi.append(-1)
                dim_idx.append(d)
                pos += 1
    offsets[m * num_dims] = pos
    return PackedKeys(
        lo,
        hi,
        empty,
        np.array(ilo, dtype=np.int64),
        np.array(ihi, dtype=np.int64),
        np.array(dim_idx, dtype=np.int64),
        offsets,
    )


def mds_intersect_many(
    packed: PackedKeys, qlo: np.ndarray, qhi: np.ndarray
) -> np.ndarray:
    """``(k, m)`` intersection mask of k query boxes vs m packed MDS keys.

    Matches :meth:`MDS.intersects_box` exactly: a key intersects a box
    iff in *every* dimension *some* interval overlaps the box's range,
    and empty keys / empty query boxes intersect nothing.
    """
    k = qlo.shape[0]
    m = packed.empty.shape[0]
    num_dims = qlo.shape[1]
    # per (query, interval) overlap, then OR within each (key, dim)
    # segment, then AND over dimensions
    iv_hit = (packed.ilo[None, :] <= qhi[:, packed.dim_idx]) & (
        qlo[:, packed.dim_idx] <= packed.ihi[None, :]
    )
    seg_hit = np.logical_or.reduceat(iv_hit, packed.offsets[:-1], axis=1)
    hit = seg_hit.reshape(k, m, num_dims).all(axis=2)
    hit &= ~packed.empty[None, :]
    qempty = (qlo > qhi).any(axis=1)
    hit &= ~qempty[:, None]
    return hit

"""Columnar shard frames: Arrow-IPC-style column-buffer serialisation.

Shards cross the (simulated) wire for checkpoint, migrate, restore and
replica seeding.  A *column frame* carries the shard's columns as raw
little-endian buffers behind a self-describing schema header -- the
Arrow IPC idea scaled down to this library's three column types:

========  ======================================================
offset    field
========  ======================================================
0         magic ``b"VOLC"``
4         u16 version (currently 2; version 1 is the magic-less
          legacy :meth:`~repro.olap.records.RecordBatch.to_bytes`
          layout, recognised by the *absence* of the magic)
6         u16 flags (bit 0: body zlib-compressed, bit 1: body
          lz4-compressed; other bits reserved and rejected)
8         u32 header length ``H``
12        u64 raw (uncompressed) body length
20        u64 stored body length
28        header: u16 column count, then per-column records
28+H      padding to the next 8-byte boundary
body      column buffers, each 8-byte aligned within the body
end-4     u32 crc32 over everything before it
========  ======================================================

Per-column header record: ``u8`` name length + UTF-8 name, ``u8``
logical dtype code, ``u8`` stored dtype code, ``u8`` ndim, ``u64``
rows, ``u32`` second dimension, ``i64`` bias, ``u64`` body offset,
``u64`` stored byte count.

int64 columns are *frame-of-reference narrowed*: the column minimum is
stored as ``bias`` and the deltas as uint8/16/32 when their range
permits, which alone cuts coordinate bytes 2-8x before compression.
Decoding widens back losslessly via wrap-around uint64 arithmetic.
float64 and uint64 buffers are stored verbatim (bit-exact, including
NaN payloads).

When the body is uncompressed, decoded unnarrowed columns are
*zero-copy*: read-only numpy views directly into the received blob,
valid because every buffer is 8-byte aligned within the frame.
Compression is optional and "store-if-smaller": lz4 when the optional
``lz4`` package is importable, else stdlib zlib, else none.

Any structural violation -- truncation, bad magic, unknown version or
flags, out-of-bounds buffer, checksum mismatch -- raises
:class:`FrameError` rather than desyncing into garbage.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from .records import RecordBatch

try:  # optional accelerator; absent in the CI/test image
    import lz4.frame as _lz4  # pragma: no cover
except ImportError:  # pragma: no cover
    _lz4 = None

__all__ = [
    "FrameError",
    "MAGIC",
    "VERSION",
    "encode_columns",
    "decode_columns",
    "measure_columns",
    "encode_batch",
    "decode_batch",
    "is_column_frame",
]

MAGIC = b"VOLC"
VERSION = 2

_FLAG_ZLIB = 1
_FLAG_LZ4 = 2
_KNOWN_FLAGS = _FLAG_ZLIB | _FLAG_LZ4

_PREAMBLE = struct.Struct("<4sHHIQQ")  # magic, version, flags, H, raw, stored
_COLHEAD = struct.Struct("<BBBQIqQQ")  # after the name: codes/shape/bias/span
_CRC = struct.Struct("<I")

# logical dtype codes (what the column means) and stored codes (what is
# actually in the buffer; 3-5 only ever appear as narrowed int64)
_DTYPES = {0: np.int64, 1: np.float64, 2: np.uint64}
_STORED = {**_DTYPES, 3: np.uint8, 4: np.uint16, 5: np.uint32}
_CODES = {np.dtype(np.int64): 0, np.dtype(np.float64): 1, np.dtype(np.uint64): 2}

_U64_MASK = (1 << 64) - 1


class FrameError(ValueError):
    """A column frame is truncated, corrupted, or unsupported."""


def is_column_frame(blob: bytes) -> bool:
    """True when ``blob`` starts with the column-frame magic."""
    return blob[:4] == MAGIC


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _narrow(arr: np.ndarray) -> tuple[int, int, np.ndarray]:
    """Frame-of-reference narrowing for int64: (stored_code, bias, buffer)."""
    if arr.size == 0:
        return 0, 0, arr
    lo = int(arr.min())
    rng = int(arr.max()) - lo
    if rng < 1 << 8:
        code = 3
    elif rng < 1 << 16:
        code = 4
    elif rng < 1 << 32:
        code = 5
    else:
        return 0, 0, arr
    # wrap-around uint64 subtraction is exact for any int64 min/max pair
    delta = arr.view(np.uint64) - np.uint64(lo & _U64_MASK)
    return code, lo, delta.astype(_STORED[code])


def _widen(stored: np.ndarray, logical_code: int, bias: int) -> np.ndarray:
    if logical_code != 0:
        return stored
    out = stored.astype(np.uint64) + np.uint64(bias & _U64_MASK)
    return out.view(np.int64)


def encode_columns(
    columns: list[tuple[str, np.ndarray]], *, compress: bool = True
) -> bytes:
    """Encode named columns into one column frame.

    Columns must be 1-D or 2-D arrays of int64, float64 or uint64 with
    unique names.  ``compress=False`` guarantees a byte-stable frame
    (used for golden files); otherwise the smaller of the raw and
    compressed body is stored.
    """
    header = bytearray(struct.pack("<H", len(columns)))
    buffers: list[bytes] = []
    offset = 0
    seen: set[str] = set()
    for name, arr in columns:
        if name in seen:
            raise ValueError(f"duplicate column name {name!r}")
        seen.add(name)
        arr = np.ascontiguousarray(arr)
        if arr.dtype not in _CODES:
            raise ValueError(f"unsupported column dtype {arr.dtype}")
        if arr.ndim not in (1, 2):
            raise ValueError(f"column {name!r} must be 1-D or 2-D")
        logical = _CODES[arr.dtype]
        if logical == 0:
            stored_code, bias, buf_arr = _narrow(arr)
        else:
            stored_code, bias, buf_arr = logical, 0, arr
        buf = buf_arr.tobytes()
        rows = arr.shape[0]
        dim2 = arr.shape[1] if arr.ndim == 2 else 1
        name_b = name.encode("utf-8")
        if len(name_b) > 255:
            raise ValueError(f"column name too long: {name!r}")
        header += struct.pack("<B", len(name_b)) + name_b
        header += _COLHEAD.pack(
            logical, stored_code, arr.ndim, rows, dim2, bias, offset, len(buf)
        )
        buffers.append(buf)
        offset = _align8(offset + len(buf))

    raw = bytearray()
    for buf in buffers:
        raw += buf
        raw += b"\0" * (_align8(len(raw)) - len(raw))
    raw = bytes(raw)

    flags = 0
    body = raw
    if compress and raw:
        if _lz4 is not None:  # pragma: no cover - lz4 absent in CI image
            packed = _lz4.compress(raw)
            if len(packed) < len(raw):
                flags, body = _FLAG_LZ4, packed
        else:
            packed = zlib.compress(raw, 6)
            if len(packed) < len(raw):
                flags, body = _FLAG_ZLIB, packed

    head = _PREAMBLE.pack(MAGIC, VERSION, flags, len(header), len(raw), len(body))
    pad = b"\0" * (_align8(_PREAMBLE.size + len(header)) - _PREAMBLE.size - len(header))
    out = head + bytes(header) + pad + body
    return out + _CRC.pack(zlib.crc32(out))


def measure_columns(columns: list[tuple[str, np.ndarray]]) -> int:
    """Exact ``len(encode_columns(columns, compress=False))`` without
    building the frame.

    This is what message-size accounting charges the transport for
    data-plane payloads: the arithmetic mirrors the encoder's layout
    (narrowing decision, per-buffer 8-byte alignment, header, crc), so
    a frame actually put on a pipe or socket weighs exactly this many
    bytes.
    """
    header = 2
    offset = 0
    for name, arr in columns:
        arr = np.asarray(arr)
        if arr.dtype not in _CODES:
            raise ValueError(f"unsupported column dtype {arr.dtype}")
        if arr.ndim not in (1, 2):
            raise ValueError(f"column {name!r} must be 1-D or 2-D")
        if _CODES[arr.dtype] == 0 and arr.size:
            rng = int(arr.max()) - int(arr.min())
            if rng < 1 << 8:
                itemsize = 1
            elif rng < 1 << 16:
                itemsize = 2
            elif rng < 1 << 32:
                itemsize = 4
            else:
                itemsize = 8
        else:
            itemsize = arr.dtype.itemsize
        header += 1 + len(name.encode("utf-8")) + _COLHEAD.size
        offset = _align8(offset + arr.size * itemsize)
    return _align8(_PREAMBLE.size + header) + offset + _CRC.size


def decode_columns(blob: bytes) -> dict[str, np.ndarray]:
    """Decode a column frame back into ``{name: array}``.

    Raises :class:`FrameError` on truncation, corruption, or any
    unsupported version/flag/dtype.  Unnarrowed columns of an
    uncompressed frame are returned as read-only views into ``blob``.
    """
    if len(blob) < _PREAMBLE.size + _CRC.size:
        raise FrameError("frame truncated: shorter than preamble")
    magic, version, flags, hlen, raw_len, stored_len = _PREAMBLE.unpack_from(blob)
    if magic != MAGIC:
        raise FrameError("bad magic: not a column frame")
    if version != VERSION:
        raise FrameError(f"unsupported frame version {version}")
    if flags & ~_KNOWN_FLAGS:
        raise FrameError(f"unknown frame flags 0x{flags:x}")
    body_off = _align8(_PREAMBLE.size + hlen)
    total = body_off + stored_len + _CRC.size
    if len(blob) != total:
        raise FrameError(
            f"frame truncated: expected {total} bytes, got {len(blob)}"
        )
    (crc,) = _CRC.unpack_from(blob, total - _CRC.size)
    if zlib.crc32(blob[: total - _CRC.size]) != crc:
        raise FrameError("frame corrupted: checksum mismatch")

    header = memoryview(blob)[_PREAMBLE.size : _PREAMBLE.size + hlen]
    body: memoryview | bytes = memoryview(blob)[body_off : body_off + stored_len]
    if flags & _FLAG_LZ4:
        if _lz4 is None:
            raise FrameError("frame is lz4-compressed but lz4 is unavailable")
        body = _lz4.decompress(bytes(body))  # pragma: no cover
    elif flags & _FLAG_ZLIB:
        try:
            body = zlib.decompress(bytes(body))
        except zlib.error as exc:
            raise FrameError(f"frame corrupted: {exc}") from exc
    if len(body) != raw_len:
        raise FrameError(
            f"body length mismatch: expected {raw_len}, got {len(body)}"
        )

    try:
        (ncols,) = struct.unpack_from("<H", header, 0)
    except struct.error as exc:
        raise FrameError("frame corrupted: header truncated") from exc
    pos = 2
    out: dict[str, np.ndarray] = {}
    for _ in range(ncols):
        try:
            (name_len,) = struct.unpack_from("<B", header, pos)
            name = bytes(header[pos + 1 : pos + 1 + name_len]).decode("utf-8")
            if len(name.encode("utf-8")) != name_len:
                raise FrameError("frame corrupted: header truncated")
            (
                logical,
                stored_code,
                ndim,
                rows,
                dim2,
                bias,
                offset,
                nbytes,
            ) = _COLHEAD.unpack_from(header, pos + 1 + name_len)
        except (struct.error, UnicodeDecodeError) as exc:
            raise FrameError("frame corrupted: header truncated") from exc
        pos += 1 + name_len + _COLHEAD.size
        if logical not in _DTYPES or stored_code not in _STORED:
            raise FrameError(f"unknown dtype code {logical}/{stored_code}")
        if ndim not in (1, 2):
            raise FrameError(f"bad column rank {ndim}")
        stored_dt = np.dtype(_STORED[stored_code])
        count = rows * dim2
        if nbytes != count * stored_dt.itemsize:
            raise FrameError(
                f"column {name!r}: buffer is {nbytes} bytes, "
                f"shape needs {count * stored_dt.itemsize}"
            )
        if offset % 8 or offset + nbytes > raw_len:
            raise FrameError(f"column {name!r}: buffer out of bounds")
        stored = np.frombuffer(body, dtype=stored_dt, count=count, offset=offset)
        arr = _widen(stored, logical, bias)
        if arr.dtype != _DTYPES[logical]:
            arr = arr.astype(_DTYPES[logical])
        if ndim == 2:
            arr = arr.reshape(rows, dim2)
        out[name] = arr
    if pos != hlen:
        raise FrameError("frame corrupted: header size mismatch")
    return out


# -- RecordBatch convenience (the shard serialisation entry points) ----------


def encode_batch(batch: RecordBatch, *, compress: bool = True) -> bytes:
    """Serialize a record batch as a column frame."""
    return encode_columns(
        [("coords", batch.coords), ("measures", batch.measures)],
        compress=compress,
    )


def decode_batch(blob: bytes) -> RecordBatch:
    """Decode a shard blob: column frame (v2) or legacy v1 layout.

    Version sniffing is by magic: v1 blobs start with a little-endian
    row count, which cannot collide with ``b"VOLC"`` for any realistic
    shard (it would take ~1.13e9 rows).
    """
    if is_column_frame(blob):
        cols = decode_columns(blob)
        try:
            return RecordBatch(cols["coords"], cols["measures"])
        except KeyError as exc:
            raise FrameError(f"frame is missing column {exc}") from exc
    return RecordBatch.from_bytes(blob)

"""OLAP data model: hierarchies, schemas, keys, queries, records."""

from .hierarchy import (
    Dimension,
    Hierarchy,
    Level,
    bits_for,
    flat_dimension,
    uniform_dimension,
)
from .keys import Box, point_box, union_all
from .mds import MDS
from .query import Query, full_query, query_from_levels
from .records import RecordBatch, concat_batches
from .rollup import (
    CubeCells,
    CubeKey,
    accumulate_cells,
    cube_candidate,
    cube_ranges,
    cube_shape,
    drilldown_path,
    group_boxes,
    pivot,
    rollup,
)
from .rollup_store import Cube, RollupStore
from .schema import Schema

__all__ = [
    "Box",
    "Cube",
    "CubeCells",
    "CubeKey",
    "RollupStore",
    "accumulate_cells",
    "cube_candidate",
    "cube_ranges",
    "cube_shape",
    "Dimension",
    "Hierarchy",
    "Level",
    "MDS",
    "Query",
    "RecordBatch",
    "Schema",
    "bits_for",
    "concat_batches",
    "flat_dimension",
    "full_query",
    "drilldown_path",
    "group_boxes",
    "pivot",
    "point_box",
    "rollup",
    "query_from_levels",
    "uniform_dimension",
    "union_all",
]

"""Spatial keys over hierarchical id spaces: boxes (MBRs).

A :class:`Box` is a per-dimension closed interval ``[lo_i, hi_i]`` in the
leaf id space of each dimension.  Because hierarchy prefixes map to
contiguous ranges (see :mod:`repro.olap.hierarchy`), a box can represent
any "rectangular" hierarchical region, and Minimum Bounding Rectangles of
hierarchical data are exact in this space.

All operations are numpy-vectorised over dimensions.  Volumes are
computed in float64: dimension ranges can reach 2**62, so products are
large but comfortably within float64 range for realistic dimension
counts (<= 64 dims * 62 bits would overflow; we clamp via log-volume
where needed).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Box",
    "PackedKeys",
    "point_box",
    "empty_like",
    "union_all",
    "pack_boxes",
    "boxes_intersect_many",
    "packed_within_many",
    "points_in_boxes",
]


class Box:
    """A closed axis-aligned box over int64 coordinates.

    An *empty* box is represented by ``lo > hi`` in every dimension and is
    the identity for :meth:`expanded`.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: np.ndarray, hi: np.ndarray, *, copy: bool = True):
        lo = np.array(lo, dtype=np.int64, copy=copy)
        hi = np.array(hi, dtype=np.int64, copy=copy)
        if lo.shape != hi.shape or lo.ndim != 1:
            raise ValueError("lo/hi must be 1-d arrays of equal length")
        self.lo = lo
        self.hi = hi

    # -- constructors -------------------------------------------------

    @staticmethod
    def empty(num_dims: int) -> "Box":
        lo = np.full(num_dims, np.iinfo(np.int64).max // 2, dtype=np.int64)
        hi = np.full(num_dims, -1, dtype=np.int64)
        return Box(lo, hi, copy=False)

    @staticmethod
    def from_point(coords: np.ndarray) -> "Box":
        c = np.asarray(coords, dtype=np.int64)
        return Box(c.copy(), c.copy(), copy=False)

    @staticmethod
    def from_points(coords: np.ndarray) -> "Box":
        """Bounding box of an ``(n, d)`` coordinate array (n >= 1)."""
        c = np.asarray(coords, dtype=np.int64)
        if c.ndim != 2 or c.shape[0] == 0:
            raise ValueError("need a non-empty (n, d) array")
        return Box(c.min(axis=0), c.max(axis=0), copy=False)

    # -- predicates ----------------------------------------------------

    @property
    def num_dims(self) -> int:
        return self.lo.shape[0]

    def is_empty(self) -> bool:
        return bool((self.lo > self.hi).any())

    def contains_point(self, coords: np.ndarray) -> bool:
        c = np.asarray(coords)
        return bool(((self.lo <= c) & (c <= self.hi)).all())

    def contains_points(self, coords: np.ndarray) -> np.ndarray:
        """Vectorised membership for an ``(n, d)`` array -> bool mask."""
        c = np.asarray(coords)
        return ((self.lo[None, :] <= c) & (c <= self.hi[None, :])).all(axis=1)

    def contains_box(self, other: "Box") -> bool:
        if other.is_empty():
            return True
        return bool(
            ((self.lo <= other.lo) & (other.hi <= self.hi)).all()
        )

    def intersects(self, other: "Box") -> bool:
        if self.is_empty() or other.is_empty():
            return False
        return bool(
            ((self.lo <= other.hi) & (other.lo <= self.hi)).all()
        )

    # -- measures --------------------------------------------------------

    def side_lengths(self) -> np.ndarray:
        """Per-dimension extent as float64 counts (0 if empty)."""
        return np.maximum(
            self.hi.astype(np.float64) - self.lo.astype(np.float64) + 1.0, 0.0
        )

    def volume(self) -> float:
        """Number of lattice points covered (float64; 0 for empty)."""
        if self.is_empty():
            return 0.0
        return float(np.prod(self.side_lengths()))

    def log_volume(self) -> float:
        """log2 of the volume; ``-inf`` for empty boxes.  Overflow-safe."""
        if self.is_empty():
            return float("-inf")
        return float(np.sum(np.log2(self.side_lengths())))

    def margin(self) -> float:
        """Sum of side lengths (the R*-tree 'margin' metric)."""
        if self.is_empty():
            return 0.0
        return float(np.sum(self.side_lengths()))

    def overlap_volume(self, other: "Box") -> float:
        """Volume of the intersection with ``other`` (0 if disjoint)."""
        if self.is_empty() or other.is_empty():
            return 0.0
        lo = np.maximum(self.lo, other.lo).astype(np.float64)
        hi = np.minimum(self.hi, other.hi).astype(np.float64)
        side = hi - lo + 1.0
        if (side <= 0).any():
            return 0.0
        return float(np.prod(side))

    def log_overlap_volume(self, other: "Box") -> float:
        """log2 of intersection volume; ``-inf`` if disjoint."""
        if self.is_empty() or other.is_empty():
            return float("-inf")
        lo = np.maximum(self.lo, other.lo).astype(np.float64)
        hi = np.minimum(self.hi, other.hi).astype(np.float64)
        side = hi - lo + 1.0
        if (side <= 0).any():
            return float("-inf")
        return float(np.sum(np.log2(side)))

    # -- combination ------------------------------------------------------

    def intersection(self, other: "Box") -> "Box":
        if not self.intersects(other):
            return Box.empty(self.num_dims)
        return Box(
            np.maximum(self.lo, other.lo), np.minimum(self.hi, other.hi), copy=False
        )

    def union(self, other: "Box") -> "Box":
        if self.is_empty():
            return other.copy()
        if other.is_empty():
            return self.copy()
        return Box(
            np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi), copy=False
        )

    def expanded(self, other: "Box") -> "Box":
        """Alias of :meth:`union` (R-tree terminology)."""
        return self.union(other)

    def expand_inplace(self, other: "Box") -> bool:
        """Grow to cover ``other``; return True if anything changed."""
        if other.is_empty():
            return False
        if self.is_empty():
            self.lo[:] = other.lo
            self.hi[:] = other.hi
            return True
        changed = bool((other.lo < self.lo).any() or (other.hi > self.hi).any())
        np.minimum(self.lo, other.lo, out=self.lo)
        np.maximum(self.hi, other.hi, out=self.hi)
        return changed

    def expand_point_inplace(self, coords: np.ndarray) -> bool:
        c = np.asarray(coords, dtype=np.int64)
        if self.is_empty():
            self.lo[:] = c
            self.hi[:] = c
            return True
        changed = bool((c < self.lo).any() or (c > self.hi).any())
        np.minimum(self.lo, c, out=self.lo)
        np.maximum(self.hi, c, out=self.hi)
        return changed

    def expand_points_inplace(self, coords: np.ndarray) -> bool:
        """Grow to cover every row of an ``(n, d)`` array; True if changed."""
        c = np.asarray(coords, dtype=np.int64)
        if c.shape[0] == 0:
            return False
        lo = c.min(axis=0)
        hi = c.max(axis=0)
        if self.is_empty():
            self.lo[:] = lo
            self.hi[:] = hi
            return True
        changed = bool((lo < self.lo).any() or (hi > self.hi).any())
        np.minimum(self.lo, lo, out=self.lo)
        np.maximum(self.hi, hi, out=self.hi)
        return changed

    def enlargement(self, other: "Box") -> float:
        """Volume increase needed to cover ``other`` (R-tree metric)."""
        return self.union(other).volume() - self.volume()

    def center(self) -> np.ndarray:
        return (self.lo.astype(np.float64) + self.hi.astype(np.float64)) / 2.0

    # -- misc -------------------------------------------------------------

    def copy(self) -> "Box":
        return Box(self.lo, self.hi, copy=True)

    def to_tuple(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        return tuple(int(x) for x in self.lo), tuple(int(x) for x in self.hi)

    @staticmethod
    def from_tuple(t: tuple[Sequence[int], Sequence[int]]) -> "Box":
        return Box(np.array(t[0], dtype=np.int64), np.array(t[1], dtype=np.int64))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        if self.is_empty() and other.is_empty():
            return True
        return bool(
            np.array_equal(self.lo, other.lo) and np.array_equal(self.hi, other.hi)
        )

    def __hash__(self) -> int:
        return hash(self.to_tuple())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_empty():
            return f"Box.empty({self.num_dims})"
        pairs = ", ".join(f"[{l},{h}]" for l, h in zip(self.lo, self.hi))
        return f"Box({pairs})"


class PackedKeys:
    """Struct-of-arrays snapshot of ``m`` node keys for broadcast pruning.

    ``lo``/``hi`` are the ``(m, d)`` MBR summaries of each key and
    ``empty`` flags keys with no content; these three drive the shared
    *within* test (a key lies inside a query box iff its MBR does).
    MDS packs additionally carry the flattened per-dimension interval
    unions: ``ilo``/``ihi`` are the ``(L,)`` interval bounds across all
    keys and dimensions, ``dim_idx`` maps each interval to its
    dimension, and ``offsets`` (length ``m * d + 1``) delimits the
    ``(key, dim)`` segment boundaries for ``np.logical_or.reduceat``.
    """

    __slots__ = ("lo", "hi", "empty", "ilo", "ihi", "dim_idx", "offsets")

    def __init__(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        empty: np.ndarray,
        ilo: np.ndarray | None = None,
        ihi: np.ndarray | None = None,
        dim_idx: np.ndarray | None = None,
        offsets: np.ndarray | None = None,
    ):
        self.lo = lo
        self.hi = hi
        self.empty = empty
        self.ilo = ilo
        self.ihi = ihi
        self.dim_idx = dim_idx
        self.offsets = offsets

    @property
    def num_keys(self) -> int:
        return self.lo.shape[0]

    @property
    def nbytes(self) -> int:
        """Buffer bytes of the snapshot (resident-memory accounting)."""
        return sum(
            a.nbytes
            for a in (
                self.lo,
                self.hi,
                self.empty,
                self.ilo,
                self.ihi,
                self.dim_idx,
                self.offsets,
            )
            if a is not None
        )


def pack_boxes(keys: Sequence[Box], num_dims: int) -> PackedKeys:
    """Pack ``m`` Box keys into ``(m, d)`` lo/hi arrays plus empty flags."""
    m = len(keys)
    lo = np.empty((m, num_dims), dtype=np.int64)
    hi = np.empty((m, num_dims), dtype=np.int64)
    for i, k in enumerate(keys):
        lo[i] = k.lo
        hi[i] = k.hi
    empty = (lo > hi).any(axis=1)
    return PackedKeys(lo, hi, empty)


def boxes_intersect_many(
    packed: PackedKeys, qlo: np.ndarray, qhi: np.ndarray
) -> np.ndarray:
    """``(k, m)`` intersection mask of k query boxes vs m packed MBRs.

    Matches :meth:`Box.intersects` exactly: empty keys and empty query
    boxes intersect nothing.
    """
    hit = (
        (packed.lo[None, :, :] <= qhi[:, None, :])
        & (qlo[:, None, :] <= packed.hi[None, :, :])
    ).all(axis=2)
    hit &= ~packed.empty[None, :]
    qempty = (qlo > qhi).any(axis=1)
    hit &= ~qempty[:, None]
    return hit


def packed_within_many(
    packed: PackedKeys, qlo: np.ndarray, qhi: np.ndarray
) -> np.ndarray:
    """``(k, m)`` mask: key i entirely inside query box j.

    Works off the MBR summary, so it is exact for both key kinds (an
    interval union lies inside a box iff its bounding box does).  Empty
    keys are never "within" (mirrors the scalar policies, which gate on
    ``not key.is_empty()``); an empty query box can never contain a
    non-empty key, so no separate query mask is needed.
    """
    within = (
        (qlo[:, None, :] <= packed.lo[None, :, :])
        & (packed.hi[None, :, :] <= qhi[:, None, :])
    ).all(axis=2)
    within &= ~packed.empty[None, :]
    return within


def points_in_boxes(
    qlo: np.ndarray, qhi: np.ndarray, coords: np.ndarray
) -> np.ndarray:
    """``(k, n)`` membership of n points in k boxes, one fused broadcast.

    Row j equals ``Box(qlo[j], qhi[j]).contains_points(coords)``.
    """
    return (
        (qlo[:, None, :] <= coords[None, :, :])
        & (coords[None, :, :] <= qhi[:, None, :])
    ).all(axis=2)


def point_box(coords: Iterable[int]) -> Box:
    """Degenerate box covering a single point."""
    return Box.from_point(np.fromiter(coords, dtype=np.int64))


def empty_like(box: Box) -> Box:
    return Box.empty(box.num_dims)


def union_all(boxes: Iterable[Box], num_dims: int | None = None) -> Box:
    """Union of an iterable of boxes (empty box if the iterable is empty)."""
    it = iter(boxes)
    try:
        first = next(it)
    except StopIteration:
        if num_dims is None:
            raise ValueError("cannot union zero boxes without num_dims")
        return Box.empty(num_dims)
    acc = first.copy()
    for b in it:
        acc.expand_inplace(b)
    return acc

"""Roll-up primitives: grouped aggregates and materialized cube cells.

The paper's system answers single aggregate-range queries; real OLAP
sessions ask the grouped form ("sales *by month*", "revenue by region x
category").  Two families of helpers live here:

* **query-side** -- :func:`group_boxes` / :func:`rollup` / :func:`pivot`
  / :func:`drilldown_path` express a group-by as one range query per
  group member, which the cached per-node aggregates of the PDC-tree
  family answer cheaply; each group is a hierarchy-aligned box, exactly
  the shape the index optimises for;
* **cube-side** -- :class:`CubeKey` names a materialized rollup cube by
  its (dimension-set, level-tuple); :class:`CubeCells` is one dense slab
  of per-cell distributive aggregates, maintained incrementally by
  :func:`accumulate_cells` and answered by slicing.  The distributed
  rollup tier (``repro.olap.rollup_store`` / ``repro.cluster.router``)
  keeps one slab per (cube, shard) and merges slices across shards.

A box is *answerable* by a cube when every cube dimension's interval is
aligned to that dimension's level grid and every other dimension is
unconstrained -- :func:`cube_ranges` performs that check and returns the
per-axis cell ranges to slice.

Works against any :class:`~repro.core.base.ShardStore` (single node) --
for the distributed system, issue the same per-group queries through a
client session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

import numpy as np

from ..core.aggregates import Aggregate
from .keys import Box
from .schema import Schema

if TYPE_CHECKING:  # pragma: no cover
    from ..core.base import ShardStore

__all__ = [
    "rollup",
    "pivot",
    "drilldown_path",
    "group_boxes",
    "CubeKey",
    "CubeCells",
    "cube_shape",
    "cell_indices",
    "accumulate_cells",
    "cube_ranges",
    "cube_candidate",
]


def group_boxes(
    schema: Schema,
    dim_name: str,
    depth: int,
    within: Optional[Box] = None,
) -> Iterator[tuple[tuple[int, ...], Box]]:
    """Yield ``(group_path, box)`` for every value at ``depth`` of a
    dimension, optionally restricted to the region ``within``.

    Only groups whose box intersects ``within`` are yielded, and the
    yielded boxes are clipped to it.
    """
    d = schema.index_of(dim_name)
    h = schema.dimension(dim_name).hierarchy
    if not 1 <= depth <= h.num_levels:
        raise ValueError(f"depth {depth} out of range for {dim_name!r}")
    base_lo = np.zeros(schema.num_dims, dtype=np.int64)
    base_hi = schema.leaf_limits.copy()
    if within is not None:
        base_lo = within.lo.copy()
        base_hi = within.hi.copy()

    def paths(prefix: tuple[int, ...], level: int):
        if level == depth:
            yield prefix
            return
        for v in range(h.levels[level].fanout):
            yield from paths(prefix + (v,), level + 1)

    for path in paths((), 0):
        prefix = h.encode_prefix(path)
        lo_d, hi_d = h.prefix_range(depth, prefix)
        lo = base_lo.copy()
        hi = base_hi.copy()
        lo[d] = max(lo[d], lo_d)
        hi[d] = min(hi[d], hi_d)
        if lo[d] > hi[d]:
            continue
        yield path, Box(lo, hi, copy=False)


def rollup(
    store: "ShardStore",
    dim_name: str,
    depth: int,
    within: Optional[Box] = None,
    keep_empty: bool = False,
) -> dict[tuple[int, ...], "Aggregate"]:
    """Aggregate grouped by the values of one dimension at ``depth``.

    >>> by_year = rollup(tree, "date", 1)            # doctest: +SKIP
    >>> by_month = rollup(tree, "date", 2, within=q.box)  # doctest: +SKIP
    """
    out: dict[tuple[int, ...], "Aggregate"] = {}
    for path, box in group_boxes(store.schema, dim_name, depth, within):
        agg, _ = store.query(box)
        if agg.count or keep_empty:
            out[path] = agg
    return out


def pivot(
    store: "ShardStore",
    row_dim: str,
    row_depth: int,
    col_dim: str,
    col_depth: int,
    within: Optional[Box] = None,
) -> dict[tuple[tuple[int, ...], tuple[int, ...]], "Aggregate"]:
    """Two-dimensional grouped aggregate (cross-tab).

    Returns ``{(row_path, col_path): aggregate}`` for non-empty cells.
    """
    if row_dim == col_dim:
        raise ValueError("pivot requires two distinct dimensions")
    out: dict[tuple[tuple[int, ...], tuple[int, ...]], "Aggregate"] = {}
    for row_path, row_box in group_boxes(
        store.schema, row_dim, row_depth, within
    ):
        for col_path, cell_box in group_boxes(
            store.schema, col_dim, col_depth, row_box
        ):
            agg, _ = store.query(cell_box)
            if agg.count:
                out[(row_path, col_path)] = agg
    return out


def drilldown_path(
    store: "ShardStore",
    dim_name: str,
    path: tuple[int, ...],
    within: Optional[Box] = None,
) -> dict[tuple[int, ...], "Aggregate"]:
    """One drill-down step: aggregates of the children of ``path``.

    With an empty path, returns the top-level roll-up.
    """
    h = store.schema.dimension(dim_name).hierarchy
    depth = len(path) + 1
    if depth > h.num_levels:
        raise ValueError(f"cannot drill below the leaf level of {dim_name!r}")
    full = rollup(store, dim_name, depth, within)
    return {p: a for p, a in full.items() if p[: len(path)] == tuple(path)}


# -- materialized cube cells ------------------------------------------------


@dataclass(frozen=True)
class CubeKey:
    """Identity of a materialized rollup cube: which dimensions it
    groups by, and at which hierarchy depth each.

    ``dims`` are dimension names in schema order and ``depths`` the
    matching 1-based depths; the empty key ``CubeKey((), ())`` is the
    one-cell global cube.  The key is hashable and wire-able (a plain
    tuple of pairs), so it travels in sync messages unchanged.
    """

    dims: tuple[str, ...]
    depths: tuple[int, ...]

    @staticmethod
    def make(schema: Schema, items: Sequence[tuple[str, int]]) -> "CubeKey":
        """Build a key from ``(dim_name, depth)`` pairs in any order."""
        ordered = sorted(items, key=lambda it: schema.index_of(it[0]))
        for name, depth in ordered:
            h = schema.dimension(name).hierarchy
            if not 1 <= depth <= h.num_levels:
                raise ValueError(f"depth {depth} out of range for {name!r}")
        return CubeKey(
            tuple(n for n, _ in ordered), tuple(int(d) for _, d in ordered)
        )

    def to_wire(self) -> tuple:
        return tuple(zip(self.dims, self.depths))

    @staticmethod
    def from_wire(wire: tuple) -> "CubeKey":
        return CubeKey(
            tuple(n for n, _ in wire), tuple(int(d) for _, d in wire)
        )

    def level_items(self) -> tuple[tuple[str, int], ...]:
        return tuple(zip(self.dims, self.depths))


def cube_shape(schema: Schema, key: CubeKey) -> tuple[int, ...]:
    """Cells per axis: one axis per cube dimension, sized by the number
    of *encoded* prefixes at that depth (``2**prefix_bits``; slots for
    ids beyond a level's fanout exist but stay empty)."""
    shape = []
    for name, depth in key.level_items():
        h = schema.dimension(name).hierarchy
        shape.append(1 << (h.total_bits - h.suffix_bits(depth)))
    return tuple(shape)


def cell_indices(
    schema: Schema, key: CubeKey, coords: np.ndarray
) -> np.ndarray:
    """Flat cell index of every row (C-order over :func:`cube_shape`)."""
    n = coords.shape[0]
    idx = np.zeros(n, dtype=np.int64)
    for name, depth in key.level_items():
        d = schema.index_of(name)
        h = schema.dimension(name).hierarchy
        width = 1 << (h.total_bits - h.suffix_bits(depth))
        idx = idx * width + (coords[:, d] >> h.suffix_bits(depth))
    return idx


class CubeCells:
    """One dense slab of per-cell distributive aggregates.

    Four flat arrays (count, sum, min, max) over the flattened cube
    shape; empty cells hold the identity (``0 / 0.0 / +inf / -inf``) so
    slicing needs no occupancy mask.  The same slab type is built by
    workers (seeding a cube from a shard scan) and updated by servers
    (folding in acknowledged insert-stream batches), which is what keeps
    the two sides bit-identical.
    """

    __slots__ = ("num_cells", "counts", "sums", "mins", "maxs")

    def __init__(self, num_cells: int):
        self.num_cells = int(num_cells)
        self.counts = np.zeros(self.num_cells, dtype=np.int64)
        self.sums = np.zeros(self.num_cells, dtype=np.float64)
        self.mins = np.full(self.num_cells, np.inf, dtype=np.float64)
        self.maxs = np.full(self.num_cells, -np.inf, dtype=np.float64)

    def apply(self, idx: np.ndarray, measures: np.ndarray) -> None:
        """Fold rows (by precomputed flat cell index) into the slab."""
        if idx.shape[0] == 0:
            return
        self.counts += np.bincount(idx, minlength=self.num_cells)
        self.sums += np.bincount(
            idx, weights=measures, minlength=self.num_cells
        )
        np.minimum.at(self.mins, idx, measures)
        np.maximum.at(self.maxs, idx, measures)

    def merge(self, other: "CubeCells") -> None:
        self.counts += other.counts
        self.sums += other.sums
        np.minimum(self.mins, other.mins, out=self.mins)
        np.maximum(self.maxs, other.maxs, out=self.maxs)

    def select(
        self, shape: tuple[int, ...], ranges: Sequence[tuple[int, int]]
    ) -> Aggregate:
        """Aggregate of the cells in the (inclusive) per-axis ranges."""
        slicer = tuple(slice(lo, hi + 1) for lo, hi in ranges)
        counts = self.counts.reshape(shape)[slicer]
        count = int(counts.sum())
        if count == 0:
            return Aggregate.empty()
        return Aggregate(
            count,
            float(self.sums.reshape(shape)[slicer].sum()),
            float(self.mins.reshape(shape)[slicer].min()),
            float(self.maxs.reshape(shape)[slicer].max()),
        )

    def resident_bytes(self) -> int:
        """Heap footprint of the slab (same contract as the stores')."""
        return (
            self.counts.nbytes
            + self.sums.nbytes
            + self.mins.nbytes
            + self.maxs.nbytes
        )


def accumulate_cells(
    schema: Schema,
    key: CubeKey,
    coords: np.ndarray,
    measures: np.ndarray,
    into: Optional[CubeCells] = None,
) -> CubeCells:
    """Fold ``(coords, measures)`` rows into a slab for ``key``
    (creating it when ``into`` is ``None``)."""
    shape = cube_shape(schema, key)
    num_cells = int(np.prod(shape)) if shape else 1
    cells = into if into is not None else CubeCells(num_cells)
    cells.apply(cell_indices(schema, key, coords), measures)
    return cells


def cube_ranges(
    schema: Schema, key: CubeKey, box: Box
) -> Optional[list[tuple[int, int]]]:
    """Per-axis cell ranges a cube must slice to answer ``box``, or
    ``None`` when the cube cannot answer it exactly.

    Answerable means: every cube dimension's interval is aligned to the
    cube's level grid (``lo`` and ``hi + 1`` both multiples of the
    cells' leaf width), and every non-cube dimension is unconstrained
    (full leaf range, which is trivially grid-aligned at any depth).
    """
    in_key = set(key.dims)
    for d in range(schema.num_dims):
        name = schema.dimensions[d].name
        if name in in_key:
            continue
        if int(box.lo[d]) != 0 or int(box.hi[d]) != int(
            schema.leaf_limits[d]
        ):
            return None
    ranges: list[tuple[int, int]] = []
    for name, depth in key.level_items():
        d = schema.index_of(name)
        h = schema.dimension(name).hierarchy
        s = h.suffix_bits(depth)
        width = 1 << s
        lo, hi = int(box.lo[d]), int(box.hi[d])
        if lo % width != 0 or (hi + 1) % width != 0:
            return None
        ranges.append((lo >> s, hi >> s))
    return ranges


def cube_candidate(schema: Schema, box: Box) -> CubeKey:
    """The cheapest cube able to answer ``box``: for every constrained
    dimension, the coarsest hierarchy depth whose grid the interval is
    aligned to (the leaf level always is); unconstrained dimensions stay
    out of the key.  A fully unconstrained box maps to the one-cell
    global cube."""
    items: list[tuple[str, int]] = []
    for d in range(schema.num_dims):
        lo, hi = int(box.lo[d]), int(box.hi[d])
        if lo == 0 and hi == int(schema.leaf_limits[d]):
            continue
        h = schema.dimensions[d].hierarchy
        for depth in range(1, h.num_levels + 1):
            width = 1 << h.suffix_bits(depth)
            if lo % width == 0 and (hi + 1) % width == 0:
                items.append((schema.dimensions[d].name, depth))
                break
    return CubeKey.make(schema, items)

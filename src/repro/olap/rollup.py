"""Roll-up and pivot helpers: grouped aggregates over hierarchy levels.

The paper's system answers single aggregate-range queries; real OLAP
sessions ask the grouped form ("sales *by month*", "revenue by region x
category").  These helpers express a group-by as one range query per
group member, which the cached per-node aggregates of the PDC-tree
family answer cheaply -- each group is a hierarchy-aligned box, exactly
the shape the index optimises for.

Works against any :class:`~repro.core.base.ShardStore` (single node) --
for the distributed system, issue the same per-group queries through a
client session.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from .keys import Box
from .schema import Schema

if TYPE_CHECKING:  # pragma: no cover
    from ..core.aggregates import Aggregate
    from ..core.base import ShardStore

__all__ = ["rollup", "pivot", "drilldown_path", "group_boxes"]


def group_boxes(
    schema: Schema,
    dim_name: str,
    depth: int,
    within: Optional[Box] = None,
) -> Iterator[tuple[tuple[int, ...], Box]]:
    """Yield ``(group_path, box)`` for every value at ``depth`` of a
    dimension, optionally restricted to the region ``within``.

    Only groups whose box intersects ``within`` are yielded, and the
    yielded boxes are clipped to it.
    """
    d = schema.index_of(dim_name)
    h = schema.dimension(dim_name).hierarchy
    if not 1 <= depth <= h.num_levels:
        raise ValueError(f"depth {depth} out of range for {dim_name!r}")
    base_lo = np.zeros(schema.num_dims, dtype=np.int64)
    base_hi = schema.leaf_limits.copy()
    if within is not None:
        base_lo = within.lo.copy()
        base_hi = within.hi.copy()

    def paths(prefix: tuple[int, ...], level: int):
        if level == depth:
            yield prefix
            return
        for v in range(h.levels[level].fanout):
            yield from paths(prefix + (v,), level + 1)

    for path in paths((), 0):
        prefix = h.encode_prefix(path)
        lo_d, hi_d = h.prefix_range(depth, prefix)
        lo = base_lo.copy()
        hi = base_hi.copy()
        lo[d] = max(lo[d], lo_d)
        hi[d] = min(hi[d], hi_d)
        if lo[d] > hi[d]:
            continue
        yield path, Box(lo, hi, copy=False)


def rollup(
    store: "ShardStore",
    dim_name: str,
    depth: int,
    within: Optional[Box] = None,
    keep_empty: bool = False,
) -> dict[tuple[int, ...], "Aggregate"]:
    """Aggregate grouped by the values of one dimension at ``depth``.

    >>> by_year = rollup(tree, "date", 1)            # doctest: +SKIP
    >>> by_month = rollup(tree, "date", 2, within=q.box)  # doctest: +SKIP
    """
    out: dict[tuple[int, ...], "Aggregate"] = {}
    for path, box in group_boxes(store.schema, dim_name, depth, within):
        agg, _ = store.query(box)
        if agg.count or keep_empty:
            out[path] = agg
    return out


def pivot(
    store: "ShardStore",
    row_dim: str,
    row_depth: int,
    col_dim: str,
    col_depth: int,
    within: Optional[Box] = None,
) -> dict[tuple[tuple[int, ...], tuple[int, ...]], "Aggregate"]:
    """Two-dimensional grouped aggregate (cross-tab).

    Returns ``{(row_path, col_path): aggregate}`` for non-empty cells.
    """
    if row_dim == col_dim:
        raise ValueError("pivot requires two distinct dimensions")
    out: dict[tuple[tuple[int, ...], tuple[int, ...]], "Aggregate"] = {}
    for row_path, row_box in group_boxes(
        store.schema, row_dim, row_depth, within
    ):
        for col_path, cell_box in group_boxes(
            store.schema, col_dim, col_depth, row_box
        ):
            agg, _ = store.query(cell_box)
            if agg.count:
                out[(row_path, col_path)] = agg
    return out


def drilldown_path(
    store: "ShardStore",
    dim_name: str,
    path: tuple[int, ...],
    within: Optional[Box] = None,
) -> dict[tuple[int, ...], "Aggregate"]:
    """One drill-down step: aggregates of the children of ``path``.

    With an empty path, returns the top-level roll-up.
    """
    h = store.schema.dimension(dim_name).hierarchy
    depth = len(path) + 1
    if depth > h.num_levels:
        raise ValueError(f"cannot drill below the leaf level of {dim_name!r}")
    full = rollup(store, dim_name, depth, within)
    return {p: a for p, a in full.items() if p[: len(path)] == tuple(path)}

"""Probabilistically Bounded Staleness analysis (paper Section IV-F, Fig 10).

The paper estimates "the number of possibly missed inserts in an
aggregate query result relative to elapsed time" with a simulation
driven by the insert/query latency distributions observed on the real
system.  We reproduce that simulation.

Why inserts are missed at all
-----------------------------
Workers always serve current data, so a query only misses an insert in
two ways:

1. **In-flight race** (dominates below ~0.25 s): the insert, issued at
   ``t1``, has not finished executing on its worker when the query
   reads that shard.  By Little's law the expected number of in-flight
   inserts is ``rate x mean_latency`` -- with the paper's ~50k
   inserts/s this is the ~80 missed inserts their Fig 10a shows at
   elapsed time 0, and it decays to zero once the elapsed time exceeds
   the insert latency tail (~0.25 s).
2. **Routing staleness** (rare tail, bounded by the sync period): the
   insert *expanded* a shard's bounding box, a query on a different
   server probes exactly the expanded region, and that server's local
   image has not yet received the expansion through Zookeeper.  Only
   box-expanding inserts can be missed this way, most queries reach the
   right shard through its old box anyway, and the window closes at
   ``sync_period + notify`` -- which is why the paper observed full
   consistency "always under 3 seconds".

A missed insert only affects the query if the item lies in the query
region, hence the multiplication by coverage (Fig 10b's per-coverage
curves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["LatencyDistribution", "PBSSimulator", "PBSResult"]


class LatencyDistribution:
    """Sampler over an empirical or parametric latency distribution."""

    def __init__(
        self,
        samples: Optional[Sequence[float]] = None,
        *,
        lognormal_mean: float = 1.6e-3,
        lognormal_sigma: float = 1.2,
        cap: float = 0.25,
    ):
        """Use measured ``samples`` when given (e.g. the latencies a
        cluster run recorded), else a lognormal with the given mean,
        capped at ``cap`` (queueing latencies have finite support)."""
        if samples is not None:
            arr = np.asarray(list(samples), dtype=np.float64)
            if arr.size == 0 or (arr < 0).any():
                raise ValueError("need non-empty, non-negative samples")
            self._samples = arr
            self._mu = None
        else:
            self._samples = None
            # parameterise so that E[X] = lognormal_mean
            self._sigma = lognormal_sigma
            self._mu = float(np.log(lognormal_mean) - lognormal_sigma**2 / 2)
            self._cap = cap

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if self._samples is not None:
            return rng.choice(self._samples, size=n, replace=True)
        return np.minimum(
            rng.lognormal(self._mu, self._sigma, size=n), self._cap
        )

    def mean(self, rng: Optional[np.random.Generator] = None) -> float:
        if self._samples is not None:
            return float(self._samples.mean())
        rng = rng if rng is not None else np.random.default_rng(0)
        return float(self.sample(200_000, rng).mean())


@dataclass
class PBSResult:
    """Curves of the Fig 10 experiments."""

    elapsed: np.ndarray
    mean_missed: np.ndarray
    coverage: float

    def time_to_fresh(self, threshold: float = 0.5) -> float:
        """Smallest elapsed time with mean missed inserts <= threshold."""
        below = np.where(self.mean_missed <= threshold)[0]
        return float(self.elapsed[below[0]]) if below.size else float("inf")


class PBSSimulator:
    """Monte-Carlo estimator of missed inserts vs elapsed time."""

    def __init__(
        self,
        insert_rate: float,
        insert_latency: Optional[LatencyDistribution] = None,
        sync_period: float = 3.0,
        notify_latency: float = 1e-3,
        expansion_miss_prob: float = 1e-6,
        seed: int = 0,
    ):
        """``expansion_miss_prob`` is the probability that an insert both
        expands its shard's bounding box *and* a cross-server query
        probing the expansion region would be routed past the shard --
        the rare tail bounded by the sync period."""
        if insert_rate <= 0:
            raise ValueError("insert_rate must be positive")
        self.insert_rate = insert_rate
        self.latency = (
            insert_latency if insert_latency is not None else LatencyDistribution()
        )
        self.sync_period = sync_period
        self.notify_latency = notify_latency
        self.expansion_miss_prob = expansion_miss_prob
        self.rng = np.random.default_rng(seed)

    # -- core sampling ------------------------------------------------------

    def _sample_missed(self, elapsed: float, coverage: float, trials: int) -> np.ndarray:
        """#missed inserts for a query at ``t1 + elapsed``, per trial.

        We simulate the window of inserts issued before the reference
        time ``t1`` that could still be invisible at ``t2 = t1 + elapsed``:
        an insert issued ``a`` seconds before ``t1`` is missed by the
        in-flight race iff its latency exceeds ``a + elapsed``, or (with
        tiny probability) by routing staleness iff its sync visibility
        point lies beyond ``t2``.
        """
        horizon = max(self.sync_period + self.notify_latency, 0.5)
        out = np.zeros(trials, dtype=np.int64)

        # -- in-flight race: only inserts younger than the latency support
        # can still be in flight, so restrict the candidate window to
        # ages in [0, lat_max - elapsed) instead of the whole horizon.
        lat_max = float(self.latency.sample(4096, self.rng).max()) * 1.05
        race_window = max(0.0, lat_max - elapsed)
        if race_window > 0:
            n_race = self.rng.poisson(
                self.insert_rate * race_window, size=trials
            )
            total = int(n_race.sum())
            if total:
                ages = self.rng.uniform(0.0, race_window, size=total)
                lat = self.latency.sample(total, self.rng)
                missed = lat > (ages + elapsed)
                if coverage < 1.0:
                    missed &= self.rng.random(total) < coverage
                bounds = np.concatenate(([0], np.cumsum(n_race)))
                out += np.add.reduceat(
                    np.concatenate((missed.astype(np.int64), [0])),
                    bounds[:-1],
                ) * (n_race > 0)

        # -- routing-staleness tail: box-expanding inserts are a thinned
        # Poisson stream (rate x expansion_miss_prob over the horizon),
        # visible only after their next sync tick plus notification.
        if self.expansion_miss_prob > 0:
            n_exp = self.rng.poisson(
                self.insert_rate * self.expansion_miss_prob * horizon,
                size=trials,
            )
            total = int(n_exp.sum())
            if total:
                ages = self.rng.uniform(0.0, horizon, size=total)
                lat = self.latency.sample(total, self.rng)
                sync_in = self.rng.uniform(0.0, self.sync_period, size=total)
                visible = lat + sync_in + self.notify_latency
                missed = visible > (ages + elapsed)
                if coverage < 1.0:
                    missed &= self.rng.random(total) < coverage
                bounds = np.concatenate(([0], np.cumsum(n_exp)))
                out += np.add.reduceat(
                    np.concatenate((missed.astype(np.int64), [0])),
                    bounds[:-1],
                ) * (n_exp > 0)
        return out

    # -- Fig 10a ----------------------------------------------------------

    def missed_curve(
        self,
        elapsed_times: Sequence[float],
        coverage: float = 1.0,
        trials: int = 200,
    ) -> PBSResult:
        """Average missed inserts for each elapsed time (Fig 10a)."""
        elapsed_times = np.asarray(list(elapsed_times), dtype=np.float64)
        means = np.array(
            [
                self._sample_missed(e, coverage, trials).mean()
                for e in elapsed_times
            ]
        )
        return PBSResult(elapsed_times, means, coverage)

    # -- Fig 10b -------------------------------------------------------------

    def missed_pmf(
        self,
        elapsed: float,
        coverage: float = 1.0,
        k_max: int = 4,
        trials: int = 2000,
    ) -> np.ndarray:
        """P(missed == k) for k in 1..k_max (Fig 10b)."""
        counts = self._sample_missed(elapsed, coverage, trials)
        return np.array(
            [float(np.mean(counts == k)) for k in range(1, k_max + 1)]
        )

    def prob_inconsistent(
        self, elapsed: float, coverage: float = 1.0, trials: int = 2000
    ) -> float:
        """P(at least one missed insert) at the given elapsed time."""
        return float(np.mean(self._sample_missed(elapsed, coverage, trials) > 0))

"""Query freshness / Probabilistically Bounded Staleness (paper IV-F)."""

from .pbs import LatencyDistribution, PBSResult, PBSSimulator

__all__ = ["LatencyDistribution", "PBSResult", "PBSSimulator"]

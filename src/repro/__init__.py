"""VelocityOLAP (VOLAP) reproduction.

A scalable distributed system for real-time OLAP with high velocity
data (Dehne, Robillard, Rau-Chaplin, Burke -- IEEE CLUSTER 2016),
reproduced as a pure-Python library: the Hilbert PDC tree and its
baselines, the distributed server/worker/Zookeeper/manager architecture
(on a discrete-event substrate; see DESIGN.md), TPC-DS-style workloads,
and the PBS freshness analysis.

Quickstart
----------
>>> from repro import tpcds_schema, TPCDSGenerator, HilbertPDCTree, full_query
>>> schema = tpcds_schema()
>>> batch = TPCDSGenerator(schema, seed=0).batch(10_000)
>>> tree = HilbertPDCTree.from_batch(schema, batch)
>>> agg, _ = tree.query(full_query(schema).box)
>>> agg.count
10000
"""

from .core import (
    Aggregate,
    ArrayStore,
    HilbertPDCTree,
    HilbertRTree,
    OpStats,
    PDCTree,
    RTree,
    TreeConfig,
)
from .cluster import (
    BalancerPolicy,
    ClusterConfig,
    CostDrivenPolicy,
    CostModel,
    LatencyModel,
    MemoryPressurePolicy,
    QueryResult,
    RollupConfig,
    ThresholdPolicy,
    VOLAPCluster,
)
from .freshness import LatencyDistribution, PBSSimulator
from .hilbert import CompactHilbertCurve, HilbertCurve, HilbertKeyMapper
from .obs import MetricsRegistry, Observability, TreeProfiler
from .olap import (
    Box,
    Dimension,
    Hierarchy,
    Level,
    MDS,
    Query,
    RecordBatch,
    Schema,
    full_query,
    query_from_levels,
)
from .olap.rollup import CubeKey, drilldown_path, pivot, rollup
from .workloads import (
    QueryGenerator,
    StreamGenerator,
    TPCDSGenerator,
    synthetic_schema,
    tpcds_schema,
)

__version__ = "1.0.0"

__all__ = [
    "Aggregate",
    "ArrayStore",
    "BalancerPolicy",
    "Box",
    "ClusterConfig",
    "CompactHilbertCurve",
    "CostDrivenPolicy",
    "CostModel",
    "Dimension",
    "Hierarchy",
    "HilbertCurve",
    "HilbertKeyMapper",
    "HilbertPDCTree",
    "HilbertRTree",
    "LatencyDistribution",
    "LatencyModel",
    "Level",
    "MDS",
    "MemoryPressurePolicy",
    "MetricsRegistry",
    "Observability",
    "OpStats",
    "PBSSimulator",
    "PDCTree",
    "CubeKey",
    "Query",
    "QueryGenerator",
    "QueryResult",
    "RollupConfig",
    "RTree",
    "RecordBatch",
    "Schema",
    "StreamGenerator",
    "TPCDSGenerator",
    "ThresholdPolicy",
    "TreeConfig",
    "TreeProfiler",
    "VOLAPCluster",
    "__version__",
    "drilldown_path",
    "full_query",
    "pivot",
    "rollup",
    "query_from_levels",
    "synthetic_schema",
    "tpcds_schema",
]

"""Tree profiler: per-operation index work, at shard granularity.

The trees already measure their own work (``OpStats``: nodes visited,
directory-aggregate cache hits, leaves scanned, splits, repacks, key
expansions) -- this hook collects those counters per operation instead
of discarding them.  Attach a profiler to any tree by setting its
``profiler`` attribute (``tree.profiler = obs.profiler``); the insert
engine and query path call :meth:`TreeProfiler.record` once per
operation.  The guard is a single ``is not None`` check at the call
site (the same zero-overhead-when-absent pattern as ``FaultPlan`` on
the transport), so unprofiled trees pay nothing.

Inside a cluster the workers feed the same records from the stats they
already hold, so ``VOLAPCluster.observe()`` profiles every shard
without touching each tree instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["TreeOpProfile", "TreeProfiler"]


@dataclass(frozen=True)
class TreeOpProfile:
    """Work counters of one profiled tree operation."""

    kind: str  # "insert" | "insert_batch" | "query" | "query_batch"
    rows: int  # records inserted / 1 for queries
    nodes_visited: int
    leaves_visited: int
    items_scanned: int
    agg_hits: int
    splits: int
    repacks: int
    key_expansions: int


class TreeProfiler:
    """Accumulates :class:`TreeOpProfile` records (bounded ring).

    With a registry attached, every record also feeds the
    ``volap_tree_*`` counters and the ``volap_tree_nodes_per_op``
    histogram, labelled by operation kind.
    """

    def __init__(self, registry=None, keep: int = 100_000):
        self.registry = registry
        self.keep = keep
        self.records: list[TreeOpProfile] = []
        self.dropped = 0
        self.ops = 0

    def record(self, kind: str, stats, rows: int = 1) -> None:
        """Record one operation's ``OpStats``; cheap enough for hot paths."""
        self.ops += 1
        prof = TreeOpProfile(
            kind=kind,
            rows=rows,
            nodes_visited=stats.nodes_visited,
            leaves_visited=stats.leaves_visited,
            items_scanned=stats.items_scanned,
            agg_hits=stats.agg_hits,
            splits=stats.splits,
            repacks=getattr(stats, "repacks", 0),
            key_expansions=stats.key_expansions,
        )
        if len(self.records) < self.keep:
            self.records.append(prof)
        else:
            self.dropped += 1
        r = self.registry
        if r is not None:
            r.counter("volap_tree_ops_total", op=kind).inc()
            r.counter("volap_tree_rows_total", op=kind).inc(rows)
            r.counter(
                "volap_tree_nodes_visited_total", op=kind
            ).inc(stats.nodes_visited)
            r.counter(
                "volap_tree_agg_hits_total", op=kind
            ).inc(stats.agg_hits)
            r.counter(
                "volap_tree_leaves_visited_total", op=kind
            ).inc(stats.leaves_visited)
            r.counter(
                "volap_tree_items_scanned_total", op=kind
            ).inc(stats.items_scanned)
            if stats.splits:
                r.counter("volap_tree_splits_total", op=kind).inc(stats.splits)
            repacks = getattr(stats, "repacks", 0)
            if repacks:
                r.counter("volap_tree_repacks_total", op=kind).inc(repacks)
            from .metrics import DEFAULT_COUNT_BUCKETS

            r.histogram(
                "volap_tree_nodes_per_op",
                buckets=DEFAULT_COUNT_BUCKETS,
                op=kind,
            ).observe(stats.nodes_visited)

    # -- analysis ----------------------------------------------------------

    def select(self, kind: Optional[str] = None) -> list[TreeOpProfile]:
        if kind is None:
            return list(self.records)
        return [p for p in self.records if p.kind == kind]

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-kind totals and means over the retained records."""
        out: dict[str, dict[str, float]] = {}
        for kind in sorted({p.kind for p in self.records}):
            recs = self.select(kind)
            n = len(recs)
            total_nodes = sum(p.nodes_visited for p in recs)
            total_hits = sum(p.agg_hits for p in recs)
            total_leaves = sum(p.leaves_visited for p in recs)
            out[kind] = {
                "ops": n,
                "rows": sum(p.rows for p in recs),
                "nodes_visited": total_nodes,
                "nodes_per_op": total_nodes / n if n else 0.0,
                "agg_hits": total_hits,
                "leaves_visited": total_leaves,
                "leaf_scan_fraction": (
                    total_leaves / (total_hits + total_leaves)
                    if total_hits + total_leaves
                    else 0.0
                ),
                "items_scanned": sum(p.items_scanned for p in recs),
                "splits": sum(p.splits for p in recs),
                "repacks": sum(p.repacks for p in recs),
                "key_expansions": sum(p.key_expansions for p in recs),
            }
        return out
